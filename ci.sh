#!/usr/bin/env bash
# Hermetic CI pipeline: every step runs with --offline against an empty
# cargo registry (the workspace has no external dependencies by design —
# see README "Offline builds"). Run locally with ./ci.sh.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo check benches (criterion-bench feature)"
cargo check --offline -p netcrafter-bench --benches --features criterion-bench

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> figures smoke run: --quick fig14, sequential vs 4 workers"
seq_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- --quick fig14 2>/dev/null)
par_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- --quick fig14 --jobs 4 2>/dev/null)
if [[ "$seq_out" != "$par_out" ]]; then
    echo "FAIL: parallel figure output differs from sequential" >&2
    diff <(echo "$seq_out") <(echo "$par_out") >&2 || true
    exit 1
fi

echo "==> figures cache smoke run: warm cache must re-simulate nothing"
cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"' EXIT
cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
    --quick fig14 --jobs 4 --cache-dir "$cache_dir" >/dev/null 2>&1
warm_stderr=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
    --quick fig14 --jobs 4 --cache-dir "$cache_dir" 2>&1 >/dev/null)
if ! grep -q "0 simulated" <<<"$warm_stderr"; then
    echo "FAIL: warm cache re-simulated configurations:" >&2
    echo "$warm_stderr" >&2
    exit 1
fi

echo "CI OK"
