#!/usr/bin/env bash
# Hermetic CI pipeline: every step runs with --offline against an empty
# cargo registry (the workspace has no external dependencies by design —
# see README "Offline builds"). Run locally with ./ci.sh.
#
# Artifacts (fig14 trace + time series, fresh bench report) are left in
# $CI_ARTIFACT_DIR (default: ./ci-artifacts) for the workflow to upload.
set -euo pipefail
cd "$(dirname "$0")"

artifact_dir=${CI_ARTIFACT_DIR:-ci-artifacts}
mkdir -p "$artifact_dir"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings + curated pedantic subset"
# Beyond the default warn set, a curated subset of pedantic lints is
# denied (kept small on purpose: each one either hardens determinism
# reasoning or removes a class of silent fallback). `clippy::unwrap_used`
# is enforced through crate-root `#![warn(...)]` attributes in every
# sim-facing crate (tests are exempt via cfg_attr), which -D warnings
# turns into errors here.
cargo clippy --workspace --all-targets --offline -- -D warnings \
    -D clippy::explicit_iter_loop \
    -D clippy::semicolon_if_nothing_returned \
    -D clippy::redundant_closure_for_method_calls \
    -D clippy::map_unwrap_or \
    -D clippy::cloned_instead_of_copied

echo "==> netcrafter-lint: determinism & invariant static analysis"
# The in-tree linter must pass the workspace with zero unwaived findings;
# the JSON report is kept as a CI artifact. Each known-bad fixture must
# keep failing (nonzero exit) so a linter regression cannot silently turn
# the workspace pass into a no-op.
cargo run --offline -q -p netcrafter-lint -- --report "$artifact_dir/lint-report.json"
for bad in crates/lint/tests/fixtures/bad_*.rs; do
    if cargo run --offline -q -p netcrafter-lint -- --as-crate net "$bad" >/dev/null; then
        echo "FAIL: netcrafter-lint passed known-bad fixture $bad" >&2
        exit 1
    fi
done

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo check benches (criterion-bench feature)"
cargo check --offline -p netcrafter-bench --benches --features criterion-bench

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> figures smoke run: --quick fig14, sequential vs 4 workers"
seq_err=$(mktemp)
par_err=$(mktemp)
trap 'rm -f "$seq_err" "$par_err"' EXIT
if ! seq_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
    --quick fig14 2>"$seq_err"); then
    echo "FAIL: sequential figures run failed:" >&2
    cat "$seq_err" >&2
    exit 1
fi
if ! par_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
    --quick fig14 --jobs 4 2>"$par_err"); then
    echo "FAIL: parallel figures run failed:" >&2
    cat "$par_err" >&2
    exit 1
fi
if [[ "$seq_out" != "$par_out" ]]; then
    echo "FAIL: parallel figure output differs from sequential" >&2
    diff <(echo "$seq_out") <(echo "$par_out") >&2 || true
    echo "--- sequential stderr ---" >&2
    cat "$seq_err" >&2
    echo "--- parallel stderr ---" >&2
    cat "$par_err" >&2
    exit 1
fi

echo "==> figures cache smoke run: warm cache must re-simulate nothing"
# The warm run adds --threads 4: thread count is excluded from the cache
# key (parallel results are bit-identical), so a cache filled by a
# sequential run must fully satisfy a parallel one.
cache_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir"; rm -f "$seq_err" "$par_err"' EXIT
cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
    --quick fig14 --jobs 4 --cache-dir "$cache_dir" >/dev/null 2>&1
warm_stderr=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
    --quick fig14 --jobs 4 --threads 4 --cache-dir "$cache_dir" 2>&1 >/dev/null)
if ! grep -q "0 simulated" <<<"$warm_stderr"; then
    echo "FAIL: warm cache re-simulated configurations:" >&2
    echo "$warm_stderr" >&2
    exit 1
fi

echo "==> trace determinism: two identical --trace runs must be byte-identical"
cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
    --workload GUPS --variant netcrafter --cus 2 --scale tiny \
    --trace "$artifact_dir/trace-a.json" \
    --timeseries "$artifact_dir/timeseries-a.jsonl" >/dev/null
cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
    --workload GUPS --variant netcrafter --cus 2 --scale tiny \
    --trace "$artifact_dir/trace-b.json" \
    --timeseries "$artifact_dir/timeseries-b.jsonl" >/dev/null
if ! cmp -s "$artifact_dir/trace-a.json" "$artifact_dir/trace-b.json"; then
    echo "FAIL: event traces of identical runs differ" >&2
    cmp "$artifact_dir/trace-a.json" "$artifact_dir/trace-b.json" >&2 || true
    exit 1
fi
if ! cmp -s "$artifact_dir/timeseries-a.jsonl" "$artifact_dir/timeseries-b.jsonl"; then
    echo "FAIL: time series of identical runs differ" >&2
    cmp "$artifact_dir/timeseries-a.jsonl" "$artifact_dir/timeseries-b.jsonl" >&2 || true
    exit 1
fi
mv "$artifact_dir/trace-a.json" "$artifact_dir/fig14-trace.json"
mv "$artifact_dir/timeseries-a.jsonl" "$artifact_dir/fig14-timeseries.jsonl"
rm -f "$artifact_dir/trace-b.json" "$artifact_dir/timeseries-b.jsonl"

echo "==> scheduler equivalence: event-driven vs --legacy-scheduler vs --threads 4"
# The event-driven and conservative-parallel schedulers are pure
# host-speed optimisations: the fig14 matrix and the event trace must be
# bit-identical under all three.
if ! legacy_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
    --quick fig14 --legacy-scheduler 2>"$seq_err"); then
    echo "FAIL: legacy-scheduler figures run failed:" >&2
    cat "$seq_err" >&2
    exit 1
fi
if [[ "$seq_out" != "$legacy_out" ]]; then
    echo "FAIL: legacy-scheduler figure output differs from event-driven" >&2
    diff <(echo "$seq_out") <(echo "$legacy_out") >&2 || true
    exit 1
fi
cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
    --workload GUPS --variant netcrafter --cus 2 --scale tiny \
    --legacy-scheduler \
    --trace "$artifact_dir/trace-legacy.json" \
    --timeseries "$artifact_dir/timeseries-legacy.jsonl" >/dev/null
if ! cmp -s "$artifact_dir/fig14-trace.json" "$artifact_dir/trace-legacy.json"; then
    echo "FAIL: legacy-scheduler event trace differs from event-driven" >&2
    cmp "$artifact_dir/fig14-trace.json" "$artifact_dir/trace-legacy.json" >&2 || true
    exit 1
fi
if ! cmp -s "$artifact_dir/fig14-timeseries.jsonl" "$artifact_dir/timeseries-legacy.jsonl"; then
    echo "FAIL: legacy-scheduler time series differs from event-driven" >&2
    cmp "$artifact_dir/fig14-timeseries.jsonl" "$artifact_dir/timeseries-legacy.jsonl" >&2 || true
    exit 1
fi
rm -f "$artifact_dir/trace-legacy.json" "$artifact_dir/timeseries-legacy.jsonl"
if ! thr_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
    --quick fig14 --threads 4 2>"$seq_err"); then
    echo "FAIL: --threads 4 figures run failed:" >&2
    cat "$seq_err" >&2
    exit 1
fi
if [[ "$seq_out" != "$thr_out" ]]; then
    echo "FAIL: --threads 4 figure output differs from sequential" >&2
    diff <(echo "$seq_out") <(echo "$thr_out") >&2 || true
    exit 1
fi
cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
    --workload GUPS --variant netcrafter --cus 2 --scale tiny \
    --threads 4 \
    --trace "$artifact_dir/trace-par.json" \
    --timeseries "$artifact_dir/timeseries-par.jsonl" >/dev/null
if ! cmp -s "$artifact_dir/fig14-trace.json" "$artifact_dir/trace-par.json"; then
    echo "FAIL: --threads 4 event trace differs from event-driven" >&2
    cmp "$artifact_dir/fig14-trace.json" "$artifact_dir/trace-par.json" >&2 || true
    exit 1
fi
if ! cmp -s "$artifact_dir/fig14-timeseries.jsonl" "$artifact_dir/timeseries-par.jsonl"; then
    echo "FAIL: --threads 4 time series differs from event-driven" >&2
    cmp "$artifact_dir/fig14-timeseries.jsonl" "$artifact_dir/timeseries-par.jsonl" >&2 || true
    exit 1
fi
rm -f "$artifact_dir/trace-par.json" "$artifact_dir/timeseries-par.jsonl"

echo "==> scheduler microbench: speedup numbers kept as a CI artifact"
# Informational (never gated — CI hosts have arbitrary core counts): the
# idle-heavy/dense/parallel-domain numbers land next to the other
# artifacts so a PR's claimed speedups can be checked against CI metal.
cargo bench --offline -q -p netcrafter-bench --features criterion-bench \
    --bench engine_scheduler | tee "$artifact_dir/engine-scheduler-bench.txt"

echo "==> perf-regression gate: fig14 headline numbers vs committed baseline"
cargo run --release --offline -q -p netcrafter-bench --bin bench_gate -- \
    emit "$artifact_dir/BENCH_fig14.json" --jobs 4
cargo run --release --offline -q -p netcrafter-bench --bin bench_gate -- \
    check ci/BENCH_fig14.baseline.json "$artifact_dir/BENCH_fig14.json"

echo "CI OK"
