#!/usr/bin/env bash
# Hermetic CI pipeline: every step runs with --offline against an empty
# cargo registry (the workspace has no external dependencies by design —
# see README "Offline builds"). Run locally with ./ci.sh.
#
# The pipeline is split into four groups so the GitHub workflow can run
# them as parallel jobs; with no argument every group runs in order:
#
#   ./ci.sh lint        # fmt, clippy, netcrafter-lint (+ fixture corpus)
#   ./ci.sh build-test  # release build, bench check, workspace tests
#   ./ci.sh figures     # figure/trace/scheduler/checkpoint equivalence,
#                       # scheduler microbench, perf-regression gate
#   ./ci.sh topology    # scale-out fabrics: fat-tree-8/torus-8 smoke
#                       # sweeps, three-way scheduler + checkpoint
#                       # equivalence, PDES scaling, topology perf gate
#   ./ci.sh sweep       # prefix-sharing sweeps: cold vs shared byte
#                       # diff under all three schedulers, sweep perf
#                       # gate (hit ratio), wall-clock speedup floor
#   ./ci.sh all         # everything (default)
#
# Artifacts (fig14 trace + time series, checkpoint snapshot, fresh bench
# report) are left in $CI_ARTIFACT_DIR (default: ./ci-artifacts) for the
# workflow to upload. When $GITHUB_STEP_SUMMARY is set, per-step wall
# times are appended to it as a markdown table.
set -euo pipefail
cd "$(dirname "$0")"

mode=${1:-all}
case "$mode" in
    lint | build-test | figures | topology | sweep | all) ;;
    *)
        echo "usage: ./ci.sh [lint|build-test|figures|topology|sweep|all]" >&2
        exit 2
        ;;
esac

artifact_dir=${CI_ARTIFACT_DIR:-ci-artifacts}
mkdir -p "$artifact_dir"

seq_err=$(mktemp)
par_err=$(mktemp)
cache_dir=$(mktemp -d)
ckpt_dir=$(mktemp -d)
trap 'rm -rf "$cache_dir" "$ckpt_dir"; rm -f "$seq_err" "$par_err"' EXIT

if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
    {
        echo ""
        echo "### ci.sh $mode step timing"
        echo ""
        echo "| step | seconds |"
        echo "| --- | --- |"
    } >>"$GITHUB_STEP_SUMMARY"
fi

# Runs one named step (a function below), echoing it and recording its
# wall time in the GitHub step summary when available.
run_step() {
    local name="$1"
    shift
    echo "==> $name"
    local t0=$SECONDS
    "$@"
    local dt=$((SECONDS - t0))
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        echo "| $name | $dt |" >>"$GITHUB_STEP_SUMMARY"
    fi
}

step_fmt() {
    cargo fmt --check
}

# Beyond the default warn set, a curated subset of pedantic lints is
# denied (kept small on purpose: each one either hardens determinism
# reasoning or removes a class of silent fallback). `clippy::unwrap_used`
# is enforced through crate-root `#![warn(...)]` attributes in every
# sim-facing crate (tests are exempt via cfg_attr), which -D warnings
# turns into errors here.
step_clippy() {
    cargo clippy --workspace --all-targets --offline -- -D warnings \
        -D clippy::explicit_iter_loop \
        -D clippy::semicolon_if_nothing_returned \
        -D clippy::redundant_closure_for_method_calls \
        -D clippy::map_unwrap_or \
        -D clippy::cloned_instead_of_copied
}

# The in-tree linter must pass the workspace with zero unwaived findings;
# the JSON report and the regenerated field inventory are kept as CI
# artifacts. The workspace pass runs against the committed field-inventory
# baseline (activating snapshot-version-bump), and the freshly emitted
# inventory must be byte-identical to the committed one — a stale baseline
# fails here even if no rule fired. Each known-bad fixture must keep
# failing (nonzero exit) so a linter regression cannot silently turn the
# workspace pass into a no-op; fixtures with a `.baseline.json` companion
# are run against it.
step_netcrafter_lint() {
    local t0=$SECONDS
    cargo run --offline -q -p netcrafter-lint -- --jobs 4 \
        --baseline ci/lint-field-inventory.json \
        --report "$artifact_dir/lint-report.json" \
        --emit-inventory "$artifact_dir/lint-field-inventory.json"
    if ! cmp -s ci/lint-field-inventory.json "$artifact_dir/lint-field-inventory.json"; then
        echo "FAIL: ci/lint-field-inventory.json is stale — regenerate with" >&2
        echo "  cargo run -p netcrafter-lint -- --jobs 4 --emit-inventory ci/lint-field-inventory.json" >&2
        exit 1
    fi
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        echo "| netcrafter-lint workspace pass (--jobs 4) | $((SECONDS - t0)) |" >>"$GITHUB_STEP_SUMMARY"
    fi
    local bad baseline_args
    for bad in crates/lint/tests/fixtures/bad_*.rs; do
        baseline_args=()
        if [[ -f "${bad%.rs}.baseline.json" ]]; then
            baseline_args=(--baseline "${bad%.rs}.baseline.json")
        fi
        if cargo run --offline -q -p netcrafter-lint -- --as-crate net \
            "${baseline_args[@]}" "$bad" >/dev/null; then
            echo "FAIL: netcrafter-lint passed known-bad fixture $bad" >&2
            exit 1
        fi
    done
}

step_build_release() {
    cargo build --release --offline
}

step_check_benches() {
    cargo check --offline -p netcrafter-bench --benches --features criterion-bench
}

step_test_workspace() {
    cargo test -q --workspace --offline
}

step_figures_smoke() {
    if ! seq_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
        --quick fig14 2>"$seq_err"); then
        echo "FAIL: sequential figures run failed:" >&2
        cat "$seq_err" >&2
        exit 1
    fi
    if ! par_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
        --quick fig14 --jobs 4 2>"$par_err"); then
        echo "FAIL: parallel figures run failed:" >&2
        cat "$par_err" >&2
        exit 1
    fi
    if [[ "$seq_out" != "$par_out" ]]; then
        echo "FAIL: parallel figure output differs from sequential" >&2
        diff <(echo "$seq_out") <(echo "$par_out") >&2 || true
        echo "--- sequential stderr ---" >&2
        cat "$seq_err" >&2
        echo "--- parallel stderr ---" >&2
        cat "$par_err" >&2
        exit 1
    fi
}

# The warm run adds --threads 4: thread count is excluded from the cache
# key (parallel results are bit-identical), so a cache filled by a
# sequential run must fully satisfy a parallel one.
step_figures_cache() {
    cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
        --quick fig14 --jobs 4 --cache-dir "$cache_dir" >/dev/null 2>&1
    local warm_stderr
    warm_stderr=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
        --quick fig14 --jobs 4 --threads 4 --cache-dir "$cache_dir" 2>&1 >/dev/null)
    if ! grep -q "0 simulated" <<<"$warm_stderr"; then
        echo "FAIL: warm cache re-simulated configurations:" >&2
        echo "$warm_stderr" >&2
        exit 1
    fi
}

step_trace_determinism() {
    cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
        --workload GUPS --variant netcrafter --cus 2 --scale tiny \
        --trace "$artifact_dir/trace-a.json" \
        --timeseries "$artifact_dir/timeseries-a.jsonl" >/dev/null
    cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
        --workload GUPS --variant netcrafter --cus 2 --scale tiny \
        --trace "$artifact_dir/trace-b.json" \
        --timeseries "$artifact_dir/timeseries-b.jsonl" >/dev/null
    if ! cmp -s "$artifact_dir/trace-a.json" "$artifact_dir/trace-b.json"; then
        echo "FAIL: event traces of identical runs differ" >&2
        cmp "$artifact_dir/trace-a.json" "$artifact_dir/trace-b.json" >&2 || true
        exit 1
    fi
    if ! cmp -s "$artifact_dir/timeseries-a.jsonl" "$artifact_dir/timeseries-b.jsonl"; then
        echo "FAIL: time series of identical runs differ" >&2
        cmp "$artifact_dir/timeseries-a.jsonl" "$artifact_dir/timeseries-b.jsonl" >&2 || true
        exit 1
    fi
    mv "$artifact_dir/trace-a.json" "$artifact_dir/fig14-trace.json"
    mv "$artifact_dir/timeseries-a.jsonl" "$artifact_dir/fig14-timeseries.jsonl"
    rm -f "$artifact_dir/trace-b.json" "$artifact_dir/timeseries-b.jsonl"
}

# The event-driven and conservative-parallel schedulers are pure
# host-speed optimisations: the fig14 matrix and the event trace must be
# bit-identical under all three.
step_scheduler_equivalence() {
    local legacy_out thr_out
    if ! legacy_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
        --quick fig14 --legacy-scheduler 2>"$seq_err"); then
        echo "FAIL: legacy-scheduler figures run failed:" >&2
        cat "$seq_err" >&2
        exit 1
    fi
    if [[ "$seq_out" != "$legacy_out" ]]; then
        echo "FAIL: legacy-scheduler figure output differs from event-driven" >&2
        diff <(echo "$seq_out") <(echo "$legacy_out") >&2 || true
        exit 1
    fi
    cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
        --workload GUPS --variant netcrafter --cus 2 --scale tiny \
        --legacy-scheduler \
        --trace "$artifact_dir/trace-legacy.json" \
        --timeseries "$artifact_dir/timeseries-legacy.jsonl" >/dev/null
    if ! cmp -s "$artifact_dir/fig14-trace.json" "$artifact_dir/trace-legacy.json"; then
        echo "FAIL: legacy-scheduler event trace differs from event-driven" >&2
        cmp "$artifact_dir/fig14-trace.json" "$artifact_dir/trace-legacy.json" >&2 || true
        exit 1
    fi
    if ! cmp -s "$artifact_dir/fig14-timeseries.jsonl" "$artifact_dir/timeseries-legacy.jsonl"; then
        echo "FAIL: legacy-scheduler time series differs from event-driven" >&2
        cmp "$artifact_dir/fig14-timeseries.jsonl" "$artifact_dir/timeseries-legacy.jsonl" >&2 || true
        exit 1
    fi
    rm -f "$artifact_dir/trace-legacy.json" "$artifact_dir/timeseries-legacy.jsonl"
    if ! thr_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
        --quick fig14 --threads 4 2>"$seq_err"); then
        echo "FAIL: --threads 4 figures run failed:" >&2
        cat "$seq_err" >&2
        exit 1
    fi
    if [[ "$seq_out" != "$thr_out" ]]; then
        echo "FAIL: --threads 4 figure output differs from sequential" >&2
        diff <(echo "$seq_out") <(echo "$thr_out") >&2 || true
        exit 1
    fi
    cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
        --workload GUPS --variant netcrafter --cus 2 --scale tiny \
        --threads 4 \
        --trace "$artifact_dir/trace-par.json" \
        --timeseries "$artifact_dir/timeseries-par.jsonl" >/dev/null
    if ! cmp -s "$artifact_dir/fig14-trace.json" "$artifact_dir/trace-par.json"; then
        echo "FAIL: --threads 4 event trace differs from event-driven" >&2
        cmp "$artifact_dir/fig14-trace.json" "$artifact_dir/trace-par.json" >&2 || true
        exit 1
    fi
    if ! cmp -s "$artifact_dir/fig14-timeseries.jsonl" "$artifact_dir/timeseries-par.jsonl"; then
        echo "FAIL: --threads 4 time series differs from event-driven" >&2
        cmp "$artifact_dir/fig14-timeseries.jsonl" "$artifact_dir/timeseries-par.jsonl" >&2 || true
        exit 1
    fi
    rm -f "$artifact_dir/trace-par.json" "$artifact_dir/timeseries-par.jsonl"
}

# Checkpoint → restore → continue must be byte-identical to the
# uninterrupted run: metrics dump, event trace and time series alike,
# with the snapshot taken at the cold run's midpoint and the restored
# half replayed under all three schedulers (a snapshot is scheduler-
# portable by design). The snapshot itself is kept as a CI artifact
# under the name given as $1; any further arguments (e.g. --topology)
# are appended to every simulate invocation.
step_checkpoint_equivalence() {
    local artifact_name="$1"
    shift
    rm -rf "$ckpt_dir/snaps"
    local base=(--workload GUPS --variant netcrafter --cus 2 --scale tiny "$@")
    local sim=(cargo run --release --offline -q -p netcrafter-bench --bin simulate --)
    "${sim[@]}" "${base[@]}" \
        --trace "$ckpt_dir/cold-trace.json" \
        --timeseries "$ckpt_dir/cold-ts.jsonl" \
        --dump-metrics >"$ckpt_dir/cold.txt"
    local cycles mid
    cycles=$(awk -F': *' '/^execution cycles/ {print $2}' "$ckpt_dir/cold.txt")
    if [[ -z "$cycles" || "$cycles" -lt 2 ]]; then
        echo "FAIL: cannot read execution cycles from the cold run" >&2
        exit 1
    fi
    mid=$((cycles / 2))
    "${sim[@]}" "${base[@]}" \
        --checkpoint-at "$mid" --checkpoint-dir "$ckpt_dir/snaps" \
        --trace "$ckpt_dir/mid-trace.json" \
        --timeseries "$ckpt_dir/mid-ts.jsonl" \
        --dump-metrics >"$ckpt_dir/mid.txt"
    if ! diff "$ckpt_dir/cold.txt" "$ckpt_dir/mid.txt" >&2 ||
        ! cmp -s "$ckpt_dir/cold-trace.json" "$ckpt_dir/mid-trace.json" ||
        ! cmp -s "$ckpt_dir/cold-ts.jsonl" "$ckpt_dir/mid-ts.jsonl"; then
        echo "FAIL: pausing at cycle $mid to checkpoint perturbed the run" >&2
        exit 1
    fi
    local snap
    snap=$(echo "$ckpt_dir"/snaps/ckpt-*.bin)
    if [[ ! -f "$snap" ]]; then
        echo "FAIL: --checkpoint-at $mid wrote no snapshot" >&2
        exit 1
    fi
    cp "$snap" "$artifact_dir/$artifact_name"
    local sched
    for sched in "" "--legacy-scheduler" "--threads 4"; do
        local tag="event"
        [[ -n "$sched" ]] && tag="${sched#--}"
        # shellcheck disable=SC2086  # $sched is intentionally word-split
        "${sim[@]}" "${base[@]}" $sched \
            --restore-from "$snap" \
            --trace "$ckpt_dir/warm-trace.json" \
            --timeseries "$ckpt_dir/warm-ts.jsonl" \
            --dump-metrics >"$ckpt_dir/warm.txt" 2>"$ckpt_dir/warm.err"
        if ! grep -q "simulated from cycle $mid" "$ckpt_dir/warm.err"; then
            echo "FAIL ($tag): restored run did not resume from cycle $mid:" >&2
            cat "$ckpt_dir/warm.err" >&2
            exit 1
        fi
        if ! diff "$ckpt_dir/cold.txt" "$ckpt_dir/warm.txt" >&2; then
            echo "FAIL ($tag): restored metrics differ from the uninterrupted run" >&2
            exit 1
        fi
        if ! cmp -s "$ckpt_dir/cold-trace.json" "$ckpt_dir/warm-trace.json"; then
            echo "FAIL ($tag): restored event trace differs from the uninterrupted run" >&2
            cmp "$ckpt_dir/cold-trace.json" "$ckpt_dir/warm-trace.json" >&2 || true
            exit 1
        fi
        if ! cmp -s "$ckpt_dir/cold-ts.jsonl" "$ckpt_dir/warm-ts.jsonl"; then
            echo "FAIL ($tag): restored time series differs from the uninterrupted run" >&2
            cmp "$ckpt_dir/cold-ts.jsonl" "$ckpt_dir/warm-ts.jsonl" >&2 || true
            exit 1
        fi
    done
}

# Informational (never gated — CI hosts have arbitrary core counts): the
# idle-heavy/dense/parallel-domain numbers land next to the other
# artifacts so a PR's claimed speedups can be checked against CI metal.
step_scheduler_microbench() {
    cargo bench --offline -q -p netcrafter-bench --features criterion-bench \
        --bench engine_scheduler | tee "$artifact_dir/engine-scheduler-bench.txt"
}

step_perf_gate() {
    cargo run --release --offline -q -p netcrafter-bench --bin bench_gate -- \
        emit "$artifact_dir/BENCH_fig14.json" --jobs 4
    cargo run --release --offline -q -p netcrafter-bench --bin bench_gate -- \
        check ci/BENCH_fig14.baseline.json "$artifact_dir/BENCH_fig14.json"
}

# The topology sweep figure (mesh / fat-tree-8 / fat-tree-16 / torus-8 ×
# baseline/NetCrafter) must render identically sequential and on 4
# workers; the rendered table is kept as a CI artifact.
step_topology_figure() {
    if ! topo_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
        --quick topology 2>"$seq_err"); then
        echo "FAIL: topology figure run failed:" >&2
        cat "$seq_err" >&2
        exit 1
    fi
    local par_out
    if ! par_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
        --quick topology --jobs 4 2>"$par_err"); then
        echo "FAIL: parallel topology figure run failed:" >&2
        cat "$par_err" >&2
        exit 1
    fi
    if [[ "$topo_out" != "$par_out" ]]; then
        echo "FAIL: parallel topology figure output differs from sequential" >&2
        diff <(echo "$topo_out") <(echo "$par_out") >&2 || true
        exit 1
    fi
    printf '%s\n' "$topo_out" >"$artifact_dir/topology-figure.txt"
}

# Multi-hop routing is deterministic: the topology figure and a traced
# fat-tree-8/torus-8 simulate run must be byte-identical under the
# event-driven, legacy, and 4-thread conservative-parallel schedulers.
step_topology_scheduler_equivalence() {
    local sched out
    for sched in "--legacy-scheduler" "--threads 4"; do
        # shellcheck disable=SC2086  # $sched is intentionally word-split
        if ! out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
            --quick topology $sched 2>"$seq_err"); then
            echo "FAIL ($sched): topology figure run failed:" >&2
            cat "$seq_err" >&2
            exit 1
        fi
        if [[ "$topo_out" != "$out" ]]; then
            echo "FAIL ($sched): topology figure output differs from event-driven" >&2
            diff <(echo "$topo_out") <(echo "$out") >&2 || true
            exit 1
        fi
    done
    local spec fabric
    for spec in fat-tree:k=4 torus:2x2x2; do
        fabric=${spec%%:*}
        local ref_trace="$artifact_dir/topology-$fabric-trace.json"
        local ref_ts="$artifact_dir/topology-$fabric-timeseries.jsonl"
        cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
            --topology "$spec" --workload GUPS --variant netcrafter --cus 2 --scale tiny \
            --trace "$ref_trace" --timeseries "$ref_ts" >/dev/null
        for sched in "--legacy-scheduler" "--threads 4"; do
            # shellcheck disable=SC2086  # $sched is intentionally word-split
            cargo run --release --offline -q -p netcrafter-bench --bin simulate -- \
                --topology "$spec" --workload GUPS --variant netcrafter --cus 2 --scale tiny \
                $sched \
                --trace "$ckpt_dir/alt-trace.json" \
                --timeseries "$ckpt_dir/alt-ts.jsonl" >/dev/null
            if ! cmp -s "$ref_trace" "$ckpt_dir/alt-trace.json"; then
                echo "FAIL ($spec $sched): event trace differs from event-driven" >&2
                cmp "$ref_trace" "$ckpt_dir/alt-trace.json" >&2 || true
                exit 1
            fi
            if ! cmp -s "$ref_ts" "$ckpt_dir/alt-ts.jsonl"; then
                echo "FAIL ($spec $sched): time series differs from event-driven" >&2
                cmp "$ref_ts" "$ckpt_dir/alt-ts.jsonl" >&2 || true
                exit 1
            fi
        done
    done
}

# Times `reps` back-to-back fat-tree-8 paper-scale simulate runs at the
# given thread count, printing whole-run wall seconds.
time_fat_tree_reps() {
    local threads="$1" reps="$2" t0 t1 i
    t0=$(date +%s%N)
    for ((i = 0; i < reps; i++)); do
        target/release/simulate --topology fat-tree:k=4 --workload GUPS \
            --variant netcrafter --cus 4 --scale paper --threads "$threads" \
            >/dev/null 2>&1
    done
    t1=$(date +%s%N)
    awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", (b - a) / 1e9 }'
}

# Multicore-aware PDES scaling check on the fat-tree fabric. The
# numbers always land in the artifacts and the step summary; the 1.5x
# speedup floor for --threads 4 is only enforced when the host really
# has >= 4 cores (on a 1-core CI container the parallel scheduler is a
# pure-overhead measurement, so there it records and skips).
step_topology_scaling() {
    cargo build --release --offline -p netcrafter-bench
    local cores reps=6
    cores=$(nproc)
    # One warm-up run so neither timing pays first-touch costs.
    target/release/simulate --topology fat-tree:k=4 --workload GUPS \
        --variant netcrafter --cus 4 --scale paper >/dev/null 2>&1
    local t1s t4s speedup efficiency
    t1s=$(time_fat_tree_reps 1 "$reps")
    t4s=$(time_fat_tree_reps 4 "$reps")
    speedup=$(awk -v a="$t1s" -v b="$t4s" 'BEGIN { printf "%.2f", a / b }')
    efficiency=$(awk -v s="$speedup" 'BEGIN { printf "%.2f", s / 4 }')
    {
        echo "cores=$cores"
        echo "reps=$reps"
        echo "threads1_seconds=$t1s"
        echo "threads4_seconds=$t4s"
        echo "speedup=$speedup"
        echo "efficiency_per_core=$efficiency"
    } | tee "$artifact_dir/topology-scaling.txt"
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        {
            echo ""
            echo "### PDES scaling (fat-tree-8, GUPS paper scale, $reps reps)"
            echo ""
            echo "| cores | 1 thread | 4 threads | speedup | efficiency/core |"
            echo "| --- | --- | --- | --- | --- |"
            echo "| $cores | ${t1s}s | ${t4s}s | ${speedup}x | $efficiency |"
        } >>"$GITHUB_STEP_SUMMARY"
    fi
    if ((cores >= 4)); then
        if awk -v s="$speedup" 'BEGIN { exit !(s < 1.5) }'; then
            echo "FAIL: --threads 4 speedup ${speedup}x < 1.5x on a $cores-core host" >&2
            exit 1
        fi
    else
        echo "note: $cores core(s) < 4 — recording scaling numbers, skipping the 1.5x floor"
    fi
}

# Prefix sharing is a pure host-speed optimisation: a warmup-window
# fig14 sweep resolved through in-memory snapshot forks must render
# byte-identically to the cold (--no-prefix-share) sweep, under the
# event-driven, legacy, and 4-thread conservative-parallel schedulers.
step_sweep_equivalence() {
    local warmup=2800 cold_out shared_out sched
    if ! cold_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
        --quick fig14 --warmup "$warmup" --no-prefix-share 2>"$seq_err"); then
        echo "FAIL: cold warmup-window figures run failed:" >&2
        cat "$seq_err" >&2
        exit 1
    fi
    for sched in "" "--legacy-scheduler" "--threads 4"; do
        local tag="event"
        [[ -n "$sched" ]] && tag="${sched#--}"
        # shellcheck disable=SC2086  # $sched is intentionally word-split
        if ! shared_out=$(cargo run --release --offline -q -p netcrafter-bench --bin figures -- \
            --quick fig14 --warmup "$warmup" --jobs 4 $sched 2>"$par_err"); then
            echo "FAIL ($tag): prefix-shared figures run failed:" >&2
            cat "$par_err" >&2
            exit 1
        fi
        if [[ "$cold_out" != "$shared_out" ]]; then
            echo "FAIL ($tag): prefix-shared figure output differs from cold" >&2
            diff <(echo "$cold_out") <(echo "$shared_out") >&2 || true
            echo "--- prefix-shared stderr ---" >&2
            cat "$par_err" >&2
            exit 1
        fi
        if ! grep -q "prefix-hit ratio" "$par_err"; then
            echo "FAIL ($tag): prefix-shared sweep reported no prefix stats:" >&2
            cat "$par_err" >&2
            exit 1
        fi
    done
}

# The sweep matrix's exec cycles and its deterministic prefix-hit ratio
# are hard-gated against the committed baseline; the measured hit ratio
# also lands in the step summary.
step_sweep_perf_gate() {
    cargo run --release --offline -q -p netcrafter-bench --bin bench_gate -- \
        emit "$artifact_dir/BENCH_sweep.json" --matrix sweep --jobs 4
    cargo run --release --offline -q -p netcrafter-bench --bin bench_gate -- \
        check ci/BENCH_sweep.baseline.json "$artifact_dir/BENCH_sweep.json"
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        local ratio
        ratio=$(grep -o '"prefix_hit_ratio": [0-9.]*' "$artifact_dir/BENCH_sweep.json" | awk '{print $2}')
        echo "| sweep prefix-hit ratio | ${ratio:-?} |" >>"$GITHUB_STEP_SUMMARY"
    fi
}

# Wall-clock win of prefix sharing on the 30-job sweep matrix. The
# numbers always land in the artifacts; the 1.5x floor at --jobs 4 is
# only enforced when the host really has >= 4 cores (a 1-core container
# measures worker oversubscription, not the tree).
step_sweep_speedup() {
    cargo bench --offline -q -p netcrafter-bench --features criterion-bench \
        --bench sweep_prefix | tee "$artifact_dir/sweep-prefix-bench.txt"
    local cores speedup
    cores=$(nproc)
    speedup=$(awk '/jobs4/ { for (i = 1; i < NF; i++) if ($i == "speedup") print $(i + 1) }' \
        "$artifact_dir/sweep-prefix-bench.txt" | tr -d 'x')
    if [[ -z "$speedup" ]]; then
        echo "FAIL: cannot parse the jobs4 speedup from the sweep_prefix bench" >&2
        exit 1
    fi
    if [[ -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
        echo "| sweep prefix-share speedup (--jobs 4, $cores cores) | ${speedup}x |" >>"$GITHUB_STEP_SUMMARY"
    fi
    if ((cores >= 4)); then
        if awk -v s="$speedup" 'BEGIN { exit !(s < 1.5) }'; then
            echo "FAIL: prefix-shared sweep speedup ${speedup}x < 1.5x on a $cores-core host" >&2
            exit 1
        fi
    else
        echo "note: $cores core(s) < 4 — recording sweep speedup, skipping the 1.5x floor"
    fi
}

step_topology_perf_gate() {
    cargo run --release --offline -q -p netcrafter-bench --bin bench_gate -- \
        emit "$artifact_dir/BENCH_topology.json" --matrix topology --jobs 4
    cargo run --release --offline -q -p netcrafter-bench --bin bench_gate -- \
        check ci/BENCH_topology.baseline.json "$artifact_dir/BENCH_topology.json"
}

if [[ "$mode" == lint || "$mode" == all ]]; then
    run_step "cargo fmt --check" step_fmt
    run_step "cargo clippy --workspace --all-targets -- -D warnings + curated pedantic subset" step_clippy
    run_step "netcrafter-lint: determinism & invariant static analysis" step_netcrafter_lint
fi

if [[ "$mode" == build-test || "$mode" == all ]]; then
    run_step "cargo build --release --offline" step_build_release
    run_step "cargo check benches (criterion-bench feature)" step_check_benches
    run_step "cargo test -q --workspace" step_test_workspace
fi

if [[ "$mode" == figures || "$mode" == all ]]; then
    run_step "figures smoke run: --quick fig14, sequential vs 4 workers" step_figures_smoke
    run_step "figures cache smoke run: warm cache must re-simulate nothing" step_figures_cache
    run_step "trace determinism: two identical --trace runs must be byte-identical" step_trace_determinism
    run_step "scheduler equivalence: event-driven vs --legacy-scheduler vs --threads 4" step_scheduler_equivalence
    run_step "checkpoint equivalence: uninterrupted vs midpoint checkpoint + restore" step_checkpoint_equivalence fig14-checkpoint.bin
    run_step "scheduler microbench: speedup numbers kept as a CI artifact" step_scheduler_microbench
    run_step "perf-regression gate: fig14 headline numbers vs committed baseline" step_perf_gate
fi

if [[ "$mode" == topology || "$mode" == all ]]; then
    run_step "topology figure: --quick topology, sequential vs 4 workers" step_topology_figure
    run_step "topology scheduler equivalence: fat-tree-8 & torus-8 under all three schedulers" step_topology_scheduler_equivalence
    run_step "topology checkpoint equivalence: fat-tree-8 midpoint checkpoint + restore" step_checkpoint_equivalence topology-checkpoint.bin --topology fat-tree:k=4
    run_step "PDES scaling: per-core efficiency on fat-tree-8" step_topology_scaling
    run_step "perf-regression gate: topology matrix vs committed baseline" step_topology_perf_gate
fi

if [[ "$mode" == sweep || "$mode" == all ]]; then
    run_step "sweep equivalence: cold vs prefix-shared fig14 under all three schedulers" step_sweep_equivalence
    run_step "perf-regression gate: sweep matrix + prefix-hit ratio vs committed baseline" step_sweep_perf_gate
    run_step "sweep speedup: prefix-sharing wall-clock floor" step_sweep_speedup
fi

echo "CI OK ($mode)"
