//! Utilization over time: samples the inter-cluster links while a DNN
//! training step runs and renders a text timeline — the bursty
//! compute/sync phase structure is clearly visible, and NetCrafter
//! flattens and shortens the bursts.
//!
//! ```text
//! cargo run --release --example utilization_timeline [WORKLOAD]
//! ```

use netcrafter::multigpu::{System, SystemVariant};
use netcrafter::proto::SystemConfig;
use netcrafter::workloads::{Scale, Workload};

const INTERVAL: u64 = 500;
const BARS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn timeline(variant: SystemVariant, workload: Workload) -> (u64, Vec<f64>) {
    let cfg = variant.apply(SystemConfig::small(8));
    let kernel = workload.generate(&Scale::small(), cfg.total_gpus(), 7);
    let inter_ports = 2.0; // 2 clusters, one egress each way
    let flits_per_cycle = cfg.topology.inter_bytes_per_cycle() / cfg.flit_bytes as f64;
    let capacity = INTERVAL as f64 * flits_per_cycle * inter_ports;
    let mut sys = System::build(cfg, &kernel);
    let samples = sys.run_sampled(100_000_000, INTERVAL);
    let cycles = sys.engine.cycle();
    (
        cycles,
        samples.iter().map(|(_, f)| *f as f64 / capacity).collect(),
    )
}

fn render(utils: &[f64]) -> String {
    utils
        .iter()
        .map(|u| BARS[((u * (BARS.len() - 1) as f64).round() as usize).min(BARS.len() - 1)])
        .collect()
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "VGG16".into());
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.abbrev().eq_ignore_ascii_case(&name))
        .unwrap_or(Workload::Vgg16);

    println!("inter-cluster link utilization over time ({workload}, {INTERVAL}-cycle buckets):\n");
    for variant in [SystemVariant::Baseline, SystemVariant::NetCrafter] {
        let (cycles, utils) = timeline(variant, workload);
        let avg = utils.iter().sum::<f64>() / utils.len().max(1) as f64;
        println!("{:<11} [{}]", variant.label(), render(&utils));
        println!(
            "{:<11} {} cycles, avg {:.0}% / peak {:.0}%\n",
            "",
            cycles,
            100.0 * avg,
            100.0 * utils.iter().copied().fold(0.0, f64::max)
        );
    }
    println!("Each column is one {INTERVAL}-cycle bucket; height is link utilization.");
}
