//! Load-latency characterization of the interconnect substrate: uniform
//! random synthetic traffic swept from light load to saturation, showing
//! the classic hockey-stick latency curve as offered load approaches the
//! inter-cluster links' capacity — the network-model validation every
//! NoC study starts with.
//!
//! ```text
//! cargo run --release --example noc_saturation
//! ```

use netcrafter::net::{load_latency_sweep, SyntheticConfig};

fn main() {
    let cfg = SyntheticConfig::default();
    println!(
        "synthetic uniform-random traffic, 2 clusters x {} endpoints,\n\
         intra {} flits/cycle, inter {} flits/cycle, {}-cycle switch pipeline\n",
        cfg.endpoints_per_cluster, cfg.intra_fpc, cfg.inter_fpc, cfg.pipeline_cycles
    );
    println!(
        "{:>18} {:>22} {:>14} {:>12}",
        "offered (f/c/src)", "delivered (f/c total)", "avg lat (cyc)", "max lat"
    );
    let rates = [0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0];
    for p in load_latency_sweep(&cfg, &rates) {
        let bar_len = ((p.avg_latency / 40.0) as usize).min(60);
        println!(
            "{:>18.2} {:>22.2} {:>14.1} {:>12}  {}",
            p.offered,
            p.throughput,
            p.avg_latency,
            p.max_latency,
            "#".repeat(bar_len)
        );
    }
    println!(
        "\nWith 2/3 of uniform traffic crossing clusters, the two 1-flit/cycle\n\
         inter-cluster links saturate near 0.75 flits/cycle/source — latency\n\
         explodes past the knee while throughput plateaus, exactly the regime\n\
         the baseline multi-GPU workloads live in (Figure 4)."
    );
}
