//! Mechanism breakdown: how much each NetCrafter technique — Stitching,
//! Trimming, Sequencing — contributes on its own and combined, across a
//! set of workloads (a miniature Figure 14).
//!
//! ```text
//! cargo run --release --example mechanism_breakdown
//! ```

use netcrafter::multigpu::{Experiment, SystemVariant};
use netcrafter::workloads::{Scale, Workload};

fn main() {
    let workloads = [
        Workload::Gups,
        Workload::Spmv,
        Workload::Mis,
        Workload::Pr,
        Workload::Bs,
        Workload::Vgg16,
    ];
    let variants = [
        SystemVariant::StitchOnly,
        SystemVariant::TrimOnly,
        SystemVariant::SeqOnly,
        SystemVariant::NetCrafter,
        SystemVariant::Ideal,
    ];

    println!(
        "{:<8} {:>10} {:>9} {:>9} {:>9} {:>11} {:>7}",
        "workload", "base cyc", "stitch", "trim", "seq", "netcrafter", "ideal"
    );
    let mut product = vec![1.0f64; variants.len()];
    for w in workloads {
        let base = Experiment::new(w, SystemVariant::Baseline)
            .with_scale(Scale::small())
            .run();
        print!("{:<8} {:>10}", w.abbrev(), base.exec_cycles);
        for (i, v) in variants.iter().enumerate() {
            let r = Experiment::new(w, *v).with_scale(Scale::small()).run();
            let speedup = base.exec_cycles as f64 / r.exec_cycles as f64;
            product[i] *= speedup;
            let width = if *v == SystemVariant::NetCrafter {
                11
            } else if *v == SystemVariant::Ideal {
                7
            } else {
                9
            };
            print!(" {:>w$}", format!("{speedup:.2}x"), w = width);
        }
        println!();
    }
    print!("{:<8} {:>10}", "GEOMEAN", "-");
    for (i, v) in variants.iter().enumerate() {
        let gm = product[i].powf(1.0 / workloads.len() as f64);
        let width = if *v == SystemVariant::NetCrafter {
            11
        } else if *v == SystemVariant::Ideal {
            7
        } else {
            9
        };
        print!(" {:>w$}", format!("{gm:.2}x"), w = width);
    }
    println!();
    println!("\n(Each column is speedup over the non-uniform baseline; 'ideal' raises the");
    println!(" inter-cluster links to intra-cluster bandwidth and bounds what any traffic");
    println!(" optimization could achieve.)");
}
