//! Quickstart: simulate a GUPS kernel on the Frontier-style non-uniform
//! bandwidth multi-GPU node, with and without NetCrafter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use netcrafter::multigpu::{Experiment, SystemVariant};
use netcrafter::workloads::{Scale, Workload};

fn main() {
    // A scaled-down node (4 GPUs × 8 CUs, 128/16 GB/s links) and a GUPS
    // kernel sized to congest the inter-cluster links.
    let scale = Scale::small();

    println!("Running GUPS on the baseline non-uniform node …");
    let base = Experiment::new(Workload::Gups, SystemVariant::Baseline)
        .with_scale(scale)
        .run();

    println!("Running GUPS with NetCrafter (Stitch + Trim + Sequence) …");
    let nc = Experiment::new(Workload::Gups, SystemVariant::NetCrafter)
        .with_scale(scale)
        .run();

    println!();
    println!("                       baseline    NetCrafter");
    println!(
        "execution cycles     {:>10}    {:>10}   ({:.2}x speedup)",
        base.exec_cycles,
        nc.exec_cycles,
        base.exec_cycles as f64 / nc.exec_cycles as f64
    );
    println!(
        "inter-cluster bytes  {:>10}    {:>10}   ({:.1}% reduction)",
        base.inter_link_bytes(),
        nc.inter_link_bytes(),
        100.0 * (1.0 - nc.inter_link_bytes() as f64 / base.inter_link_bytes() as f64)
    );
    println!(
        "link utilization     {:>9.1}%    {:>9.1}%",
        100.0 * base.inter_utilization(),
        100.0 * nc.inter_utilization()
    );
    println!(
        "avg remote latency   {:>10.0}    {:>10.0}   (cycles, inter-cluster reads)",
        base.inter_read_latency(),
        nc.inter_read_latency()
    );
    println!(
        "flits stitched away  {:>10}    {:>9.1}%",
        "-",
        100.0 * nc.stitched_fraction()
    );
    println!(
        "responses trimmed    {:>10}    {:>10}",
        "-",
        nc.metrics.counter("total.trim.trimmed")
    );
}
