//! Multi-kernel execution: a data-parallel DNN training loop where every
//! step is its own kernel launch separated by a global kernel barrier —
//! the launch structure of §2.2. Later steps run on warm TLBs and caches,
//! and the per-step gradient exchange keeps the inter-cluster links busy,
//! so NetCrafter's benefit persists across steps.
//!
//! Also demonstrates the engine's message tracer: the last deliveries of
//! the run are dumped at the end.
//!
//! ```text
//! cargo run --release --example training_loop
//! ```

use netcrafter::multigpu::{System, SystemVariant};
use netcrafter::proto::SystemConfig;
use netcrafter::workloads::{Scale, Workload};

const STEPS: usize = 4;

fn run(variant: SystemVariant, trace: bool) -> (u64, Vec<(String, u64)>, Vec<String>) {
    let cfg = variant.apply(SystemConfig::small(8));
    // One kernel per training step; all steps touch the same buffers, so
    // placement and translations persist across the barriers.
    let kernels: Vec<_> = (0..STEPS)
        .map(|step| {
            let mut k = Workload::Vgg16.generate(&Scale::small(), cfg.total_gpus(), 7);
            k.name = format!("vgg16-step{step}");
            k
        })
        .collect();
    let mut sys = System::build_multi(cfg, &kernels);
    if trace {
        sys.engine.enable_trace(12);
    }
    let total = sys.run_all(50_000_000);
    let dump = if trace {
        sys.engine.dump_trace()
    } else {
        Vec::new()
    };
    (total, sys.kernel_cycles.clone(), dump)
}

fn main() {
    let (base_total, base_steps, _) = run(SystemVariant::Baseline, false);
    let (nc_total, nc_steps, trace) = run(SystemVariant::NetCrafter, true);

    println!("VGG16 data-parallel training, {STEPS} steps (kernel barriers between):\n");
    println!("{:<18} {:>12} {:>12}", "step", "baseline", "netcrafter");
    for (b, n) in base_steps.iter().zip(&nc_steps) {
        println!("{:<18} {:>12} {:>12}", b.0, b.1, n.1);
    }
    println!("{:<18} {:>12} {:>12}", "TOTAL", base_total, nc_total);
    println!(
        "\ncold-start effect: step 0 vs steady-state step (baseline): {} vs {} cycles",
        base_steps[0].1,
        base_steps.last().unwrap().1
    );
    println!(
        "NetCrafter end-to-end speedup: {:.2}x",
        base_total as f64 / nc_total as f64
    );

    println!(
        "\nlast {} message deliveries of the NetCrafter run:",
        trace.len()
    );
    for line in trace {
        println!("  {line}");
    }
}
