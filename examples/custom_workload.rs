//! Bring your own kernel: drive the simulator with a hand-built workload
//! through the public API — the path a downstream user takes to study
//! their own application's traffic on a non-uniform multi-GPU node.
//!
//! The example models a halo-exchange stencil: each CTA sweeps its own
//! tile (local after LASP placement) and reads one-line halos from the
//! neighbouring tiles, some of which land on GPUs in the other cluster.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use netcrafter::multigpu::{System, SystemVariant};
use netcrafter::proto::access::{CoalescedAccess, WavefrontOp, WavefrontTrace};
use netcrafter::proto::kernel::{AccessPattern, BufferSpec, CtaSpec, KernelSpec};
use netcrafter::proto::{CtaId, SystemConfig, VAddr, WavefrontId, PAGE_BYTES};

/// Builds the stencil kernel: `n_ctas` tiles over one grid buffer.
fn stencil_kernel(n_ctas: u32, tile_pages: u64, iterations: u32) -> KernelSpec {
    let base = 0x4000_0000u64;
    let total_pages = n_ctas as u64 * tile_pages;
    let grid = BufferSpec {
        name: "grid".into(),
        base: VAddr(base),
        bytes: total_pages * PAGE_BYTES,
        pattern: AccessPattern::Adjacent, // LASP block-partitions the tiles
    };
    let tile_bytes = tile_pages * PAGE_BYTES;
    let lines_per_tile = tile_bytes / 64;

    let mut ctas = Vec::new();
    let mut wf_id = 0u32;
    for c in 0..n_ctas {
        let tile_base = base + c as u64 * tile_bytes;
        let left = base + (c + n_ctas - 1) as u64 % n_ctas as u64 * tile_bytes;
        let right = base + (c as u64 + 1) % n_ctas as u64 * tile_bytes;
        let mut waves = Vec::new();
        for w in 0..4u32 {
            let mut ops = Vec::new();
            for it in 0..iterations {
                // Sweep a stripe of the local tile.
                for i in 0..8u64 {
                    let line = (w as u64 * 8 + i + it as u64 * 32) % lines_per_tile;
                    ops.push(WavefrontOp::Mem(CoalescedAccess::read(
                        VAddr(tile_base + line * 64),
                        64,
                    )));
                    ops.push(WavefrontOp::Compute(6));
                    ops.push(WavefrontOp::Mem(CoalescedAccess::write(
                        VAddr(tile_base + line * 64),
                        64,
                    )));
                }
                // Halo reads from both neighbours: small, trim-friendly.
                for (nb, off) in [(left, 0u64), (right, lines_per_tile - 1)] {
                    ops.push(WavefrontOp::Mem(CoalescedAccess::read(
                        VAddr(nb + off * 64 + (w as u64 * 8) % 48),
                        8,
                    )));
                }
            }
            waves.push(WavefrontTrace {
                id: WavefrontId(wf_id),
                cta: CtaId(c),
                ops,
            });
            wf_id += 1;
        }
        ctas.push(CtaSpec {
            id: CtaId(c),
            waves,
            home_hint: None,
        });
    }
    KernelSpec {
        name: "stencil".into(),
        ctas,
        buffers: vec![grid],
    }
}

fn main() {
    let kernel = stencil_kernel(32, 8, 12);
    println!(
        "stencil kernel: {} CTAs, {} wavefronts, {} memory ops\n",
        kernel.ctas.len(),
        kernel.total_waves(),
        kernel.total_mem_ops()
    );

    for variant in [SystemVariant::Baseline, SystemVariant::NetCrafter] {
        let cfg = variant.apply(SystemConfig::small(8));
        let mut sys = System::build(cfg, &kernel);
        let cycles = sys.run(100_000_000);
        let m = sys.harvest();
        println!("{:<12}: {cycles} cycles", variant.label());
        println!(
            "              inter-cluster flits {}, trimmed responses {}, stitched-away flits {}",
            m.counter("net.inter.flits"),
            m.counter("total.trim.trimmed"),
            m.counter("net.inter.cq.absorbed"),
        );
    }
    println!("\nHalo reads are 8-byte accesses that cross clusters at the tile seams:");
    println!("exactly the traffic Trimming and Stitching reclaim.");
}
