//! Traffic analysis: reproduces the paper's motivating observations
//! (§3) for any workload — flit padding (Observation 1), partial
//! cache-line use (Observation 2), and the size and criticality of
//! page-table-walk traffic (Observations 3–4).
//!
//! ```text
//! cargo run --release --example traffic_analysis [WORKLOAD]
//! ```

use netcrafter::multigpu::{Experiment, SystemVariant};
use netcrafter::workloads::{Scale, Workload};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "SPMV".into());
    let workload = Workload::ALL
        .into_iter()
        .find(|w| w.abbrev().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name:?}; one of:");
            for w in Workload::ALL {
                eprintln!("  {w}");
            }
            std::process::exit(2);
        });

    println!(
        "Analyzing {workload} ({}) on the baseline node …\n",
        workload.description()
    );
    let r = Experiment::new(workload, SystemVariant::Baseline)
        .with_scale(Scale::small())
        .run();

    println!("== Observation 1: flit padding on the inter-cluster link ==");
    for pct in [0u32, 25, 50, 75] {
        println!(
            "  {pct:>2}% padded flits : {:>5.1}%",
            100.0 * r.padding_fraction(pct)
        );
    }
    println!(
        "  -> {:.0}% of flits carry 25% or 75% useless bytes (paper avg: 42%)\n",
        100.0 * (r.padding_fraction(25) + r.padding_fraction(75))
    );

    println!("== Observation 2: cache-line bytes actually needed (inter-cluster reads) ==");
    let f = r.fig7_fractions();
    for (i, frac) in f.iter().enumerate() {
        println!(
            "  <= {:>2} bytes      : {:>5.1}%",
            (i + 1) * 16,
            100.0 * frac
        );
    }
    println!();

    println!("== Observations 3-4: PTW traffic is small but critical ==");
    println!(
        "  PTW share of inter-cluster bytes : {:.1}% (paper avg: 13%)",
        100.0 * r.ptw_byte_share()
    );
    println!(
        "  page-table walks                 : {}",
        r.metrics.counter("total.gmmu.walks")
    );
    println!(
        "  remote PTE reads                 : {}",
        r.metrics.counter("total.gmmu.remote_pt_reads")
    );
    let walk = r.metrics.latency("total.gmmu.walk_latency");
    println!(
        "  avg walk latency                 : {:.0} cycles\n",
        walk.mean()
    );

    println!("== Where the traffic goes ==");
    println!(
        "  inter-cluster link utilization   : {:.1}%",
        100.0 * r.inter_utilization()
    );
    for kind in [
        "Read_Req",
        "Write_Req",
        "Page_Table_Req",
        "Read_Rsp",
        "Write_Rsp",
        "Page_Table_Rsp",
    ] {
        println!(
            "  {:<16} packets sent    : {}",
            kind.replace('_', " "),
            r.metrics.counter(&format!("total.rdma.out.{kind}"))
        );
    }
    println!(
        "\nexecution time: {} cycles  ({} total instructions)",
        r.exec_cycles,
        r.metrics.counter("total.cu.instructions")
    );
}
