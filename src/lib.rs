//! # NetCrafter
//!
//! A from-scratch Rust reproduction of *NetCrafter: Tailoring Network
//! Traffic for Non-Uniform Bandwidth Multi-GPU Systems* (ISCA 2025),
//! including the full cycle-level multi-GPU simulation substrate the paper
//! evaluates on.
//!
//! This facade crate re-exports the workspace crates under stable module
//! names; see each module for its documentation:
//!
//! * [`proto`] — domain types: packets, flits, configuration, metrics.
//! * [`sim`] — the deterministic cycle-level engine.
//! * [`net`] — switches, links, topology, flit segmentation.
//! * [`mem`] — sectored L1, banked shared L2, DRAM.
//! * [`vm`] — TLBs, GMMU, page tables, page-table walkers.
//! * [`core`] — the NetCrafter controller (Stitching, Trimming, Sequencing).
//! * [`gpu`] — compute units, RDMA engines, LASP scheduling/placement.
//! * [`multigpu`] — whole-node assembly and the measurement harness.
//! * [`workloads`] — the 15 evaluated workloads as trace generators.
//!
//! ## Quickstart
//!
//! ```
//! use netcrafter::multigpu::{Experiment, SystemVariant};
//! use netcrafter::workloads::Workload;
//!
//! // Run a small GUPS kernel on the baseline non-uniform node and on the
//! // same node with NetCrafter enabled, then compare the bytes that
//! // crossed the lower-bandwidth inter-cluster links.
//! let base = Experiment::quick(Workload::Gups, SystemVariant::Baseline).run();
//! let nc = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter).run();
//! assert!(nc.inter_link_bytes() < base.inter_link_bytes());
//! ```

pub use netcrafter_core as core;
pub use netcrafter_gpu as gpu;
pub use netcrafter_mem as mem;
pub use netcrafter_multigpu as multigpu;
pub use netcrafter_net as net;
pub use netcrafter_proto as proto;
pub use netcrafter_sim as sim;
pub use netcrafter_vm as vm;
pub use netcrafter_workloads as workloads;
