//! Property-based tests over the core data structures: flit
//! segmentation/reassembly, stitching, the Cluster Queue, address math,
//! the tag store and the page table.

use proptest::prelude::*;

use netcrafter::core::ClusterQueue;
use netcrafter::gpu::{Coalescer, LaneAccess};
use netcrafter::proto::AccessKind;
use netcrafter::mem::TagStore;
use netcrafter::net::{EgressQueue, Reassembler, Segmenter};
use netcrafter::proto::{
    AccessId, GpuId, LineAddr, LineMask, MemReq, NetCrafterConfig, NodeId, Origin, Packet,
    PacketId, PacketKind, PacketPayload, TrafficClass, VAddr, ALL_PACKET_KINDS,
};
use netcrafter::vm::PageTable;

fn arb_kind() -> impl Strategy<Value = PacketKind> {
    (0usize..6).prop_map(|i| ALL_PACKET_KINDS[i])
}

fn packet(id: u64, kind: PacketKind, dst: u16) -> Packet {
    let payload = match kind {
        PacketKind::WriteReq | PacketKind::ReadRsp => 64,
        _ => 0,
    };
    Packet {
        id: PacketId(id),
        kind,
        src: NodeId(0),
        dst: NodeId(dst),
        payload_bytes: payload,
        trim: None,
        inner: PacketPayload::Req(MemReq {
            access: AccessId(id),
            line: LineAddr(id * 64),
            write: kind == PacketKind::WriteReq,
            mask: LineMask::span(0, 8),
            sectors: 0b1111,
            class: if kind.is_ptw() { TrafficClass::Ptw } else { TrafficClass::Data },
            requester: GpuId(0),
            owner: GpuId(2),
            origin: Origin::Cu(0),
        }),
    }
}

proptest! {
    /// Any interleaving of any packet mix reassembles every packet
    /// exactly once, at both 8 B and 16 B flit sizes.
    #[test]
    fn segment_reassemble_round_trips(
        kinds in prop::collection::vec(arb_kind(), 1..20),
        flit_bytes in prop::sample::select(vec![8u32, 16]),
        lace in 1usize..5,
    ) {
        let seg = Segmenter::new(flit_bytes);
        let packets: Vec<Packet> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| packet(i as u64, k, 3))
            .collect();
        // Round-robin interleave the packets' flit streams.
        let mut streams: Vec<_> = packets.iter().map(|p| seg.segment(p.clone()).into_iter()).collect();
        let mut flits = Vec::new();
        let mut exhausted = false;
        while !exhausted {
            exhausted = true;
            for s in streams.iter_mut() {
                for _ in 0..lace {
                    if let Some(f) = s.next() {
                        flits.push(f);
                        exhausted = false;
                    }
                }
            }
        }
        let mut reasm = Reassembler::new();
        let mut done = Vec::new();
        for f in flits {
            done.extend(reasm.accept(f));
        }
        prop_assert_eq!(done.len(), packets.len());
        prop_assert_eq!(reasm.in_flight(), 0);
        let mut got: Vec<u64> = done.iter().map(|p| p.id.raw()).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..packets.len() as u64).collect();
        prop_assert_eq!(got, want);
    }

    /// The Cluster Queue conserves every packet byte through any mix of
    /// stitching, pooling and sequencing: total chunk bytes out equals
    /// total chunk bytes in, and every packet id reappears.
    #[test]
    fn cluster_queue_conserves_chunks(
        kinds in prop::collection::vec(arb_kind(), 1..30),
        stitching in any::<bool>(),
        window in prop::sample::select(vec![0u32, 16, 32]),
        sequencing in any::<bool>(),
        selective in any::<bool>(),
        push_gap in 0u64..4,
    ) {
        let cfg = NetCrafterConfig {
            stitching,
            pooling_window: window,
            selective_pooling: selective,
            trimming: false,
            sequencing,
            prioritize_data_instead: false,
            stitch_search_depth: 16,
        };
        let seg = Segmenter::new(16);
        let mut q = ClusterQueue::new(cfg, NodeId(99));
        let mut now = 0u64;
        let mut pushed_bytes = 0u64;
        let mut pushed_chunks = 0usize;
        for (i, &k) in kinds.iter().enumerate() {
            for f in seg.segment(packet(i as u64, k, 3)) {
                pushed_bytes += f.used_bytes() as u64;
                pushed_chunks += f.chunks.len();
                q.push(f, now);
                now += push_gap;
            }
        }
        let mut popped_bytes = 0u64;
        let mut popped_chunks = 0usize;
        let mut ids = std::collections::BTreeSet::new();
        let mut guard = 0;
        while q.len() > 0 {
            now += 1;
            guard += 1;
            prop_assert!(guard < 1_000_000, "queue must drain");
            if let Some(f) = q.pop(now) {
                prop_assert!(f.used_bytes() <= f.capacity);
                for c in &f.chunks {
                    // Metadata bytes are protocol overhead, not payload.
                    popped_bytes += c.bytes as u64;
                    ids.insert(c.packet.raw());
                }
                popped_chunks += f.chunks.len();
            }
        }
        prop_assert_eq!(popped_bytes, pushed_bytes);
        prop_assert_eq!(popped_chunks, pushed_chunks);
        prop_assert_eq!(ids.len(), kinds.len());
    }

    /// LineMask sector math is self-consistent for every span and
    /// granularity.
    #[test]
    fn line_mask_sectors_cover_mask(
        offset in 0u64..64,
        len in 1u64..64,
        granularity in prop::sample::select(vec![4u64, 8, 16]),
    ) {
        let mask = LineMask::span(offset, len);
        let sectors = mask.sectors(granularity);
        prop_assert!(sectors != 0);
        // Every covered byte falls in a selected sector.
        for byte in 0..64u64 {
            let in_mask = mask.0 & (1 << byte) != 0;
            let sector_selected = sectors & (1 << (byte / granularity)) != 0;
            if in_mask {
                prop_assert!(sector_selected);
            }
        }
        // fits_one_sector agrees with popcount.
        prop_assert_eq!(
            mask.fits_one_sector(granularity),
            sectors.count_ones() == 1
        );
        if let Some(first) = mask.first_sector(granularity) {
            prop_assert!(sectors & (1 << first) != 0);
        }
    }

    /// TagStore never exceeds its geometry and lookups always find what
    /// was just inserted.
    #[test]
    fn tagstore_respects_geometry(
        keys in prop::collection::vec(0u64..256, 1..100),
        sets in 1usize..8,
        ways in 1usize..4,
    ) {
        let mut ts: TagStore<u64> = TagStore::new(sets, ways);
        for (i, &k) in keys.iter().enumerate() {
            ts.insert(k, k * 10, i as u64);
            prop_assert_eq!(ts.peek(k), Some(&(k * 10)), "just-inserted key resident");
            prop_assert!(ts.len() <= sets * ways, "capacity respected");
        }
    }

    /// Page-table walks always resolve to the functional translation and
    /// shrink monotonically with the PWC start level.
    #[test]
    fn page_table_walks_consistent(
        vpns in prop::collection::btree_set(0u64..(1 << 20), 1..40),
        owners in prop::collection::vec(0u16..4, 40),
    ) {
        let mut pt = PageTable::new(1 << 24);
        for (i, &vpn) in vpns.iter().enumerate() {
            pt.map(vpn, 1000 + i as u64, GpuId(owners[i % owners.len()]));
        }
        for &vpn in &vpns {
            prop_assert!(pt.translate(vpn).is_some());
            let full = pt.walk_reads(vpn, 1);
            prop_assert_eq!(full.len(), 4);
            for start in 2..=4u8 {
                let partial = pt.walk_reads(vpn, start);
                prop_assert_eq!(partial.len(), 5 - start as usize);
                // The partial walk is a suffix of the full walk.
                prop_assert_eq!(&full[(start - 1) as usize..], &partial[..]);
            }
        }
    }

    /// The coalescer covers every lane byte exactly, never splits a line
    /// into two requests, and is order-insensitive.
    #[test]
    fn coalescer_covers_all_lanes(
        lanes in prop::collection::vec((0u64..4096, prop::sample::select(vec![1u8, 2, 4, 8, 16])), 1..64),
        kind in prop::sample::select(vec![AccessKind::Read, AccessKind::Write]),
    ) {
        let lanes: Vec<LaneAccess> = lanes
            .into_iter()
            .map(|(slot, bytes)| {
                // Align within the line so elements never straddle.
                let addr = slot * 16 + (16 - bytes as u64).min(0);
                LaneAccess::new(addr, bytes)
            })
            .collect();
        let mut c = Coalescer::new();
        let reqs = c.coalesce(&lanes, kind);
        // One request per distinct line, sorted ascending.
        let mut lines: Vec<u64> = lanes.iter().map(|l| l.addr.0 / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assert_eq!(reqs.len(), lines.len());
        for w in reqs.windows(2) {
            prop_assert!(w[0].vaddr.0 < w[1].vaddr.0);
        }
        // Every lane byte is covered by its line's request mask.
        for lane in &lanes {
            let line_base = lane.addr.0 / 64 * 64;
            let req = reqs.iter().find(|r| r.vaddr.0 == line_base).expect("line present");
            let lane_mask = LineMask::span(lane.addr.0 % 64, lane.bytes as u64);
            prop_assert!(lane_mask.subset_of(req.mask));
            prop_assert_eq!(req.kind, kind);
        }
        // Reversed lane order produces the identical requests.
        let mut rev: Vec<LaneAccess> = lanes.clone();
        rev.reverse();
        let mut c2 = Coalescer::new();
        prop_assert_eq!(c2.coalesce(&rev, kind), reqs);
    }

    /// VAddr page-table indices always reconstruct the VPN.
    #[test]
    fn pt_indices_reconstruct_vpn(vpn in 0u64..(1u64 << 36)) {
        let va = VAddr(vpn * 4096);
        let mut rebuilt = 0u64;
        for level in 1..=4u8 {
            rebuilt = (rebuilt << 9) | va.pt_index(level);
        }
        prop_assert_eq!(rebuilt, vpn);
    }
}
