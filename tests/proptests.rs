//! Randomized property tests over the core data structures: flit
//! segmentation/reassembly, stitching, the Cluster Queue, address math,
//! the tag store and the page table.
//!
//! Each test draws a few hundred random cases from the in-tree
//! [`SplitMix64`] generator (fixed seeds, so failures reproduce exactly)
//! and asserts the same invariants the original proptest suite checked.

use std::collections::BTreeSet;

use netcrafter::core::{ClusterQueue, SplitMix64};
use netcrafter::gpu::{Coalescer, LaneAccess};
use netcrafter::mem::TagStore;
use netcrafter::net::{EgressQueue, Reassembler, Segmenter};
use netcrafter::proto::AccessKind;
use netcrafter::proto::{
    AccessId, GpuId, LineAddr, LineMask, MemReq, NetCrafterConfig, NodeId, Origin, Packet,
    PacketId, PacketKind, PacketPayload, TrafficClass, VAddr, ALL_PACKET_KINDS,
};
use netcrafter::vm::PageTable;

const CASES: usize = 256;

fn packet(id: u64, kind: PacketKind, dst: u16) -> Packet {
    let payload = match kind {
        PacketKind::WriteReq | PacketKind::ReadRsp => 64,
        _ => 0,
    };
    Packet {
        id: PacketId(id),
        kind,
        src: NodeId(0),
        dst: NodeId(dst),
        payload_bytes: payload,
        trim: None,
        inner: PacketPayload::Req(MemReq {
            access: AccessId(id),
            line: LineAddr(id * 64),
            write: kind == PacketKind::WriteReq,
            mask: LineMask::span(0, 8),
            sectors: 0b1111,
            class: if kind.is_ptw() {
                TrafficClass::Ptw
            } else {
                TrafficClass::Data
            },
            requester: GpuId(0),
            owner: GpuId(2),
            origin: Origin::Cu(0),
        }),
    }
}

fn rand_kinds(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<PacketKind> {
    let n = rng.range(lo as u64, hi as u64) as usize;
    (0..n).map(|_| *rng.pick(&ALL_PACKET_KINDS)).collect()
}

/// Any interleaving of any packet mix reassembles every packet exactly
/// once, at both 8 B and 16 B flit sizes.
#[test]
fn segment_reassemble_round_trips() {
    let mut rng = SplitMix64::new(0x5e91);
    for _ in 0..CASES {
        let kinds = rand_kinds(&mut rng, 1, 19);
        let flit_bytes = *rng.pick(&[8u32, 16]);
        let lace = rng.range(1, 4) as usize;

        let seg = Segmenter::new(flit_bytes);
        let packets: Vec<Packet> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| packet(i as u64, k, 3))
            .collect();
        // Round-robin interleave the packets' flit streams.
        let mut streams: Vec<_> = packets
            .iter()
            .map(|p| seg.segment(p.clone()).into_iter())
            .collect();
        let mut flits = Vec::new();
        let mut exhausted = false;
        while !exhausted {
            exhausted = true;
            for s in &mut streams {
                for _ in 0..lace {
                    if let Some(f) = s.next() {
                        flits.push(f);
                        exhausted = false;
                    }
                }
            }
        }
        let mut reasm = Reassembler::new();
        let mut done = Vec::new();
        for f in flits {
            done.extend(reasm.accept(f));
        }
        assert_eq!(done.len(), packets.len());
        assert_eq!(reasm.in_flight(), 0);
        let mut got: Vec<u64> = done.iter().map(|p| p.id.raw()).collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..packets.len() as u64).collect();
        assert_eq!(got, want);
    }
}

/// The Cluster Queue conserves every packet byte through any mix of
/// stitching, pooling and sequencing: total chunk bytes out equals total
/// chunk bytes in, and every packet id reappears.
#[test]
fn cluster_queue_conserves_chunks() {
    let mut rng = SplitMix64::new(0xc1a5);
    for _ in 0..CASES {
        let kinds = rand_kinds(&mut rng, 1, 29);
        let cfg = NetCrafterConfig {
            stitching: rng.flip(),
            pooling_window: *rng.pick(&[0u32, 16, 32]),
            selective_pooling: rng.flip(),
            trimming: false,
            sequencing: rng.flip(),
            prioritize_data_instead: false,
            stitch_search_depth: 16,
            warmup_cycles: 0,
        };
        let push_gap = rng.below(4);

        let seg = Segmenter::new(16);
        let mut q = ClusterQueue::new(cfg, NodeId(99));
        let mut now = 0u64;
        let mut pushed_bytes = 0u64;
        let mut pushed_chunks = 0usize;
        for (i, &k) in kinds.iter().enumerate() {
            for f in seg.segment(packet(i as u64, k, 3)) {
                pushed_bytes += f.used_bytes() as u64;
                pushed_chunks += f.chunks.len();
                q.push(f, now);
                now += push_gap;
            }
        }
        let mut popped_bytes = 0u64;
        let mut popped_chunks = 0usize;
        let mut ids = BTreeSet::new();
        let mut guard = 0;
        while q.len() > 0 {
            now += 1;
            guard += 1;
            assert!(guard < 1_000_000, "queue must drain");
            if let Some(f) = q.pop(now) {
                assert!(f.used_bytes() <= f.capacity);
                for c in &f.chunks {
                    // Metadata bytes are protocol overhead, not payload.
                    popped_bytes += c.bytes as u64;
                    ids.insert(c.packet.raw());
                }
                popped_chunks += f.chunks.len();
            }
        }
        assert_eq!(popped_bytes, pushed_bytes);
        assert_eq!(popped_chunks, pushed_chunks);
        assert_eq!(ids.len(), kinds.len());
    }
}

/// LineMask sector math is self-consistent for every span and
/// granularity.
#[test]
fn line_mask_sectors_cover_mask() {
    let mut rng = SplitMix64::new(0x11a5);
    for _ in 0..CASES {
        let offset = rng.below(64);
        let len = rng.range(1, 63);
        let granularity = *rng.pick(&[4u64, 8, 16]);

        let mask = LineMask::span(offset, len);
        let sectors = mask.sectors(granularity);
        assert!(sectors != 0);
        // Every covered byte falls in a selected sector.
        for byte in 0..64u64 {
            let in_mask = mask.0 & (1 << byte) != 0;
            let sector_selected = sectors & (1 << (byte / granularity)) != 0;
            if in_mask {
                assert!(sector_selected);
            }
        }
        // fits_one_sector agrees with popcount.
        assert_eq!(mask.fits_one_sector(granularity), sectors.count_ones() == 1);
        if let Some(first) = mask.first_sector(granularity) {
            assert!(sectors & (1 << first) != 0);
        }
    }
}

/// TagStore never exceeds its geometry and lookups always find what was
/// just inserted.
#[test]
fn tagstore_respects_geometry() {
    let mut rng = SplitMix64::new(0x7a65);
    for _ in 0..CASES {
        let n_keys = rng.range(1, 99) as usize;
        let keys: Vec<u64> = (0..n_keys).map(|_| rng.below(256)).collect();
        let sets = rng.range(1, 7) as usize;
        let ways = rng.range(1, 3) as usize;

        let mut ts: TagStore<u64> = TagStore::new(sets, ways);
        for (i, &k) in keys.iter().enumerate() {
            ts.insert(k, k * 10, i as u64);
            assert_eq!(ts.peek(k), Some(&(k * 10)), "just-inserted key resident");
            assert!(ts.len() <= sets * ways, "capacity respected");
        }
    }
}

/// Page-table walks always resolve to the functional translation and
/// shrink monotonically with the PWC start level.
#[test]
fn page_table_walks_consistent() {
    let mut rng = SplitMix64::new(0x9a6e);
    for _ in 0..64 {
        let n_vpns = rng.range(1, 39) as usize;
        let vpns: BTreeSet<u64> = (0..n_vpns).map(|_| rng.below(1 << 20)).collect();
        let owners: Vec<u16> = (0..40).map(|_| rng.below(4) as u16).collect();

        let mut pt = PageTable::new(1 << 24);
        for (i, &vpn) in vpns.iter().enumerate() {
            pt.map(vpn, 1000 + i as u64, GpuId(owners[i % owners.len()]));
        }
        for &vpn in &vpns {
            assert!(pt.translate(vpn).is_some());
            let full = pt.walk_reads(vpn, 1);
            assert_eq!(full.len(), 4);
            for start in 2..=4u8 {
                let partial = pt.walk_reads(vpn, start);
                assert_eq!(partial.len(), 5 - start as usize);
                // The partial walk is a suffix of the full walk.
                assert_eq!(&full[(start - 1) as usize..], &partial[..]);
            }
        }
    }
}

/// The coalescer covers every lane byte exactly, never splits a line
/// into two requests, and is order-insensitive.
#[test]
fn coalescer_covers_all_lanes() {
    let mut rng = SplitMix64::new(0xc0a1);
    for _ in 0..CASES {
        let n_lanes = rng.range(1, 63) as usize;
        let lanes: Vec<LaneAccess> = (0..n_lanes)
            .map(|_| {
                let slot = rng.below(4096);
                let bytes = *rng.pick(&[1u8, 2, 4, 8, 16]);
                // Align within the line so elements never straddle.
                LaneAccess::new(slot * 16, bytes)
            })
            .collect();
        let kind = if rng.flip() {
            AccessKind::Read
        } else {
            AccessKind::Write
        };

        let mut c = Coalescer::new();
        let reqs = c.coalesce(&lanes, kind);
        // One request per distinct line, sorted ascending.
        let mut lines: Vec<u64> = lanes.iter().map(|l| l.addr.0 / 64).collect();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(reqs.len(), lines.len());
        for w in reqs.windows(2) {
            assert!(w[0].vaddr.0 < w[1].vaddr.0);
        }
        // Every lane byte is covered by its line's request mask.
        for lane in &lanes {
            let line_base = lane.addr.0 / 64 * 64;
            let req = reqs
                .iter()
                .find(|r| r.vaddr.0 == line_base)
                .expect("line present");
            let lane_mask = LineMask::span(lane.addr.0 % 64, lane.bytes as u64);
            assert!(lane_mask.subset_of(req.mask));
            assert_eq!(req.kind, kind);
        }
        // Reversed lane order produces the identical requests.
        let mut rev: Vec<LaneAccess> = lanes.clone();
        rev.reverse();
        let mut c2 = Coalescer::new();
        assert_eq!(c2.coalesce(&rev, kind), reqs);
    }
}

/// VAddr page-table indices always reconstruct the VPN.
#[test]
fn pt_indices_reconstruct_vpn() {
    let mut rng = SplitMix64::new(0x1d42);
    for _ in 0..CASES {
        let vpn = rng.below(1u64 << 36);
        let va = VAddr(vpn * 4096);
        let mut rebuilt = 0u64;
        for level in 1..=4u8 {
            rebuilt = (rebuilt << 9) | va.pt_index(level);
        }
        assert_eq!(rebuilt, vpn);
    }
}
