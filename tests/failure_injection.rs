//! Failure injection: the simulator's protocol assertions must catch
//! violated invariants loudly instead of silently corrupting results.

use netcrafter::net::{EgressQueue, FifoQueue, Switch, SwitchPortSpec};
use netcrafter::proto::{Chunk, Flit, Message, NodeId, PacketId, PacketKind, TrafficClass};
use netcrafter::sim::{Component, ComponentId, Ctx, EngineBuilder};
use std::collections::BTreeMap;

fn flit(dst: u16) -> Flit {
    Flit::single(
        16,
        Chunk {
            packet: PacketId(1),
            kind: PacketKind::ReadReq,
            bytes: 12,
            meta_bytes: 0,
            has_header: true,
            is_tail: true,
            seq: 0,
            dst: NodeId(dst),
            class: TrafficClass::Data,
            packet_info: None,
        },
    )
}

struct Blaster {
    switch: ComponentId,
    count: u32,
    dst: u16,
}
impl Component for Blaster {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        for _ in 0..self.count {
            ctx.send(
                self.switch,
                Message::Flit {
                    flit: flit(self.dst),
                    from: NodeId(0),
                    link: 0,
                },
                1,
            );
        }
        self.count = 0;
        while ctx.recv().is_some() {}
    }
    fn busy(&self) -> bool {
        self.count > 0
    }
    fn name(&self) -> &str {
        "blaster"
    }
}

fn switch_with_input_capacity(peer: ComponentId, cap: usize) -> Switch {
    Switch::new(
        NodeId(2),
        "sw",
        30,
        vec![SwitchPortSpec {
            peer,
            peer_node: NodeId(0),
            peer_port: 0,
            flits_per_cycle: 8.0,
            initial_credits: 1024,
            input_capacity: cap,
            output_capacity: 1024,
            queue: Box::new(FifoQueue::new()),
            wire_latency: 1,
            is_inter: false,
        }],
        BTreeMap::from([(NodeId(0), 0)]),
    )
}

/// A sender that ignores the credit protocol and floods a tiny input
/// buffer must trip the switch's overflow assertion — the failure is
/// detected, not absorbed.
#[test]
#[should_panic(expected = "credit protocol violated")]
fn credit_violation_is_detected() {
    let mut b = EngineBuilder::new();
    let blaster = b.reserve();
    let sw = b.reserve();
    b.install(
        blaster,
        Box::new(Blaster {
            switch: sw,
            count: 8,
            dst: 0,
        }),
    );
    b.install(sw, Box::new(switch_with_input_capacity(blaster, 2)));
    let mut e = b.build();
    for _ in 0..40 {
        e.step();
    }
}

/// A flit addressed to a node no route covers must panic with the
/// offending destination, not vanish.
#[test]
#[should_panic(expected = "no route")]
fn unroutable_flit_is_detected() {
    let mut b = EngineBuilder::new();
    let blaster = b.reserve();
    let sw = b.reserve();
    b.install(
        blaster,
        Box::new(Blaster {
            switch: sw,
            count: 1,
            dst: 77,
        }),
    );
    b.install(sw, Box::new(switch_with_input_capacity(blaster, 1024)));
    let mut e = b.build();
    for _ in 0..40 {
        e.step();
    }
}

/// Oversized stitch attempts are rejected by construction.
#[test]
fn oversized_stitch_rejected() {
    let parent = flit(3); // 12 used, 4 empty
    let candidate = flit(3); // needs 12
    assert_eq!(parent.stitch_cost(&candidate), None);
}

/// The cluster queue never emits a flit larger than its capacity, even
/// under adversarial push/pop interleavings (complements the proptest).
#[test]
fn cluster_queue_never_overflows_capacity() {
    use netcrafter::core::ClusterQueue;
    use netcrafter::proto::NetCrafterConfig;
    let mut q = ClusterQueue::new(NetCrafterConfig::full(), NodeId(9));
    for i in 0..50u64 {
        let mut c = Chunk {
            packet: PacketId(i),
            kind: if i % 2 == 0 {
                PacketKind::WriteRsp
            } else {
                PacketKind::ReadRsp
            },
            bytes: 4,
            meta_bytes: 0,
            has_header: i % 2 == 0,
            is_tail: true,
            seq: if i % 2 == 0 { 0 } else { 4 },
            dst: NodeId(3),
            class: TrafficClass::Data,
            packet_info: None,
        };
        c.seq = if c.has_header { 0 } else { 4 };
        q.push(Flit::single(16, c), i);
    }
    let mut now = 50;
    while q.len() > 0 {
        now += 1;
        if let Some(f) = q.pop(now) {
            assert!(f.used_bytes() <= f.capacity);
        }
        assert!(now < 10_000, "must drain");
    }
}
