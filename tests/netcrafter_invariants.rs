//! Behavioural invariants of the NetCrafter mechanisms, checked on real
//! end-to-end runs.

use netcrafter::multigpu::{Experiment, SystemVariant};
use netcrafter::workloads::{Scale, Workload};

/// Stitching may only ever reduce the flits on the lower-bandwidth
/// links; correctness (completed mem ops) is untouched.
#[test]
fn stitching_reduces_inter_flits() {
    for w in [Workload::Gups, Workload::Spmv, Workload::Mis] {
        let base = Experiment::quick(w, SystemVariant::Baseline).run();
        let st = Experiment::quick(w, SystemVariant::StitchOnly).run();
        assert_eq!(
            base.metrics.counter("total.cu.mem_ops"),
            st.metrics.counter("total.cu.mem_ops"),
            "{w}: same work"
        );
        assert!(
            st.metrics.counter("net.inter.flits") <= base.metrics.counter("net.inter.flits"),
            "{w}: stitching must not add flits"
        );
        assert!(st.stitched_fraction() > 0.0, "{w}: something stitched");
    }
}

/// Trimming only fires on cross-cluster responses and strictly reduces
/// inter-cluster bytes for sector-friendly workloads.
#[test]
fn trimming_reduces_bytes_for_small_access_workloads() {
    for w in [Workload::Gups, Workload::Spmv] {
        let base = Experiment::quick(w, SystemVariant::Baseline).run();
        let trim = Experiment::quick(w, SystemVariant::TrimOnly).run();
        assert!(trim.metrics.counter("total.trim.trimmed") > 0, "{w}");
        assert!(
            trim.inter_link_bytes() < base.inter_link_bytes(),
            "{w}: trimmed responses shrink inter-cluster traffic"
        );
    }
}

/// Full-line workloads never trim (nothing fits one sector).
#[test]
fn trimming_never_fires_on_full_line_workloads() {
    let trim = Experiment::quick(Workload::Syr2k, SystemVariant::TrimOnly).run();
    assert_eq!(trim.metrics.counter("total.trim.trimmed"), 0);
}

/// The stitched fraction is a proper fraction and stitched parents never
/// exceed popped flits.
#[test]
fn stitch_accounting_is_consistent() {
    let nc = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter)
        .with_scale(Scale::small())
        .run();
    let frac = nc.stitched_fraction();
    assert!((0.0..=1.0).contains(&frac));
    let parents = nc.metrics.counter("net.inter.cq.stitched_parents");
    let popped = nc.metrics.counter("net.inter.cq.popped");
    let absorbed = nc.metrics.counter("net.inter.cq.absorbed");
    assert!(parents <= popped);
    assert!(absorbed >= parents, "each stitched parent absorbed >= 1");
    // Conservation: every pushed flit is either popped on its own or
    // absorbed into a parent.
    let pushed = nc.metrics.counter("net.inter.cq.pushed");
    assert_eq!(pushed, popped + absorbed, "cluster-queue flit conservation");
}

/// Sequencing must not lose or duplicate traffic, and PTW-priority pops
/// actually happen on PTW-heavy workloads.
#[test]
fn sequencing_preserves_traffic() {
    let base = Experiment::quick(Workload::Spmv, SystemVariant::Baseline).run();
    let seq = Experiment::quick(Workload::Spmv, SystemVariant::SeqOnly).run();
    assert_eq!(
        base.metrics.counter("total.rdma.out.Page_Table_Req"),
        seq.metrics.counter("total.rdma.out.Page_Table_Req"),
        "sequencing reorders, never drops"
    );
    assert!(seq.metrics.counter("net.inter.cq.ptw_priority_pops") > 0);
}

/// The sector cache can only increase L1 misses relative to the
/// full-line baseline (same traces, finer fills).
#[test]
fn sector_cache_mpki_at_least_baseline() {
    for w in [Workload::Mis, Workload::Pr, Workload::Gups] {
        let base = Experiment::quick(w, SystemVariant::Baseline).run();
        let sector = Experiment::quick(w, SystemVariant::SectorCache).run();
        assert!(
            sector.l1_mpki() >= base.l1_mpki() - 1e-9,
            "{w}: sector fills cannot reduce misses (base {:.2}, sector {:.2})",
            base.l1_mpki(),
            sector.l1_mpki()
        );
    }
}

/// Trimming's selective sectoring sits between the baseline and the
/// all-trimming sector cache in L1 MPKI (§5.3's headline claim).
#[test]
fn trimming_mpki_between_baseline_and_sector_cache() {
    for w in [Workload::Mis, Workload::Pr] {
        let base = Experiment::quick(w, SystemVariant::Baseline)
            .with_scale(Scale::small())
            .run();
        let trim = Experiment::quick(w, SystemVariant::TrimOnly)
            .with_scale(Scale::small())
            .run();
        let sector = Experiment::quick(w, SystemVariant::SectorCache)
            .with_scale(Scale::small())
            .run();
        assert!(
            base.l1_mpki() <= trim.l1_mpki() + 1e-9,
            "{w}: trimming adds sector misses over baseline"
        );
        assert!(
            trim.l1_mpki() <= sector.l1_mpki() + 1e-9,
            "{w}: selective trimming suffers less than all-trimming \
             (trim {:.2} vs sector {:.2})",
            trim.l1_mpki(),
            sector.l1_mpki()
        );
    }
}

/// PTW traffic exists and stays a minority of inter-cluster bytes on
/// data-heavy workloads (Observation 4).
#[test]
fn ptw_share_is_minor_on_data_heavy_workloads() {
    let r = Experiment::quick(Workload::Gups, SystemVariant::Baseline)
        .with_scale(Scale::small())
        .run();
    let share = r.ptw_byte_share();
    assert!(share > 0.0, "PTW traffic exists");
    assert!(share < 0.5, "PTW is the minority: {share}");
}

/// The ideal uniform-bandwidth configuration bounds NetCrafter: raising
/// physical bandwidth can only help, and NetCrafter cannot beat infinite
/// headroom on a congested workload by more than noise.
#[test]
fn ideal_is_an_upper_bound_under_congestion() {
    let base = Experiment::new(Workload::Spmv, SystemVariant::Baseline).run();
    let ideal = Experiment::new(Workload::Spmv, SystemVariant::Ideal).run();
    let nc = Experiment::new(Workload::Spmv, SystemVariant::NetCrafter).run();
    assert!(ideal.exec_cycles <= base.exec_cycles);
    // NetCrafter recovers part of the ideal gap.
    assert!(nc.exec_cycles <= base.exec_cycles, "NetCrafter helps SPMV");
    assert!(
        nc.exec_cycles as f64 >= ideal.exec_cycles as f64 * 0.95,
        "NetCrafter cannot do better than uniform high bandwidth"
    );
}

/// Flit-size sensitivity: 8 B flits leave less padding to reclaim, so
/// stitching saves a smaller byte fraction (Figure 21's mechanism).
#[test]
fn smaller_flits_reduce_stitching_opportunity() {
    let stitch = SystemVariant::StitchPool {
        window: 32,
        selective: true,
    };
    let e16 = Experiment::new(Workload::Gups, stitch);
    let mut e8 = Experiment::new(Workload::Gups, stitch);
    e8.base_cfg.flit_bytes = 8;
    let r16 = e16.run();
    let r8 = e8.run();
    assert!(
        r8.stitched_fraction() <= r16.stitched_fraction() + 0.02,
        "8B flits stitch less: {:.3} vs {:.3}",
        r8.stitched_fraction(),
        r16.stitched_fraction()
    );
}
