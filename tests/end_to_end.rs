//! End-to-end integration tests: every workload runs to completion on
//! every major system variant, deterministically, with all accesses
//! accounted for.

use netcrafter::multigpu::{Experiment, SystemVariant};
use netcrafter::workloads::{Scale, Workload};

#[test]
fn every_workload_completes_on_baseline() {
    for w in Workload::ALL {
        let r = Experiment::quick(w, SystemVariant::Baseline).run();
        assert!(r.exec_cycles > 0, "{w}");
        assert!(r.metrics.counter("total.cu.mem_ops") > 0, "{w}");
        assert!(r.metrics.counter("total.cu.waves_done") > 0, "{w}");
    }
}

#[test]
fn every_workload_completes_with_netcrafter() {
    for w in Workload::ALL {
        let r = Experiment::quick(w, SystemVariant::NetCrafter).run();
        assert!(r.exec_cycles > 0, "{w}");
        assert!(r.metrics.counter("total.cu.mem_ops") > 0, "{w}");
    }
}

#[test]
fn all_memory_ops_complete_exactly_once() {
    for w in [
        Workload::Gups,
        Workload::Syr2k,
        Workload::Vgg16,
        Workload::Bs,
    ] {
        for v in [
            SystemVariant::Baseline,
            SystemVariant::NetCrafter,
            SystemVariant::SectorCache,
        ] {
            let exp = Experiment::quick(w, v);
            let kernel = exp
                .workload
                .generate(&exp.scale, exp.base_cfg.total_gpus(), exp.seed);
            let r = exp.run();
            assert_eq!(
                r.metrics.counter("total.cu.mem_ops"),
                kernel.total_mem_ops() as u64,
                "{w}/{}: every access issues exactly once",
                v.label()
            );
        }
    }
}

#[test]
fn runs_are_deterministic_across_repeats() {
    for v in [SystemVariant::Baseline, SystemVariant::NetCrafter] {
        let a = Experiment::quick(Workload::Spmv, v).run();
        let b = Experiment::quick(Workload::Spmv, v).run();
        assert_eq!(a.exec_cycles, b.exec_cycles, "{}", v.label());
        assert_eq!(
            a.metrics.counter("net.inter.flits"),
            b.metrics.counter("net.inter.flits"),
            "{}",
            v.label()
        );
        assert_eq!(
            a.metrics.counter("total.l1.misses"),
            b.metrics.counter("total.l1.misses"),
            "{}",
            v.label()
        );
    }
}

#[test]
fn different_seeds_change_random_workloads() {
    let a = Experiment::quick(Workload::Gups, SystemVariant::Baseline)
        .with_seed(1)
        .run();
    let b = Experiment::quick(Workload::Gups, SystemVariant::Baseline)
        .with_seed(2)
        .run();
    // Same amount of work, different addresses -> different timing.
    assert_eq!(
        a.metrics.counter("total.cu.mem_ops"),
        b.metrics.counter("total.cu.mem_ops")
    );
    assert_ne!(a.exec_cycles, b.exec_cycles);
}

#[test]
fn packet_conservation_across_the_network() {
    // Every packet sent by some RDMA engine is received by another:
    // requests and responses pair up, nothing is lost or duplicated.
    let r = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter).run();
    for kind in [
        "Read_Req",
        "Write_Req",
        "Page_Table_Req",
        "Read_Rsp",
        "Write_Rsp",
        "Page_Table_Rsp",
    ] {
        let out = r.metrics.counter(&format!("total.rdma.out.{kind}"));
        let inn = r.metrics.counter(&format!("total.rdma.in.{kind}"));
        assert_eq!(out, inn, "{kind}: sent vs received");
    }
    // Requests and responses match one-to-one per class.
    let req = r.metrics.counter("total.rdma.out.Read_Req");
    let rsp = r.metrics.counter("total.rdma.out.Read_Rsp");
    assert_eq!(req, rsp, "every remote read gets exactly one response");
    let wreq = r.metrics.counter("total.rdma.out.Write_Req");
    let wrsp = r.metrics.counter("total.rdma.out.Write_Rsp");
    assert_eq!(wreq, wrsp);
    let preq = r.metrics.counter("total.rdma.out.Page_Table_Req");
    let prsp = r.metrics.counter("total.rdma.out.Page_Table_Rsp");
    assert_eq!(preq, prsp);
}

#[test]
fn bigger_scale_means_more_work_and_time() {
    let small = Experiment::quick(Workload::Mis, SystemVariant::Baseline).run();
    let big = Experiment::quick(Workload::Mis, SystemVariant::Baseline)
        .with_scale(Scale::small())
        .run();
    assert!(big.exec_cycles > small.exec_cycles);
    assert!(big.metrics.counter("total.cu.mem_ops") > small.metrics.counter("total.cu.mem_ops"));
}

#[test]
fn topology_scales_beyond_two_clusters() {
    // 3 clusters x 2 GPUs: the full mesh of cluster switches routes
    // everything and the run completes.
    let mut exp = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter);
    exp.base_cfg.topology.clusters = 3;
    let r = exp.run();
    assert!(r.exec_cycles > 0);
    assert!(r.metrics.counter("net.inter.flits") > 0);
}

#[test]
fn single_cluster_node_has_no_inter_traffic() {
    let mut exp = Experiment::quick(Workload::Gups, SystemVariant::Baseline);
    exp.base_cfg.topology.clusters = 1;
    exp.base_cfg.topology.gpus_per_cluster = 4;
    let r = exp.run();
    assert!(r.exec_cycles > 0);
    assert_eq!(r.metrics.counter("net.inter.flits"), 0);
    // Remote (intra-cluster) traffic still flows.
    assert!(r.metrics.counter("total.rdma.out.Read_Req") > 0);
}
