//! Workload scale knobs.
//!
//! The paper simulates full-size benchmark inputs on 64-CU GPUs; a test
//! suite cannot. `Scale` lets the same generators produce anything from
//! seconds-long experiment runs to millisecond unit-test kernels while
//! keeping every *relative* property (pattern, bytes-required mix,
//! footprint-to-TLB-reach ratio) intact.

/// Size knobs for the workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// CTAs in the kernel launch.
    pub ctas: u32,
    /// Wavefronts per CTA.
    pub waves_per_cta: u32,
    /// Approximate memory operations per wavefront.
    pub mem_ops_per_wave: u32,
    /// Data footprint in 4 KiB pages (split across the kernel's buffers).
    /// Drives TLB pressure: the per-GPU L2 TLB reaches 512 pages.
    pub footprint_pages: u64,
}

impl Scale {
    /// Unit-test scale: a few hundred accesses, fits every TLB.
    pub fn tiny() -> Self {
        Self {
            ctas: 8,
            waves_per_cta: 2,
            mem_ops_per_wave: 16,
            footprint_pages: 64,
        }
    }

    /// Integration-test scale: a few thousand accesses with real TLB
    /// pressure.
    pub fn small() -> Self {
        Self {
            ctas: 32,
            waves_per_cta: 8,
            mem_ops_per_wave: 48,
            footprint_pages: 1024,
        }
    }

    /// Experiment scale used by the figure harness: enough traffic to
    /// saturate the inter-cluster link and miss the TLBs, while keeping a
    /// full 15-workload × many-configuration sweep tractable.
    pub fn paper() -> Self {
        Self {
            ctas: 64,
            waves_per_cta: 8,
            mem_ops_per_wave: 64,
            footprint_pages: 4096,
        }
    }

    /// Re-scales the kernel launch to a node of `total_gpus` GPUs,
    /// keeping the *per-GPU* load of the 4-GPU paper node constant: the
    /// presets above are calibrated for 4 GPUs, so handing the same CTA
    /// count to a 16-GPU fat-tree spreads it four times thinner and
    /// leaves the fabric idle. Topology sweeps grow the CTA count
    /// proportionally instead.
    pub fn for_gpus(self, total_gpus: u16) -> Self {
        let factor = u32::from(total_gpus).div_ceil(4).max(1);
        Self {
            ctas: self.ctas * factor,
            ..self
        }
    }

    /// Total wavefronts.
    pub fn total_waves(&self) -> u64 {
        self.ctas as u64 * self.waves_per_cta as u64
    }

    /// Approximate total memory operations.
    pub fn approx_mem_ops(&self) -> u64 {
        self.total_waves() * self.mem_ops_per_wave as u64
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let t = Scale::tiny();
        let s = Scale::small();
        let p = Scale::paper();
        assert!(t.approx_mem_ops() < s.approx_mem_ops());
        assert!(s.approx_mem_ops() < p.approx_mem_ops());
        assert!(t.footprint_pages < p.footprint_pages);
    }

    #[test]
    fn totals() {
        let t = Scale::tiny();
        assert_eq!(t.total_waves(), 16);
        assert_eq!(t.approx_mem_ops(), 256);
    }

    #[test]
    fn for_gpus_keeps_per_gpu_load_constant() {
        let t = Scale::tiny();
        // The 4-GPU calibration point is the identity.
        assert_eq!(t.for_gpus(4), t);
        assert_eq!(t.for_gpus(1), t);
        assert_eq!(t.for_gpus(8).ctas, 2 * t.ctas);
        assert_eq!(t.for_gpus(16).ctas, 4 * t.ctas);
        assert_eq!(t.for_gpus(64).ctas, 16 * t.ctas);
        // Only the launch width scales; per-wave shape is untouched.
        assert_eq!(t.for_gpus(64).mem_ops_per_wave, t.mem_ops_per_wave);
        assert_eq!(t.for_gpus(64).footprint_pages, t.footprint_pages);
    }
}
