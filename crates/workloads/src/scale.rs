//! Workload scale knobs.
//!
//! The paper simulates full-size benchmark inputs on 64-CU GPUs; a test
//! suite cannot. `Scale` lets the same generators produce anything from
//! seconds-long experiment runs to millisecond unit-test kernels while
//! keeping every *relative* property (pattern, bytes-required mix,
//! footprint-to-TLB-reach ratio) intact.

/// Size knobs for the workload generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// CTAs in the kernel launch.
    pub ctas: u32,
    /// Wavefronts per CTA.
    pub waves_per_cta: u32,
    /// Approximate memory operations per wavefront.
    pub mem_ops_per_wave: u32,
    /// Data footprint in 4 KiB pages (split across the kernel's buffers).
    /// Drives TLB pressure: the per-GPU L2 TLB reaches 512 pages.
    pub footprint_pages: u64,
}

impl Scale {
    /// Unit-test scale: a few hundred accesses, fits every TLB.
    pub fn tiny() -> Self {
        Self {
            ctas: 8,
            waves_per_cta: 2,
            mem_ops_per_wave: 16,
            footprint_pages: 64,
        }
    }

    /// Integration-test scale: a few thousand accesses with real TLB
    /// pressure.
    pub fn small() -> Self {
        Self {
            ctas: 32,
            waves_per_cta: 8,
            mem_ops_per_wave: 48,
            footprint_pages: 1024,
        }
    }

    /// Experiment scale used by the figure harness: enough traffic to
    /// saturate the inter-cluster link and miss the TLBs, while keeping a
    /// full 15-workload × many-configuration sweep tractable.
    pub fn paper() -> Self {
        Self {
            ctas: 64,
            waves_per_cta: 8,
            mem_ops_per_wave: 64,
            footprint_pages: 4096,
        }
    }

    /// Total wavefronts.
    pub fn total_waves(&self) -> u64 {
        self.ctas as u64 * self.waves_per_cta as u64
    }

    /// Approximate total memory operations.
    pub fn approx_mem_ops(&self) -> u64 {
        self.total_waves() * self.mem_ops_per_wave as u64
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered() {
        let t = Scale::tiny();
        let s = Scale::small();
        let p = Scale::paper();
        assert!(t.approx_mem_ops() < s.approx_mem_ops());
        assert!(s.approx_mem_ops() < p.approx_mem_ops());
        assert!(t.footprint_pages < p.footprint_pages);
    }

    #[test]
    fn totals() {
        let t = Scale::tiny();
        assert_eq!(t.total_waves(), 16);
        assert_eq!(t.approx_mem_ops(), 256);
    }
}
