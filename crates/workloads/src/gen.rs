//! Trace generators for the twelve classic (non-DNN) workloads of
//! Table 3. Each function documents which properties of the original
//! application it reproduces; see the crate docs for the methodology.

use netcrafter_core::SplitMix64;
use netcrafter_proto::access::{CoalescedAccess, WavefrontOp, WavefrontTrace};
use netcrafter_proto::kernel::{AccessPattern, BufferSpec, CtaSpec, KernelSpec};
use netcrafter_proto::{CtaId, GpuId, VAddr, WavefrontId, PAGE_BYTES};

use crate::Scale;

/// 2 MiB, the leaf-page-table region size buffers are aligned to.
const REGION: u64 = 1 << 21;

/// Virtual-address allocator handing out 2 MiB-aligned buffers.
pub(crate) struct BufAlloc {
    next: u64,
}

impl BufAlloc {
    pub(crate) fn new() -> Self {
        Self { next: 0x4000_0000 }
    }

    pub(crate) fn buffer(&mut self, name: &str, pages: u64, pattern: AccessPattern) -> BufferSpec {
        let pages = pages.max(1);
        let base = self.next;
        let bytes = pages * PAGE_BYTES;
        self.next += bytes.div_ceil(REGION) * REGION;
        BufferSpec {
            name: name.into(),
            base: VAddr(base),
            bytes,
            pattern,
        }
    }
}

/// Builds one wavefront's op stream.
pub(crate) struct Tb {
    ops: Vec<WavefrontOp>,
}

impl Tb {
    pub(crate) fn new() -> Self {
        Self { ops: Vec::new() }
    }

    pub(crate) fn compute(&mut self, cycles: u32) {
        if cycles > 0 {
            self.ops.push(WavefrontOp::Compute(cycles));
        }
    }

    pub(crate) fn read(&mut self, va: u64, len: u64) {
        self.ops
            .push(WavefrontOp::Mem(CoalescedAccess::read(VAddr(va), len)));
    }

    pub(crate) fn write(&mut self, va: u64, len: u64) {
        self.ops
            .push(WavefrontOp::Mem(CoalescedAccess::write(VAddr(va), len)));
    }

    pub(crate) fn finish(self, id: u32, cta: u32) -> WavefrontTrace {
        WavefrontTrace {
            id: WavefrontId(id),
            cta: CtaId(cta),
            ops: self.ops,
        }
    }
}

/// A random address inside `buf`, aligned to `align` and at least `len`
/// bytes before a line boundary.
pub(crate) fn rand_addr(rng: &mut SplitMix64, buf: &BufferSpec, align: u64, len: u64) -> u64 {
    let lines = buf.bytes / 64;
    let line = rng.below(lines);
    let max_off = (64 - len) / align;
    let off = if max_off == 0 {
        0
    } else {
        rng.range(0, max_off) * align
    };
    buf.base.0 + line * 64 + off
}

/// Sequential line `i` (mod size) of `buf`, offset by the CTA's slice.
pub(crate) fn slice_line(buf: &BufferSpec, cta: u32, n_ctas: u32, i: u64) -> u64 {
    let lines = buf.bytes / 64;
    let slice = lines / n_ctas as u64;
    let base_line = cta as u64 * slice;
    buf.base.0 + ((base_line + i) % lines) * 64
}

fn assemble(
    name: &str,
    scale: &Scale,
    buffers: Vec<BufferSpec>,
    hints: Option<&dyn Fn(u32) -> GpuId>,
    mut wave_gen: impl FnMut(u32, u32, &mut Tb),
) -> KernelSpec {
    let mut ctas = Vec::with_capacity(scale.ctas as usize);
    let mut wf_id = 0u32;
    for c in 0..scale.ctas {
        let mut waves = Vec::with_capacity(scale.waves_per_cta as usize);
        for w in 0..scale.waves_per_cta {
            let mut tb = Tb::new();
            wave_gen(c, w, &mut tb);
            waves.push(tb.finish(wf_id, c));
            wf_id += 1;
        }
        ctas.push(CtaSpec {
            id: CtaId(c),
            waves,
            home_hint: hints.map(|h| h(c)),
        });
    }
    KernelSpec {
        name: name.into(),
        ctas,
        buffers,
    }
}

/// GUPS: random 8-byte read-modify-update over a giant table. Nearly all
/// accesses need ≤16 B of their line (Figure 7's leftmost bars) and pages
/// interleave across GPUs, so most traffic is remote and trim-friendly.
pub fn gups(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let table = alloc.buffer("table", scale.footprint_pages, AccessPattern::Random);
    let mut rng = SplitMix64::new(seed ^ 0x675053);
    let buffers = vec![table.clone()];
    assemble("gups", scale, buffers, None, |_c, _w, tb| {
        for _ in 0..scale.mem_ops_per_wave / 2 {
            let a = rand_addr(&mut rng, &table, 8, 8);
            tb.read(a, 8);
            tb.compute(2);
            tb.write(a, 8);
        }
    })
}

/// MT: matrix transpose. Each CTA writes its own row slice of the
/// destination but *gathers* the corresponding column of the source —
/// column-major reads stride across the whole matrix, so most reads are
/// remote while writes stay local (Table 3 classifies MT as Gather).
pub fn mt(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let pages = scale.footprint_pages;
    let src = alloc.buffer("src", pages / 2, AccessPattern::Gather);
    let dst = alloc.buffer("dst", pages / 2, AccessPattern::Gather);
    let mut rng = SplitMix64::new(seed ^ 0x4d54);
    let buffers = vec![src.clone(), dst.clone()];
    let n_ctas = scale.ctas;
    let src_lines = src.bytes / 64;
    // Column stride: a large, footprint-spanning stride models reading
    // down a matrix column (one 8-16 B element per line touched).
    let stride = (src_lines / 97).max(1) * 64;
    assemble("mt", scale, buffers, None, |c, w, tb| {
        let mut col = (c as u64 * 131 + w as u64 * 17) * 64 % src.bytes;
        for i in 0..scale.mem_ops_per_wave as u64 / 3 {
            let width = if rng.ratio(1, 4) { 16 } else { 8 };
            tb.read(src.base.0 + col, width);
            col = ((col + stride) % src.bytes) & !63;
            tb.compute(2);
            // Row-major destination write in the CTA's own slice.
            tb.write(slice_line(&dst, c, n_ctas, w as u64 * 32 + i), 64);
        }
    })
}

/// MIS: maximal independent set over an irregular graph. Random small
/// reads of node/edge state with occasional status writes.
pub fn mis(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let nodes = alloc.buffer("nodes", scale.footprint_pages / 2, AccessPattern::Random);
    let state = alloc.buffer("state", scale.footprint_pages / 2, AccessPattern::Random);
    let mut rng = SplitMix64::new(seed ^ 0x4d4953);
    let buffers = vec![nodes.clone(), state.clone()];
    assemble("mis", scale, buffers, None, |_c, _w, tb| {
        // Adjacency lists give MIS sub-line spatial locality: a node's
        // neighbours often sit in other sectors of a recently read line.
        let mut recent: Vec<u64> = Vec::new();
        for i in 0..scale.mem_ops_per_wave {
            if !recent.is_empty() && rng.ratio(1, 3) {
                let line = recent[rng.below_usize(recent.len())];
                let sector = rng.below(4);
                tb.read(line + sector * 16 + 8, 8);
            } else {
                let a = rand_addr(&mut rng, &nodes, 8, 8);
                recent.push(a & !63);
                if recent.len() > 8 {
                    recent.remove(0);
                }
                tb.read(a, 8);
            }
            tb.compute(4);
            if i % 4 == 0 {
                tb.write(rand_addr(&mut rng, &state, 4, 4), 4);
            }
        }
    })
}

/// IM2COL: image-to-column reshaping. Streaming full-line reads and
/// writes with high spatial locality; occasional halo reads cross slice
/// boundaries.
pub fn im2col(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let src = alloc.buffer("image", scale.footprint_pages / 2, AccessPattern::Adjacent);
    let dst = alloc.buffer("column", scale.footprint_pages / 2, AccessPattern::Adjacent);
    let mut rng = SplitMix64::new(seed ^ 0x494d32);
    let buffers = vec![src.clone(), dst.clone()];
    let n_ctas = scale.ctas;
    assemble("im2col", scale, buffers, None, |c, w, tb| {
        for i in 0..scale.mem_ops_per_wave as u64 / 2 {
            let idx = w as u64 * 128 + i;
            if rng.ratio(1, 8) {
                // Halo: neighbouring CTA's slice.
                tb.read(slice_line(&src, (c + 1) % n_ctas, n_ctas, idx), 64);
            } else {
                tb.read(slice_line(&src, c, n_ctas, idx), 64);
            }
            tb.compute(4);
            tb.write(slice_line(&dst, c, n_ctas, idx), 64);
        }
    })
}

/// ATAX: y = Aᵀ(Ax). Row-streaming reads of A, gathered reads of x, and
/// scattered small writes of y.
pub fn atax(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let a = alloc.buffer("A", scale.footprint_pages * 3 / 4, AccessPattern::Scatter);
    let x = alloc.buffer("x", scale.footprint_pages / 8, AccessPattern::Random);
    let y = alloc.buffer("y", scale.footprint_pages / 8, AccessPattern::Random);
    let mut rng = SplitMix64::new(seed ^ 0x41544158);
    let buffers = vec![a.clone(), x.clone(), y.clone()];
    let n_ctas = scale.ctas;
    assemble("atax", scale, buffers, None, |c, w, tb| {
        for i in 0..scale.mem_ops_per_wave as u64 / 3 {
            tb.read(slice_line(&a, c, n_ctas, w as u64 * 64 + i), 64);
            tb.read(rand_addr(&mut rng, &x, 8, 8), 8);
            tb.compute(4);
            tb.write(rand_addr(&mut rng, &y, 8, 8), 8);
        }
    })
}

/// BS: BlackScholes option pricing. Perfectly partitioned slices with
/// heavy per-element compute — the workload LASP keeps almost entirely
/// local, and the least network-sensitive of the suite.
pub fn bs(scale: &Scale, gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let input = alloc.buffer(
        "options",
        scale.footprint_pages / 2,
        AccessPattern::Partitioned,
    );
    let out = alloc.buffer(
        "prices",
        scale.footprint_pages / 2,
        AccessPattern::Partitioned,
    );
    let mut rng = SplitMix64::new(seed ^ 0x4253);
    let buffers = vec![input.clone(), out.clone()];
    let n_ctas = scale.ctas;
    let hints = move |c: u32| GpuId((c as u64 * gpus as u64 / n_ctas as u64) as u16);
    assemble("bs", scale, buffers, Some(&hints), |c, w, tb| {
        for i in 0..scale.mem_ops_per_wave as u64 / 2 {
            let idx = w as u64 * 64 + i;
            tb.read(slice_line(&input, c, n_ctas, idx), 32);
            tb.compute(40);
            if rng.ratio(1, 16) {
                // Rare shared-parameter read outside the slice.
                tb.read(rand_addr(&mut rng, &input, 32, 32), 32);
            }
            tb.write(slice_line(&out, c, n_ctas, idx), 32);
        }
    })
}

/// MM2: two dense matrix multiplies. Row-major streaming of A, strided
/// 16 B column reads of B, compute-dominated inner loops, periodic
/// full-line writes of C.
pub fn mm2(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let a = alloc.buffer("A", scale.footprint_pages / 3, AccessPattern::Gather);
    let b = alloc.buffer("B", scale.footprint_pages / 3, AccessPattern::Gather);
    let c_buf = alloc.buffer("C", scale.footprint_pages / 3, AccessPattern::Gather);
    let mut rng = SplitMix64::new(seed ^ 0x4d4d32);
    let buffers = vec![a.clone(), b.clone(), c_buf.clone()];
    let n_ctas = scale.ctas;
    assemble("mm2", scale, buffers, None, |c, w, tb| {
        for i in 0..scale.mem_ops_per_wave as u64 / 3 {
            tb.read(slice_line(&a, c, n_ctas, w as u64 * 64 + i), 64);
            tb.read(rand_addr(&mut rng, &b, 16, 16), 16);
            tb.compute(20);
            if i % 4 == 3 {
                tb.write(slice_line(&c_buf, c, n_ctas, w as u64 * 16 + i / 4), 64);
            }
        }
    })
}

/// MVT: matrix-vector product and transpose: streaming matrix reads,
/// gathered vector reads, scattered vector writes.
pub fn mvt(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let a = alloc.buffer("A", scale.footprint_pages * 3 / 4, AccessPattern::Scatter);
    let x = alloc.buffer("x", scale.footprint_pages / 8, AccessPattern::Random);
    let y = alloc.buffer("y", scale.footprint_pages / 8, AccessPattern::Random);
    let mut rng = SplitMix64::new(seed ^ 0x4d5654);
    let buffers = vec![a.clone(), x.clone(), y.clone()];
    let n_ctas = scale.ctas;
    assemble("mvt", scale, buffers, None, |c, w, tb| {
        for i in 0..scale.mem_ops_per_wave as u64 / 3 {
            tb.read(slice_line(&a, c, n_ctas, w as u64 * 64 + i), 64);
            tb.read(rand_addr(&mut rng, &x, 8, 8), 8);
            tb.compute(4);
            if i % 2 == 0 {
                tb.write(rand_addr(&mut rng, &y, 8, 8), 8);
            }
        }
    })
}

/// SPMV: sparse matrix-vector multiply (CSR). Sequential index reads mix
/// with random 8 B gathers of `x[col]` — the classic trim-friendly
/// pattern.
pub fn spmv(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let vals = alloc.buffer("vals", scale.footprint_pages / 4, AccessPattern::Random);
    let cols = alloc.buffer("cols", scale.footprint_pages / 4, AccessPattern::Random);
    let x = alloc.buffer("x", scale.footprint_pages / 4, AccessPattern::Random);
    let y = alloc.buffer("y", scale.footprint_pages / 4, AccessPattern::Random);
    let mut rng = SplitMix64::new(seed ^ 0x53504d56);
    let buffers = vec![vals.clone(), cols.clone(), x.clone(), y.clone()];
    let n_ctas = scale.ctas;
    assemble("spmv", scale, buffers, None, |c, w, tb| {
        for i in 0..scale.mem_ops_per_wave as u64 / 3 {
            tb.read(slice_line(&cols, c, n_ctas, w as u64 * 64 + i), 16);
            tb.read(rand_addr(&mut rng, &x, 8, 8), 8);
            tb.compute(4);
            if i % 8 == 7 {
                tb.read(slice_line(&vals, c, n_ctas, w as u64 * 8 + i / 8), 16);
                tb.write(slice_line(&y, c, n_ctas, w as u64 * 8 + i / 8), 8);
            }
        }
    })
}

/// PR: PageRank. Random reads of neighbour ranks, periodic rank writes.
pub fn pr(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let links = alloc.buffer("links", scale.footprint_pages / 2, AccessPattern::Random);
    let ranks = alloc.buffer("ranks", scale.footprint_pages / 2, AccessPattern::Random);
    let mut rng = SplitMix64::new(seed ^ 0x5052);
    let buffers = vec![links.clone(), ranks.clone()];
    let n_ctas = scale.ctas;
    assemble("pr", scale, buffers, None, |c, w, tb| {
        // Neighbour ranks cluster: revisiting other sectors of a recent
        // rank line is common (graph vertices are renumbered for
        // locality), so sector caches pay for their finer fills here —
        // the paper calls PR out as degrading under 16 B sectors.
        let mut recent: Vec<u64> = Vec::new();
        for i in 0..scale.mem_ops_per_wave {
            if i % 6 == 5 {
                tb.write(
                    slice_line(&ranks, c, n_ctas, w as u64 * 16 + i as u64 / 6),
                    8,
                );
            } else if i % 3 == 0 {
                tb.read(slice_line(&links, c, n_ctas, w as u64 * 64 + i as u64), 16);
            } else if !recent.is_empty() && rng.ratio(1, 2) {
                let line = recent[rng.below_usize(recent.len())];
                tb.read(line + rng.below(8) * 8, 8);
            } else {
                let a = rand_addr(&mut rng, &ranks, 8, 8);
                recent.push(a & !63);
                if recent.len() > 8 {
                    recent.remove(0);
                }
                tb.read(a, 8);
            }
            tb.compute(6);
        }
    })
}

/// SR: SHOC reduction. Streaming full-line reads feeding a tree
/// reduction with sparse partial-sum writes.
pub fn sr(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let data = alloc.buffer("data", scale.footprint_pages * 7 / 8, AccessPattern::Gather);
    let partial = alloc.buffer("partials", scale.footprint_pages / 8, AccessPattern::Random);
    let mut rng = SplitMix64::new(seed ^ 0x5352);
    let buffers = vec![data.clone(), partial.clone()];
    let n_ctas = scale.ctas;
    assemble("sr", scale, buffers, None, |c, w, tb| {
        for i in 0..scale.mem_ops_per_wave as u64 {
            tb.read(slice_line(&data, c, n_ctas, w as u64 * 128 + i), 64);
            tb.compute(6);
            if i % 8 == 7 {
                tb.write(rand_addr(&mut rng, &partial, 8, 8), 8);
            }
        }
        // Tree-reduction tail: combine partial sums produced by other
        // CTAs — small gathered reads, many of them remote.
        for _ in 0..scale.mem_ops_per_wave / 8 {
            tb.read(rand_addr(&mut rng, &partial, 8, 8), 8);
            tb.compute(4);
        }
    })
}

/// SYR2K: symmetric rank-2k update. Dense adjacent streaming of A and B
/// with compute-heavy inner loops and regular C writes.
pub fn syr2k(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let a = alloc.buffer("A", scale.footprint_pages / 3, AccessPattern::Adjacent);
    let b = alloc.buffer("B", scale.footprint_pages / 3, AccessPattern::Adjacent);
    let c_buf = alloc.buffer("C", scale.footprint_pages / 3, AccessPattern::Adjacent);
    let buffers = vec![a.clone(), b.clone(), c_buf.clone()];
    let n_ctas = scale.ctas;
    let _ = seed;
    assemble("syr2k", scale, buffers, None, |c, w, tb| {
        for i in 0..scale.mem_ops_per_wave as u64 / 3 {
            let idx = w as u64 * 64 + i;
            tb.read(slice_line(&a, c, n_ctas, idx), 64);
            tb.read(slice_line(&b, c, n_ctas, idx), 64);
            tb.compute(16);
            if i % 4 == 3 {
                tb.write(slice_line(&c_buf, c, n_ctas, w as u64 * 16 + i / 4), 64);
            }
        }
    })
}

/// A large dense GEMM used by the Figure 17 trimming-granularity study
/// ("Large GEMM Kernels"). Wide (full-line) streaming reads with a tail
/// of narrow strided column reads, so the best sector size is non-trivial.
pub fn large_gemm(scale: &Scale, _gpus: u16, seed: u64) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let a = alloc.buffer("A", scale.footprint_pages / 2, AccessPattern::Gather);
    let b = alloc.buffer("B", scale.footprint_pages / 2, AccessPattern::Gather);
    let mut rng = SplitMix64::new(seed ^ 0x47454d4d);
    let buffers = vec![a.clone(), b.clone()];
    let n_ctas = scale.ctas;
    assemble("large-gemm", scale, buffers, None, |c, w, tb| {
        // The B column walk revisits neighbouring elements of the same
        // line before moving on — classic blocked-GEMM sub-line locality.
        // Finer trimming/sector granularities discard exactly the bytes
        // the next iteration needs, which is what Figure 17 measures.
        let mut b_line = rand_addr(&mut rng, &b, 64, 64) & !63;
        let mut off = 0u64;
        for i in 0..scale.mem_ops_per_wave as u64 / 2 {
            tb.read(slice_line(&a, c, n_ctas, w as u64 * 64 + i), 64);
            let width = [4u64, 8, 8, 16][rng.below_usize(4)];
            if off + width > 64 || rng.ratio(1, 4) {
                b_line = rand_addr(&mut rng, &b, 64, 64) & !63;
                off = 0;
            }
            tb.read(b_line + off, width);
            off += width;
            tb.compute(12);
        }
    })
}
