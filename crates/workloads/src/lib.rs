//! The 15 evaluated GPU workloads (paper Table 3) as deterministic
//! coalesced-access trace generators.
//!
//! The paper runs GCN3 binaries of these applications inside MGPUSim; a
//! Rust reproduction cannot ship an ISA emulator plus the proprietary
//! benchmark binaries, so each workload is reproduced at the level every
//! NetCrafter mechanism actually observes: the stream of *coalesced
//! wavefront accesses* entering the memory system. Each generator
//! reproduces its application's
//!
//! * access-pattern class (Table 3: random / gather / scatter / adjacent
//!   / partitioned), which drives LASP placement and hence the
//!   local-vs-remote and intra-vs-inter-cluster traffic mix;
//! * bytes-required-per-cache-line distribution (Figure 7), which drives
//!   flit padding and Trimming opportunity;
//! * read/write balance and compute intensity;
//! * memory footprint relative to TLB reach, which drives page-table-walk
//!   traffic (the paper's ~13% PTW share of inter-cluster bytes).
//!
//! Every generator is deterministic in `(scale, seed)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod dnn;
pub mod gen;
pub mod scale;

pub use scale::Scale;

use netcrafter_proto::KernelSpec;

/// The evaluated workloads, in Table 3 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Workload {
    Gups,
    Mt,
    Mis,
    Im2col,
    Atax,
    Bs,
    Mm2,
    Mvt,
    Spmv,
    Pr,
    Sr,
    Syr2k,
    Vgg16,
    Lenet,
    Rnet18,
}

impl Workload {
    /// Every workload, in Table 3 order.
    pub const ALL: [Workload; 15] = [
        Workload::Gups,
        Workload::Mt,
        Workload::Mis,
        Workload::Im2col,
        Workload::Atax,
        Workload::Bs,
        Workload::Mm2,
        Workload::Mvt,
        Workload::Spmv,
        Workload::Pr,
        Workload::Sr,
        Workload::Syr2k,
        Workload::Vgg16,
        Workload::Lenet,
        Workload::Rnet18,
    ];

    /// Paper abbreviation (Table 3).
    pub fn abbrev(self) -> &'static str {
        match self {
            Workload::Gups => "GUPS",
            Workload::Mt => "MT",
            Workload::Mis => "MIS",
            Workload::Im2col => "IM2COL",
            Workload::Atax => "ATAX",
            Workload::Bs => "BS",
            Workload::Mm2 => "MM2",
            Workload::Mvt => "MVT",
            Workload::Spmv => "SPMV",
            Workload::Pr => "PR",
            Workload::Sr => "SR",
            Workload::Syr2k => "SYR2K",
            Workload::Vgg16 => "VGG16",
            Workload::Lenet => "LENET",
            Workload::Rnet18 => "RNET18",
        }
    }

    /// Full application description (Table 3).
    pub fn description(self) -> &'static str {
        match self {
            Workload::Gups => "multi-threaded, random access",
            Workload::Mt => "matrix transpose",
            Workload::Mis => "max. independent set",
            Workload::Im2col => "image to column",
            Workload::Atax => "matrix transpose & vector multiplication",
            Workload::Bs => "blackscholes",
            Workload::Mm2 => "2D matrix multiplications",
            Workload::Mvt => "matrix vector product and transpose",
            Workload::Spmv => "sparse matrix vector multiplication",
            Workload::Pr => "page rank algorithm",
            Workload::Sr => "shoc-reduction",
            Workload::Syr2k => "rank-2k of a symmetric matrix",
            Workload::Vgg16 => "deep CNN for large-scale image recognition",
            Workload::Lenet => "CNN for digit recognition",
            Workload::Rnet18 => "RESNET18 - deep CNN with residual connections",
        }
    }

    /// Access-pattern column of Table 3 (`-` for the DNN workloads).
    pub fn pattern(self) -> &'static str {
        match self {
            Workload::Gups | Workload::Mis | Workload::Spmv | Workload::Pr => "Random",
            Workload::Mt | Workload::Mm2 | Workload::Sr => "Gather",
            Workload::Im2col | Workload::Syr2k => "Adjacent",
            Workload::Atax => "Scatter",
            Workload::Bs => "Partitioned",
            Workload::Mvt => "Scatter,Gather",
            Workload::Vgg16 | Workload::Lenet | Workload::Rnet18 => "-",
        }
    }

    /// Benchmark-suite column of Table 3.
    pub fn suite(self) -> &'static str {
        match self {
            Workload::Gups => "MGPUSim",
            Workload::Mt | Workload::Bs => "AMDAPPSDK",
            Workload::Mis => "Pannotia",
            Workload::Im2col | Workload::Vgg16 | Workload::Lenet | Workload::Rnet18 => "DNN-Mark",
            Workload::Atax | Workload::Mm2 | Workload::Mvt | Workload::Syr2k => "Polybench",
            Workload::Spmv | Workload::Sr => "SHOC",
            Workload::Pr => "Hetero-Mark",
        }
    }

    /// True for the three data-parallel DNN training workloads.
    pub fn is_dnn(self) -> bool {
        matches!(self, Workload::Vgg16 | Workload::Lenet | Workload::Rnet18)
    }

    /// Generates the workload's kernel for `total_gpus` GPUs at `scale`,
    /// deterministically in `seed`.
    pub fn generate(self, scale: &Scale, total_gpus: u16, seed: u64) -> KernelSpec {
        match self {
            Workload::Gups => gen::gups(scale, total_gpus, seed),
            Workload::Mt => gen::mt(scale, total_gpus, seed),
            Workload::Mis => gen::mis(scale, total_gpus, seed),
            Workload::Im2col => gen::im2col(scale, total_gpus, seed),
            Workload::Atax => gen::atax(scale, total_gpus, seed),
            Workload::Bs => gen::bs(scale, total_gpus, seed),
            Workload::Mm2 => gen::mm2(scale, total_gpus, seed),
            Workload::Mvt => gen::mvt(scale, total_gpus, seed),
            Workload::Spmv => gen::spmv(scale, total_gpus, seed),
            Workload::Pr => gen::pr(scale, total_gpus, seed),
            Workload::Sr => gen::sr(scale, total_gpus, seed),
            Workload::Syr2k => gen::syr2k(scale, total_gpus, seed),
            Workload::Vgg16 => dnn::vgg16(scale, total_gpus, seed),
            Workload::Lenet => dnn::lenet(scale, total_gpus, seed),
            Workload::Rnet18 => dnn::rnet18(scale, total_gpus, seed),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::WavefrontOp;

    #[test]
    fn table3_metadata_complete() {
        assert_eq!(Workload::ALL.len(), 15);
        for w in Workload::ALL {
            assert!(!w.abbrev().is_empty());
            assert!(!w.description().is_empty());
            assert!(!w.suite().is_empty());
        }
        assert_eq!(Workload::Gups.pattern(), "Random");
        assert_eq!(Workload::Bs.pattern(), "Partitioned");
        assert_eq!(Workload::Mvt.pattern(), "Scatter,Gather");
        assert!(Workload::Vgg16.is_dnn());
        assert!(!Workload::Gups.is_dnn());
    }

    #[test]
    fn all_workloads_generate_nonempty_kernels() {
        let scale = Scale::tiny();
        for w in Workload::ALL {
            let k = w.generate(&scale, 4, 1);
            assert!(!k.ctas.is_empty(), "{w}: no CTAs");
            assert!(!k.buffers.is_empty(), "{w}: no buffers");
            assert!(k.total_mem_ops() > 0, "{w}: no memory ops");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let scale = Scale::tiny();
        for w in Workload::ALL {
            let a = w.generate(&scale, 4, 42);
            let b = w.generate(&scale, 4, 42);
            assert_eq!(a.total_ops(), b.total_ops(), "{w}");
            // Deep-compare the first trace.
            let ta = &a.ctas[0].waves[0].ops;
            let tb = &b.ctas[0].waves[0].ops;
            assert_eq!(ta, tb, "{w}: traces differ across identical seeds");
        }
    }

    #[test]
    fn different_seeds_differ_for_random_workloads() {
        let scale = Scale::tiny();
        let a = Workload::Gups.generate(&scale, 4, 1);
        let b = Workload::Gups.generate(&scale, 4, 2);
        assert_ne!(
            a.ctas[0].waves[0].ops, b.ctas[0].waves[0].ops,
            "GUPS must vary with seed"
        );
    }

    #[test]
    fn every_access_falls_in_a_declared_buffer() {
        let scale = Scale::tiny();
        for w in Workload::ALL {
            let k = w.generate(&scale, 4, 7);
            for cta in &k.ctas {
                for wave in &cta.waves {
                    for op in &wave.ops {
                        if let WavefrontOp::Mem(acc) = op {
                            let inside = k.buffers.iter().any(|b| {
                                acc.vaddr.0 >= b.base.0 && acc.vaddr.0 < b.base.0 + b.bytes
                            });
                            assert!(inside, "{w}: access {:?} outside buffers", acc.vaddr);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn random_workloads_use_small_accesses() {
        let scale = Scale::tiny();
        for w in [Workload::Gups, Workload::Spmv, Workload::Mis, Workload::Pr] {
            let k = w.generate(&scale, 4, 3);
            let (mut small, mut total) = (0u64, 0u64);
            for cta in &k.ctas {
                for wave in &cta.waves {
                    for op in &wave.ops {
                        if let WavefrontOp::Mem(acc) = op {
                            total += 1;
                            if acc.bytes_required() <= 16 {
                                small += 1;
                            }
                        }
                    }
                }
            }
            assert!(
                small * 2 > total,
                "{w}: random workloads should mostly need <=16 B ({small}/{total})"
            );
        }
    }

    #[test]
    fn adjacent_workloads_use_full_lines() {
        let scale = Scale::tiny();
        for w in [Workload::Im2col, Workload::Syr2k] {
            let k = w.generate(&scale, 4, 3);
            let (mut full, mut total) = (0u64, 0u64);
            for cta in &k.ctas {
                for wave in &cta.waves {
                    for op in &wave.ops {
                        if let WavefrontOp::Mem(acc) = op {
                            total += 1;
                            if acc.bytes_required() == 64 {
                                full += 1;
                            }
                        }
                    }
                }
            }
            assert!(full * 2 > total, "{w}: adjacent workloads mostly use 64 B");
        }
    }

    #[test]
    fn partitioned_workload_sets_home_hints() {
        let k = Workload::Bs.generate(&Scale::tiny(), 4, 3);
        assert!(k.ctas.iter().all(|c| c.home_hint.is_some()));
    }
}
