//! Data-parallel DNN training workloads (DNNMark-derived: VGG16, LeNet,
//! ResNet-18), modelled as layer graphs.
//!
//! The paper trains these networks with data parallelism (§5.1): each GPU
//! holds a full model replica, computes forward/backward passes over its
//! minibatch shard, then exchanges weight gradients with its peers. The
//! trace model reproduces that structure per layer:
//!
//! 1. a compute phase proportional to the layer's FLOP share;
//! 2. local reads of the layer's activations and weights (the replica is
//!    partition-placed with CTA home hints, so these stay on-GPU);
//! 3. a gradient-synchronization phase: full-line reads of the shared
//!    gradient buffer, whose pages interleave across GPUs, plus local
//!    accumulation writes — the all-reduce traffic that crosses clusters.
//!
//! Layer tables are the real network shapes scaled to the requested
//! [`Scale`]: VGG16's enormous fully-connected layers make it the most
//! network-hungry; LeNet is tiny and compute-bound; ResNet-18 sits in
//! between.

use netcrafter_core::SplitMix64;
use netcrafter_proto::kernel::{AccessPattern, CtaSpec, KernelSpec};
use netcrafter_proto::{CtaId, GpuId};

use crate::gen::{rand_addr, slice_line, BufAlloc, Tb};
use crate::Scale;

/// One layer of the modelled network.
struct Layer {
    /// Relative compute weight (arbitrary units, normalized later).
    compute: u32,
    /// Relative parameter (gradient) volume.
    params: u32,
}

/// Builds a data-parallel training trace for the given layer table.
fn dnn_kernel(
    name: &str,
    layers: &[Layer],
    sync_intensity: u32,
    scale: &Scale,
    gpus: u16,
    seed: u64,
) -> KernelSpec {
    let mut alloc = BufAlloc::new();
    let acts = alloc.buffer(
        "activations",
        scale.footprint_pages / 2,
        AccessPattern::Partitioned,
    );
    let weights = alloc.buffer(
        "weights",
        scale.footprint_pages / 4,
        AccessPattern::Partitioned,
    );
    let grads = alloc.buffer(
        "gradients",
        scale.footprint_pages / 4,
        AccessPattern::Random,
    );
    let mut rng = SplitMix64::new(seed ^ 0x444e4e);

    let total_params: u32 = layers.iter().map(|l| l.params).sum::<u32>().max(1);
    let n_ctas = scale.ctas;
    // Total sync reads available per wavefront, distributed across layers
    // by parameter share.
    let sync_budget = (scale.mem_ops_per_wave * sync_intensity / 8).max(layers.len() as u32);

    let mut ctas = Vec::with_capacity(n_ctas as usize);
    let mut wf_id = 0u32;
    for c in 0..n_ctas {
        let hint = GpuId((c as u64 * gpus as u64 / n_ctas as u64) as u16);
        let mut waves = Vec::with_capacity(scale.waves_per_cta as usize);
        for w in 0..scale.waves_per_cta {
            let mut tb = Tb::new();
            for (li, layer) in layers.iter().enumerate() {
                // Forward/backward compute with local operand streaming.
                tb.compute(layer.compute);
                let idx = (w as u64) * 256 + li as u64 * 8;
                tb.read(slice_line(&acts, c, n_ctas, idx), 64);
                tb.read(slice_line(&weights, c, n_ctas, idx), 64);
                tb.write(slice_line(&acts, c, n_ctas, idx + 1), 64);
                // Gradient all-reduce share of this layer.
                let syncs = (sync_budget * layer.params / total_params).max(1);
                for _ in 0..syncs {
                    tb.read(rand_addr(&mut rng, &grads, 64, 64), 64);
                    tb.compute(2);
                }
                tb.write(rand_addr(&mut rng, &grads, 64, 64), 64);
            }
            waves.push(tb.finish(wf_id, c));
            wf_id += 1;
        }
        ctas.push(CtaSpec {
            id: CtaId(c),
            waves,
            home_hint: Some(hint),
        });
    }
    KernelSpec {
        name: name.into(),
        ctas,
        buffers: vec![acts, weights, grads],
    }
}

/// VGG16: 13 convolutional + 3 fully-connected layers. The FC layers
/// hold ~90% of the 138 M parameters, so gradient exchange dominates —
/// the most bandwidth-bound of the three DNNs.
pub fn vgg16(scale: &Scale, gpus: u16, seed: u64) -> KernelSpec {
    let mut layers = Vec::new();
    // Conv blocks (compute-heavy, few parameters).
    for (count, compute, params) in [
        (2u32, 20u32, 1u32),
        (2, 18, 2),
        (3, 16, 4),
        (3, 14, 8),
        (3, 12, 8),
    ] {
        for _ in 0..count {
            layers.push(Layer { compute, params });
        }
    }
    // FC layers: parameter giants.
    layers.push(Layer {
        compute: 8,
        params: 120,
    });
    layers.push(Layer {
        compute: 6,
        params: 20,
    });
    layers.push(Layer {
        compute: 4,
        params: 5,
    });
    dnn_kernel("vgg16", &layers, 12, scale, gpus, seed)
}

/// LeNet-5: two tiny conv layers and two small FC layers (~60 K
/// parameters). Almost no gradient traffic: compute-bound, little to
/// gain from any network optimization.
pub fn lenet(scale: &Scale, gpus: u16, seed: u64) -> KernelSpec {
    let layers = [
        Layer {
            compute: 120,
            params: 1,
        },
        Layer {
            compute: 120,
            params: 2,
        },
        Layer {
            compute: 80,
            params: 4,
        },
        Layer {
            compute: 60,
            params: 1,
        },
    ];
    dnn_kernel("lenet", &layers, 1, scale, gpus, seed)
}

/// ResNet-18: 17 conv layers + 1 FC (~11 M parameters spread evenly) —
/// moderate, steady gradient traffic.
pub fn rnet18(scale: &Scale, gpus: u16, seed: u64) -> KernelSpec {
    let mut layers = vec![Layer {
        compute: 54,
        params: 2,
    }];
    for stage in 0..4u32 {
        for _ in 0..4 {
            layers.push(Layer {
                compute: 42 - 6 * stage,
                params: 2 + 2 * stage,
            });
        }
    }
    layers.push(Layer {
        compute: 12,
        params: 4,
    });
    dnn_kernel("resnet18", &layers, 2, scale, gpus, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::WavefrontOp;

    fn mem_and_compute(k: &KernelSpec) -> (u64, u64) {
        let mut mem = 0u64;
        let mut compute = 0u64;
        for cta in &k.ctas {
            for wave in &cta.waves {
                for op in &wave.ops {
                    match op {
                        WavefrontOp::Mem(_) => mem += 1,
                        WavefrontOp::Compute(c) => compute += *c as u64,
                    }
                }
            }
        }
        (mem, compute)
    }

    #[test]
    fn vgg_has_more_sync_traffic_than_lenet() {
        let scale = Scale::tiny();
        let vgg = vgg16(&scale, 4, 1);
        let lenet_k = lenet(&scale, 4, 1);
        let (vgg_mem, vgg_comp) = mem_and_compute(&vgg);
        let (ln_mem, ln_comp) = mem_and_compute(&lenet_k);
        // Per unit of compute, VGG16 moves far more memory.
        let vgg_intensity = vgg_mem as f64 / vgg_comp as f64;
        let ln_intensity = ln_mem as f64 / ln_comp as f64;
        assert!(
            vgg_intensity > 2.0 * ln_intensity,
            "VGG {vgg_intensity:.3} vs LeNet {ln_intensity:.3}"
        );
    }

    #[test]
    fn resnet_sits_between() {
        let scale = Scale::tiny();
        let intensity = |k: &KernelSpec| {
            let (m, c) = mem_and_compute(k);
            m as f64 / c as f64
        };
        let vgg = intensity(&vgg16(&scale, 4, 1));
        let rn = intensity(&rnet18(&scale, 4, 1));
        let ln = intensity(&lenet(&scale, 4, 1));
        assert!(vgg > rn && rn > ln, "vgg {vgg:.3} rn {rn:.3} ln {ln:.3}");
    }

    #[test]
    fn dnn_ctas_carry_home_hints() {
        let k = rnet18(&Scale::tiny(), 4, 1);
        assert!(k.ctas.iter().all(|c| c.home_hint.is_some()));
        // Hints spread across all four GPUs.
        let mut seen = std::collections::BTreeSet::new();
        for c in &k.ctas {
            seen.insert(c.home_hint.unwrap());
        }
        assert_eq!(seen.len(), 4);
    }
}
