//! Cross-crate behavioural tests: do the generated access patterns,
//! after LASP placement, actually produce the locality structure Table 3
//! promises? (Partitioned ≫ local, Random ≈ interleaved, Gather reads
//! remote, …)

use netcrafter_gpu::lasp;
use netcrafter_proto::{AccessKind, GpuId, WavefrontOp};
use netcrafter_workloads::{Scale, Workload};

const FRAMES: u64 = 1 << 24;
const GPUS: u16 = 4;

/// Fraction of (reads, writes) that land on the issuing CTA's own GPU.
fn local_fractions(w: Workload) -> (f64, f64) {
    let kernel = w.generate(&Scale::small(), GPUS, 42);
    let placement = lasp::place(&kernel, GPUS, FRAMES);
    let (mut r_local, mut r_total, mut w_local, mut w_total) = (0u64, 0u64, 0u64, 0u64);
    for cta in &kernel.ctas {
        let home = placement.gpu_of(cta.id);
        for wave in &cta.waves {
            for op in &wave.ops {
                if let WavefrontOp::Mem(acc) = op {
                    let pfn = placement
                        .page_table
                        .translate(acc.vaddr.vpn())
                        .expect("mapped");
                    let owner = GpuId((pfn / FRAMES) as u16);
                    match acc.kind {
                        AccessKind::Read => {
                            r_total += 1;
                            r_local += u64::from(owner == home);
                        }
                        AccessKind::Write => {
                            w_total += 1;
                            w_local += u64::from(owner == home);
                        }
                    }
                }
            }
        }
    }
    (
        r_local as f64 / r_total.max(1) as f64,
        w_local as f64 / w_total.max(1) as f64,
    )
}

#[test]
fn partitioned_blackscholes_is_mostly_local() {
    let (reads, writes) = local_fractions(Workload::Bs);
    assert!(reads > 0.8, "BS reads local: {reads:.2}");
    assert!(writes > 0.8, "BS writes local: {writes:.2}");
}

#[test]
fn random_gups_is_interleaved() {
    let (reads, _) = local_fractions(Workload::Gups);
    // 4 GPUs: uniform random => ~25% local.
    assert!(
        (0.15..0.40).contains(&reads),
        "GUPS reads interleave across GPUs: {reads:.2}"
    );
}

#[test]
fn gather_mt_reads_remote_writes_local() {
    let (reads, writes) = local_fractions(Workload::Mt);
    assert!(reads < 0.6, "MT column gathers cross GPUs: {reads:.2}");
    assert!(
        writes > 0.7,
        "MT row writes stay in the CTA slice: {writes:.2}"
    );
}

#[test]
fn adjacent_im2col_is_mostly_local_with_halo() {
    let (reads, writes) = local_fractions(Workload::Im2col);
    assert!(reads > 0.6, "IM2COL reads mostly local: {reads:.2}");
    assert!(reads < 1.0, "…but halos leak: {reads:.2}");
    assert!(writes > 0.8, "IM2COL writes local: {writes:.2}");
}

#[test]
fn dnn_replicas_are_local_gradients_interleaved() {
    for w in [Workload::Vgg16, Workload::Lenet, Workload::Rnet18] {
        let (reads, _) = local_fractions(w);
        // Mix of local weights/activations and interleaved gradients.
        assert!(
            (0.25..0.95).contains(&reads),
            "{w}: mixed locality expected, got {reads:.2}"
        );
    }
}

#[test]
fn footprint_exceeds_l2_tlb_reach_at_paper_scale() {
    // The paper's PTW traffic exists because footprints out-run the
    // 512-entry L2 TLB; verify the generators keep that property.
    for w in [Workload::Gups, Workload::Spmv, Workload::Pr, Workload::Mis] {
        let kernel = w.generate(&Scale::paper(), GPUS, 1);
        let placement = lasp::place(&kernel, GPUS, FRAMES);
        assert!(
            placement.page_table.mapped_pages() > 512,
            "{w}: footprint must exceed TLB reach, got {} pages",
            placement.page_table.mapped_pages()
        );
    }
}

#[test]
fn cta_home_hints_match_partitioned_pages() {
    // For BS, the CTA's hinted GPU must own the CTA's slice pages.
    let kernel = Workload::Bs.generate(&Scale::small(), GPUS, 9);
    let placement = lasp::place(&kernel, GPUS, FRAMES);
    for cta in &kernel.ctas {
        assert_eq!(
            placement.gpu_of(cta.id),
            cta.home_hint.expect("BS hints"),
            "LASP honours generator hints"
        );
    }
}
