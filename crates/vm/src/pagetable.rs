//! The 4-level radix page table shared by the unified-virtual-memory
//! multi-GPU node, including physical placement of the page-table pages
//! themselves.
//!
//! Placement policy (§2.3): the paper extends LASP by co-locating
//! translation metadata with data — each page-table page is placed on the
//! GPU that owns the first data page mapped beneath it. The root is
//! reached through a per-GPU register, so level-1 reads go wherever the
//! level-1 table was placed (the GPU owning the very first mapping).

use std::collections::BTreeMap;

use netcrafter_proto::addr::{PT_LEVELS, PT_LEVEL_BITS};
use netcrafter_proto::{GpuId, LineAddr, VAddr, PAGE_BYTES};

/// Offset (in frames) of the page-table area inside each GPU's physical
/// partition. Data frames are allocated from the bottom of the partition;
/// page-table frames from this high-water mark, so the two never collide
/// (2^20 frames = 4 GiB of data per GPU before collision, far beyond any
/// simulated footprint).
const PT_FRAME_BASE: u64 = 1 << 20;

/// The physical reads a page-table walk must perform: one `(owner, line)`
/// pair per remaining level.
pub type PtLevelAddrs = Vec<(GpuId, LineAddr)>;

#[derive(Debug, Clone, Copy)]
struct PtNode {
    owner: GpuId,
    /// Physical frame (within `owner`'s partition) holding this table.
    pfn: u64,
}

/// The functional page table plus the placement of its nodes.
///
/// Built once at "kernel launch" by the LASP placement pass; immutable
/// during simulation (the paper's workloads run with pre-faulted,
/// statically placed pages).
///
/// # Examples
///
/// ```
/// use netcrafter_vm::PageTable;
/// use netcrafter_proto::GpuId;
///
/// let mut pt = PageTable::new(1 << 24);
/// pt.map(0x42, 0x1000, GpuId(2)); // page and its PTE page live on gpu2
/// assert_eq!(pt.translate(0x42), Some(0x1000));
/// // A cold walk reads 4 levels; with levels 1-3 cached (PWC hit) only
/// // the leaf PTE is read — and it lives on gpu2, possibly remotely.
/// assert_eq!(pt.walk_reads(0x42, 1).len(), 4);
/// let (owner, _line) = pt.walk_reads(0x42, 4)[0];
/// assert_eq!(owner, GpuId(2));
/// ```
#[derive(Debug, Default)]
pub struct PageTable {
    /// vpn → pfn.
    mapping: BTreeMap<u64, u64>,
    /// (level, prefix) → node placement. The prefix of a node at level ℓ
    /// is `vpn >> (9 * (4 - ℓ))`.
    nodes: BTreeMap<(u8, u64), PtNode>,
    /// Next free page-table frame per GPU (above `PT_FRAME_BASE`).
    next_pt_frame: BTreeMap<GpuId, u64>,
    /// Frame-number base per GPU (from the physical partition size).
    frames_per_gpu: u64,
}

impl PageTable {
    /// Creates an empty table for GPUs whose partitions are
    /// `frames_per_gpu` frames long.
    pub fn new(frames_per_gpu: u64) -> Self {
        Self {
            frames_per_gpu,
            ..Self::default()
        }
    }

    /// Identity of the *node* read at `level`: the walk path above it.
    /// A level-4 (leaf) node covers 512 pages (one 2 MiB region,
    /// `vpn >> 9`); the level-1 root covers everything (`vpn >> 36 == 0`).
    #[inline]
    fn prefix(vpn: u64, level: u8) -> u64 {
        vpn >> (PT_LEVEL_BITS * (PT_LEVELS - level + 1) as u32)
    }

    /// Maps `vpn → pfn`. Creates any missing radix nodes on the walk path
    /// and places each new node on `pte_owner` — callers pass the GPU
    /// owning the first data page of the node's region, so the first
    /// mapping beneath a node decides its home (the paper's policy).
    pub fn map(&mut self, vpn: u64, pfn: u64, pte_owner: GpuId) {
        let prev = self.mapping.insert(vpn, pfn);
        assert!(prev.is_none() || prev == Some(pfn), "vpn {vpn:#x} remapped");
        for level in 1..=PT_LEVELS {
            let key = (level, Self::prefix(vpn, level));
            if !self.nodes.contains_key(&key) {
                let next = self.next_pt_frame.entry(pte_owner).or_insert(PT_FRAME_BASE);
                let pfn = *next;
                *next += 1;
                self.nodes.insert(
                    key,
                    PtNode {
                        owner: pte_owner,
                        pfn,
                    },
                );
            }
        }
    }

    /// Functional translation.
    pub fn translate(&self, vpn: u64) -> Option<u64> {
        self.mapping.get(&vpn).copied()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.mapping.len()
    }

    /// Number of allocated page-table nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The GPU holding the page-table node at `level` on `vpn`'s path.
    pub fn node_owner(&self, vpn: u64, level: u8) -> Option<GpuId> {
        self.nodes
            .get(&(level, Self::prefix(vpn, level)))
            .map(|n| n.owner)
    }

    /// Physical line holding the entry consulted at `level` of a walk of
    /// `vpn`, with its owner GPU. The entry index within the node selects
    /// the 8-byte slot, hence the line.
    pub fn entry_line(&self, vpn: u64, level: u8) -> Option<(GpuId, LineAddr)> {
        let node = self.nodes.get(&(level, Self::prefix(vpn, level)))?;
        let entry_ix = VAddr(vpn * PAGE_BYTES).pt_index(level);
        let gpu_base = (node.owner.raw() as u64) * self.frames_per_gpu * PAGE_BYTES;
        let node_base = gpu_base + node.pfn * PAGE_BYTES;
        let entry_addr = node_base + entry_ix * 8;
        Some((node.owner, netcrafter_proto::PAddr(entry_addr).line()))
    }

    /// The memory reads a walk of `vpn` must perform when starting at
    /// `start_level` (1 = nothing cached, 4 = only the leaf PTE needed).
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is unmapped — workloads only touch pre-placed
    /// pages, so an unmapped walk is a harness bug.
    pub fn walk_reads(&self, vpn: u64, start_level: u8) -> PtLevelAddrs {
        assert!(
            self.mapping.contains_key(&vpn),
            "page fault: vpn {vpn:#x} is unmapped (workload touched unplaced memory)"
        );
        (start_level..=PT_LEVELS)
            .map(|level| {
                self.entry_line(vpn, level)
                    .unwrap_or_else(|| panic!("missing node at level {level} for vpn {vpn:#x}"))
            })
            .collect()
    }

    /// Iterates all mappings (diagnostics, placement audits).
    pub fn mappings(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.mapping.iter().map(|(&v, &p)| (v, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAMES: u64 = 1 << 24; // 64 GiB partitions

    #[test]
    fn map_and_translate() {
        let mut pt = PageTable::new(FRAMES);
        pt.map(0x10, 0x999, GpuId(0));
        assert_eq!(pt.translate(0x10), Some(0x999));
        assert_eq!(pt.translate(0x11), None);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn first_mapping_places_nodes() {
        let mut pt = PageTable::new(FRAMES);
        pt.map(0x10, 0x1, GpuId(2));
        // All four nodes on the path exist and live on gpu2.
        for level in 1..=4 {
            assert_eq!(pt.node_owner(0x10, level), Some(GpuId(2)), "level {level}");
        }
        assert_eq!(pt.node_count(), 4);
    }

    #[test]
    fn second_mapping_in_same_region_reuses_leaf() {
        let mut pt = PageTable::new(FRAMES);
        pt.map(0x10, 0x1, GpuId(2));
        // Same 2 MiB region (same leaf node: vpn >> 9).
        pt.map(0x11, 0x2, GpuId(3));
        assert_eq!(pt.node_count(), 4, "no new nodes");
        // Leaf still owned by the first mapper, per the paper's
        // first-data-page placement.
        assert_eq!(pt.node_owner(0x11, 4), Some(GpuId(2)));
    }

    #[test]
    fn distant_vpn_allocates_new_leaf() {
        let mut pt = PageTable::new(FRAMES);
        pt.map(0x10, 0x1, GpuId(0));
        pt.map(0x10 + 512, 0x2, GpuId(1)); // next 2 MiB region
        assert_eq!(pt.node_owner(0x10, 4), Some(GpuId(0)));
        assert_eq!(pt.node_owner(0x10 + 512, 4), Some(GpuId(1)));
        // Root is shared and keeps its original owner.
        assert_eq!(pt.node_owner(0x10 + 512, 1), Some(GpuId(0)));
    }

    #[test]
    fn walk_reads_shrink_with_start_level() {
        let mut pt = PageTable::new(FRAMES);
        pt.map(0x42, 0x7, GpuId(1));
        assert_eq!(pt.walk_reads(0x42, 1).len(), 4);
        assert_eq!(pt.walk_reads(0x42, 3).len(), 2);
        assert_eq!(pt.walk_reads(0x42, 4).len(), 1);
    }

    #[test]
    fn entry_lines_are_in_owner_partition() {
        let mut pt = PageTable::new(FRAMES);
        pt.map(0x42, 0x7, GpuId(1));
        for (owner, line) in pt.walk_reads(0x42, 1) {
            assert_eq!(owner, GpuId(1));
            let gpu_of_pa = line.0 / (FRAMES * PAGE_BYTES);
            assert_eq!(gpu_of_pa, 1, "PT line {line:?} must live on gpu1");
        }
    }

    #[test]
    fn adjacent_entries_share_lines() {
        let mut pt = PageTable::new(FRAMES);
        // vpn 0 and vpn 1 differ only in the leaf index -> their leaf
        // entries are 8 bytes apart, i.e. the same 64 B line.
        pt.map(0x0, 0x1, GpuId(0));
        pt.map(0x1, 0x2, GpuId(0));
        let a = pt.entry_line(0x0, 4).unwrap();
        let b = pt.entry_line(0x1, 4).unwrap();
        assert_eq!(a, b, "adjacent PTEs coalesce into one line read");
        // vpn 0 and vpn 8 are 64 bytes apart -> different lines.
        pt.map(0x8, 0x3, GpuId(0));
        let c = pt.entry_line(0x8, 4).unwrap();
        assert_ne!(a.1, c.1);
    }

    #[test]
    #[should_panic(expected = "page fault")]
    fn walking_unmapped_page_panics() {
        let pt = PageTable::new(FRAMES);
        pt.walk_reads(0x123, 1);
    }

    #[test]
    fn remap_same_value_is_idempotent() {
        let mut pt = PageTable::new(FRAMES);
        pt.map(0x5, 0x9, GpuId(0));
        pt.map(0x5, 0x9, GpuId(1)); // no-op, nodes already exist
        assert_eq!(pt.mapped_pages(), 1);
    }
}
