//! GPU virtual memory: TLBs, the GMMU with its page-walk cache and
//! parallel page-table walkers, and the 4-level radix page table —
//! the translation machinery of §2.3.
//!
//! Translation flow on a CU load/store:
//!
//! 1. The CU's private **L1 TLB** (32-entry, fully associative, 1-cycle)
//!    is checked; a hit translates immediately.
//! 2. On a miss the request goes to the GPU's shared **L2 TLB**
//!    (512-entry, 8-way, 10-cycle, 64-entry MSHR).
//! 3. On an L2 TLB miss the **GMMU** performs a longest-prefix match in
//!    its **page-walk cache** (32-entry, 10-cycle), which caches levels
//!    1–3 of the radix tree and decides how many of the 4 levels the walk
//!    must actually read (1–4 memory accesses).
//! 4. One of 16 parallel **page-table walkers** issues those reads. PTEs
//!    are placed by the paper's extension of LASP: each leaf page-table
//!    page (mapping a 2 MiB region) lives on the GPU holding the region's
//!    first data page, so PTE reads may cross the inter-cluster network —
//!    that is exactly the PTW traffic NetCrafter's Sequencing prioritizes.
//! 5. The completed translation is inserted into both TLBs and returned.
//!
//! The [`PageTable`] is a functional model shared by all GPUs (unified
//! virtual memory): walks consult it to learn which physical lines to
//! read; timing comes from the real memory traffic those reads generate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod gmmu;
pub mod pagetable;
pub mod tlb;

pub use gmmu::{TranslationUnit, TranslationWiring};
pub use pagetable::{PageTable, PtLevelAddrs};
pub use tlb::{Tlb, TlbStats};
