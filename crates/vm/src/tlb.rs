//! A translation lookaside buffer: a thin, statistics-carrying wrapper
//! over the set-associative tag store, used for both the per-CU L1 TLB
//! (32-entry fully associative) and the per-GPU shared L2 TLB (512-entry
//! 8-way) of Table 2.

use netcrafter_mem::TagStore;
use netcrafter_proto::config::TlbConfig;
use netcrafter_proto::Metrics;
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

/// TLB hit/miss counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TlbStats {
    /// Lookups that found a translation.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries displaced by insertions.
    pub evictions: u64,
}

impl Snap for TlbStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.hits.save(w);
        self.misses.save(w);
        self.evictions.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TlbStats {
            hits: Snap::load(r)?,
            misses: Snap::load(r)?,
            evictions: Snap::load(r)?,
        })
    }
}

impl TlbStats {
    /// Hit rate in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Dumps counters under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.hits"), self.hits);
        metrics.add(&format!("{prefix}.misses"), self.misses);
        metrics.add(&format!("{prefix}.evictions"), self.evictions);
    }
}

/// A TLB caching `vpn → pfn` translations.
#[derive(Debug)]
pub struct Tlb {
    entries: TagStore<u64>,
    lookup_cycles: u32,
    /// Statistics.
    pub stats: TlbStats,
}

impl Tlb {
    /// Builds a TLB from its configuration (`ways == u32::MAX` means fully
    /// associative).
    pub fn new(cfg: &TlbConfig) -> Self {
        let ways = if cfg.ways == u32::MAX {
            cfg.entries as usize
        } else {
            cfg.ways as usize
        };
        Self {
            entries: TagStore::with_entries(cfg.entries as usize, ways),
            lookup_cycles: cfg.lookup_cycles,
            stats: TlbStats::default(),
        }
    }

    /// Lookup latency in cycles (applied by the owning component).
    pub fn lookup_cycles(&self) -> u32 {
        self.lookup_cycles
    }

    /// Looks up `vpn`, recording hit/miss.
    pub fn lookup(&mut self, vpn: u64, now: u64) -> Option<u64> {
        match self.entries.lookup(vpn, now) {
            Some(&mut pfn) => {
                self.stats.hits += 1;
                Some(pfn)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks residency without counting a lookup or touching LRU.
    pub fn probe(&self, vpn: u64) -> Option<u64> {
        self.entries.peek(vpn).copied()
    }

    /// Installs a translation.
    pub fn insert(&mut self, vpn: u64, pfn: u64, now: u64) {
        if self.entries.insert(vpn, pfn, now).is_some() {
            self.stats.evictions += 1;
        }
    }

    /// Resident translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// In-place [`Snap::load`] for the snapshot-restore hot path: decodes
    /// the same bytes into `self`, reusing the entry store's allocations.
    ///
    /// # Errors
    ///
    /// Fails on truncated input or an entry-store geometry mismatch.
    pub fn load_into(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.entries.load_into(r)?;
        self.lookup_cycles = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

/// The lookup latency is builder-time configuration; it is saved and
/// checked on load so restoring into a differently configured TLB fails
/// loudly instead of silently changing timing.
impl Snap for Tlb {
    fn save(&self, w: &mut SnapshotWriter) {
        self.entries.save(w);
        self.lookup_cycles.save(w);
        self.stats.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Tlb {
            entries: Snap::load(r)?,
            lookup_cycles: Snap::load(r)?,
            stats: Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1_cfg() -> TlbConfig {
        TlbConfig {
            entries: 4,
            ways: u32::MAX,
            lookup_cycles: 1,
            mshr_entries: 8,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(&l1_cfg());
        assert_eq!(tlb.lookup(7, 0), None);
        tlb.insert(7, 0x70, 0);
        assert_eq!(tlb.lookup(7, 1), Some(0x70));
        assert_eq!(tlb.stats.hits, 1);
        assert_eq!(tlb.stats.misses, 1);
        assert_eq!(tlb.stats.hit_rate(), 0.5);
    }

    #[test]
    fn fully_associative_evicts_lru() {
        let mut tlb = Tlb::new(&l1_cfg());
        for vpn in 0..4 {
            tlb.insert(vpn, vpn * 16, vpn);
        }
        tlb.lookup(0, 10); // refresh vpn 0
        tlb.insert(9, 0x90, 11); // evicts vpn 1 (LRU)
        assert_eq!(tlb.probe(0), Some(0));
        assert_eq!(tlb.probe(1), None);
        assert_eq!(tlb.stats.evictions, 1);
    }

    #[test]
    fn set_associative_geometry() {
        let cfg = TlbConfig {
            entries: 512,
            ways: 8,
            lookup_cycles: 10,
            mshr_entries: 64,
        };
        let tlb = Tlb::new(&cfg);
        assert_eq!(tlb.lookup_cycles(), 10);
        assert!(tlb.is_empty());
    }

    #[test]
    fn probe_does_not_count() {
        let mut tlb = Tlb::new(&l1_cfg());
        tlb.insert(3, 0x30, 0);
        assert_eq!(tlb.probe(3), Some(0x30));
        assert_eq!(tlb.stats.hits + tlb.stats.misses, 0);
    }
}
