//! The shared translation unit of one GPU: L2 TLB, GMMU page-walk cache,
//! and parallel page-table walkers (§2.3, Table 2).
//!
//! This component receives [`TransReq`]s from the GPU's CUs (after their
//! private L1 TLBs missed), and emits [`TransRsp`]s. Page-table reads it
//! issues are ordinary memory requests with
//! [`TrafficClass::Ptw`](netcrafter_proto::TrafficClass): local ones go to
//! the GPU's L2 cache, remote ones to the RDMA engine, where they become
//! the Page Table Req/Rsp packets whose latency the paper's Sequencing
//! mechanism protects.

use std::collections::{BTreeMap, VecDeque};

use netcrafter_proto::config::{GmmuConfig, TlbConfig};
use netcrafter_proto::ids::IdAlloc;
use netcrafter_proto::{
    AccessId, GpuId, LatencyStat, LineMask, MemReq, Message, Metrics, Origin, TrafficClass,
    TransReq, TransRsp,
};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{
    BurstOutcome, Component, ComponentId, Ctx, Cycle, DelayQueue, EventClass, Wake,
};

use crate::pagetable::PageTable;
use crate::tlb::Tlb;

use std::sync::Arc;

/// Where the translation unit's outputs go.
#[derive(Debug, Clone)]
pub struct TranslationWiring {
    /// Component of each local CU, indexed by GPU-local CU id.
    pub cus: Vec<ComponentId>,
    /// The GPU's L2 cache (local page-table reads).
    pub l2: ComponentId,
    /// The GPU's RDMA engine (remote page-table reads).
    pub rdma: ComponentId,
}

/// Translation-unit statistics.
#[derive(Debug, Clone, Default)]
pub struct GmmuStats {
    /// Translation requests received.
    pub requests: u64,
    /// Page-table walks performed.
    pub walks: u64,
    /// Walks by number of memory reads (index 0 unused; 1–4 used).
    pub walk_reads_hist: [u64; 5],
    /// Page-table reads served by the local L2 path.
    pub local_pt_reads: u64,
    /// Page-table reads that crossed to another GPU.
    pub remote_pt_reads: u64,
    /// End-to-end walk latency (PWC decision to final read).
    pub walk_latency: LatencyStat,
    /// Walks that had to queue for a free walker.
    pub walker_queue_events: u64,
}

impl Snap for GmmuStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.requests.save(w);
        self.walks.save(w);
        self.walk_reads_hist.save(w);
        self.local_pt_reads.save(w);
        self.remote_pt_reads.save(w);
        self.walk_latency.save(w);
        self.walker_queue_events.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(GmmuStats {
            requests: Snap::load(r)?,
            walks: Snap::load(r)?,
            walk_reads_hist: Snap::load(r)?,
            local_pt_reads: Snap::load(r)?,
            remote_pt_reads: Snap::load(r)?,
            walk_latency: Snap::load(r)?,
            walker_queue_events: Snap::load(r)?,
        })
    }
}

impl GmmuStats {
    /// Dumps counters under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.requests"), self.requests);
        metrics.add(&format!("{prefix}.walks"), self.walks);
        for reads in 1..5 {
            metrics.add(
                &format!("{prefix}.walks_{reads}reads"),
                self.walk_reads_hist[reads],
            );
        }
        metrics.add(&format!("{prefix}.local_pt_reads"), self.local_pt_reads);
        metrics.add(&format!("{prefix}.remote_pt_reads"), self.remote_pt_reads);
        metrics.add(
            &format!("{prefix}.walker_queue_events"),
            self.walker_queue_events,
        );
        metrics
            .latency_mut(&format!("{prefix}.walk_latency"))
            .merge(&self.walk_latency);
    }
}

#[derive(Debug)]
struct Walk {
    #[allow(dead_code)]
    vpn: u64,
    reads: Vec<(GpuId, netcrafter_proto::LineAddr)>,
    next_read: usize,
    started: Cycle,
}

impl Snap for Walk {
    fn save(&self, w: &mut SnapshotWriter) {
        self.vpn.save(w);
        self.reads.save(w);
        self.next_read.save(w);
        self.started.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let vpn: u64 = Snap::load(r)?;
        let reads: Vec<(GpuId, netcrafter_proto::LineAddr)> = Snap::load(r)?;
        let next_read: usize = Snap::load(r)?;
        if next_read > reads.len() {
            return Err(SnapshotError::Corrupt(format!(
                "walk read cursor {next_read} past {} reads",
                reads.len()
            )));
        }
        Ok(Walk {
            vpn,
            reads,
            next_read,
            started: Snap::load(r)?,
        })
    }
}

/// A walk waiting for a free walker: `(vpn, page-table reads, enqueue cycle)`.
type PendingWalk = (u64, Vec<(GpuId, netcrafter_proto::LineAddr)>, Cycle);

/// The per-GPU shared L2 TLB + GMMU component.
pub struct TranslationUnit {
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    gpu: GpuId,
    // lint:allow(snapshot-field-parity) construction-time identity label; never serialized
    name: String,
    /// Shared L2 TLB (hit path).
    pub l2_tlb: Tlb,
    pwc: netcrafter_mem::TagStore<()>,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    pwc_cycles: u32,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    max_walkers: usize,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    hop_cycles: u32,
    // lint:allow(snapshot-field-parity) immutable shared page table installed at construction
    page_table: Arc<PageTable>,
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    wiring: TranslationWiring,

    tlb_pipe: DelayQueue<TransReq>,
    pwc_pipe: DelayQueue<u64>,
    retry: VecDeque<TransReq>,
    waiters: BTreeMap<u64, Vec<TransReq>>,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    waiter_cap: usize,
    active: BTreeMap<u64, Walk>,
    pending_walks: VecDeque<PendingWalk>,
    inflight_reads: BTreeMap<AccessId, u64>,
    read_ids: IdAlloc<AccessId>,
    /// Statistics.
    pub stats: GmmuStats,
}

impl TranslationUnit {
    /// Builds the translation unit of `gpu`.
    pub fn new(
        gpu: GpuId,
        l2_tlb_cfg: &TlbConfig,
        gmmu_cfg: &GmmuConfig,
        hop_cycles: u32,
        page_table: Arc<PageTable>,
        wiring: TranslationWiring,
    ) -> Self {
        Self {
            gpu,
            name: format!("{gpu}.gmmu"),
            l2_tlb: Tlb::new(l2_tlb_cfg),
            pwc: netcrafter_mem::TagStore::with_entries(
                gmmu_cfg.pwc_entries as usize,
                gmmu_cfg.pwc_entries as usize,
            ),
            pwc_cycles: gmmu_cfg.pwc_lookup_cycles,
            max_walkers: gmmu_cfg.walkers as usize,
            hop_cycles,
            page_table,
            wiring,
            tlb_pipe: DelayQueue::new(),
            pwc_pipe: DelayQueue::new(),
            retry: VecDeque::new(),
            waiters: BTreeMap::new(),
            waiter_cap: l2_tlb_cfg.mshr_entries as usize,
            active: BTreeMap::new(),
            pending_walks: VecDeque::new(),
            inflight_reads: BTreeMap::new(),
            read_ids: IdAlloc::new(),
            stats: GmmuStats::default(),
        }
    }

    #[inline]
    fn pwc_key(level: u8, prefix: u64) -> u64 {
        ((level as u64) << 60) | prefix
    }

    fn pwc_start_level(&mut self, vpn: u64, now: Cycle) -> u8 {
        for level in [3u8, 2, 1] {
            let shift = 9 * (4 - level) as u32;
            let prefix = vpn >> shift;
            if self.pwc.lookup(Self::pwc_key(level, prefix), now).is_some() {
                return level + 1;
            }
        }
        1
    }

    fn pwc_fill(&mut self, vpn: u64, now: Cycle) {
        for level in [1u8, 2, 3] {
            let shift = 9 * (4 - level) as u32;
            self.pwc.insert(Self::pwc_key(level, vpn >> shift), (), now);
        }
    }

    fn respond(&mut self, ctx: &mut Ctx<'_>, req: &TransReq, pfn: u64) {
        let rsp = TransRsp {
            access: req.access,
            vpn: req.vpn,
            pfn,
            cu: req.cu,
        };
        ctx.send(
            self.wiring.cus[req.cu as usize],
            Message::TransRsp(rsp),
            self.hop_cycles as u64,
        );
    }

    fn issue_read(&mut self, ctx: &mut Ctx<'_>, vpn: u64) {
        let walk = self.active.get(&vpn).expect("walk active");
        let (owner, line) = walk.reads[walk.next_read];
        let access = self.read_ids.next();
        self.inflight_reads.insert(access, vpn);
        let req = MemReq {
            access,
            line,
            write: false,
            mask: LineMask::span(line.base().0 % 64, 8),
            sectors: u16::MAX, // PT responses travel as header-only packets
            class: TrafficClass::Ptw,
            requester: self.gpu,
            owner,
            origin: Origin::Gmmu,
        };
        let target = if owner == self.gpu {
            self.stats.local_pt_reads += 1;
            self.wiring.l2
        } else {
            self.stats.remote_pt_reads += 1;
            self.wiring.rdma
        };
        ctx.send(target, Message::MemReq(req), self.hop_cycles as u64);
    }

    fn start_walk(
        &mut self,
        ctx: &mut Ctx<'_>,
        vpn: u64,
        reads: Vec<(GpuId, netcrafter_proto::LineAddr)>,
        queued_at: Cycle,
    ) {
        debug_assert!(self.active.len() < self.max_walkers);
        self.stats.walks += 1;
        self.stats.walk_reads_hist[reads.len().min(4)] += 1;
        ctx.tracer().begin(EventClass::Ptw, "ptw.walk", vpn);
        self.active.insert(
            vpn,
            Walk {
                vpn,
                reads,
                next_read: 0,
                started: queued_at,
            },
        );
        self.issue_read(ctx, vpn);
    }

    fn complete_walk(&mut self, ctx: &mut Ctx<'_>, vpn: u64, now: Cycle) {
        let walk = self.active.remove(&vpn).expect("walk active");
        self.stats.walk_latency.record(now - walk.started);
        ctx.tracer().end(EventClass::Ptw, "ptw.walk", vpn);
        let pfn = self
            .page_table
            .translate(vpn)
            .unwrap_or_else(|| panic!("{}: walk of unmapped vpn {vpn:#x}", self.name));
        self.l2_tlb.insert(vpn, pfn, now);
        self.pwc_fill(vpn, now);
        for req in self.waiters.remove(&vpn).unwrap_or_default() {
            self.respond(ctx, &req, pfn);
        }
        // A queued walk can now take the freed walker.
        if let Some((vpn, reads, queued_at)) = self.pending_walks.pop_front() {
            self.start_walk(ctx, vpn, reads, queued_at);
        }
    }

    fn handle_lookup(&mut self, ctx: &mut Ctx<'_>, req: TransReq, now: Cycle) {
        if let Some(pfn) = self.l2_tlb.lookup(req.vpn, now) {
            self.respond(ctx, &req, pfn);
            return;
        }
        if let Some(list) = self.waiters.get_mut(&req.vpn) {
            list.push(req); // walk already underway for this vpn
            return;
        }
        if self.waiters.len() >= self.waiter_cap {
            self.retry.push_back(req); // TLB MSHR full: retry next cycle
            return;
        }
        self.waiters.insert(req.vpn, vec![req]);
        self.pwc_pipe.push(now + self.pwc_cycles as Cycle, req.vpn);
    }
}

impl Component for TranslationUnit {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.cycle();
        while let Some(msg) = ctx.recv() {
            match msg {
                Message::TransReq(req) => {
                    self.stats.requests += 1;
                    self.tlb_pipe
                        .push(now + self.l2_tlb.lookup_cycles() as Cycle, req);
                }
                Message::MemRsp(rsp) => {
                    let vpn = self
                        .inflight_reads
                        .remove(&rsp.access)
                        .unwrap_or_else(|| panic!("{}: stray PT read response", self.name));
                    let walk = self.active.get_mut(&vpn).expect("walk active");
                    walk.next_read += 1;
                    if walk.next_read < walk.reads.len() {
                        self.issue_read(ctx, vpn);
                    } else {
                        self.complete_walk(ctx, vpn, now);
                    }
                }
                other => panic!("{}: unexpected {}", self.name, other.label()),
            }
        }

        // Retries (TLB-MSHR-full) get first claim on this cycle.
        for _ in 0..self.retry.len() {
            let req = self.retry.pop_front().expect("len checked");
            self.handle_lookup(ctx, req, now);
        }
        while let Some(req) = self.tlb_pipe.pop_ready(now) {
            self.handle_lookup(ctx, req, now);
        }
        while let Some(vpn) = self.pwc_pipe.pop_ready(now) {
            let start = self.pwc_start_level(vpn, now);
            let reads = self.page_table.walk_reads(vpn, start);
            if self.active.len() < self.max_walkers {
                self.start_walk(ctx, vpn, reads, now);
            } else {
                self.stats.walker_queue_events += 1;
                self.pending_walks.push_back((vpn, reads, now));
            }
        }
    }

    fn busy(&self) -> bool {
        !self.tlb_pipe.is_empty()
            || !self.pwc_pipe.is_empty()
            || !self.retry.is_empty()
            || !self.active.is_empty()
            || !self.pending_walks.is_empty()
            || !self.waiters.is_empty()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        // Retries get re-attempted every cycle; otherwise the next thing
        // to happen locally is a pipeline completion. Active walks and
        // queued walkers advance on PT-read response messages.
        if !self.retry.is_empty() {
            return Wake::EveryCycle;
        }
        let mut wake = Wake::OnMessage;
        if let Some(t) = self.tlb_pipe.next_ready() {
            wake = wake.earliest(Wake::At(t));
        }
        if let Some(t) = self.pwc_pipe.next_ready() {
            wake = wake.earliest(Wake::At(t));
        }
        wake
    }

    fn tick_burst(&mut self, ctx: &mut Ctx<'_>) -> BurstOutcome {
        self.tick(ctx);
        // One pass over the queue/pipe fields instead of the separate
        // `busy` + `next_wake` traversals.
        let busy = !self.tlb_pipe.is_empty()
            || !self.pwc_pipe.is_empty()
            || !self.retry.is_empty()
            || !self.active.is_empty()
            || !self.pending_walks.is_empty()
            || !self.waiters.is_empty();
        let wake = if !self.retry.is_empty() {
            Wake::EveryCycle
        } else {
            let mut wake = Wake::OnMessage;
            if let Some(t) = self.tlb_pipe.next_ready() {
                wake = wake.earliest(Wake::At(t));
            }
            if let Some(t) = self.pwc_pipe.next_ready() {
                wake = wake.earliest(Wake::At(t));
            }
            wake
        };
        BurstOutcome { busy, wake }
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.l2_tlb.save(w);
        self.pwc.save(w);
        self.tlb_pipe.save(w);
        self.pwc_pipe.save(w);
        self.retry.save(w);
        self.waiters.save(w);
        self.active.save(w);
        self.pending_walks.save(w);
        self.inflight_reads.save(w);
        self.read_ids.save(w);
        self.stats.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.l2_tlb.load_into(r)?;
        self.pwc.load_into(r)?;
        self.tlb_pipe = Snap::load(r)?;
        self.pwc_pipe = Snap::load(r)?;
        self.retry = Snap::load(r)?;
        self.waiters = Snap::load(r)?;
        self.active = Snap::load(r)?;
        self.pending_walks = Snap::load(r)?;
        self.inflight_reads = Snap::load(r)?;
        self.read_ids = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::MemRsp;
    use netcrafter_sim::EngineBuilder;
    use std::sync::Mutex;

    /// Stub CU: records TransRsp arrivals.
    struct CuStub {
        got: Arc<Mutex<Vec<(Cycle, TransRsp)>>>,
    }
    impl Component for CuStub {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                if let Message::TransRsp(r) = msg {
                    self.got.lock().unwrap().push((ctx.cycle(), r));
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "cu-stub"
        }
    }

    /// Stub memory: answers every MemReq after `latency`, recording it.
    struct MemStub {
        reply_to: ComponentId,
        latency: u64,
        seen: Arc<Mutex<Vec<MemReq>>>,
    }
    impl Component for MemStub {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                if let Message::MemReq(req) = msg {
                    self.seen.lock().unwrap().push(req);
                    ctx.send(
                        self.reply_to,
                        Message::MemRsp(MemRsp::for_req(&req, req.sectors)),
                        self.latency,
                    );
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "mem-stub"
        }
    }

    struct H {
        engine: netcrafter_sim::Engine,
        tu: ComponentId,
        rsp: Arc<Mutex<Vec<(Cycle, TransRsp)>>>,
        local_reads: Arc<Mutex<Vec<MemReq>>>,
        remote_reads: Arc<Mutex<Vec<MemReq>>>,
    }

    fn harness(pt: PageTable, walkers: u32) -> H {
        let mut b = EngineBuilder::new();
        let cu = b.reserve();
        let l2 = b.reserve();
        let rdma = b.reserve();
        let tu = b.reserve();
        let rsp = Arc::new(Mutex::new(Vec::new()));
        let local_reads = Arc::new(Mutex::new(Vec::new()));
        let remote_reads = Arc::new(Mutex::new(Vec::new()));
        b.install(
            cu,
            Box::new(CuStub {
                got: Arc::clone(&rsp),
            }),
        );
        b.install(
            l2,
            Box::new(MemStub {
                reply_to: tu,
                latency: 50,
                seen: Arc::clone(&local_reads),
            }),
        );
        b.install(
            rdma,
            Box::new(MemStub {
                reply_to: tu,
                latency: 400,
                seen: Arc::clone(&remote_reads),
            }),
        );
        b.install(
            tu,
            Box::new(TranslationUnit::new(
                GpuId(0),
                &TlbConfig {
                    entries: 512,
                    ways: 8,
                    lookup_cycles: 10,
                    mshr_entries: 4,
                },
                &GmmuConfig {
                    pwc_entries: 32,
                    pwc_lookup_cycles: 10,
                    walkers,
                },
                2,
                Arc::new(pt),
                TranslationWiring {
                    cus: vec![cu],
                    l2,
                    rdma,
                },
            )),
        );
        H {
            engine: b.build(),
            tu,
            rsp,
            local_reads,
            remote_reads,
        }
    }

    fn treq(vpn: u64) -> Message {
        Message::TransReq(TransReq {
            access: AccessId(vpn),
            vpn,
            cu: 0,
        })
    }

    #[test]
    fn cold_walk_reads_four_levels_locally() {
        let mut pt = PageTable::new(1 << 24);
        pt.map(0x42, 0x7, GpuId(0));
        let mut h = harness(pt, 16);
        h.engine.inject(h.tu, treq(0x42), 1);
        h.engine.run_to_quiescence(5000);
        assert_eq!(h.rsp.lock().unwrap().len(), 1);
        assert_eq!(h.rsp.lock().unwrap()[0].1.pfn, 0x7);
        assert_eq!(h.local_reads.lock().unwrap().len(), 4, "4-level walk");
        assert!(h.remote_reads.lock().unwrap().is_empty());
        // Latency: 10 (TLB) + 10 (PWC) + 4 sequential reads of ~52 each.
        let t = h.rsp.lock().unwrap()[0].0;
        assert!(t > 220, "sequential walk latency, got {t}");
    }

    #[test]
    fn pwc_accelerates_neighbouring_walks() {
        let mut pt = PageTable::new(1 << 24);
        pt.map(0x42, 0x7, GpuId(0));
        pt.map(0x43, 0x8, GpuId(0)); // same leaf table
        let mut h = harness(pt, 16);
        h.engine.inject(h.tu, treq(0x42), 1);
        h.engine.run_to_quiescence(5000);
        assert_eq!(h.local_reads.lock().unwrap().len(), 4);
        // Second walk: PWC has levels 1-3 cached -> only the leaf read.
        h.engine.inject(h.tu, treq(0x43), 1);
        h.engine.run_to_quiescence(5000);
        assert_eq!(h.local_reads.lock().unwrap().len(), 5, "only 1 extra read");
    }

    #[test]
    fn l2_tlb_hit_skips_walk() {
        let mut pt = PageTable::new(1 << 24);
        pt.map(0x42, 0x7, GpuId(0));
        let mut h = harness(pt, 16);
        h.engine.inject(h.tu, treq(0x42), 1);
        h.engine.run_to_quiescence(5000);
        let reads_after_first = h.local_reads.lock().unwrap().len();
        h.engine.inject(h.tu, treq(0x42), 1);
        h.engine.run_to_quiescence(5000);
        assert_eq!(h.rsp.lock().unwrap().len(), 2);
        assert_eq!(
            h.local_reads.lock().unwrap().len(),
            reads_after_first,
            "no new reads"
        );
    }

    #[test]
    fn concurrent_same_vpn_requests_share_one_walk() {
        let mut pt = PageTable::new(1 << 24);
        pt.map(0x42, 0x7, GpuId(0));
        let mut h = harness(pt, 16);
        h.engine.inject(h.tu, treq(0x42), 1);
        h.engine.inject(h.tu, treq(0x42), 2);
        h.engine.inject(h.tu, treq(0x42), 3);
        h.engine.run_to_quiescence(5000);
        assert_eq!(h.rsp.lock().unwrap().len(), 3, "all requesters answered");
        assert_eq!(h.local_reads.lock().unwrap().len(), 4, "single walk");
    }

    #[test]
    fn remote_pte_reads_go_to_rdma() {
        let mut pt = PageTable::new(1 << 24);
        pt.map(0x42, 0x7, GpuId(2)); // PT nodes placed on gpu2
        let mut h = harness(pt, 16);
        h.engine.inject(h.tu, treq(0x42), 1);
        h.engine.run_to_quiescence(10_000);
        assert_eq!(h.rsp.lock().unwrap().len(), 1);
        assert_eq!(h.remote_reads.lock().unwrap().len(), 4);
        assert!(h.local_reads.lock().unwrap().is_empty());
        assert!(h
            .remote_reads
            .lock()
            .unwrap()
            .iter()
            .all(|r| r.class == TrafficClass::Ptw));
        assert!(h
            .remote_reads
            .lock()
            .unwrap()
            .iter()
            .all(|r| r.owner == GpuId(2)));
    }

    #[test]
    fn tlb_mshr_cap_retries_instead_of_dropping() {
        // waiter_cap is 4 (mshr_entries in the harness config); issue 6
        // distinct vpns at once — all must still complete.
        let mut pt = PageTable::new(1 << 24);
        for i in 0..6u64 {
            pt.map(0x100 + i * (1 << 12), 0x10 + i, GpuId(0));
        }
        let mut h = harness(pt, 16);
        for i in 0..6u64 {
            h.engine.inject(h.tu, treq(0x100 + i * (1 << 12)), 1);
        }
        h.engine.run_to_quiescence(50_000);
        assert_eq!(
            h.rsp.lock().unwrap().len(),
            6,
            "capped MSHR retries, never drops"
        );
    }

    #[test]
    fn walk_latency_statistics_recorded() {
        let mut pt = PageTable::new(1 << 24);
        pt.map(0x42, 0x7, GpuId(0));
        let mut h = harness(pt, 16);
        h.engine.inject(h.tu, treq(0x42), 1);
        h.engine.run_to_quiescence(5_000);
        let tu: &TranslationUnit = h.engine.get(h.tu).expect("tu");
        assert_eq!(tu.stats.walks, 1);
        assert_eq!(tu.stats.walk_reads_hist[4], 1, "cold walk reads 4 levels");
        assert!(tu.stats.walk_latency.mean() > 100.0, "4 sequential reads");
        let mut m = Metrics::new();
        tu.stats.report(&mut m, "g");
        assert_eq!(m.counter("g.walks"), 1);
        assert_eq!(m.counter("g.local_pt_reads"), 4);
    }

    #[test]
    fn walker_limit_queues_walks() {
        let mut pt = PageTable::new(1 << 24);
        // Two far-apart vpns -> distinct walks.
        pt.map(0x42, 0x7, GpuId(0));
        pt.map(0x42 + (1 << 18), 0x8, GpuId(0));
        let mut h = harness(pt, 1); // single walker
        h.engine.inject(h.tu, treq(0x42), 1);
        h.engine.inject(h.tu, treq(0x42 + (1 << 18)), 1);
        h.engine.run_to_quiescence(10_000);
        assert_eq!(
            h.rsp.lock().unwrap().len(),
            2,
            "both walks complete eventually"
        );
    }
}
