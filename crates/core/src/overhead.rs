//! Hardware cost model of the NetCrafter controller (§4.5).
//!
//! Each GPU cluster's switch hosts one controller. Its SRAM cost is the
//! Cluster Queue (1024 entries × one flit each in the Table 2
//! configuration) plus the Stitching Engine's single-flit working buffer.
//! The paper reports 16.02 KB per cluster — 0.098% of an AMD Instinct
//! MI250X's 16 MB L2, or 0.024% of an Intel Tofino switch's 64 MB SRAM.

/// SRAM footprint of one NetCrafter controller, in bytes.
///
/// * `cq_entries` — Cluster Queue capacity in flits (Table 2: 1024).
/// * `flit_bytes` — flit size (16 B baseline), which is both the CQ entry
///   width and the Stitching Engine's working-buffer size.
pub fn controller_sram_bytes(cq_entries: u32, flit_bytes: u32) -> u64 {
    cq_entries as u64 * flit_bytes as u64 + flit_bytes as u64
}

/// The controller's SRAM as a fraction of a host memory of `host_bytes`
/// (e.g. the cluster GPU's L2 capacity).
pub fn overhead_fraction(cq_entries: u32, flit_bytes: u32, host_bytes: u64) -> f64 {
    controller_sram_bytes(cq_entries, flit_bytes) as f64 / host_bytes as f64
}

/// AMD Instinct MI250X L2 capacity, the paper's reference host (16 MB).
pub const MI250X_L2_BYTES: u64 = 16 * 1024 * 1024;

/// Intel Tofino programmable-switch SRAM, the paper's alternative host
/// (64 MB).
pub const TOFINO_SRAM_BYTES: u64 = 64 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the §4.5 numbers exactly.
    #[test]
    fn paper_overhead_numbers() {
        let bytes = controller_sram_bytes(1024, 16);
        // 16 KB cluster queue + 16 B stitch buffer = 16.02 KB (paper).
        assert_eq!(bytes, 16 * 1024 + 16);
        assert!((bytes as f64 / 1024.0 - 16.015_625).abs() < 1e-9);

        // "about 0.098% of the L2 cache size (16MB) of the MI250X".
        let frac = overhead_fraction(1024, 16, MI250X_L2_BYTES);
        assert!((frac * 100.0 - 0.0977).abs() < 0.001, "{}", frac * 100.0);

        // "with ... Tofino (64MB SRAM), the overhead drops to 0.024%".
        let frac = overhead_fraction(1024, 16, TOFINO_SRAM_BYTES);
        assert!((frac * 100.0 - 0.0244).abs() < 0.001, "{}", frac * 100.0);
    }

    #[test]
    fn scales_with_configuration() {
        // 8 B flits halve the SRAM; doubling entries doubles it.
        assert_eq!(controller_sram_bytes(1024, 8), 8 * 1024 + 8);
        assert_eq!(controller_sram_bytes(2048, 16), 32 * 1024 + 16);
    }
}
