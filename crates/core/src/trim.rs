//! The Trim Engine (§4.3): drops the unneeded payload of read responses
//! that must traverse the inter-cluster network.
//!
//! A read request whose coalesced byte mask fits in a single sector and
//! whose response will cross clusters carries trim bits (one "needs ≤ one
//! sector" bit plus the sector offset, repurposed from unused address
//! bits — [`TrimInfo`]). When the owning GPU builds the response, the Trim
//! Engine honours those bits: the response carries one sector (granularity
//! bytes) instead of the full 64 B line, shrinking a Read Rsp from 5 flits
//! to 2 at 16 B flits.
//!
//! Placement note: the paper houses the Trim Engine in the cluster
//! switch's NetCrafter controller; this implementation applies the
//! identical decision at the responding RDMA engine during packet
//! creation (the crossing predicate is static, so the outcome is the
//! same on the lower-bandwidth network — see DESIGN.md §1).

use netcrafter_proto::{MemReq, Metrics, TrimInfo};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

/// Trim statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrimStats {
    /// Read responses considered (inter-cluster reads).
    pub considered: u64,
    /// Responses actually trimmed.
    pub trimmed: u64,
    /// Payload bytes removed from the network by trimming.
    pub bytes_saved: u64,
}

impl Snap for TrimStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.considered.save(w);
        self.trimmed.save(w);
        self.bytes_saved.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TrimStats {
            considered: Snap::load(r)?,
            trimmed: Snap::load(r)?,
            bytes_saved: Snap::load(r)?,
        })
    }
}

impl TrimStats {
    /// Dumps counters under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.considered"), self.considered);
        metrics.add(&format!("{prefix}.trimmed"), self.trimmed);
        metrics.add(&format!("{prefix}.bytes_saved"), self.bytes_saved);
    }
}

/// The Trim Engine.
#[derive(Debug)]
pub struct TrimEngine {
    enabled: bool,
    granularity: u32,
    /// Statistics.
    pub stats: TrimStats,
}

impl TrimEngine {
    /// Creates a Trim Engine; when `enabled` is false every decision is
    /// "keep the full line" (the baseline).
    pub fn new(enabled: bool, granularity: u32) -> Self {
        assert!(granularity > 0 && 64 % granularity == 0);
        Self {
            enabled,
            granularity,
            stats: TrimStats::default(),
        }
    }

    /// Configured sector granularity in bytes.
    pub fn granularity(&self) -> u32 {
        self.granularity
    }

    /// Computes the trim bits a *request* should carry: `Some` when
    /// trimming is on, the access fits one sector, and the response will
    /// cross clusters.
    // lint:allow(tracer-threading) pure policy query; the caller (Rdma) emits
    // the trim.* trace events next to the call with its own tracer
    pub fn request_bits(&self, req: &MemReq, crosses_clusters: bool) -> Option<TrimInfo> {
        if !self.enabled || !crosses_clusters || req.write {
            return None;
        }
        let g = self.granularity as u64;
        if req.mask.fits_one_sector(g) {
            Some(TrimInfo {
                granularity: self.granularity,
                sector: req.mask.first_sector(g).expect("non-empty mask"),
            })
        } else {
            None
        }
    }

    /// Accounts a read response of `payload_bytes` (derived by the caller
    /// from the sectors the fill policy requested). A sub-line payload on
    /// a cross-cluster response is a trim performed by this engine; with
    /// the engine disabled (the sector-cache baseline also produces
    /// partial responses) nothing is counted as trimmed.
    // lint:allow(tracer-threading) statistics accumulator only; the caller
    // (Rdma) emits trim.saved trace events alongside with its own tracer
    pub fn record_response(&mut self, payload_bytes: u32, crosses_clusters: bool) {
        if !crosses_clusters {
            return;
        }
        self.stats.considered += 1;
        if self.enabled && payload_bytes < 64 {
            self.stats.trimmed += 1;
            self.stats.bytes_saved += 64 - payload_bytes as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::{AccessId, GpuId, LineAddr, LineMask, Origin, TrafficClass};

    fn req(mask: LineMask) -> MemReq {
        MemReq {
            access: AccessId(1),
            line: LineAddr(0x40),
            write: false,
            mask,
            sectors: 0b1111,
            class: TrafficClass::Data,
            requester: GpuId(3),
            owner: GpuId(0),
            origin: Origin::Cu(0),
        }
    }

    #[test]
    fn small_cross_cluster_read_gets_trim_bits() {
        let te = TrimEngine::new(true, 16);
        let bits = te.request_bits(&req(LineMask::span(16, 8)), true);
        assert_eq!(
            bits,
            Some(TrimInfo {
                granularity: 16,
                sector: 1
            })
        );
    }

    #[test]
    fn intra_cluster_read_is_never_trimmed() {
        let te = TrimEngine::new(true, 16);
        assert_eq!(te.request_bits(&req(LineMask::span(16, 8)), false), None);
    }

    #[test]
    fn wide_access_is_not_trimmed() {
        let te = TrimEngine::new(true, 16);
        assert_eq!(te.request_bits(&req(LineMask::span(8, 32)), true), None);
    }

    #[test]
    fn disabled_engine_never_trims() {
        let te = TrimEngine::new(false, 16);
        assert_eq!(te.request_bits(&req(LineMask::span(0, 4)), true), None);
    }

    #[test]
    fn writes_are_not_trimmed() {
        let te = TrimEngine::new(true, 16);
        let mut r = req(LineMask::span(0, 4));
        r.write = true;
        assert_eq!(te.request_bits(&r, true), None);
    }

    #[test]
    fn trimmed_response_accounted() {
        let mut te = TrimEngine::new(true, 16);
        te.record_response(16, true);
        assert_eq!(te.stats.considered, 1);
        assert_eq!(te.stats.trimmed, 1);
        assert_eq!(te.stats.bytes_saved, 48);
        // Intra-cluster responses are never considered.
        te.record_response(16, false);
        assert_eq!(te.stats.considered, 1);
    }

    #[test]
    fn full_response_not_counted_as_trim() {
        let mut te = TrimEngine::new(true, 16);
        te.record_response(64, true);
        assert_eq!(te.stats.considered, 1);
        assert_eq!(te.stats.trimmed, 0);
    }

    #[test]
    fn disabled_engine_counts_no_trims_for_partial_responses() {
        // The sector-cache baseline produces partial responses with the
        // trim engine disabled; they are not NetCrafter trims.
        let mut te = TrimEngine::new(false, 16);
        te.record_response(16, true);
        assert_eq!(te.stats.considered, 1);
        assert_eq!(te.stats.trimmed, 0);
        assert_eq!(te.stats.bytes_saved, 0);
    }

    #[test]
    fn fine_granularities() {
        let te4 = TrimEngine::new(true, 4);
        let bits = te4.request_bits(&req(LineMask::span(60, 4)), true);
        assert_eq!(
            bits,
            Some(TrimInfo {
                granularity: 4,
                sector: 15
            })
        );
        let mut te8 = TrimEngine::new(true, 8);
        te8.record_response(8, true);
        assert_eq!(te8.stats.bytes_saved, 56);
    }

    #[test]
    fn stats_report() {
        let mut te = TrimEngine::new(true, 16);
        te.record_response(16, true);
        let mut m = Metrics::new();
        te.stats.report(&mut m, "trim");
        assert_eq!(m.counter("trim.trimmed"), 1);
        assert_eq!(m.counter("trim.bytes_saved"), 48);
    }
}
