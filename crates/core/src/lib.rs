//! **NetCrafter** — the paper's contribution: a switch-resident controller
//! that tailors the flit stream of the lower-bandwidth inter-GPU-cluster
//! links (§4).
//!
//! The controller combines three mechanisms:
//!
//! * **Stitching** ([`ClusterQueue`]) — merges partly-empty flits heading
//!   to the same destination cluster into single flits, reclaiming the
//!   padding bytes of Table 1 / Figure 6. *Flit Pooling* optionally delays
//!   a flit that found no stitch candidate for a bounded window so one can
//!   arrive; *Selective Flit Pooling* exempts latency-critical PTW flits
//!   from that delay.
//! * **Trimming** ([`TrimEngine`]) — read responses crossing clusters
//!   whose requester needs at most one sector carry only that sector
//!   (20 wire bytes instead of 68), cutting a 5-flit response to 2 flits.
//! * **Sequencing** — the Cluster Queue's scheduler serves the partitions
//!   holding page-table (PTW) flits first, keeping translation traffic —
//!   which averages only ~13% of inter-cluster bytes but sits on the
//!   critical path of reads — from queueing behind bulk data.
//!
//! The [`ClusterQueue`] plugs into a cluster switch's inter-cluster egress
//! port via the [`netcrafter_net::EgressQueue`] trait; un-stitching at the
//! receiving cluster switch is performed by
//! [`netcrafter_net::Switch`]'s routing stage, mirroring the receiver-side
//! Stitching Engine of §4.4.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cq;
pub mod overhead;
pub mod rng;
pub mod trim;

pub use cq::{ClusterQueue, ClusterQueueStats};
pub use overhead::{controller_sram_bytes, overhead_fraction};
pub use rng::SplitMix64;
pub use trim::{TrimEngine, TrimStats};
