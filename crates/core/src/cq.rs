//! The Cluster Queue and Stitching Engine (§4.2, §4.4): the egress-side
//! heart of the NetCrafter controller.
//!
//! Flits destined to cross the inter-cluster link are buffered in
//! per-packet-type partitions (the request type determines how many empty
//! bytes a flit has — Table 1). A round-robin scheduler drains the
//! partitions; when Sequencing is enabled the partitions holding
//! PTW-related flits are served first. On each ejection the Stitching
//! Engine searches the partitions for candidate flits that (1) fit in the
//! parent's empty bytes and (2) share the destination cluster (guaranteed
//! here: one Cluster Queue serves one inter-cluster port), stitching as
//! many as fit. A parent that found no candidate may be *pooled* — moved
//! to a per-partition side slot for a bounded window so a candidate can
//! arrive — unless it is latency-critical (Selective Flit Pooling) or the
//! window is disabled. Two refinements keep pooling's latency cost below
//! its bandwidth win: the partition behind a pooled flit keeps flowing
//! (only the pooled flit pays the delay), and an arriving flit that fits
//! a pooled parent stitches immediately, releasing it before the timer.
//!
//! Stitched flits are re-addressed to the remote cluster switch, whose
//! routing stage un-stitches them and forwards each chunk to its own GPU
//! (see [`netcrafter_net::Switch`]).

use std::collections::VecDeque;

use netcrafter_net::EgressQueue;
use netcrafter_proto::{Flit, Metrics, NetCrafterConfig, NodeId, PacketKind, ALL_PACKET_KINDS};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{Cycle, EventClass, Tracer};

/// Smallest parent free space worth pooling for: a 4-byte write response
/// (whole packet, no metadata) is the smallest useful candidate, so
/// parents with at least 4 free bytes may wait for one. This matters for
/// the Selective Flit Pooling comparison: PTW flits have exactly 4 empty
/// bytes, so under *plain* pooling they wait too — the latency cost
/// Selective Flit Pooling removes (§4.2, Optimization II).
const MIN_POOL_BYTES: u32 = 4;

/// Cluster Queue statistics (Figures 12 and 20 derive from these).
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterQueueStats {
    /// Flits accepted into the queue.
    pub pushed: u64,
    /// Flits ejected into the link.
    pub popped: u64,
    /// Ejected flits that carried stitched content.
    pub stitched_parents: u64,
    /// Candidate flits absorbed into parents (each absorbed candidate is
    /// one flit that never occupies the link on its own).
    pub absorbed_candidates: u64,
    /// Times a parent was pooled to wait for candidates.
    pub pool_events: u64,
    /// Pooled parents ejected un-stitched after their window expired.
    pub pool_expired_unstitched: u64,
    /// Pops served from the PTW-priority partitions under Sequencing.
    pub ptw_priority_pops: u64,
    /// High-water mark of total occupancy.
    pub peak_occupancy: u64,
}

impl Snap for ClusterQueueStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.pushed.save(w);
        self.popped.save(w);
        self.stitched_parents.save(w);
        self.absorbed_candidates.save(w);
        self.pool_events.save(w);
        self.pool_expired_unstitched.save(w);
        self.ptw_priority_pops.save(w);
        self.peak_occupancy.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ClusterQueueStats {
            pushed: Snap::load(r)?,
            popped: Snap::load(r)?,
            stitched_parents: Snap::load(r)?,
            absorbed_candidates: Snap::load(r)?,
            pool_events: Snap::load(r)?,
            pool_expired_unstitched: Snap::load(r)?,
            ptw_priority_pops: Snap::load(r)?,
            peak_occupancy: Snap::load(r)?,
        })
    }
}

impl ClusterQueueStats {
    /// Dumps counters under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.cq.pushed"), self.pushed);
        metrics.add(&format!("{prefix}.cq.popped"), self.popped);
        metrics.add(
            &format!("{prefix}.cq.stitched_parents"),
            self.stitched_parents,
        );
        metrics.add(&format!("{prefix}.cq.absorbed"), self.absorbed_candidates);
        metrics.add(&format!("{prefix}.cq.pool_events"), self.pool_events);
        metrics.add(
            &format!("{prefix}.cq.pool_expired_unstitched"),
            self.pool_expired_unstitched,
        );
        metrics.add(
            &format!("{prefix}.cq.ptw_priority_pops"),
            self.ptw_priority_pops,
        );
        metrics.add(&format!("{prefix}.cq.peak_occupancy"), self.peak_occupancy);
    }
}

/// The NetCrafter Cluster Queue for one inter-cluster egress port.
///
/// # Examples
///
/// Two read-response tails stitch into one flit (the paper's first
/// Figure 11 scenario):
///
/// ```
/// use netcrafter_core::ClusterQueue;
/// use netcrafter_net::{EgressQueue, Segmenter};
/// use netcrafter_proto::{
///     AccessId, GpuId, LineAddr, LineMask, MemRsp, NetCrafterConfig, NodeId, Origin,
///     Packet, PacketId, PacketKind, PacketPayload, TrafficClass,
/// };
///
/// let seg = Segmenter::new(16);
/// let mut cq = ClusterQueue::new(NetCrafterConfig::stitching_only(), NodeId(5));
/// for id in 0..2u64 {
///     let rsp = Packet {
///         id: PacketId(id),
///         kind: PacketKind::ReadRsp,
///         src: NodeId(0),
///         dst: NodeId(3),
///         payload_bytes: 64,
///         trim: None,
///         inner: PacketPayload::Rsp(MemRsp {
///             access: AccessId(id),
///             line: LineAddr(id * 64),
///             write: false,
///             sectors_valid: 0b1111,
///             class: TrafficClass::Data,
///             requester: GpuId(3),
///             owner: GpuId(0),
///             origin: Origin::Cu(0),
///         }),
///     };
///     for flit in seg.segment(rsp) {
///         cq.push(flit, 0);
///     }
/// }
/// // 10 flits went in; the second packet's 4-byte tail rides inside the
/// // first packet's tail, so only 9 come out.
/// let mut out = Vec::new();
/// let mut now = 0;
/// while cq.len() > 0 {
///     now += 1;
///     out.extend(cq.pop(now));
/// }
/// assert_eq!(out.len(), 9);
/// assert_eq!(out.iter().filter(|f| f.is_stitched()).count(), 1);
/// ```
#[derive(Debug)]
pub struct ClusterQueue {
    // lint:allow(snapshot-field-parity) construction-time config; the restore target is built from the same config
    cfg: NetCrafterConfig,
    /// Node of the cluster switch on the far end of this port's link;
    /// stitched flits are addressed to it for un-stitching.
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    remote_switch: NodeId,
    queues: [VecDeque<Flit>; 6],
    /// Per-partition pooling side slot: a parent waiting (until the given
    /// cycle) for a stitch candidate. The partition behind it keeps
    /// flowing — only the pooled flit pays the window.
    pooled: [Option<(Flit, Cycle)>; 6],
    rr: usize,
    // lint:allow(snapshot-field-parity) derived occupancy; load_state recomputes it from the restored queues
    len: usize,
    /// Statistics.
    pub stats: ClusterQueueStats,
}

impl ClusterQueue {
    /// Creates the queue for a port whose far end is `remote_switch`.
    pub fn new(cfg: NetCrafterConfig, remote_switch: NodeId) -> Self {
        Self {
            cfg,
            remote_switch,
            queues: Default::default(),
            pooled: Default::default(),
            rr: 0,
            len: 0,
            stats: ClusterQueueStats::default(),
        }
    }

    #[inline]
    fn is_ptw_partition(qi: usize) -> bool {
        ALL_PACKET_KINDS[qi].is_ptw()
    }

    /// Partition of a flit: its leading chunk's packet type.
    #[inline]
    fn partition_of(flit: &Flit) -> usize {
        flit.chunks[0].kind.index()
    }

    /// Service order for this pop: PTW partitions first under Sequencing,
    /// then data partitions in round-robin order. `active` is false while
    /// the controller is still inside its warmup window (see
    /// [`NetCrafterConfig::active_at`]): every policy falls back to plain
    /// round-robin so warmup behaviour is knob-independent.
    fn service_order(&self, active: bool) -> [usize; 6] {
        let mut order = [0usize; 6];
        let mut n = 0;
        if self.cfg.sequencing && active {
            // Figure 8's counterfactual prioritizes data reads instead of
            // PTW traffic; the real design prioritizes PTW (§4.3).
            let priority: [usize; 2] = if self.cfg.prioritize_data_instead {
                [PacketKind::ReadRsp.index(), PacketKind::ReadReq.index()]
            } else {
                [
                    PacketKind::PageTableRsp.index(),
                    PacketKind::PageTableReq.index(),
                ]
            };
            for qi in priority {
                order[n] = qi;
                n += 1;
            }
            for step in 0..6 {
                let qi = (self.rr + step) % 6;
                if !priority.contains(&qi) {
                    order[n] = qi;
                    n += 1;
                }
            }
        } else {
            for step in 0..6 {
                order[n] = (self.rr + step) % 6;
                n += 1;
            }
        }
        debug_assert_eq!(n, 6);
        order
    }

    /// Absorbs every candidate that fits into `parent`, best-fit first.
    /// Returns the number of candidates stitched.
    fn stitch_into(&mut self, parent: &mut Flit) -> u64 {
        let mut absorbed = 0;
        loop {
            let mut best: Option<(usize, usize, u32)> = None;
            for qi in 0..6 {
                for (pos, cand) in self.queues[qi]
                    .iter()
                    .enumerate()
                    .take(self.cfg.stitch_search_depth as usize)
                {
                    if let Some(cost) = parent.stitch_cost(cand) {
                        if best.is_none_or(|(_, _, c)| cost > c) {
                            best = Some((qi, pos, cost));
                        }
                    }
                }
            }
            let Some((qi, pos, _)) = best else { break };
            let cand = self.queues[qi].remove(pos).expect("position valid");
            self.len -= 1;
            parent.stitch(cand);
            absorbed += 1;
        }
        absorbed
    }

    /// True if partition `qi` may be pooled: pooling is on, and the
    /// partition is not exempt (PTW partitions are exempt under Selective
    /// Flit Pooling, and the Sequencing design never sets their timer —
    /// §4.4 step 4e).
    fn poolable(&self, qi: usize) -> bool {
        self.cfg.stitching
            && self.cfg.pooling_window > 0
            && !(Self::is_ptw_partition(qi) && (self.cfg.selective_pooling || self.cfg.sequencing))
    }

    /// Final bookkeeping for an ejecting flit: statistics, re-addressing
    /// of stitched parents, and round-robin advance. `active` gates the
    /// Sequencing accounting the same way it gates `service_order`.
    fn finish(&mut self, mut parent: Flit, qi: usize, active: bool, tracer: &mut Tracer) -> Flit {
        if parent.is_stitched() {
            self.stats.stitched_parents += 1;
            parent.dst = self.remote_switch;
            tracer.instant(
                EventClass::Stitch,
                "stitch.eject",
                Self::flit_id(&parent),
                parent.chunks.len() as u64 - 1,
            );
        }
        self.stats.popped += 1;
        let prioritized = if self.cfg.prioritize_data_instead {
            qi == PacketKind::ReadRsp.index() || qi == PacketKind::ReadReq.index()
        } else {
            Self::is_ptw_partition(qi)
        };
        if self.cfg.sequencing && active && prioritized {
            self.stats.ptw_priority_pops += 1;
            tracer.instant(
                EventClass::Seq,
                "seq.priority_pop",
                Self::flit_id(&parent),
                qi as u64,
            );
        } else {
            // Advance round-robin past the partition just served.
            self.rr = (qi + 1) % 6;
        }
        parent
    }

    /// Total flits held (for tests and diagnostics).
    pub fn occupancy(&self) -> usize {
        self.len
    }

    /// Convenience pop without a tracer, for tests, benches and doctests.
    /// Simulation code goes through [`EgressQueue::pop`], which threads
    /// the engine's tracer so stitch/pool/sequence decisions are visible
    /// in traces.
    // lint:allow(tracer-threading) convenience wrapper for tests/benches; it
    // delegates to EgressQueue::pop with an explicit Tracer::off()
    pub fn pop(&mut self, now: Cycle) -> Option<Flit> {
        let mut tracer = Tracer::off();
        EgressQueue::pop(self, now, &mut tracer)
    }

    #[inline]
    fn flit_id(flit: &Flit) -> u64 {
        flit.chunks.first().map_or(0, |c| c.packet.0)
    }
}

impl EgressQueue for ClusterQueue {
    fn push(&mut self, flit: Flit, now: Cycle) {
        self.stats.pushed += 1;
        // Stitch-on-arrival: a pooled parent is waiting for exactly this
        // kind of arrival. If the new flit fits one, stitch immediately
        // and make the parent ready to eject — the wait ends the moment
        // its purpose is served, rather than at timer expiry when
        // transient candidates have long drained.
        if self.cfg.stitching && self.cfg.active_at(now) {
            for qi in 0..6 {
                if let Some((parent, until)) = self.pooled[qi].as_mut() {
                    if parent.stitch_cost(&flit).is_some() {
                        parent.stitch(flit);
                        self.stats.absorbed_candidates += 1;
                        *until = now; // ready at the partition's next turn
                        return;
                    }
                }
            }
        }
        self.len += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.len as u64);
        self.queues[Self::partition_of(&flit)].push_back(flit);
    }

    fn pop(&mut self, now: Cycle, tracer: &mut Tracer) -> Option<Flit> {
        // Inside the warmup window every policy is inert: plain round-robin
        // service, no stitching, no pooling, no sequencing. This makes the
        // pre-activation trajectory identical across all knob settings that
        // share a roster, which is what lets sweep jobs share one simulated
        // prefix (see DESIGN.md §3.7).
        let active = self.cfg.active_at(now);
        for qi in self.service_order(active) {
            // 1. A ripe pooled flit leaves first: its window expired (or
            //    a candidate arrived and cleared the timer). One last
            //    candidate search runs before ejection (§4.4 step 4f).
            if self.pooled[qi]
                .as_ref()
                .is_some_and(|(_, until)| *until <= now)
            {
                let (mut parent, _) = self.pooled[qi].take().expect("checked above");
                self.len -= 1;
                let absorbed = if self.cfg.stitching && active {
                    self.stitch_into(&mut parent)
                } else {
                    0
                };
                if absorbed == 0 && !parent.is_stitched() {
                    self.stats.pool_expired_unstitched += 1;
                    tracer.instant(EventClass::Pool, "pool.expired", Self::flit_id(&parent), 0);
                }
                self.stats.absorbed_candidates += absorbed;
                return Some(self.finish(parent, qi, active, tracer));
            }
            // 2. The regular front of the partition. If the front moves
            //    to the pooling side slot, the next flit behind it is
            //    considered in the same turn — pooling never stalls the
            //    partition, only the pooled flit.
            while let Some(mut parent) = self.queues[qi].pop_front() {
                let absorbed = if self.cfg.stitching && active {
                    self.stitch_into(&mut parent)
                } else {
                    0
                };
                if absorbed == 0
                    && active
                    && self.poolable(qi)
                    && parent.empty_bytes() >= MIN_POOL_BYTES
                    && self.pooled[qi].is_none()
                {
                    // Pool into the side slot; try the next flit.
                    self.stats.pool_events += 1;
                    tracer.instant(
                        EventClass::Pool,
                        "pool.park",
                        Self::flit_id(&parent),
                        parent.empty_bytes() as u64,
                    );
                    self.pooled[qi] = Some((parent, now + self.cfg.pooling_window as Cycle));
                    continue;
                }
                self.len -= 1;
                self.stats.absorbed_candidates += absorbed;
                return Some(self.finish(parent, qi, active, tracer));
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }

    fn pooled_len(&self) -> usize {
        self.pooled.iter().filter(|slot| slot.is_some()).count()
    }

    fn held_chunks(&self) -> usize {
        // Exact count for the owning port's debug-build conservation
        // invariant: stitching moves chunks between held flits (and into
        // the ejecting parent) but never creates or destroys them.
        let queued: usize = self
            .queues
            .iter()
            .flat_map(|q| q.iter())
            .map(|f| f.chunks.len())
            .sum();
        let pooled: usize = self
            .pooled
            .iter()
            .flatten()
            .map(|(f, _)| f.chunks.len())
            .sum();
        queued + pooled
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // Any un-pooled flit can be served (or parked) immediately; with
        // only pooled parents left, nothing happens until the earliest
        // window expires — pops in between are side-effect-free, so the
        // owning port may sleep until then.
        if self.queues.iter().any(|q| !q.is_empty()) {
            return Some(now);
        }
        self.pooled.iter().flatten().map(|(_, until)| *until).min()
    }

    fn report(&self, metrics: &mut Metrics, prefix: &str) {
        self.stats.report(metrics, prefix);
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.queues.save(w);
        self.pooled.save(w);
        self.rr.save(w);
        self.stats.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.queues = Snap::load(r)?;
        self.pooled = Snap::load(r)?;
        let rr: usize = Snap::load(r)?;
        if rr >= 6 {
            return Err(SnapshotError::Corrupt(format!(
                "cluster queue round-robin cursor {rr} out of range"
            )));
        }
        self.rr = rr;
        self.stats = Snap::load(r)?;
        // Occupancy is derived, not stored: recomputing it keeps the
        // counter consistent with the restored queues by construction.
        self.len = self.queues.iter().map(VecDeque::len).sum::<usize>()
            + self.pooled.iter().flatten().count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::{Chunk, PacketId, TrafficClass};

    fn chunk(packet: u64, kind: PacketKind, bytes: u32, has_header: bool, is_tail: bool) -> Chunk {
        Chunk {
            packet: PacketId(packet),
            kind,
            bytes,
            meta_bytes: 0,
            has_header,
            is_tail,
            seq: if has_header { 0 } else { 4 },
            dst: NodeId(2),
            class: if kind.is_ptw() {
                TrafficClass::Ptw
            } else {
                TrafficClass::Data
            },
            packet_info: None,
        }
    }

    /// A read-response tail flit: 4 B used, 12 empty.
    fn rsp_tail(id: u64) -> Flit {
        Flit::single(16, chunk(id, PacketKind::ReadRsp, 4, false, true))
    }

    /// A whole read-request flit: 12 B used, 4 empty.
    fn read_req(id: u64) -> Flit {
        Flit::single(16, chunk(id, PacketKind::ReadReq, 12, true, true))
    }

    /// A whole write-response flit: 4 B used, 12 empty.
    fn write_rsp(id: u64) -> Flit {
        Flit::single(16, chunk(id, PacketKind::WriteRsp, 4, true, true))
    }

    /// A whole page-table response flit: 12 B used.
    fn pt_rsp(id: u64) -> Flit {
        Flit::single(16, chunk(id, PacketKind::PageTableRsp, 12, true, true))
    }

    fn cq(cfg: NetCrafterConfig) -> ClusterQueue {
        ClusterQueue::new(cfg, NodeId(99))
    }

    #[test]
    fn held_chunks_conserved_through_stitching_and_pooling() {
        // Backs the EgressPort debug-build conservation invariant: chunks
        // pushed == chunks popped + held_chunks(), even while stitching
        // merges flits and pooling parks them in side slots.
        let mut q = cq(NetCrafterConfig::full());
        let mut pushed = 0usize;
        let mut popped = 0usize;
        for id in 0..6u64 {
            let f = if id % 2 == 0 {
                read_req(id)
            } else {
                rsp_tail(id)
            };
            pushed += f.chunks.len();
            q.push(f, 0);
            assert_eq!(pushed, popped + q.held_chunks());
        }
        // Drain across the pooling window so parked parents eject too.
        for now in 0..200u64 {
            while let Some(f) = q.pop(now) {
                popped += f.chunks.len();
                assert_eq!(pushed, popped + q.held_chunks());
            }
        }
        assert_eq!(q.held_chunks(), 0, "queue drained");
        assert_eq!(pushed, popped, "every chunk pushed was ejected");
    }

    #[test]
    fn fifo_when_everything_disabled() {
        let mut q = cq(NetCrafterConfig::disabled());
        q.push(read_req(1), 0);
        q.push(rsp_tail(2), 0);
        let a = q.pop(1).unwrap();
        let b = q.pop(1).unwrap();
        assert_eq!(a.chunks[0].packet, PacketId(1));
        assert_eq!(b.chunks[0].packet, PacketId(2));
        assert!(q.pop(1).is_none());
        assert!(!a.is_stitched() && !b.is_stitched());
    }

    #[test]
    fn stitches_read_rsp_tails_back_to_back() {
        // The paper's first Figure 11 scenario: two read-response tails.
        let mut q = cq(NetCrafterConfig::stitching_only());
        q.push(rsp_tail(1), 0);
        q.push(rsp_tail(2), 0);
        let parent = q.pop(1).unwrap();
        assert!(parent.is_stitched());
        assert_eq!(parent.chunks.len(), 2);
        assert_eq!(
            parent.used_bytes(),
            4 + 4 + 2,
            "partial payload pays 2 B metadata"
        );
        assert_eq!(parent.dst, NodeId(99), "re-addressed to remote switch");
        assert!(q.pop(1).is_none(), "candidate was absorbed");
        assert_eq!(q.stats.absorbed_candidates, 1);
    }

    #[test]
    fn stitches_across_types_best_fit_first() {
        let mut q = cq(NetCrafterConfig::stitching_only());
        // Round-robin starts at the ReadReq partition, so the read-req is
        // the parent (12 B used, 4 empty). Candidates: a write-rsp (cost
        // 4, fits exactly) and a rsp tail (cost 4 + 2 = 6, does not fit).
        // Best fit picks the write-rsp.
        q.push(rsp_tail(1), 0);
        q.push(write_rsp(2), 0);
        q.push(read_req(3), 0);
        let parent = q.pop(1).unwrap();
        assert_eq!(parent.chunks.len(), 2);
        assert_eq!(parent.chunks[0].packet, PacketId(3));
        assert_eq!(parent.chunks[1].packet, PacketId(2));
        assert_eq!(parent.empty_bytes(), 0);
        // The rsp tail is still queued and ejects alone.
        let leftover = q.pop(1).unwrap();
        assert_eq!(leftover.chunks[0].packet, PacketId(1));
        assert!(!leftover.is_stitched());
    }

    #[test]
    fn multiple_small_candidates_fill_parent() {
        let mut q = cq(NetCrafterConfig::stitching_only());
        q.push(rsp_tail(1), 0); // 12 empty
        q.push(write_rsp(2), 0); // 4 B
        q.push(write_rsp(3), 0); // 4 B
        q.push(write_rsp(4), 0); // 4 B
        let parent = q.pop(1).unwrap();
        assert_eq!(parent.chunks.len(), 4, "parent + three 4 B candidates");
        assert_eq!(parent.empty_bytes(), 0);
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    fn pooling_delays_lonely_parent_until_candidate_arrives() {
        let mut cfg = NetCrafterConfig::stitching_only();
        cfg.pooling_window = 32;
        let mut q = cq(cfg);
        q.push(rsp_tail(1), 0);
        // No candidate: the parent moves to the pooling side slot.
        assert!(q.pop(10).is_none());
        assert_eq!(q.stats.pool_events, 1);
        assert_eq!(q.occupancy(), 1);
        // A candidate arriving inside the window stitches on arrival and
        // makes the parent ready immediately — well before cycle 42.
        q.push(write_rsp(2), 20);
        let parent = q.pop(21).unwrap();
        assert!(parent.is_stitched());
        assert_eq!(parent.chunks[0].packet, PacketId(1));
        assert_eq!(parent.chunks[1].packet, PacketId(2));
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    fn pooling_does_not_block_the_partition_behind() {
        let mut cfg = NetCrafterConfig::stitching_only();
        cfg.pooling_window = 32;
        let mut q = cq(cfg);
        q.push(rsp_tail(1), 0);
        // A full body flit queued behind the tail.
        q.push(
            Flit::single(16, chunk(9, PacketKind::ReadRsp, 16, true, false)),
            0,
        );
        // First pop pools the tail; the body flit is NOT stitchable into
        // it (16 > 12), and the partition keeps flowing: the same pop
        // call serves the body flit.
        let served = q.pop(5).unwrap();
        assert_eq!(served.chunks[0].packet, PacketId(9));
        assert_eq!(q.stats.pool_events, 1);
        // The pooled tail ejects at expiry.
        assert!(q.pop(36).is_none());
        let tail = q.pop(37).unwrap();
        assert_eq!(tail.chunks[0].packet, PacketId(1));
        assert!(!tail.is_stitched());
    }

    #[test]
    fn pool_expiry_ejects_unstitched() {
        let mut cfg = NetCrafterConfig::stitching_only();
        cfg.pooling_window = 32;
        let mut q = cq(cfg);
        q.push(rsp_tail(1), 0);
        assert!(q.pop(5).is_none()); // pooled at 5, until 37
        assert!(q.pop(36).is_none(), "still inside the window");
        let parent = q.pop(37).unwrap();
        assert!(!parent.is_stitched());
        assert_eq!(q.stats.pool_expired_unstitched, 1);
    }

    #[test]
    fn selective_pooling_exempts_ptw_flits() {
        let mut cfg = NetCrafterConfig::stitching_only();
        cfg.pooling_window = 32;
        cfg.selective_pooling = true;
        let mut q = cq(cfg);
        q.push(pt_rsp(1), 0); // 12 B used, 4 empty: could pool, but exempt
        let f = q.pop(1).unwrap();
        assert!(!f.is_stitched());
        assert_eq!(q.stats.pool_events, 0, "PTW flits are never pooled");
        // A data flit still pools.
        q.push(rsp_tail(2), 1);
        assert!(q.pop(2).is_none());
        assert_eq!(q.stats.pool_events, 1);
    }

    #[test]
    fn sequencing_serves_ptw_first() {
        let mut cfg = NetCrafterConfig::disabled();
        cfg.sequencing = true;
        let mut q = cq(cfg);
        q.push(rsp_tail(1), 0);
        q.push(read_req(2), 0);
        q.push(pt_rsp(3), 0);
        let first = q.pop(1).unwrap();
        assert_eq!(
            first.chunks[0].packet,
            PacketId(3),
            "PTW jumps the data flits"
        );
        assert_eq!(q.stats.ptw_priority_pops, 1);
    }

    #[test]
    fn sequencing_does_not_starve_data() {
        let mut cfg = NetCrafterConfig::disabled();
        cfg.sequencing = true;
        let mut q = cq(cfg);
        q.push(pt_rsp(1), 0);
        q.push(rsp_tail(2), 0);
        assert_eq!(q.pop(1).unwrap().chunks[0].packet, PacketId(1));
        assert_eq!(q.pop(1).unwrap().chunks[0].packet, PacketId(2));
        assert!(q.pop(1).is_none());
    }

    #[test]
    fn warmup_window_makes_every_knob_inert() {
        // Before `warmup_cycles` the full NetCrafter config must behave
        // exactly like the disabled roster: round-robin service, no
        // stitching, no pooling, no sequencing priority.
        let mut cfg = NetCrafterConfig::full();
        cfg.warmup_cycles = 1_000;
        let mut q = cq(cfg);
        q.push(rsp_tail(1), 0); // would stitch/pool if active
        q.push(rsp_tail(2), 0);
        q.push(pt_rsp(3), 0); // would jump the queue under sequencing
        let a = q.pop(10).unwrap();
        let b = q.pop(10).unwrap();
        let c = q.pop(10).unwrap();
        assert!(!a.is_stitched() && !b.is_stitched() && !c.is_stitched());
        // Round-robin starting at partition 0 serves ReadRsp then PtRsp.
        assert_eq!(a.chunks[0].packet, PacketId(1));
        assert_eq!(b.chunks[0].packet, PacketId(3));
        assert_eq!(c.chunks[0].packet, PacketId(2));
        assert_eq!(q.stats.pool_events, 0);
        assert_eq!(q.stats.absorbed_candidates, 0);
        assert_eq!(q.stats.ptw_priority_pops, 0);
        assert_eq!(q.stats.stitched_parents, 0);
    }

    #[test]
    fn policies_activate_at_warmup_boundary() {
        let mut cfg = NetCrafterConfig::stitching_only();
        cfg.warmup_cycles = 100;
        let mut q = cq(cfg);
        // At cycle 99 the two tails eject separately…
        q.push(rsp_tail(1), 99);
        q.push(rsp_tail(2), 99);
        assert!(!q.pop(99).unwrap().is_stitched());
        assert!(!q.pop(99).unwrap().is_stitched());
        // …at cycle 100 they stitch.
        q.push(rsp_tail(3), 100);
        q.push(rsp_tail(4), 100);
        let parent = q.pop(100).unwrap();
        assert!(parent.is_stitched());
        assert_eq!(parent.chunks.len(), 2);
        assert!(q.pop(100).is_none());
    }

    #[test]
    fn warmup_trajectory_matches_across_roster_members() {
        // Two configs in the same prefix group (ClusterQueue roster, same
        // trimming, different policy knobs) must produce byte-identical
        // pop sequences while the warmup window is open.
        let mut a_cfg = NetCrafterConfig::full();
        a_cfg.warmup_cycles = 1_000;
        let mut b_cfg = NetCrafterConfig::stitching_only();
        b_cfg.sequencing = true;
        b_cfg.warmup_cycles = 1_000;
        let mut a = cq(a_cfg);
        let mut b = cq(b_cfg);
        for id in 0..12u64 {
            let f = match id % 3 {
                0 => read_req(id),
                1 => rsp_tail(id),
                _ => pt_rsp(id),
            };
            a.push(f.clone(), id);
            b.push(f, id);
        }
        for now in 12..40u64 {
            let fa = a.pop(now);
            let fb = b.pop(now);
            match (&fa, &fb) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.chunks[0].packet, y.chunks[0].packet);
                    assert_eq!(x.is_stitched(), y.is_stitched());
                }
                (None, None) => {}
                _ => panic!("divergent pop at cycle {now}: {fa:?} vs {fb:?}"),
            }
        }
        assert_eq!(a.occupancy(), 0);
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn round_robin_rotates_partitions() {
        let mut q = cq(NetCrafterConfig::disabled());
        // Two partitions with two flits each; service alternates.
        q.push(read_req(1), 0);
        q.push(read_req(2), 0);
        q.push(write_rsp(3), 0);
        q.push(write_rsp(4), 0);
        let order: Vec<u64> = (0..4)
            .map(|_| q.pop(1).unwrap().chunks[0].packet.raw())
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4], "alternating service");
    }

    #[test]
    fn full_netcrafter_stitches_ptw_parent_without_pooling_it() {
        let mut q = cq(NetCrafterConfig::full());
        q.push(pt_rsp(1), 0); // parent, 4 empty
        q.push(write_rsp(2), 0); // 4 B candidate fits exactly
        let parent = q.pop(1).unwrap();
        assert!(parent.is_stitched());
        assert_eq!(parent.chunks.len(), 2);
        assert_eq!(parent.class(), TrafficClass::Ptw);
        assert_eq!(q.stats.pool_events, 0);
    }

    #[test]
    fn stitching_pulls_tail_from_behind_full_flits() {
        let mut q = cq(NetCrafterConfig::stitching_only());
        q.push(rsp_tail(1), 0); // parent
                                // A full body flit at the front of the ReadRsp queue… wait, the
                                // parent IS the front. Put a full header flit of packet 2 then its
                                // tail; the engine must skip the 16 B flit and take the 4 B tail.
        q.push(
            Flit::single(16, chunk(2, PacketKind::ReadRsp, 16, true, false)),
            0,
        );
        q.push(rsp_tail(2), 0);
        let parent = q.pop(1).unwrap();
        assert!(parent.is_stitched());
        assert_eq!(parent.chunks[1].packet, PacketId(2));
        assert!(parent.chunks[1].is_tail);
        // The body flit is still there.
        let body = q.pop(1).unwrap();
        assert_eq!(body.used_bytes(), 16);
    }

    #[test]
    fn occupancy_accounting_is_exact() {
        let mut cfg = NetCrafterConfig::stitching_only();
        cfg.pooling_window = 16;
        let mut q = cq(cfg);
        for i in 0..5 {
            q.push(write_rsp(i), 0);
        }
        assert_eq!(q.occupancy(), 5);
        assert_eq!(q.stats.peak_occupancy, 5);
        // First pop: parent (4 used, 12 empty) absorbs three more 4 B
        // write responses (12 bytes).
        let parent = q.pop(1).unwrap();
        assert_eq!(parent.chunks.len(), 4);
        assert_eq!(q.occupancy(), 1);
        // The last flit pools (12 empty bytes, no candidates) and ejects
        // at expiry.
        assert!(q.pop(100).is_none());
        let last = q.pop(116).unwrap(); // 100 + 16-cycle window
        assert!(!last.is_stitched());
        assert_eq!(q.stats.pool_events, 1);
        assert_eq!(q.occupancy(), 0);
        assert_eq!(q.len(), 0);
    }
}
