//! A small deterministic PRNG (SplitMix64) used by the workload
//! generators and randomized tests.
//!
//! The repository builds fully offline, so it cannot depend on the `rand`
//! crate; SplitMix64 is tiny, statistically solid for trace generation,
//! and — crucially — *stable*: the stream produced for a given seed is
//! part of the experiment-reproducibility contract (EXPERIMENTS.md
//! records figures generated from these streams).

use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

/// SplitMix64: Sebastiano Vigna's 64-bit mixer-based generator.
///
/// Every workload generator derives one `SplitMix64` from
/// `seed ^ workload-constant`, so traces are deterministic in
/// `(scale, seed)` and independent across workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl Snap for SplitMix64 {
    fn save(&self, w: &mut SnapshotWriter) {
        self.state.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SplitMix64 {
            state: Snap::load(r)?,
        })
    }
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction with a rejection loop, so
    /// the distribution is exactly uniform for every `n`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Reject the partial top interval to avoid modulo bias.
        let threshold = n.wrapping_neg() % n;
        loop {
            let wide = (self.next_u64() as u128) * (n as u128);
            if wide as u64 >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`; returns 0 when `n == 0`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num / den` (like `rand`'s `gen_ratio`).
    pub fn ratio(&mut self, num: u32, den: u32) -> bool {
        debug_assert!(den > 0 && num <= den);
        self.below(den as u64) < num as u64
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below_usize(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = SplitMix64::new(11);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.range(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
        assert_eq!(r.range(5, 5), 5);
    }

    #[test]
    fn ratio_tracks_probability() {
        let mut r = SplitMix64::new(13);
        let hits = (0..10_000).filter(|_| r.ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "1/4 ratio ~2500: {hits}");
        assert!((0..100).all(|_| r.ratio(4, 4)));
        assert!(!(0..100).any(|_| r.ratio(0, 4)));
    }

    #[test]
    fn pick_selects_every_element() {
        let mut r = SplitMix64::new(17);
        let items = [10, 20, 30];
        let mut counts = [0u32; 3];
        for _ in 0..300 {
            counts[(*r.pick(&items) / 10 - 1) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
    }
}
