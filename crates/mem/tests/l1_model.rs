//! Model-based randomized test: the L1 cache agrees with a simple
//! reference model of per-sector validity across arbitrary access/fill
//! interleavings and all three fill policies. Cases are drawn from the
//! in-tree [`SplitMix64`] generator with a fixed seed so failures
//! reproduce exactly.

use std::collections::{BTreeMap, BTreeSet};

use netcrafter_core::SplitMix64;
use netcrafter_mem::{L1Access, L1Cache};
use netcrafter_proto::config::{CacheConfig, SectorFillPolicy};
use netcrafter_proto::{AccessId, LineAddr, LineMask};

#[derive(Debug, Clone)]
enum Op {
    /// Read `len` bytes at byte `offset` of line `line`.
    Read {
        line: u64,
        offset: u64,
        len: u64,
        crosses: bool,
    },
    /// Complete the oldest outstanding fill.
    Fill,
}

fn arb_op(rng: &mut SplitMix64) -> Op {
    // 3:2 odds of a read vs a fill, as in the original proptest strategy.
    if rng.ratio(3, 5) {
        let line = rng.below(24);
        let offset = rng.below(56);
        let len = rng.range(1, 7).min(64 - offset).max(1);
        Op::Read {
            line,
            offset,
            len,
            crosses: rng.flip(),
        }
    } else {
        Op::Fill
    }
}

const POLICIES: [SectorFillPolicy; 3] = [
    SectorFillPolicy::FullLine,
    SectorFillPolicy::OnTrim,
    SectorFillPolicy::Always,
];

#[test]
fn l1_matches_reference_model() {
    let mut rng = SplitMix64::new(0x11c4c4e);
    for case in 0..128 {
        let n_ops = rng.range(1, 119) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| arb_op(&mut rng)).collect();
        let policy = *rng.pick(&POLICIES);
        check_case(&ops, policy, case);
    }
}

fn check_case(ops: &[Op], policy: SectorFillPolicy, case: usize) {
    let cfg = CacheConfig {
        size_bytes: 64 * 64, // 64 lines: small enough to evict
        ways: 4,
        lookup_cycles: 20,
        mshr_entries: 8,
        banks: 1,
    };
    let mut l1 = L1Cache::new(&cfg, policy, 16);

    // Reference: which sectors of which line are valid, which fills are
    // outstanding. Evictions make the reference *optimistic* (it never
    // evicts), so the invariant is one-directional where eviction
    // matters: an L1 Hit implies the reference had the sectors; an L1
    // miss with reference-valid sectors is legal (eviction). Outstanding
    // fills are matched exactly.
    let mut ref_valid: BTreeMap<u64, u16> = BTreeMap::new();
    let mut outstanding: Vec<(u64, u16, Vec<AccessId>)> = Vec::new();
    let mut next_id = 0u64;
    let mut now = 0u64;
    let mut waiting: BTreeSet<AccessId> = BTreeSet::new();

    for op in ops {
        now += 1;
        match *op {
            Op::Read {
                line,
                offset,
                len,
                crosses,
            } => {
                let id = AccessId(next_id);
                next_id += 1;
                let mask = LineMask::span(offset, len);
                let needed = mask.sectors(16);
                match l1.read(LineAddr(line * 64), mask, id, now, crosses) {
                    L1Access::Hit => {
                        let valid = ref_valid.get(&line).copied().unwrap_or(0);
                        assert_eq!(
                            needed & !valid,
                            0,
                            "case {case}: hit on sectors the model never filled: \
                             line {line} needed {needed:04b} valid {valid:04b}"
                        );
                    }
                    L1Access::Miss { sectors } => {
                        assert_eq!(needed & !sectors, 0, "case {case}: fill covers the access");
                        if policy == SectorFillPolicy::FullLine {
                            assert_eq!(sectors, 0b1111);
                        }
                        outstanding.push((line, sectors, vec![id]));
                        waiting.insert(id);
                    }
                    L1Access::MergedMiss => {
                        let entry = outstanding
                            .iter_mut()
                            .find(|(l, _, _)| *l == line)
                            .expect("merge requires an outstanding fill");
                        assert_eq!(needed & !entry.1, 0, "case {case}: merge must be covered");
                        entry.2.push(id);
                        waiting.insert(id);
                    }
                    L1Access::Stall => {
                        // Legal only when the MSHR is full or an
                        // uncovered same-line fill is in flight.
                        let same_line = outstanding
                            .iter()
                            .any(|(l, s, _)| *l == line && needed & !s != 0);
                        assert!(
                            outstanding.len() >= 8 || same_line,
                            "case {case}: stall without cause"
                        );
                    }
                }
            }
            Op::Fill => {
                if outstanding.is_empty() {
                    continue;
                }
                let (line, sectors, ids) = outstanding.remove(0);
                let woken = l1.fill(LineAddr(line * 64), sectors, now);
                let mut got: Vec<u64> = woken.iter().map(|a| a.raw()).collect();
                let mut want: Vec<u64> = ids.iter().map(|a| a.raw()).collect();
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "case {case}: fill wakes exactly its waiters");
                for id in ids {
                    waiting.remove(&id);
                }
                *ref_valid.entry(line).or_insert(0) |= sectors;
            }
        }
    }
    // Drain remaining fills; everything waiting must wake.
    for (line, sectors, ids) in outstanding {
        let woken = l1.fill(LineAddr(line * 64), sectors, now);
        assert_eq!(woken.len(), ids.len());
        for id in ids {
            waiting.remove(&id);
        }
    }
    assert!(
        waiting.is_empty(),
        "case {case}: no access left waiting forever"
    );
    assert!(
        !l1.busy(),
        "case {case}: cache quiesces once fills complete"
    );
}
