//! Model-based property test: the L1 cache agrees with a simple
//! reference model of per-sector validity across arbitrary access/fill
//! interleavings and all three fill policies.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use netcrafter_mem::{L1Access, L1Cache};
use netcrafter_proto::config::{CacheConfig, SectorFillPolicy};
use netcrafter_proto::{AccessId, LineAddr, LineMask};

#[derive(Debug, Clone)]
enum Op {
    /// Read `len` bytes at byte `offset` of line `line`.
    Read { line: u64, offset: u64, len: u64, crosses: bool },
    /// Complete the oldest outstanding fill.
    Fill,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..24, 0u64..56, 1u64..8, any::<bool>()).prop_map(|(line, offset, len, crosses)| {
            Op::Read { line, offset, len: len.min(64 - offset).max(1), crosses }
        }),
        2 => Just(Op::Fill),
    ]
}

fn policy_strategy() -> impl Strategy<Value = SectorFillPolicy> {
    prop::sample::select(vec![
        SectorFillPolicy::FullLine,
        SectorFillPolicy::OnTrim,
        SectorFillPolicy::Always,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn l1_matches_reference_model(
        ops in prop::collection::vec(arb_op(), 1..120),
        policy in policy_strategy(),
    ) {
        let cfg = CacheConfig {
            size_bytes: 64 * 64, // 64 lines: small enough to evict
            ways: 4,
            lookup_cycles: 20,
            mshr_entries: 8,
            banks: 1,
        };
        let mut l1 = L1Cache::new(&cfg, policy, 16);

        // Reference: which sectors of which line are valid, which fills
        // are outstanding. Evictions make the reference *optimistic* (it
        // never evicts), so the invariant is one-directional where
        // eviction matters: an L1 Hit implies the reference had the
        // sectors; an L1 miss with reference-valid sectors is legal
        // (eviction). Outstanding fills are matched exactly.
        let mut ref_valid: BTreeMap<u64, u16> = BTreeMap::new();
        let mut outstanding: Vec<(u64, u16, Vec<AccessId>)> = Vec::new();
        let mut next_id = 0u64;
        let mut now = 0u64;
        let mut waiting: BTreeSet<AccessId> = BTreeSet::new();

        for op in ops {
            now += 1;
            match op {
                Op::Read { line, offset, len, crosses } => {
                    let id = AccessId(next_id);
                    next_id += 1;
                    let mask = LineMask::span(offset, len);
                    let needed = mask.sectors(16);
                    match l1.read(LineAddr(line * 64), mask, id, now, crosses) {
                        L1Access::Hit => {
                            let valid = ref_valid.get(&line).copied().unwrap_or(0);
                            prop_assert_eq!(
                                needed & !valid, 0,
                                "hit on sectors the model never filled: line {} needed {:04b} valid {:04b}",
                                line, needed, valid
                            );
                        }
                        L1Access::Miss { sectors } => {
                            prop_assert_eq!(needed & !sectors, 0, "fill covers the access");
                            if policy == SectorFillPolicy::FullLine {
                                prop_assert_eq!(sectors, 0b1111);
                            }
                            outstanding.push((line, sectors, vec![id]));
                            waiting.insert(id);
                        }
                        L1Access::MergedMiss => {
                            let entry = outstanding
                                .iter_mut()
                                .find(|(l, _, _)| *l == line)
                                .expect("merge requires an outstanding fill");
                            prop_assert_eq!(needed & !entry.1, 0, "merge must be covered");
                            entry.2.push(id);
                            waiting.insert(id);
                        }
                        L1Access::Stall => {
                            // Legal only when the MSHR is full or an
                            // uncovered same-line fill is in flight.
                            let same_line = outstanding.iter().any(|(l, s, _)| {
                                *l == line && needed & !s != 0
                            });
                            prop_assert!(
                                outstanding.len() >= 8 || same_line,
                                "stall without cause"
                            );
                        }
                    }
                }
                Op::Fill => {
                    if outstanding.is_empty() {
                        continue;
                    }
                    let (line, sectors, ids) = outstanding.remove(0);
                    let woken = l1.fill(LineAddr(line * 64), sectors, now);
                    let mut got: Vec<u64> = woken.iter().map(|a| a.raw()).collect();
                    let mut want: Vec<u64> = ids.iter().map(|a| a.raw()).collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got, want, "fill wakes exactly its waiters");
                    for id in ids {
                        waiting.remove(&id);
                    }
                    *ref_valid.entry(line).or_insert(0) |= sectors;
                }
            }
        }
        // Drain remaining fills; everything waiting must wake.
        for (line, sectors, ids) in outstanding {
            let woken = l1.fill(LineAddr(line * 64), sectors, now);
            prop_assert_eq!(woken.len(), ids.len());
            for id in ids {
                waiting.remove(&id);
            }
        }
        prop_assert!(waiting.is_empty(), "no access left waiting forever");
        prop_assert!(!l1.busy(), "cache quiesces once fills complete");
    }
}
