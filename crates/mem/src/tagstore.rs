//! A generic set-associative tag array with LRU replacement, shared by
//! the caches and (via `netcrafter-vm`) the TLBs.

use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

/// One resident entry: the caller's payload plus replacement state.
#[derive(Debug, Clone)]
struct Slot<T> {
    tag: u64,
    last_used: u64,
    data: T,
}

/// A set-associative lookup structure keyed by an integer (line address,
/// VPN, …) with least-recently-used replacement.
///
/// `n_sets == 1` gives a fully associative structure (the L1 TLB and the
/// page-walk cache); larger `n_sets` give classic set-indexed caches.
///
/// # Examples
///
/// ```
/// use netcrafter_mem::TagStore;
///
/// let mut ts: TagStore<u32> = TagStore::new(2, 2); // 2 sets, 2 ways
/// assert_eq!(ts.insert(0, 10, 0), None);
/// assert_eq!(ts.insert(2, 20, 1), None); // same set as key 0
/// assert_eq!(ts.lookup(0, 2), Some(&mut 10));
/// // Key 4 also maps to set 0; the LRU victim is key 2.
/// assert_eq!(ts.insert(4, 40, 3), Some((2, 20)));
/// ```
#[derive(Debug, Clone)]
pub struct TagStore<T> {
    sets: Vec<Vec<Slot<T>>>,
    ways: usize,
}

impl<T> TagStore<T> {
    /// Creates a store with `n_sets` sets of `ways` ways.
    pub fn new(n_sets: usize, ways: usize) -> Self {
        assert!(n_sets > 0 && ways > 0, "geometry must be non-zero");
        Self {
            sets: (0..n_sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
        }
    }

    /// Builds a store holding `entries` total entries at `ways`
    /// associativity (`ways == entries` ⇒ fully associative).
    pub fn with_entries(entries: usize, ways: usize) -> Self {
        let ways = ways.min(entries).max(1);
        let n_sets = (entries / ways).max(1);
        Self::new(n_sets, ways)
    }

    /// Number of sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Total resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    #[inline]
    fn set_and_tag(&self, key: u64) -> (usize, u64) {
        let n = self.sets.len() as u64;
        ((key % n) as usize, key / n)
    }

    /// Looks up `key`, updating its LRU stamp to `now` on a hit.
    pub fn lookup(&mut self, key: u64, now: u64) -> Option<&mut T> {
        let (set, tag) = self.set_and_tag(key);
        self.sets[set]
            .iter_mut()
            .find(|s| s.tag == tag)
            .map(|slot| {
                slot.last_used = now;
                &mut slot.data
            })
    }

    /// Looks up `key` without touching replacement state.
    pub fn peek(&self, key: u64) -> Option<&T> {
        let (set, tag) = self.set_and_tag(key);
        self.sets[set]
            .iter()
            .find(|s| s.tag == tag)
            .map(|s| &s.data)
    }

    /// Inserts `key → data`, evicting the set's LRU entry if the set is
    /// full. Returns the evicted `(key, data)` pair, if any. Inserting an
    /// already-resident key replaces its payload (no eviction).
    pub fn insert(&mut self, key: u64, data: T, now: u64) -> Option<(u64, T)> {
        let (set_ix, tag) = self.set_and_tag(key);
        let n_sets = self.sets.len() as u64;
        let set = &mut self.sets[set_ix];
        if let Some(slot) = set.iter_mut().find(|s| s.tag == tag) {
            slot.data = data;
            slot.last_used = now;
            return None;
        }
        if set.len() < self.ways {
            set.push(Slot {
                tag,
                last_used: now,
                data,
            });
            return None;
        }
        // Evict LRU (ties broken by lowest way index for determinism).
        let victim_ix = set
            .iter()
            .enumerate()
            .min_by_key(|(i, s)| (s.last_used, *i))
            .map(|(i, _)| i)
            .expect("set is full, so non-empty");
        let victim = std::mem::replace(
            &mut set[victim_ix],
            Slot {
                tag,
                last_used: now,
                data,
            },
        );
        Some((victim.tag * n_sets + set_ix as u64, victim.data))
    }

    /// Removes `key`, returning its payload.
    pub fn invalidate(&mut self, key: u64) -> Option<T> {
        let (set, tag) = self.set_and_tag(key);
        let pos = self.sets[set].iter().position(|s| s.tag == tag)?;
        Some(self.sets[set].swap_remove(pos).data)
    }

    /// In-place [`Snap::load`]: decodes a store saved by [`Snap::save`]
    /// into `self`, reusing every set's existing allocation. This is the
    /// snapshot-restore hot path — a store holds one `Vec` per set, so
    /// `Snap::load` pays thousands of small allocations per cache while
    /// this pays none. The snapshot's geometry must match `self` (restore
    /// targets are built from the same configuration).
    ///
    /// # Errors
    ///
    /// Fails on truncated input, a geometry mismatch, or an overfull set.
    pub fn load_into(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError>
    where
        T: Snap,
    {
        let ways = r.get_len()?;
        let n_sets = r.get_len()?;
        if ways != self.ways || n_sets != self.sets.len() {
            return Err(SnapshotError::Corrupt(format!(
                "TagStore geometry mismatch: snapshot {n_sets} sets x {ways} ways, \
                 target {} x {}",
                self.sets.len(),
                self.ways
            )));
        }
        for set in &mut self.sets {
            let len = r.get_len()?;
            if len > ways {
                return Err(SnapshotError::Corrupt(format!(
                    "TagStore set holds {len} slots but has only {ways} ways"
                )));
            }
            set.clear();
            for _ in 0..len {
                set.push(Slot {
                    tag: Snap::load(r)?,
                    last_used: Snap::load(r)?,
                    data: Snap::load(r)?,
                });
            }
        }
        Ok(())
    }

    /// Iterates over all resident `(key, &data)` pairs (diagnostics only;
    /// order is unspecified).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> + '_ {
        let n_sets = self.sets.len() as u64;
        self.sets.iter().enumerate().flat_map(move |(set_ix, set)| {
            set.iter()
                .map(move |s| (s.tag * n_sets + set_ix as u64, &s.data))
        })
    }
}

/// The sets are serialized verbatim — within-set slot order and the LRU
/// stamps are observable through victim selection (`invalidate` uses
/// `swap_remove`, so slot order is not derivable from insertion history).
impl<T: Snap> Snap for TagStore<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_len(self.ways);
        w.put_len(self.sets.len());
        for set in &self.sets {
            w.put_len(set.len());
            for slot in set {
                slot.tag.save(w);
                slot.last_used.save(w);
                slot.data.save(w);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let ways = r.get_len()?;
        let n_sets = r.get_len()?;
        if ways == 0 || n_sets == 0 {
            return Err(SnapshotError::Corrupt(format!(
                "TagStore geometry {n_sets} sets x {ways} ways"
            )));
        }
        let mut sets = Vec::with_capacity(n_sets);
        for _ in 0..n_sets {
            let len = r.get_len()?;
            if len > ways {
                return Err(SnapshotError::Corrupt(format!(
                    "TagStore set holds {len} slots but has only {ways} ways"
                )));
            }
            let mut set = Vec::with_capacity(ways);
            for _ in 0..len {
                set.push(Slot {
                    tag: Snap::load(r)?,
                    last_used: Snap::load(r)?,
                    data: Snap::load(r)?,
                });
            }
            sets.push(set);
        }
        Ok(Self { sets, ways })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut ts: TagStore<&str> = TagStore::new(4, 2);
        assert!(ts.is_empty());
        assert_eq!(ts.insert(5, "five", 0), None);
        assert_eq!(ts.lookup(5, 1), Some(&mut "five"));
        assert_eq!(ts.lookup(9, 1), None); // same set (9 % 4 == 1), other tag
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn evicts_lru_within_set() {
        let mut ts: TagStore<u32> = TagStore::new(1, 2); // fully assoc, 2 entries
        ts.insert(1, 100, 0);
        ts.insert(2, 200, 1);
        ts.lookup(1, 2); // 1 is now MRU
        let evicted = ts.insert(3, 300, 3);
        assert_eq!(evicted, Some((2, 200)));
        assert!(ts.peek(1).is_some());
        assert!(ts.peek(3).is_some());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut ts: TagStore<u32> = TagStore::new(1, 1);
        ts.insert(7, 70, 0);
        assert_eq!(ts.insert(7, 71, 1), None, "replacement, not eviction");
        assert_eq!(ts.peek(7), Some(&71));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn eviction_returns_reconstructed_key() {
        let mut ts: TagStore<u32> = TagStore::new(4, 1);
        ts.insert(6, 60, 0); // set 2
        let evicted = ts.insert(10, 100, 1); // also set 2
        assert_eq!(evicted, Some((6, 60)));
    }

    #[test]
    fn invalidate_removes() {
        let mut ts: TagStore<u32> = TagStore::new(2, 2);
        ts.insert(4, 40, 0);
        assert_eq!(ts.invalidate(4), Some(40));
        assert_eq!(ts.invalidate(4), None);
        assert!(ts.is_empty());
    }

    #[test]
    fn with_entries_geometry() {
        let ts: TagStore<()> = TagStore::with_entries(512, 8);
        assert_eq!(ts.n_sets(), 64);
        assert_eq!(ts.ways(), 8);
        let fa: TagStore<()> = TagStore::with_entries(32, usize::MAX);
        assert_eq!(fa.n_sets(), 1);
        assert_eq!(fa.ways(), 32);
    }

    #[test]
    fn peek_does_not_disturb_lru() {
        let mut ts: TagStore<u32> = TagStore::new(1, 2);
        ts.insert(1, 10, 0);
        ts.insert(2, 20, 1);
        let _ = ts.peek(1); // does not refresh key 1
        let evicted = ts.insert(3, 30, 2);
        assert_eq!(evicted, Some((1, 10)), "peek must not refresh LRU");
    }

    #[test]
    fn iter_lists_all_entries() {
        let mut ts: TagStore<u32> = TagStore::new(2, 2);
        ts.insert(0, 1, 0);
        ts.insert(1, 2, 0);
        ts.insert(2, 3, 0);
        let mut keys: Vec<u64> = ts.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2]);
    }
}
