//! Miss-status holding registers: track outstanding misses and merge
//! same-line requests, with a hard entry limit that stalls the requester
//! when exhausted (Table 2: 32 entries at L1, 64 at L2, 8/64 at the TLBs).

use std::collections::BTreeMap;

use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

/// Result of trying to register a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss on this key: the caller must issue the fill request.
    Allocated,
    /// A miss on this key is already outstanding and covers the new
    /// request: merged, no new fill needed.
    Merged,
    /// No free entries (or the outstanding fill cannot satisfy the new
    /// request): the caller must stall and retry.
    Stalled,
}

/// An MSHR file mapping miss keys to waiting requests.
///
/// Each entry remembers the *coverage* of the in-flight fill as a sector
/// bitmask; a subsequent miss merges only if its needed sectors are a
/// subset of what the fill will bring (relevant under Trimming, where
/// fills may carry a single sector).
#[derive(Debug, Clone)]
pub struct Mshr<W> {
    entries: BTreeMap<u64, Entry<W>>,
    capacity: usize,
    /// Peak simultaneous occupancy, for reporting.
    pub peak: usize,
    /// Times a request had to stall on a full file.
    pub full_stalls: u64,
    /// Times a request merged into an existing entry.
    pub merges: u64,
}

#[derive(Debug, Clone)]
struct Entry<W> {
    coverage: u16,
    waiters: Vec<W>,
}

impl<W> Mshr<W> {
    /// Creates an MSHR file with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR needs at least one entry");
        Self {
            entries: BTreeMap::new(),
            capacity,
            peak: 0,
            full_stalls: 0,
            merges: 0,
        }
    }

    /// Outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no miss is outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a miss on `key` is already in flight.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Sector coverage of the outstanding fill for `key` (0 if none).
    pub fn coverage(&self, key: u64) -> u16 {
        self.entries.get(&key).map_or(0, |e| e.coverage)
    }

    /// Registers a miss on `key` needing `sectors`, enqueueing `waiter`
    /// for wake-up on fill.
    pub fn register(&mut self, key: u64, sectors: u16, waiter: W) -> MshrOutcome {
        if let Some(entry) = self.entries.get_mut(&key) {
            if sectors & !entry.coverage == 0 {
                entry.waiters.push(waiter);
                self.merges += 1;
                return MshrOutcome::Merged;
            }
            // The in-flight fill will not bring everything this request
            // needs; the requester must retry after the fill lands.
            self.full_stalls += 1;
            return MshrOutcome::Stalled;
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            return MshrOutcome::Stalled;
        }
        self.entries.insert(
            key,
            Entry {
                coverage: sectors,
                waiters: vec![waiter],
            },
        );
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Allocated
    }

    /// Completes the miss on `key`, returning every waiter to wake.
    ///
    /// # Panics
    ///
    /// Panics if no miss on `key` is outstanding (a response must always
    /// match a request).
    pub fn complete(&mut self, key: u64) -> Vec<W> {
        self.entries
            .remove(&key)
            .unwrap_or_else(|| panic!("MSHR completion for unknown key {key:#x}"))
            .waiters
    }
}

impl<W: Snap> Snap for Mshr<W> {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_len(self.capacity);
        w.put_len(self.peak);
        w.put_u64(self.full_stalls);
        w.put_u64(self.merges);
        w.put_len(self.entries.len());
        for (key, entry) in &self.entries {
            key.save(w);
            entry.coverage.save(w);
            entry.waiters.save(w);
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let capacity = r.get_len()?;
        if capacity == 0 {
            return Err(SnapshotError::Corrupt("MSHR capacity 0".to_string()));
        }
        let peak = r.get_len()?;
        let full_stalls = r.get_u64()?;
        let merges = r.get_u64()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(SnapshotError::Corrupt(format!(
                "MSHR holds {n} entries but capacity is {capacity}"
            )));
        }
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let key: u64 = Snap::load(r)?;
            entries.insert(
                key,
                Entry {
                    coverage: Snap::load(r)?,
                    waiters: Snap::load(r)?,
                },
            );
        }
        Ok(Self {
            entries,
            capacity,
            peak,
            full_stalls,
            merges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_merge_complete() {
        let mut m: Mshr<u32> = Mshr::new(2);
        assert_eq!(m.register(0x40, 0b1111, 1), MshrOutcome::Allocated);
        assert_eq!(m.register(0x40, 0b0001, 2), MshrOutcome::Merged);
        assert_eq!(m.len(), 1);
        assert!(m.contains(0x40));
        assert_eq!(m.complete(0x40), vec![1, 2]);
        assert!(m.is_empty());
        assert_eq!(m.merges, 1);
    }

    #[test]
    fn capacity_stalls() {
        let mut m: Mshr<u32> = Mshr::new(1);
        assert_eq!(m.register(0x40, 0b1111, 1), MshrOutcome::Allocated);
        assert_eq!(m.register(0x80, 0b1111, 2), MshrOutcome::Stalled);
        assert_eq!(m.full_stalls, 1);
        m.complete(0x40);
        assert_eq!(m.register(0x80, 0b1111, 2), MshrOutcome::Allocated);
    }

    #[test]
    fn uncovered_sector_stalls_instead_of_merging() {
        let mut m: Mshr<u32> = Mshr::new(4);
        // In-flight fill brings only sector 0 (a trimmed fill).
        assert_eq!(m.register(0x40, 0b0001, 1), MshrOutcome::Allocated);
        // A request for sector 2 cannot merge: the fill won't carry it.
        assert_eq!(m.register(0x40, 0b0100, 2), MshrOutcome::Stalled);
        // A request inside sector 0 merges fine.
        assert_eq!(m.register(0x40, 0b0001, 3), MshrOutcome::Merged);
        assert_eq!(m.complete(0x40), vec![1, 3]);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m: Mshr<u32> = Mshr::new(8);
        for i in 0..5u64 {
            m.register(i * 64, 0b1111, i as u32);
        }
        m.complete(0);
        m.complete(64);
        assert_eq!(m.peak, 5);
        assert_eq!(m.len(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown key")]
    fn completing_unknown_key_panics() {
        let mut m: Mshr<u32> = Mshr::new(1);
        m.complete(0x1000);
    }
}
