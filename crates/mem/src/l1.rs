//! The per-CU L1 vector cache: 64 KB, write-through, 20-cycle lookup,
//! 32-entry MSHR (Table 2), with per-sector line validity to support
//! NetCrafter's Trimming (§4.3) and the sector-cache baseline (§5.3).
//!
//! The L1 is a passive structure embedded in its CU component: the CU
//! drives it, applies the 20-cycle lookup latency to completions, issues
//! the fill requests it demands, and feeds responses back through
//! [`L1Cache::fill`].

use netcrafter_proto::config::{CacheConfig, SectorFillPolicy};
use netcrafter_proto::{AccessId, LineAddr, LineMask, Metrics, LINE_BYTES};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::mshr::{Mshr, MshrOutcome};
use crate::tagstore::TagStore;

/// Outcome of an L1 read lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Access {
    /// All needed sectors are resident; data is ready after the lookup
    /// latency.
    Hit,
    /// Miss: the caller must fetch `sectors` of the line from the owning
    /// L2 (local or remote) and call [`L1Cache::fill`] with the response.
    Miss {
        /// Sector mask to request, per the configured fill policy.
        sectors: u16,
    },
    /// Miss merged into an in-flight fill of the same line; the waiter
    /// wakes when that fill lands. No new request is needed.
    MergedMiss,
    /// The MSHR is full (or an in-flight partial fill cannot satisfy this
    /// request): retry next cycle.
    Stall,
}

/// L1 statistics (drives the MPKI comparisons of Figures 16 and 17).
#[derive(Debug, Clone, Copy, Default)]
pub struct L1Stats {
    /// Read lookups.
    pub reads: u64,
    /// Write lookups (write-through; never allocate).
    pub writes: u64,
    /// Read hits.
    pub hits: u64,
    /// Read misses (allocated + merged).
    pub misses: u64,
    /// Misses where the line was resident but a needed sector was not —
    /// the cost of sectored fills.
    pub sector_misses: u64,
    /// Fills applied.
    pub fills: u64,
    /// Lines evicted by fills.
    pub evictions: u64,
}

impl Snap for L1Stats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.reads.save(w);
        self.writes.save(w);
        self.hits.save(w);
        self.misses.save(w);
        self.sector_misses.save(w);
        self.fills.save(w);
        self.evictions.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(L1Stats {
            reads: Snap::load(r)?,
            writes: Snap::load(r)?,
            hits: Snap::load(r)?,
            misses: Snap::load(r)?,
            sector_misses: Snap::load(r)?,
            fills: Snap::load(r)?,
            evictions: Snap::load(r)?,
        })
    }
}

impl L1Stats {
    /// Dumps counters under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.reads"), self.reads);
        metrics.add(&format!("{prefix}.writes"), self.writes);
        metrics.add(&format!("{prefix}.hits"), self.hits);
        metrics.add(&format!("{prefix}.misses"), self.misses);
        metrics.add(&format!("{prefix}.sector_misses"), self.sector_misses);
        metrics.add(&format!("{prefix}.fills"), self.fills);
        metrics.add(&format!("{prefix}.evictions"), self.evictions);
    }
}

/// The L1 vector cache model.
///
/// # Examples
///
/// ```
/// use netcrafter_mem::{L1Access, L1Cache};
/// use netcrafter_proto::config::{CacheConfig, SectorFillPolicy};
/// use netcrafter_proto::{AccessId, LineAddr, LineMask};
///
/// let cfg = CacheConfig {
///     size_bytes: 64 * 1024, ways: 4, lookup_cycles: 20, mshr_entries: 32, banks: 1,
/// };
/// let mut l1 = L1Cache::new(&cfg, SectorFillPolicy::OnTrim, 16);
/// // An 8-byte cross-cluster read requests a single trimmed sector…
/// let acc = l1.read(LineAddr(0x40), LineMask::span(0, 8), AccessId(1), 0, true);
/// assert_eq!(acc, L1Access::Miss { sectors: 0b0001 });
/// // …and the fill wakes the waiter and validates just that sector.
/// assert_eq!(l1.fill(LineAddr(0x40), 0b0001, 10), vec![AccessId(1)]);
/// assert_eq!(
///     l1.read(LineAddr(0x40), LineMask::span(0, 4), AccessId(2), 11, true),
///     L1Access::Hit
/// );
/// ```
#[derive(Debug)]
pub struct L1Cache {
    tags: TagStore<u16>,
    mshr: Mshr<AccessId>,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    policy: SectorFillPolicy,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    granularity: u32,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    full_mask: u16,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    lookup_cycles: u32,
    /// Statistics.
    pub stats: L1Stats,
}

impl L1Cache {
    /// Builds an L1 from its configuration.
    pub fn new(cfg: &CacheConfig, policy: SectorFillPolicy, granularity: u32) -> Self {
        assert!(granularity > 0 && (LINE_BYTES as u32).is_multiple_of(granularity));
        let lines = (cfg.size_bytes / LINE_BYTES) as usize;
        let sectors_per_line = LINE_BYTES as u32 / granularity;
        Self {
            tags: TagStore::with_entries(lines, cfg.ways as usize),
            mshr: Mshr::new(cfg.mshr_entries as usize),
            policy,
            granularity,
            full_mask: ((1u32 << sectors_per_line) - 1) as u16,
            lookup_cycles: cfg.lookup_cycles,
            stats: L1Stats::default(),
        }
    }

    /// Lookup latency in cycles (the CU applies it to completions).
    pub fn lookup_cycles(&self) -> u32 {
        self.lookup_cycles
    }

    /// Configured sector granularity in bytes.
    pub fn granularity(&self) -> u32 {
        self.granularity
    }

    /// Sector mask a fill request should carry for an access needing
    /// `mask`, given the fill policy and whether the line's owner is
    /// across the inter-cluster network.
    ///
    /// * `FullLine` — always the whole line (baseline).
    /// * `Always` — exactly the needed sectors (sector-cache baseline,
    ///   local and remote alike).
    /// * `OnTrim` — one sector only when the access fits a single sector
    ///   *and* the response would cross clusters (§4.3: "we only trim when
    ///   the request has to traverse the lowest-bandwidth network").
    pub fn fill_request_sectors(&self, mask: LineMask, crosses_clusters: bool) -> u16 {
        match self.policy {
            SectorFillPolicy::FullLine => self.full_mask,
            SectorFillPolicy::Always => mask.sectors(self.granularity as u64),
            SectorFillPolicy::OnTrim => {
                if crosses_clusters && mask.fits_one_sector(self.granularity as u64) {
                    mask.sectors(self.granularity as u64)
                } else {
                    self.full_mask
                }
            }
        }
    }

    /// Performs a read lookup for `waiter` needing `mask` of `line`.
    pub fn read(
        &mut self,
        line: LineAddr,
        mask: LineMask,
        waiter: AccessId,
        now: u64,
        crosses_clusters: bool,
    ) -> L1Access {
        let needed = mask.sectors(self.granularity as u64);
        let key = line.0 / LINE_BYTES;
        let resident = self.tags.lookup(key, now).map(|v| *v);
        let mut sector_miss = false;
        if let Some(valid) = resident {
            if needed & !valid == 0 {
                self.stats.reads += 1;
                self.stats.hits += 1;
                return L1Access::Hit;
            }
            sector_miss = true;
        }
        let request = self.fill_request_sectors(mask, crosses_clusters);
        debug_assert_eq!(needed & !request, 0, "fill must cover the access");
        // Merging into an in-flight fill is judged on the sectors this
        // access *needs*; only a fresh allocation records the (possibly
        // wider) fill-request coverage. Otherwise a local full-line
        // request behind a trimmed single-sector fill would stall even
        // though the fill covers it.
        let register_mask = if self.mshr.contains(key) {
            needed
        } else {
            request
        };
        // Statistics count each logical access once: a Stall outcome is
        // retried by the CU and must not inflate the read/sector-miss
        // counters on every attempt.
        match self.mshr.register(key, register_mask, waiter) {
            MshrOutcome::Allocated => {
                self.stats.reads += 1;
                self.stats.sector_misses += u64::from(sector_miss);
                self.stats.misses += 1;
                L1Access::Miss { sectors: request }
            }
            MshrOutcome::Merged => {
                self.stats.reads += 1;
                self.stats.sector_misses += u64::from(sector_miss);
                self.stats.misses += 1;
                L1Access::MergedMiss
            }
            MshrOutcome::Stalled => L1Access::Stall,
        }
    }

    /// Performs a write lookup. The L1 is write-through and
    /// no-write-allocate: the write always propagates to the owning L2;
    /// if the line is resident its written sectors remain valid (data
    /// updated in place).
    pub fn write(&mut self, line: LineAddr, _mask: LineMask, now: u64) {
        self.stats.writes += 1;
        let key = line.0 / LINE_BYTES;
        let _ = self.tags.lookup(key, now);
    }

    /// Applies a fill carrying `sectors_valid` of `line`; returns the
    /// accesses waiting on it.
    pub fn fill(&mut self, line: LineAddr, sectors_valid: u16, now: u64) -> Vec<AccessId> {
        self.stats.fills += 1;
        let key = line.0 / LINE_BYTES;
        if let Some(valid) = self.tags.lookup(key, now) {
            *valid |= sectors_valid;
        } else if self.tags.insert(key, sectors_valid, now).is_some() {
            self.stats.evictions += 1;
        }
        self.mshr.complete(key)
    }

    /// Misses currently outstanding.
    pub fn outstanding_misses(&self) -> usize {
        self.mshr.len()
    }

    /// True while fills are pending.
    pub fn busy(&self) -> bool {
        !self.mshr.is_empty()
    }

    /// MSHR stall count (diagnostics).
    pub fn mshr_stalls(&self) -> u64 {
        self.mshr.full_stalls
    }

    /// Appends the cache's dynamic state (tags, MSHR, stats) to `w`; the
    /// configuration (policy, granularity, latency) stays builder-time.
    pub fn save_state(&self, w: &mut SnapshotWriter) {
        self.tags.save(w);
        self.mshr.save(w);
        self.stats.save(w);
    }

    /// Restores the state written by [`L1Cache::save_state`] into this
    /// (identically configured) cache. The tag array is decoded in place
    /// ([`TagStore::load_into`]) — restore is a sweep hot path.
    pub fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.tags.load_into(r)?;
        self.mshr = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(policy: SectorFillPolicy) -> L1Cache {
        L1Cache::new(
            &CacheConfig {
                size_bytes: 1024, // 16 lines
                ways: 4,
                lookup_cycles: 20,
                mshr_entries: 4,
                banks: 1,
            },
            policy,
            16,
        )
    }

    fn line(n: u64) -> LineAddr {
        LineAddr(n * 64)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(SectorFillPolicy::FullLine);
        let r = c.read(line(1), LineMask::span(0, 8), AccessId(1), 0, false);
        assert_eq!(r, L1Access::Miss { sectors: 0b1111 });
        assert_eq!(c.fill(line(1), 0b1111, 5), vec![AccessId(1)]);
        let r = c.read(line(1), LineMask::span(32, 8), AccessId(2), 6, false);
        assert_eq!(r, L1Access::Hit);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn merged_miss_wakes_both_waiters() {
        let mut c = cache(SectorFillPolicy::FullLine);
        assert!(matches!(
            c.read(line(2), LineMask::span(0, 4), AccessId(1), 0, false),
            L1Access::Miss { .. }
        ));
        assert_eq!(
            c.read(line(2), LineMask::span(8, 4), AccessId(2), 1, false),
            L1Access::MergedMiss
        );
        let woken = c.fill(line(2), 0b1111, 10);
        assert_eq!(woken, vec![AccessId(1), AccessId(2)]);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut c = cache(SectorFillPolicy::FullLine);
        for i in 0..4 {
            assert!(matches!(
                c.read(line(10 + i), LineMask::span(0, 4), AccessId(i), 0, false),
                L1Access::Miss { .. }
            ));
        }
        assert_eq!(
            c.read(line(20), LineMask::span(0, 4), AccessId(9), 1, false),
            L1Access::Stall
        );
        assert!(c.mshr_stalls() > 0);
    }

    #[test]
    fn trim_policy_requests_single_sector_only_across_clusters() {
        let c = cache(SectorFillPolicy::OnTrim);
        let small = LineMask::span(16, 8); // fits sector 1
        assert_eq!(c.fill_request_sectors(small, true), 0b0010);
        assert_eq!(
            c.fill_request_sectors(small, false),
            0b1111,
            "local: full line"
        );
        let wide = LineMask::span(8, 16); // straddles sectors 0-1
        assert_eq!(
            c.fill_request_sectors(wide, true),
            0b1111,
            "multi-sector: full line"
        );
    }

    #[test]
    fn always_policy_requests_needed_sectors_everywhere() {
        let c = cache(SectorFillPolicy::Always);
        let m = LineMask::span(48, 8);
        assert_eq!(c.fill_request_sectors(m, false), 0b1000);
        assert_eq!(c.fill_request_sectors(m, true), 0b1000);
    }

    #[test]
    fn sector_miss_on_partial_line() {
        let mut c = cache(SectorFillPolicy::OnTrim);
        // Trimmed fill brings only sector 0.
        assert_eq!(
            c.read(line(3), LineMask::span(0, 8), AccessId(1), 0, true),
            L1Access::Miss { sectors: 0b0001 }
        );
        c.fill(line(3), 0b0001, 5);
        // Sector 0 hits.
        assert_eq!(
            c.read(line(3), LineMask::span(4, 4), AccessId(2), 6, true),
            L1Access::Hit
        );
        // Sector 3 misses even though the line is resident.
        assert_eq!(
            c.read(line(3), LineMask::span(48, 8), AccessId(3), 7, true),
            L1Access::Miss { sectors: 0b1000 }
        );
        assert_eq!(c.stats.sector_misses, 1);
        c.fill(line(3), 0b1000, 12);
        // Now both sectors are valid.
        assert_eq!(
            c.read(line(3), LineMask::span(48, 4), AccessId(4), 13, true),
            L1Access::Hit
        );
    }

    #[test]
    fn uncovered_inflight_fill_stalls_new_sector() {
        let mut c = cache(SectorFillPolicy::OnTrim);
        assert_eq!(
            c.read(line(4), LineMask::span(0, 8), AccessId(1), 0, true),
            L1Access::Miss { sectors: 0b0001 }
        );
        // Same line, different sector, while the single-sector fill is in
        // flight: cannot merge, must stall and retry after the fill.
        assert_eq!(
            c.read(line(4), LineMask::span(32, 8), AccessId(2), 1, true),
            L1Access::Stall
        );
        c.fill(line(4), 0b0001, 10);
        assert_eq!(
            c.read(line(4), LineMask::span(32, 8), AccessId(2), 11, true),
            L1Access::Miss { sectors: 0b0100 }
        );
    }

    #[test]
    fn eviction_counted() {
        let mut c = cache(SectorFillPolicy::FullLine);
        // 16 lines, 4 ways, 4 sets. Fill 5 lines mapping to the same set
        // (stride = n_sets lines).
        let n_sets = 4;
        for i in 0..5u64 {
            let l = line(i * n_sets);
            assert!(matches!(
                c.read(l, LineMask::span(0, 4), AccessId(i), i, false),
                L1Access::Miss { .. }
            ));
            c.fill(l, 0b1111, i + 100);
        }
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn writes_do_not_allocate() {
        let mut c = cache(SectorFillPolicy::FullLine);
        c.write(line(6), LineMask::span(0, 8), 0);
        assert_eq!(c.stats.writes, 1);
        // Still a miss on read: writes never allocate.
        assert!(matches!(
            c.read(line(6), LineMask::span(0, 8), AccessId(1), 1, false),
            L1Access::Miss { .. }
        ));
    }
}
