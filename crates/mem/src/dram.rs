//! The HBM/GDDR model: 1 TB/s sustained bandwidth, 100 ns access latency
//! (Table 2). One DRAM component backs each GPU's L2 partition; it also
//! stores the page-table pages the GMMU walks.

use std::collections::VecDeque;

use netcrafter_proto::config::DramConfig;
use netcrafter_proto::{GpuId, MemReq, MemRsp, Message, Metrics, LINE_BYTES};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{BurstOutcome, Component, ComponentId, Ctx, Cycle, RateLimiter, Wake};

/// DRAM statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Line reads served.
    pub reads: u64,
    /// Line writes absorbed (write-backs).
    pub writes: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Cycles a request waited for bandwidth.
    pub queue_wait_cycles: u64,
}

impl Snap for DramStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.reads.save(w);
        self.writes.save(w);
        self.bytes.save(w);
        self.queue_wait_cycles.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DramStats {
            reads: Snap::load(r)?,
            writes: Snap::load(r)?,
            bytes: Snap::load(r)?,
            queue_wait_cycles: Snap::load(r)?,
        })
    }
}

impl DramStats {
    /// Dumps counters under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.reads"), self.reads);
        metrics.add(&format!("{prefix}.writes"), self.writes);
        metrics.add(&format!("{prefix}.bytes"), self.bytes);
        metrics.add(
            &format!("{prefix}.queue_wait_cycles"),
            self.queue_wait_cycles,
        );
    }
}

/// One GPU's DRAM stack.
pub struct Dram {
    // lint:allow(snapshot-field-parity) construction-time identity label; never serialized
    name: String,
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    l2: ComponentId,
    queue: VecDeque<(u64, MemReq)>, // (arrival cycle, request)
    rate: RateLimiter,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    latency: u32,
    /// Cycle of the last executed tick; idle cycles skipped by the
    /// event-driven scheduler are replayed as pure token accrual.
    last_tick: Cycle,
    /// Statistics.
    pub stats: DramStats,
}

impl Dram {
    /// Builds the DRAM of `gpu`, replying to its L2.
    pub fn new(gpu: GpuId, cfg: &DramConfig, l2: ComponentId) -> Self {
        Self {
            name: format!("{gpu}.dram"),
            l2,
            queue: VecDeque::new(),
            rate: RateLimiter::new(
                cfg.bytes_per_cycle as f64,
                (cfg.bytes_per_cycle as f64) * 4.0,
            ),
            latency: cfg.latency_cycles,
            last_tick: 0,
            stats: DramStats::default(),
        }
    }
}

impl Component for Dram {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.cycle();
        // Skipped cycles had an empty queue (the wake contract), so each
        // one would only have accrued tokens — a no-op once the bucket is
        // full. Replay the accruals to keep the token level bit-identical.
        let mut skipped = (now - self.last_tick).saturating_sub(1);
        while skipped > 0 && !self.rate.is_saturated() {
            self.rate.accrue();
            skipped -= 1;
        }
        self.last_tick = now;
        while let Some(msg) = ctx.recv() {
            match msg {
                Message::MemReq(req) => self.queue.push_back((now, req)),
                other => panic!("{}: unexpected {}", self.name, other.label()),
            }
        }
        self.rate.accrue();
        while let Some((arrived, _)) = self.queue.front() {
            if !self.rate.try_consume(LINE_BYTES as f64) {
                break;
            }
            let (arrived, req) = (*arrived, self.queue.pop_front().expect("front").1);
            self.stats.bytes += LINE_BYTES;
            self.stats.queue_wait_cycles += now - arrived;
            if req.write {
                self.stats.writes += 1;
                // Write-backs are fire-and-forget.
            } else {
                self.stats.reads += 1;
                let rsp = MemRsp::for_req(&req, req.sectors);
                ctx.send(self.l2, Message::MemRsp(rsp), self.latency as u64);
            }
        }
    }

    /// Burst dispatch: one queue-emptiness test answers both the busy bit
    /// and the wake, replacing the two extra virtual calls per woken tick.
    fn tick_burst(&mut self, ctx: &mut Ctx<'_>) -> BurstOutcome {
        self.tick(ctx);
        if self.queue.is_empty() {
            BurstOutcome {
                busy: false,
                wake: Wake::OnMessage,
            }
        } else {
            BurstOutcome {
                busy: true,
                wake: Wake::EveryCycle,
            }
        }
    }

    fn busy(&self) -> bool {
        !self.queue.is_empty()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        // Serving is bandwidth-throttled cycle by cycle; an empty queue
        // only changes on a request message.
        if self.queue.is_empty() {
            Wake::OnMessage
        } else {
            Wake::EveryCycle
        }
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.queue.save(w);
        self.rate.save(w);
        self.last_tick.save(w);
        self.stats.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.queue = Snap::load(r)?;
        self.rate = Snap::load(r)?;
        self.last_tick = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::{AccessId, LineAddr, LineMask, Origin, TrafficClass};
    use netcrafter_sim::EngineBuilder;
    use std::sync::Arc;
    use std::sync::Mutex;

    struct Sink {
        got: Arc<Mutex<Vec<(u64, MemRsp)>>>,
    }
    impl Component for Sink {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                if let Message::MemRsp(rsp) = msg {
                    self.got.lock().unwrap().push((ctx.cycle(), rsp));
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "sink"
        }
    }

    fn req(line: u64, write: bool) -> MemReq {
        MemReq {
            access: AccessId(line),
            line: LineAddr(line * 64),
            write,
            mask: LineMask::FULL,
            sectors: 0b1111,
            class: TrafficClass::Data,
            requester: GpuId(0),
            owner: GpuId(0),
            origin: Origin::L2,
        }
    }

    #[test]
    fn read_latency_is_config_latency() {
        let mut b = EngineBuilder::new();
        let sink = b.reserve();
        let dram = b.reserve();
        let got = Arc::new(Mutex::new(Vec::new()));
        b.install(
            sink,
            Box::new(Sink {
                got: Arc::clone(&got),
            }),
        );
        b.install(
            dram,
            Box::new(Dram::new(
                GpuId(0),
                &DramConfig {
                    bytes_per_cycle: 1000,
                    latency_cycles: 100,
                },
                sink,
            )),
        );
        let mut e = b.build();
        e.inject(dram, Message::MemReq(req(1, false)), 1);
        e.run_to_quiescence(1000);
        let got = got.lock().unwrap();
        assert_eq!(got.len(), 1);
        // Inject arrives at 1, served same cycle, +100 latency => ~101.
        assert!(
            got[0].0 >= 101 && got[0].0 <= 103,
            "arrival at {}",
            got[0].0
        );
    }

    #[test]
    fn writes_are_absorbed_without_response() {
        let mut b = EngineBuilder::new();
        let sink = b.reserve();
        let dram = b.reserve();
        let got = Arc::new(Mutex::new(Vec::new()));
        b.install(
            sink,
            Box::new(Sink {
                got: Arc::clone(&got),
            }),
        );
        b.install(
            dram,
            Box::new(Dram::new(
                GpuId(0),
                &DramConfig {
                    bytes_per_cycle: 1000,
                    latency_cycles: 100,
                },
                sink,
            )),
        );
        let mut e = b.build();
        e.inject(dram, Message::MemReq(req(1, true)), 1);
        e.run_to_quiescence(1000);
        assert!(got.lock().unwrap().is_empty());
    }

    #[test]
    fn bandwidth_throttles_throughput() {
        // 64 B/cycle: exactly one line per cycle.
        let mut b = EngineBuilder::new();
        let sink = b.reserve();
        let dram = b.reserve();
        let got = Arc::new(Mutex::new(Vec::new()));
        b.install(
            sink,
            Box::new(Sink {
                got: Arc::clone(&got),
            }),
        );
        let mut d = Dram::new(
            GpuId(0),
            &DramConfig {
                bytes_per_cycle: 64,
                latency_cycles: 10,
            },
            sink,
        );
        d.rate = RateLimiter::new(32.0, 64.0); // half a line per cycle
        b.install(dram, Box::new(d));
        let mut e = b.build();
        for i in 0..4 {
            e.inject(dram, Message::MemReq(req(i, false)), 1);
        }
        e.run_to_quiescence(1000);
        let got = got.lock().unwrap();
        assert_eq!(got.len(), 4);
        // At 0.5 lines/cycle, 4 lines take ~8 cycles: arrivals spread out.
        let first = got.first().expect("responses").0;
        let last = got.last().expect("responses").0;
        assert!(last >= first + 6, "throttled: first {first}, last {last}");
    }
}
