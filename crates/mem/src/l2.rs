//! The shared, banked L2 cache: 4 MB per GPU, 16 banks, 16-way,
//! 100-cycle lookup, write-back with write-allocate, 64-entry MSHR
//! (Table 2). Every GPU's L2 partition serves the whole node: local CUs
//! reach it directly, remote GPUs reach it through RDMA engines (§2.1).
//! Remote data is *not* cached here on the requesting side — only the
//! owner's partition caches it — matching the paper's no-remote-L2-caching
//! baseline.

use std::collections::VecDeque;

use netcrafter_proto::config::CacheConfig;
use netcrafter_proto::{GpuId, MemReq, MemRsp, Message, Metrics, Origin, LINE_BYTES};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{
    BurstOutcome, Component, ComponentId, Ctx, Cycle, DelayQueue, EventClass, Wake,
};

use crate::mshr::{Mshr, MshrOutcome};
use crate::tagstore::TagStore;

/// L2 statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2Stats {
    /// Read lookups processed.
    pub reads: u64,
    /// Write lookups processed.
    pub writes: u64,
    /// Read hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Dirty lines written back to DRAM.
    pub writebacks: u64,
    /// Requests served for remote GPUs.
    pub remote_served: u64,
    /// Page-table (PTW) reads served.
    pub ptw_reads: u64,
    /// Retries due to full MSHRs.
    pub mshr_retries: u64,
}

impl Snap for L2Stats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.reads.save(w);
        self.writes.save(w);
        self.read_hits.save(w);
        self.read_misses.save(w);
        self.write_hits.save(w);
        self.write_misses.save(w);
        self.writebacks.save(w);
        self.remote_served.save(w);
        self.ptw_reads.save(w);
        self.mshr_retries.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(L2Stats {
            reads: Snap::load(r)?,
            writes: Snap::load(r)?,
            read_hits: Snap::load(r)?,
            read_misses: Snap::load(r)?,
            write_hits: Snap::load(r)?,
            write_misses: Snap::load(r)?,
            writebacks: Snap::load(r)?,
            remote_served: Snap::load(r)?,
            ptw_reads: Snap::load(r)?,
            mshr_retries: Snap::load(r)?,
        })
    }
}

impl L2Stats {
    /// Dumps counters under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.reads"), self.reads);
        metrics.add(&format!("{prefix}.writes"), self.writes);
        metrics.add(&format!("{prefix}.read_hits"), self.read_hits);
        metrics.add(&format!("{prefix}.read_misses"), self.read_misses);
        metrics.add(&format!("{prefix}.write_hits"), self.write_hits);
        metrics.add(&format!("{prefix}.write_misses"), self.write_misses);
        metrics.add(&format!("{prefix}.writebacks"), self.writebacks);
        metrics.add(&format!("{prefix}.remote_served"), self.remote_served);
        metrics.add(&format!("{prefix}.ptw_reads"), self.ptw_reads);
        metrics.add(&format!("{prefix}.mshr_retries"), self.mshr_retries);
    }
}

#[derive(Debug)]
struct Bank {
    input: VecDeque<MemReq>,
    pipe: DelayQueue<MemReq>,
    tags: TagStore<bool>, // payload: dirty flag
    mshr: Mshr<MemReq>,
}

impl Snap for Bank {
    fn save(&self, w: &mut SnapshotWriter) {
        self.input.save(w);
        self.pipe.save(w);
        self.tags.save(w);
        self.mshr.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Bank {
            input: Snap::load(r)?,
            pipe: Snap::load(r)?,
            tags: Snap::load(r)?,
            mshr: Snap::load(r)?,
        })
    }
}

impl Bank {
    /// In-place [`Snap::load`]: the bank's queues are small, but its tag
    /// array is the L2's bulk state, so restoring it in place turns the
    /// dominant restore cost into a plain decode.
    fn load_into(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.input = Snap::load(r)?;
        self.pipe = Snap::load(r)?;
        self.tags.load_into(r)?;
        self.mshr = Snap::load(r)?;
        Ok(())
    }
}

/// Reply-routing table: where responses to each origin go.
#[derive(Debug, Clone)]
pub struct L2Wiring {
    /// Component of each local CU, indexed by GPU-local CU id.
    pub cus: Vec<ComponentId>,
    /// Component of the local GMMU.
    pub gmmu: ComponentId,
    /// Component of the local RDMA engine.
    pub rdma: ComponentId,
    /// Component of the local DRAM.
    pub dram: ComponentId,
}

/// The banked shared L2 component of one GPU.
pub struct L2Cache {
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    gpu: GpuId,
    // lint:allow(snapshot-field-parity) construction-time identity; load_state only names it in decode error messages
    name: String,
    banks: Vec<Bank>,
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    wiring: L2Wiring,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    lookup_cycles: u32,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    hop_cycles: u32,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    full_sector_mask: u16,
    /// Statistics.
    pub stats: L2Stats,
}

impl L2Cache {
    /// Builds the L2 of `gpu` from its configuration and reply wiring.
    pub fn new(
        gpu: GpuId,
        cfg: &CacheConfig,
        full_sector_mask: u16,
        hop_cycles: u32,
        wiring: L2Wiring,
    ) -> Self {
        let banks = cfg.banks.max(1) as usize;
        let lines_per_bank = (cfg.size_bytes / LINE_BYTES) as usize / banks;
        let mshr_per_bank = (cfg.mshr_entries as usize / banks).max(1);
        Self {
            gpu,
            name: format!("{gpu}.l2"),
            banks: (0..banks)
                .map(|_| Bank {
                    input: VecDeque::new(),
                    pipe: DelayQueue::new(),
                    tags: TagStore::with_entries(lines_per_bank, cfg.ways as usize),
                    mshr: Mshr::new(mshr_per_bank),
                })
                .collect(),
            wiring,
            lookup_cycles: cfg.lookup_cycles,
            hop_cycles,
            full_sector_mask,
            stats: L2Stats::default(),
        }
    }

    #[inline]
    fn bank_of(&self, line_key: u64) -> usize {
        (line_key % self.banks.len() as u64) as usize
    }

    fn reply_target(&self, req: &MemReq) -> ComponentId {
        if req.requester != self.gpu {
            return self.wiring.rdma;
        }
        match req.origin {
            Origin::Cu(i) => self.wiring.cus[i as usize],
            Origin::Gmmu => self.wiring.gmmu,
            Origin::Rdma => self.wiring.rdma,
            Origin::L2 => unreachable!("L2 never replies to itself"),
        }
    }

    fn respond(&mut self, ctx: &mut Ctx<'_>, req: &MemReq) {
        if req.requester != self.gpu {
            self.stats.remote_served += 1;
        }
        let target = self.reply_target(req);
        let rsp = MemRsp::for_req(req, req.sectors);
        ctx.send(target, Message::MemRsp(rsp), self.hop_cycles as u64);
    }

    fn send_dram_fill(&mut self, ctx: &mut Ctx<'_>, req: &MemReq) {
        let fill = MemReq {
            write: false,
            sectors: self.full_sector_mask,
            origin: Origin::L2,
            ..*req
        };
        ctx.send(
            self.wiring.dram,
            Message::MemReq(fill),
            self.hop_cycles as u64,
        );
    }

    fn send_dram_writeback(&mut self, ctx: &mut Ctx<'_>, line_key: u64) {
        self.stats.writebacks += 1;
        let wb = MemReq {
            access: netcrafter_proto::AccessId(u64::MAX), // fire-and-forget
            line: netcrafter_proto::LineAddr(line_key * LINE_BYTES),
            write: true,
            mask: netcrafter_proto::LineMask::FULL,
            sectors: self.full_sector_mask,
            class: netcrafter_proto::TrafficClass::Data,
            requester: self.gpu,
            owner: self.gpu,
            origin: Origin::L2,
        };
        ctx.send(
            self.wiring.dram,
            Message::MemReq(wb),
            self.hop_cycles as u64,
        );
    }

    /// Installs `line_key` (evicting if needed) and returns whether a
    /// dirty victim needs writing back.
    fn install(bank: &mut Bank, line_key: u64, dirty: bool, now: Cycle) -> Option<u64> {
        if let Some(d) = bank.tags.lookup(line_key, now) {
            *d |= dirty;
            return None;
        }
        match bank.tags.insert(line_key, dirty, now) {
            Some((victim_key, true)) => Some(victim_key),
            _ => None,
        }
    }

    fn process(&mut self, ctx: &mut Ctx<'_>, req: MemReq, now: Cycle) {
        debug_assert_eq!(
            req.owner, self.gpu,
            "{}: request for foreign line",
            self.name
        );
        let line_key = req.line.0 / LINE_BYTES;
        let bank_ix = self.bank_of(line_key);
        if req.write {
            self.stats.writes += 1;
            let bank = &mut self.banks[bank_ix];
            let hit = bank.tags.lookup(line_key, now).is_some();
            let full_line = req.mask == netcrafter_proto::LineMask::FULL;
            if hit {
                self.stats.write_hits += 1;
                *self.banks[bank_ix].tags.lookup(line_key, now).expect("hit") = true;
                self.respond(ctx, &req);
            } else if full_line {
                // Full-line write: install without fetching.
                self.stats.write_misses += 1;
                if let Some(victim) = Self::install(&mut self.banks[bank_ix], line_key, true, now) {
                    self.send_dram_writeback(ctx, victim);
                }
                self.respond(ctx, &req);
            } else {
                // Partial write miss: write-allocate (fetch then merge).
                self.stats.write_misses += 1;
                match self.banks[bank_ix]
                    .mshr
                    .register(line_key, self.full_sector_mask, req)
                {
                    MshrOutcome::Allocated => {
                        ctx.tracer().begin(EventClass::Cache, "l2.miss", line_key);
                        self.send_dram_fill(ctx, &req);
                    }
                    MshrOutcome::Merged => {
                        ctx.tracer()
                            .instant(EventClass::Mshr, "mshr.merge", line_key, 0);
                    }
                    MshrOutcome::Stalled => {
                        self.stats.mshr_retries += 1;
                        ctx.tracer()
                            .instant(EventClass::Mshr, "mshr.stall", line_key, 0);
                        self.banks[bank_ix].input.push_back(req);
                    }
                }
            }
        } else {
            self.stats.reads += 1;
            if req.class == netcrafter_proto::TrafficClass::Ptw {
                self.stats.ptw_reads += 1;
            }
            let hit = self.banks[bank_ix].tags.lookup(line_key, now).is_some();
            if hit {
                self.stats.read_hits += 1;
                self.respond(ctx, &req);
            } else {
                self.stats.read_misses += 1;
                match self.banks[bank_ix]
                    .mshr
                    .register(line_key, self.full_sector_mask, req)
                {
                    MshrOutcome::Allocated => {
                        ctx.tracer().begin(EventClass::Cache, "l2.miss", line_key);
                        self.send_dram_fill(ctx, &req);
                    }
                    MshrOutcome::Merged => {
                        ctx.tracer()
                            .instant(EventClass::Mshr, "mshr.merge", line_key, 0);
                    }
                    MshrOutcome::Stalled => {
                        self.stats.mshr_retries += 1;
                        ctx.tracer()
                            .instant(EventClass::Mshr, "mshr.stall", line_key, 0);
                        self.banks[bank_ix].input.push_back(req);
                    }
                }
            }
        }
    }

    fn on_fill(&mut self, ctx: &mut Ctx<'_>, rsp: MemRsp, now: Cycle) {
        let line_key = rsp.line.0 / LINE_BYTES;
        let bank_ix = self.bank_of(line_key);
        if let Some(victim) = Self::install(&mut self.banks[bank_ix], line_key, false, now) {
            self.send_dram_writeback(ctx, victim);
        }
        let waiters = self.banks[bank_ix].mshr.complete(line_key);
        if !waiters.is_empty() {
            ctx.tracer().end(EventClass::Cache, "l2.miss", line_key);
            ctx.tracer().instant(
                EventClass::Mshr,
                "mshr.fill",
                line_key,
                waiters.len() as u64,
            );
        }
        for req in waiters {
            if req.write {
                *self.banks[bank_ix]
                    .tags
                    .lookup(line_key, now)
                    .expect("just installed") = true;
            }
            self.respond(ctx, &req);
        }
    }
}

impl Component for L2Cache {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.cycle();
        while let Some(msg) = ctx.recv() {
            match msg {
                Message::MemReq(req) => {
                    let bank_ix = self.bank_of(req.line.0 / LINE_BYTES);
                    self.banks[bank_ix].input.push_back(req);
                }
                Message::MemRsp(rsp) => {
                    debug_assert!(!rsp.write, "DRAM write-backs are fire-and-forget");
                    self.on_fill(ctx, rsp, now);
                }
                other => panic!("{}: unexpected {}", self.name, other.label()),
            }
        }
        // Each bank admits one request per cycle into its lookup pipeline
        // and retires what the pipeline completes.
        for ix in 0..self.banks.len() {
            if let Some(req) = self.banks[ix].input.pop_front() {
                let ready = now + self.lookup_cycles as Cycle;
                self.banks[ix].pipe.push(ready, req);
            }
            while let Some(req) = self.banks[ix].pipe.pop_ready(now) {
                self.process(ctx, req, now);
            }
        }
    }

    fn busy(&self) -> bool {
        self.banks
            .iter()
            .any(|b| !b.input.is_empty() || !b.pipe.is_empty() || !b.mshr.is_empty())
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        // Queued input admits one request per bank per cycle; with only
        // pipeline contents left, nothing happens until the earliest
        // lookup completes; MSHR-only state waits on the DRAM fill
        // message.
        let mut wake = Wake::OnMessage;
        for bank in &self.banks {
            if !bank.input.is_empty() {
                return Wake::EveryCycle;
            }
            if let Some(t) = bank.pipe.next_ready() {
                wake = wake.earliest(Wake::At(t));
            }
        }
        wake
    }

    fn tick_burst(&mut self, ctx: &mut Ctx<'_>) -> BurstOutcome {
        self.tick(ctx);
        // Fused status pass: busy and the earliest wake come from the
        // same per-bank fields, so one traversal answers both. Once a
        // bank has queued input the outcome is saturated (busy, ticked
        // every cycle) and the remaining banks cannot change it.
        let mut busy = false;
        let mut wake = Wake::OnMessage;
        for bank in &self.banks {
            busy |= !bank.input.is_empty() || !bank.pipe.is_empty() || !bank.mshr.is_empty();
            if !bank.input.is_empty() {
                wake = Wake::EveryCycle;
            } else if let Some(t) = bank.pipe.next_ready() {
                wake = wake.earliest(Wake::At(t));
            }
            if busy && wake == Wake::EveryCycle {
                break;
            }
        }
        BurstOutcome { busy, wake }
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.banks.save(w);
        self.stats.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        // Same bytes as `Vec<Bank>`'s save (length prefix + each bank),
        // decoded bank-by-bank into the existing allocations.
        let n = r.get_len()?;
        if n != self.banks.len() {
            return Err(SnapshotError::Corrupt(format!(
                "{}: snapshot has {n} banks, cache has {}",
                self.name,
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            bank.load_into(r)?;
        }
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::{AccessId, LineAddr, LineMask, TrafficClass};
    use netcrafter_sim::EngineBuilder;
    use std::sync::Arc;
    use std::sync::Mutex;

    /// Captures responses; also acts as the DRAM stand-in that answers
    /// fills after a fixed delay.
    struct Stub {
        responses: Arc<Mutex<Vec<MemRsp>>>,
        fills_seen: Arc<Mutex<Vec<MemReq>>>,
        reply_to: Option<ComponentId>,
        latency: u64,
    }
    impl Component for Stub {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                match msg {
                    Message::MemRsp(rsp) => self.responses.lock().unwrap().push(rsp),
                    Message::MemReq(req) => {
                        self.fills_seen.lock().unwrap().push(req);
                        if !req.write {
                            if let Some(target) = self.reply_to {
                                ctx.send(
                                    target,
                                    Message::MemRsp(MemRsp::for_req(&req, req.sectors)),
                                    self.latency,
                                );
                            }
                        }
                    }
                    other => panic!("stub got {}", other.label()),
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "stub"
        }
    }

    struct Harness {
        engine: netcrafter_sim::Engine,
        l2: ComponentId,
        responses: Arc<Mutex<Vec<MemRsp>>>,
        fills: Arc<Mutex<Vec<MemReq>>>,
    }

    fn harness() -> Harness {
        let mut b = EngineBuilder::new();
        let cu = b.reserve();
        let gmmu = b.reserve();
        let rdma = b.reserve();
        let dram = b.reserve();
        let l2 = b.reserve();
        let responses = Arc::new(Mutex::new(Vec::new()));
        let fills = Arc::new(Mutex::new(Vec::new()));
        for id in [cu, gmmu, rdma] {
            b.install(
                id,
                Box::new(Stub {
                    responses: Arc::clone(&responses),
                    fills_seen: Arc::clone(&fills),
                    reply_to: None,
                    latency: 0,
                }),
            );
        }
        b.install(
            dram,
            Box::new(Stub {
                responses: Arc::clone(&responses),
                fills_seen: Arc::clone(&fills),
                reply_to: Some(l2),
                latency: 100,
            }),
        );
        let cfg = CacheConfig {
            size_bytes: 64 * 1024,
            ways: 4,
            lookup_cycles: 100,
            mshr_entries: 16,
            banks: 4,
        };
        b.install(
            l2,
            Box::new(L2Cache::new(
                GpuId(0),
                &cfg,
                0b1111,
                2,
                L2Wiring {
                    cus: vec![cu],
                    gmmu,
                    rdma,
                    dram,
                },
            )),
        );
        Harness {
            engine: b.build(),
            l2,
            responses,
            fills,
        }
    }

    fn read(line: u64, requester: u16, origin: Origin) -> MemReq {
        MemReq {
            access: AccessId(line),
            line: LineAddr(line * 64),
            write: false,
            mask: LineMask::span(0, 8),
            sectors: 0b1111,
            class: TrafficClass::Data,
            requester: GpuId(requester),
            owner: GpuId(0),
            origin,
        }
    }

    #[test]
    fn read_miss_fills_from_dram_then_hits() {
        let mut h = harness();
        h.engine
            .inject(h.l2, Message::MemReq(read(1, 0, Origin::Cu(0))), 1);
        h.engine.run_to_quiescence(1000);
        assert_eq!(h.responses.lock().unwrap().len(), 1);
        assert_eq!(h.fills.lock().unwrap().len(), 1, "one DRAM fill");
        let t_miss = h.engine.cycle();
        assert!(t_miss >= 200, "lookup (100) + DRAM (100), got {t_miss}");

        // Second read to the same line: hit, no new fill.
        h.engine
            .inject(h.l2, Message::MemReq(read(1, 0, Origin::Cu(0))), 1);
        h.engine.run_to_quiescence(1000);
        assert_eq!(h.responses.lock().unwrap().len(), 2);
        assert_eq!(h.fills.lock().unwrap().len(), 1, "no second fill");
    }

    #[test]
    fn remote_request_replies_to_rdma() {
        let mut h = harness();
        // requester = gpu2 (remote): reply goes to the rdma stub, which
        // shares the same responses vec — verify via remote_served stat
        // path by checking a response arrived.
        h.engine
            .inject(h.l2, Message::MemReq(read(2, 2, Origin::Cu(5))), 1);
        h.engine.run_to_quiescence(1000);
        assert_eq!(h.responses.lock().unwrap().len(), 1);
        assert_eq!(h.responses.lock().unwrap()[0].requester, GpuId(2));
    }

    #[test]
    fn merged_misses_single_fill() {
        let mut h = harness();
        h.engine
            .inject(h.l2, Message::MemReq(read(3, 0, Origin::Cu(0))), 1);
        h.engine
            .inject(h.l2, Message::MemReq(read(3, 0, Origin::Gmmu)), 2);
        h.engine.run_to_quiescence(1000);
        assert_eq!(h.responses.lock().unwrap().len(), 2, "both waiters woken");
        assert_eq!(h.fills.lock().unwrap().len(), 1, "one fill serves both");
    }

    #[test]
    fn full_line_write_installs_without_fetch() {
        let mut h = harness();
        let mut w = read(4, 0, Origin::Cu(0));
        w.write = true;
        w.mask = LineMask::FULL;
        h.engine.inject(h.l2, Message::MemReq(w), 1);
        h.engine.run_to_quiescence(1000);
        assert_eq!(h.responses.lock().unwrap().len(), 1, "write ack");
        assert!(
            h.fills.lock().unwrap().is_empty(),
            "no fetch for full-line write"
        );
    }

    #[test]
    fn partial_write_miss_allocates() {
        let mut h = harness();
        let mut w = read(5, 0, Origin::Cu(0));
        w.write = true;
        w.mask = LineMask::span(0, 8);
        h.engine.inject(h.l2, Message::MemReq(w), 1);
        h.engine.run_to_quiescence(1000);
        assert_eq!(
            h.responses.lock().unwrap().len(),
            1,
            "write ack after allocate"
        );
        assert_eq!(
            h.fills.lock().unwrap().len(),
            1,
            "fetch before merging write"
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut h = harness();
        // 64 KB / 64 B = 1024 lines over 4 banks = 256 lines/bank, 4 ways
        // -> 64 sets/bank. Write lines that all land in bank 0, set 0:
        // line keys multiple of 4 (bank) * 64 (set) = 256.
        for i in 0..5u64 {
            let mut w = read(i * 256, 0, Origin::Cu(0));
            w.write = true;
            w.mask = LineMask::FULL;
            h.engine.inject(h.l2, Message::MemReq(w), 1 + i);
        }
        h.engine.run_to_quiescence(5000);
        assert_eq!(h.responses.lock().unwrap().len(), 5);
        // 5 dirty lines into a 4-way set: one eviction -> one write-back
        // (a write MemReq arriving at the DRAM stub).
        let wbs = h.fills.lock().unwrap().iter().filter(|r| r.write).count();
        assert_eq!(wbs, 1, "exactly one dirty write-back");
    }

    #[test]
    fn ptw_reads_counted() {
        let mut h = harness();
        let mut r = read(7, 0, Origin::Gmmu);
        r.class = TrafficClass::Ptw;
        h.engine.inject(h.l2, Message::MemReq(r), 1);
        h.engine.run_to_quiescence(1000);
        assert_eq!(h.responses.lock().unwrap().len(), 1);
    }
}
