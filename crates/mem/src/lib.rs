//! Memory hierarchy models: the per-CU sectored L1 vector cache, the
//! banked shared L2, and HBM/DRAM — the Table 2 memory system.
//!
//! Design notes mirroring the paper's baseline (§2.1, Table 2):
//!
//! * The **L1** is a 64 KB write-through vector cache with a 20-cycle
//!   lookup and a 32-entry MSHR. It supports three fill policies
//!   ([`netcrafter_proto::SectorFillPolicy`]): classic full-line fills,
//!   NetCrafter's Trimming-aware fills (partial lines arrive only from
//!   trimmed inter-cluster responses), and the all-sectored comparison
//!   baseline of §5.3. Lines track per-sector validity.
//! * The **L2** is 4 MB per GPU, 16 banks, 16-way, 100-cycle lookup,
//!   write-back with write-allocate, shared by all GPUs in the node
//!   (remote GPUs reach it through their RDMA engines). Remote data is
//!   never cached in the local L2 partition — only in L1 — per §2.1.
//! * **DRAM** sustains 1 TB/s with 100 ns access latency.
//!
//! The L1 is a passive structure driven by its CU's tick (it shares the
//! CU's component); the L2 and DRAM are engine components.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod dram;
pub mod l1;
pub mod l2;
pub mod mshr;
pub mod tagstore;

pub use dram::Dram;
pub use l1::{L1Access, L1Cache, L1Stats};
pub use l2::{L2Cache, L2Stats};
pub use mshr::{Mshr, MshrOutcome};
pub use tagstore::TagStore;
