//! Coalesced memory accesses — the unit of work flowing from wavefronts
//! into the memory hierarchy.
//!
//! MGPUSim (and real GCN hardware) coalesces the per-thread addresses of a
//! 64-thread wavefront into per-cache-line requests before they reach the
//! L1 vector cache (§2.1). The workload generators in `netcrafter-workloads`
//! emit streams of already-coalesced accesses; each records *which bytes* of
//! the 64 B line the wavefront actually needs, the information that drives
//! the paper's Figure 7 characterization and the Trimming mechanism.

use crate::addr::{LineMask, VAddr};
use crate::ids::{CtaId, WavefrontId};

/// Whether an access reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A coalesced load.
    Read,
    /// A coalesced store. The L1 is write-through (Table 2), so stores
    /// always propagate to the owning L2.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// One coalesced wavefront access to a single 64 B cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalescedAccess {
    /// Virtual address of the first byte touched.
    pub vaddr: VAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Exactly which bytes of the line the wavefront needs.
    pub mask: LineMask,
}

impl CoalescedAccess {
    /// Convenience constructor for a read of `len` bytes at `vaddr`.
    ///
    /// # Panics
    ///
    /// Panics if the span would cross a cache-line boundary; coalescing
    /// never produces such accesses.
    pub fn read(vaddr: VAddr, len: u64) -> Self {
        Self::new(vaddr, len, AccessKind::Read)
    }

    /// Convenience constructor for a write of `len` bytes at `vaddr`.
    pub fn write(vaddr: VAddr, len: u64) -> Self {
        Self::new(vaddr, len, AccessKind::Write)
    }

    fn new(vaddr: VAddr, len: u64, kind: AccessKind) -> Self {
        let off = vaddr.line_offset();
        assert!(
            off + len <= crate::addr::LINE_BYTES,
            "coalesced access must not cross a line boundary: offset {off} + len {len}"
        );
        Self {
            vaddr,
            kind,
            mask: LineMask::span(off, len),
        }
    }

    /// Constructs an access with an explicit byte mask (for strided
    /// patterns where a wavefront touches scattered bytes of one line).
    pub fn with_mask(vaddr: VAddr, kind: AccessKind, mask: LineMask) -> Self {
        assert!(!mask.is_empty(), "access mask must cover at least one byte");
        Self { vaddr, kind, mask }
    }

    /// Number of line bytes the wavefront needs.
    #[inline]
    pub fn bytes_required(&self) -> u32 {
        self.mask.bytes()
    }
}

/// One operation in a wavefront's instruction stream, as produced by a
/// workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WavefrontOp {
    /// A coalesced memory access.
    Mem(CoalescedAccess),
    /// `cycles` of computation with no memory traffic. Models arithmetic
    /// between memory instructions; the CU keeps the wavefront busy for
    /// this long before issuing its next op.
    Compute(u32),
}

/// A wavefront's identity and its full op stream.
///
/// Workload generators produce these; the LASP scheduler maps their parent
/// CTAs onto GPUs and the per-GPU dispatcher feeds them to CUs.
#[derive(Debug, Clone)]
pub struct WavefrontTrace {
    /// Unique id within the kernel.
    pub id: WavefrontId,
    /// The CTA this wavefront belongs to.
    pub cta: CtaId,
    /// Ops in program order.
    pub ops: Vec<WavefrontOp>,
}

impl WavefrontTrace {
    /// Total number of memory operations in the trace.
    pub fn mem_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, WavefrontOp::Mem(_)))
            .count()
    }

    /// Total "instructions" for MPKI purposes: every op counts as one
    /// dynamic instruction.
    pub fn instructions(&self) -> usize {
        self.ops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_constructor_sets_mask() {
        let a = CoalescedAccess::read(VAddr(0x100), 8);
        assert_eq!(a.bytes_required(), 8);
        assert_eq!(a.kind, AccessKind::Read);
        assert!(!a.kind.is_write());
    }

    #[test]
    fn write_constructor() {
        let a = CoalescedAccess::write(VAddr(0x140), 64);
        assert!(a.kind.is_write());
        assert_eq!(a.bytes_required(), 64);
    }

    #[test]
    #[should_panic(expected = "cross a line boundary")]
    fn access_may_not_cross_line() {
        let _ = CoalescedAccess::read(VAddr(0x13c), 8);
    }

    #[test]
    fn with_mask_accepts_scattered_bytes() {
        let mask = LineMask::span(0, 4).union(LineMask::span(32, 4));
        let a = CoalescedAccess::with_mask(VAddr(0x200), AccessKind::Read, mask);
        assert_eq!(a.bytes_required(), 8);
        assert!(!a.mask.fits_one_sector(16));
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn with_mask_rejects_empty() {
        let _ = CoalescedAccess::with_mask(VAddr(0), AccessKind::Read, LineMask::EMPTY);
    }

    #[test]
    fn trace_counts() {
        let t = WavefrontTrace {
            id: WavefrontId(0),
            cta: CtaId(0),
            ops: vec![
                WavefrontOp::Compute(10),
                WavefrontOp::Mem(CoalescedAccess::read(VAddr(0), 4)),
                WavefrontOp::Mem(CoalescedAccess::write(VAddr(64), 4)),
            ],
        };
        assert_eq!(t.mem_ops(), 2);
        assert_eq!(t.instructions(), 3);
    }
}
