//! Network packets: the six traffic categories of the paper's Table 1.
//!
//! The simulated protocol is the simplified PCIe-style protocol of §4.1:
//! each packet is a header plus a payload. Headers are 12 bytes (4 B
//! metadata + 8 B address) for read/write/page-table *requests* and for
//! page-table *responses* (whose translated physical address rides in the
//! header's address field), and 4 bytes (metadata only) for read/write
//! *responses*, matching footnote 2 of the paper.
//!
//! | Kind            | Header | Payload | Wire bytes | 16 B flits | Padded |
//! |-----------------|--------|---------|------------|------------|--------|
//! | `ReadReq`       | 12     | 0       | 12         | 1          | 4      |
//! | `WriteReq`      | 12     | 64      | 76         | 5          | 4      |
//! | `PageTableReq`  | 12     | 0       | 12         | 1          | 4      |
//! | `ReadRsp`       | 4      | 64      | 68         | 5          | 12     |
//! | `WriteRsp`      | 4      | 0       | 4          | 1          | 12     |
//! | `PageTableRsp`  | 12     | 0       | 12         | 1          | 4      |
//!
//! A *trimmed* read response (§4.3) carries a single sector instead of the
//! whole line: 4 + 16 = 20 wire bytes, i.e. 2 flits instead of 5.

use core::fmt;

use crate::ids::{NodeId, PacketId};
use crate::message::{MemReq, MemRsp};

/// The six packet categories observed on the inter-GPU network (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PacketKind {
    /// A remote read request; carries only the address.
    ReadReq,
    /// A remote write request; carries the address and a full cache line.
    WriteReq,
    /// A page-table read issued by a page-table walker for a PTE held on a
    /// remote GPU.
    PageTableReq,
    /// A read response carrying cache-line data (possibly trimmed).
    ReadRsp,
    /// A write acknowledgment; header-only.
    WriteRsp,
    /// A page-table response carrying the translated physical address in
    /// its header address field.
    PageTableRsp,
}

/// Every packet kind, in Table 1 order. Useful for stats tables and for the
/// Cluster Queue's per-type partitions.
pub const ALL_PACKET_KINDS: [PacketKind; 6] = [
    PacketKind::ReadReq,
    PacketKind::WriteReq,
    PacketKind::PageTableReq,
    PacketKind::ReadRsp,
    PacketKind::WriteRsp,
    PacketKind::PageTableRsp,
];

impl PacketKind {
    /// Header size on the wire (footnote 2 of the paper): 4 B for data
    /// responses, 12 B otherwise.
    #[inline]
    pub const fn header_bytes(self) -> u32 {
        match self {
            PacketKind::ReadRsp | PacketKind::WriteRsp => 4,
            _ => 12,
        }
    }

    /// True for the two page-table-walk-related kinds, which the
    /// Sequencing mechanism treats as latency-critical (§3.3, Observation 3).
    #[inline]
    pub const fn is_ptw(self) -> bool {
        matches!(self, PacketKind::PageTableReq | PacketKind::PageTableRsp)
    }

    /// True for response kinds (travel from data owner back to requester).
    #[inline]
    pub const fn is_response(self) -> bool {
        matches!(
            self,
            PacketKind::ReadRsp | PacketKind::WriteRsp | PacketKind::PageTableRsp
        )
    }

    /// Index into Table-1-ordered arrays.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            PacketKind::ReadReq => 0,
            PacketKind::WriteReq => 1,
            PacketKind::PageTableReq => 2,
            PacketKind::ReadRsp => 3,
            PacketKind::WriteRsp => 4,
            PacketKind::PageTableRsp => 5,
        }
    }

    /// Short display label used by the stats tables.
    pub const fn label(self) -> &'static str {
        match self {
            PacketKind::ReadReq => "Read Req",
            PacketKind::WriteReq => "Write Req",
            PacketKind::PageTableReq => "Page Table Req",
            PacketKind::ReadRsp => "Read Rsp",
            PacketKind::WriteRsp => "Write Rsp",
            PacketKind::PageTableRsp => "Page Table Rsp",
        }
    }
}

impl fmt::Display for PacketKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Latency class of network traffic, used by the Sequencing mechanism:
/// PTW-related flits are prioritized over data flits on lower-bandwidth
/// links (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Ordinary data traffic (read/write requests and responses).
    Data,
    /// Page-table-walk traffic (page-table requests and responses).
    Ptw,
}

/// Trimming control bits carried in a read request's otherwise-unused
/// address bits (§4.3): one bit saying the wavefront needs at most one
/// sector, plus the sector offset within the 64 B line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrimInfo {
    /// Sector granularity in bytes (16 in the paper's default; 4 and 8 are
    /// explored in Figure 17).
    pub granularity: u32,
    /// Index of the one sector the wavefront needs.
    pub sector: u8,
}

impl TrimInfo {
    /// Payload bytes of a response trimmed to this request: one sector.
    #[inline]
    pub const fn trimmed_payload_bytes(self) -> u32 {
        self.granularity
    }
}

/// The protocol-level message a packet delivers to its destination RDMA
/// engine once reassembled from flits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketPayload {
    /// A memory request (remote read/write or remote page-table read).
    Req(MemReq),
    /// A memory response.
    Rsp(MemRsp),
}

/// A network packet exchanged between GPU RDMA engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique packet id; doubles as the stitching `ID` metadata.
    pub id: PacketId,
    /// Traffic category.
    pub kind: PacketKind,
    /// Source endpoint (the sending GPU's RDMA engine node).
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Data payload bytes: 64 for full-line transfers, the sector size for
    /// trimmed read responses, 0 for header-only packets.
    pub payload_bytes: u32,
    /// Trim request bits (set on eligible read requests).
    pub trim: Option<TrimInfo>,
    /// The message delivered on reassembly.
    pub inner: PacketPayload,
}

impl Packet {
    /// Header size on the wire.
    #[inline]
    pub const fn header_bytes(&self) -> u32 {
        self.kind.header_bytes()
    }

    /// Total occupied wire bytes (header + payload): the *Bytes Required*
    /// column of Table 1.
    #[inline]
    pub const fn wire_bytes(&self) -> u32 {
        self.kind.header_bytes() + self.payload_bytes
    }

    /// Number of flits the packet occupies at `flit_bytes` granularity:
    /// the *Flits Occupied* column of Table 1.
    #[inline]
    pub const fn flit_count(&self, flit_bytes: u32) -> u32 {
        self.wire_bytes().div_ceil(flit_bytes)
    }

    /// Padded (useless) bytes when segmented into `flit_bytes` flits:
    /// the *Bytes Padded* column of Table 1.
    #[inline]
    pub const fn padded_bytes(&self, flit_bytes: u32) -> u32 {
        self.flit_count(flit_bytes) * flit_bytes - self.wire_bytes()
    }

    /// Latency class, derived from the packet kind.
    #[inline]
    pub const fn class(&self) -> TrafficClass {
        if self.kind.is_ptw() {
            TrafficClass::Ptw
        } else {
            TrafficClass::Data
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{LineAddr, LineMask};
    use crate::ids::{AccessId, GpuId};

    fn dummy_req() -> MemReq {
        MemReq {
            access: AccessId(1),
            line: LineAddr(0x1000),
            write: false,
            mask: LineMask::span(0, 8),
            sectors: 0b1111,
            class: TrafficClass::Data,
            requester: GpuId(0),
            owner: GpuId(2),
            origin: crate::message::Origin::Cu(0),
        }
    }

    fn packet(kind: PacketKind, payload: u32) -> Packet {
        Packet {
            id: PacketId(7),
            kind,
            src: NodeId(0),
            dst: NodeId(3),
            payload_bytes: payload,
            trim: None,
            inner: PacketPayload::Req(dummy_req()),
        }
    }

    /// Reproduces Table 1 of the paper exactly, for 16 B flits.
    #[test]
    fn table1_sizes() {
        // (kind, payload, occupied_bytes, required, padded, flits)
        let rows = [
            (PacketKind::ReadReq, 0, 16, 12, 4, 1),
            (PacketKind::WriteReq, 64, 80, 76, 4, 5),
            (PacketKind::PageTableReq, 0, 16, 12, 4, 1),
            (PacketKind::ReadRsp, 64, 80, 68, 12, 5),
            (PacketKind::WriteRsp, 0, 16, 4, 12, 1),
            (PacketKind::PageTableRsp, 0, 16, 12, 4, 1),
        ];
        for (kind, payload, occupied, required, padded, flits) in rows {
            let p = packet(kind, payload);
            assert_eq!(p.wire_bytes(), required, "{kind}: bytes required");
            assert_eq!(p.padded_bytes(16), padded, "{kind}: bytes padded");
            assert_eq!(p.flit_count(16), flits, "{kind}: flits occupied");
            assert_eq!(p.flit_count(16) * 16, occupied, "{kind}: bytes occupied");
        }
    }

    #[test]
    fn trimmed_read_rsp_is_two_flits() {
        let p = packet(PacketKind::ReadRsp, 16);
        assert_eq!(p.wire_bytes(), 20);
        assert_eq!(p.flit_count(16), 2);
        assert_eq!(p.padded_bytes(16), 12);
    }

    #[test]
    fn eight_byte_flits() {
        let p = packet(PacketKind::ReadRsp, 64);
        assert_eq!(p.flit_count(8), 9); // 68 bytes -> 9 flits of 8 B
        assert_eq!(p.padded_bytes(8), 4);
    }

    #[test]
    fn ptw_classification() {
        assert!(PacketKind::PageTableReq.is_ptw());
        assert!(PacketKind::PageTableRsp.is_ptw());
        assert!(!PacketKind::ReadRsp.is_ptw());
        assert_eq!(
            packet(PacketKind::PageTableReq, 0).class(),
            TrafficClass::Ptw
        );
        assert_eq!(packet(PacketKind::ReadReq, 0).class(), TrafficClass::Data);
    }

    #[test]
    fn response_classification() {
        assert!(PacketKind::ReadRsp.is_response());
        assert!(PacketKind::WriteRsp.is_response());
        assert!(PacketKind::PageTableRsp.is_response());
        assert!(!PacketKind::ReadReq.is_response());
    }

    #[test]
    fn kind_indices_are_table1_order() {
        for (i, k) in ALL_PACKET_KINDS.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn trim_info_payload() {
        let t = TrimInfo {
            granularity: 16,
            sector: 2,
        };
        assert_eq!(t.trimmed_payload_bytes(), 16);
    }
}
