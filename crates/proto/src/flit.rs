//! Flits — flow-control units — with explicit occupancy accounting and
//! support for NetCrafter's stitched multi-chunk flits.
//!
//! A packet is segmented into fixed-size flits before entering the network
//! (§2.1, step 4b). Because packet sizes are rarely multiples of the flit
//! size, the final flit of a packet is usually partly empty — the padded
//! bytes of Table 1 and Figure 6. NetCrafter's Stitching Engine fills that
//! padding with *chunks* of other packets heading to the same destination
//! cluster (§4.2, Figure 11).
//!
//! A [`Flit`] here is therefore a list of [`Chunk`]s plus a byte capacity.
//! An ordinary (un-stitched) flit holds exactly one chunk. A stitched flit
//! holds the parent chunk followed by one or more stitched chunks; a
//! stitched chunk that carries only payload (no header) pays 2 extra
//! metadata bytes — the `ID` and `Size` fields of Figure 10(c).

use core::fmt;

use crate::ids::{NodeId, PacketId};
use crate::packet::{Packet, PacketKind, TrafficClass};

/// Extra metadata bytes prepended to a payload-only chunk when it is
/// stitched into a parent flit: a 1-byte `ID` tag plus a 1-byte `Size`
/// field (§4.2).
pub const STITCH_META_BYTES: u32 = 2;

/// A contiguous fragment of one packet carried inside a flit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// The packet this fragment belongs to.
    pub packet: PacketId,
    /// The packet's traffic category.
    pub kind: PacketKind,
    /// Occupied bytes of this fragment (header and/or payload bytes),
    /// excluding stitching metadata.
    pub bytes: u32,
    /// Stitching metadata bytes (0, or [`STITCH_META_BYTES`] when this
    /// chunk was stitched without its header).
    pub meta_bytes: u32,
    /// True if this fragment contains the packet's header.
    pub has_header: bool,
    /// True if this is the final fragment of its packet.
    pub is_tail: bool,
    /// Position of this fragment in the packet's original flit sequence.
    pub seq: u32,
    /// Final destination endpoint of the packet.
    pub dst: NodeId,
    /// Latency class (PTW fragments are latency-critical).
    pub class: TrafficClass,
    /// The full logical packet, carried by the tail fragment so the
    /// destination can reconstruct the protocol message. `None` on
    /// non-tail fragments.
    pub packet_info: Option<Box<Packet>>,
}

impl Chunk {
    /// Total bytes this chunk consumes inside a flit.
    #[inline]
    pub const fn wire_bytes(&self) -> u32 {
        self.bytes + self.meta_bytes
    }

    /// True if this chunk is a self-contained single-flit packet
    /// (header and tail in one fragment), which stitches for free.
    #[inline]
    pub const fn is_whole_packet(&self) -> bool {
        self.has_header && self.is_tail && self.seq == 0
    }
}

/// A flow-control unit traversing the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flit {
    /// Flit capacity in bytes (16 in the baseline, 8 in the flit-size
    /// sensitivity study of Figure 21).
    pub capacity: u32,
    /// Fragments carried. `chunks[0]` is the parent; any further entries
    /// were stitched in by a NetCrafter controller.
    pub chunks: Vec<Chunk>,
    /// Current routing destination. For endpoint traffic this is the
    /// destination GPU's node; stitched flits on the inter-cluster link are
    /// addressed to the remote cluster switch, which un-stitches and
    /// re-routes the constituent chunks.
    pub dst: NodeId,
}

impl Flit {
    /// Creates an ordinary single-chunk flit.
    pub fn single(capacity: u32, chunk: Chunk) -> Self {
        let dst = chunk.dst;
        let flit = Self {
            capacity,
            chunks: vec![chunk],
            dst,
        };
        debug_assert!(flit.used_bytes() <= capacity, "chunk larger than flit");
        flit
    }

    /// Occupied bytes, including stitching metadata.
    #[inline]
    pub fn used_bytes(&self) -> u32 {
        self.chunks.iter().map(Chunk::wire_bytes).sum()
    }

    /// Empty (padded) bytes available for stitching.
    #[inline]
    pub fn empty_bytes(&self) -> u32 {
        self.capacity - self.used_bytes()
    }

    /// Fraction of the flit that is padding, in percent.
    #[inline]
    pub fn padding_pct(&self) -> u32 {
        self.empty_bytes() * 100 / self.capacity
    }

    /// True if this flit carries more than one packet's data.
    #[inline]
    pub fn is_stitched(&self) -> bool {
        self.chunks.len() > 1
    }

    /// Latency class of the flit: PTW if *any* chunk is PTW-related, so a
    /// stitched flit containing a page-table fragment keeps its priority.
    pub fn class(&self) -> TrafficClass {
        if self.chunks.iter().any(|c| c.class == TrafficClass::Ptw) {
            TrafficClass::Ptw
        } else {
            TrafficClass::Data
        }
    }

    /// Cost in bytes of stitching `candidate`'s parent chunk into `self`:
    /// the candidate's occupied bytes, plus metadata if the candidate's
    /// first chunk lacks a header. Returns `None` if the candidate cannot
    /// fit (also when the candidate itself is already stitched — the
    /// engine only stitches single-chunk candidates, though an already-
    /// stitched *parent* may absorb more chunks, §4.4 step 4h).
    pub fn stitch_cost(&self, candidate: &Flit) -> Option<u32> {
        if candidate.chunks.len() != 1 {
            return None;
        }
        let c = &candidate.chunks[0];
        let cost = if c.has_header {
            c.bytes
        } else {
            c.bytes + STITCH_META_BYTES
        };
        (cost <= self.empty_bytes() && self.dst_cluster_compatible(candidate)).then_some(cost)
    }

    /// Stitching requires a shared route; the caller (the Cluster Queue)
    /// only offers candidates from the same destination-cluster partition,
    /// so here we only check capacity-independent invariants.
    fn dst_cluster_compatible(&self, _candidate: &Flit) -> bool {
        true
    }

    /// Absorbs `candidate`'s chunk into this flit, applying stitching
    /// metadata when needed.
    ///
    /// # Panics
    ///
    /// Panics if the candidate does not fit (callers must check
    /// [`Flit::stitch_cost`] first).
    pub fn stitch(&mut self, mut candidate: Flit) {
        let cost = self
            .stitch_cost(&candidate)
            .expect("stitch candidate must fit parent flit");
        let mut chunk = candidate.chunks.remove(0);
        if !chunk.has_header {
            chunk.meta_bytes = STITCH_META_BYTES;
        }
        debug_assert_eq!(chunk.wire_bytes(), cost);
        self.chunks.push(chunk);
        debug_assert!(self.used_bytes() <= self.capacity);
    }

    /// Splits a stitched flit back into its constituent single-chunk flits,
    /// dropping stitching metadata — the Un-stitching operation performed
    /// by the receiving cluster switch's Stitching Engine (§4.4).
    pub fn unstitch(self) -> Vec<Flit> {
        let capacity = self.capacity;
        self.chunks
            .into_iter()
            .map(|mut chunk| {
                chunk.meta_bytes = 0;
                Flit::single(capacity, chunk)
            })
            .collect()
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flit[{}B/{}B, {} chunk(s), dst {}]",
            self.used_bytes(),
            self.capacity,
            self.chunks.len(),
            self.dst
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(packet: u64, bytes: u32, has_header: bool, is_tail: bool, seq: u32) -> Chunk {
        Chunk {
            packet: PacketId(packet),
            kind: PacketKind::ReadRsp,
            bytes,
            meta_bytes: 0,
            has_header,
            is_tail,
            seq,
            dst: NodeId(3),
            class: TrafficClass::Data,
            packet_info: None,
        }
    }

    #[test]
    fn occupancy_accounting() {
        // Tail flit of a read response: 4 occupied bytes, 12 empty.
        let f = Flit::single(16, chunk(1, 4, false, true, 4));
        assert_eq!(f.used_bytes(), 4);
        assert_eq!(f.empty_bytes(), 12);
        assert_eq!(f.padding_pct(), 75);
        assert!(!f.is_stitched());
    }

    #[test]
    fn stitch_whole_packet_costs_no_metadata() {
        // Parent: read-response tail (4 B used, 12 empty).
        let mut parent = Flit::single(16, chunk(1, 4, false, true, 4));
        // Candidate: a whole write-response packet (4 B with header).
        let cand = Flit::single(16, chunk(2, 4, true, true, 0));
        assert_eq!(parent.stitch_cost(&cand), Some(4));
        parent.stitch(cand);
        assert!(parent.is_stitched());
        assert_eq!(parent.used_bytes(), 8);
        assert_eq!(parent.chunks[1].meta_bytes, 0);
    }

    #[test]
    fn stitch_partial_payload_pays_two_bytes() {
        // Parent: read-response tail with 12 empty bytes.
        let mut parent = Flit::single(16, chunk(1, 4, false, true, 4));
        // Candidate: tail of another read response (payload only, no header).
        let cand = Flit::single(16, chunk(2, 4, false, true, 4));
        assert_eq!(parent.stitch_cost(&cand), Some(6)); // 4 + 2 metadata
        parent.stitch(cand);
        assert_eq!(parent.used_bytes(), 10);
        assert_eq!(parent.chunks[1].meta_bytes, STITCH_META_BYTES);
    }

    #[test]
    fn stitch_rejects_oversized_candidate() {
        let parent = Flit::single(16, chunk(1, 12, true, true, 0)); // 4 empty
        let cand = Flit::single(16, chunk(2, 12, true, true, 0)); // needs 12
        assert_eq!(parent.stitch_cost(&cand), None);
    }

    #[test]
    fn stitch_rejects_already_stitched_candidate() {
        let mut cand = Flit::single(16, chunk(2, 4, false, true, 4));
        cand.stitch(Flit::single(16, chunk(3, 4, true, true, 0)));
        let parent = Flit::single(16, chunk(1, 4, false, true, 4));
        assert_eq!(parent.stitch_cost(&cand), None);
    }

    #[test]
    fn multiple_candidates_fill_parent() {
        // Parent write-response (4 B used, 12 empty) absorbs three whole
        // write responses of 4 B each.
        let mut parent = Flit::single(16, chunk(1, 4, true, true, 0));
        for id in 2..5 {
            let cand = Flit::single(16, chunk(id, 4, true, true, 0));
            assert!(parent.stitch_cost(&cand).is_some(), "candidate {id} fits");
            parent.stitch(cand);
        }
        assert_eq!(parent.used_bytes(), 16);
        assert_eq!(parent.empty_bytes(), 0);
        let cand = Flit::single(16, chunk(9, 4, true, true, 0));
        assert_eq!(
            parent.stitch_cost(&cand),
            None,
            "full parent absorbs no more"
        );
    }

    #[test]
    fn unstitch_round_trips() {
        let mut parent = Flit::single(16, chunk(1, 4, false, true, 4));
        let cand_a = Flit::single(16, chunk(2, 4, false, true, 4));
        let cand_b = Flit::single(16, chunk(3, 4, true, true, 0));
        parent.stitch(cand_a.clone());
        parent.stitch(cand_b.clone());
        let parts = parent.unstitch();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[1], cand_a);
        assert_eq!(parts[2], cand_b);
        assert!(parts.iter().all(|f| !f.is_stitched()));
    }

    #[test]
    fn ptw_chunk_promotes_flit_class() {
        let mut parent = Flit::single(16, chunk(1, 4, false, true, 4));
        assert_eq!(parent.class(), TrafficClass::Data);
        let mut ptw = chunk(2, 12, true, true, 0);
        ptw.kind = PacketKind::PageTableRsp;
        ptw.class = TrafficClass::Ptw;
        parent.stitch(Flit::single(16, ptw));
        assert_eq!(parent.class(), TrafficClass::Ptw);
    }

    #[test]
    fn whole_packet_detection() {
        assert!(chunk(1, 12, true, true, 0).is_whole_packet());
        assert!(!chunk(1, 4, false, true, 4).is_whole_packet());
        assert!(!chunk(1, 16, true, false, 0).is_whole_packet());
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn stitch_panics_when_too_big() {
        let mut parent = Flit::single(16, chunk(1, 14, true, true, 0));
        parent.stitch(Flit::single(16, chunk(2, 12, true, true, 0)));
    }
}
