//! Domain types shared by every crate of the NetCrafter reproduction.
//!
//! This crate is dependency-free and purely declarative: it defines the
//! vocabulary of the simulated system — identifiers, addresses, coalesced
//! accesses, network packets and flits, the system configuration of the
//! paper's Table 2, and the statistics registry used by the measurement
//! harness.
//!
//! The types here mirror the paper's terminology:
//!
//! * [`packet::Packet`] / [`packet::PacketKind`] — the six traffic
//!   categories of Table 1 (read/write/page-table requests and responses).
//! * [`flit::Flit`] / [`flit::Chunk`] — flow-control units with explicit
//!   occupancy accounting, including stitched multi-chunk flits
//!   (paper §4.1–§4.2, Figures 10 and 11).
//! * [`config::SystemConfig`] — the baseline multi-GPU configuration
//!   (Table 2) plus the NetCrafter knobs (pooling window, trim granularity,
//!   flit size, per-mechanism enables).
//! * [`stats::Metrics`] — counters, histograms and latency accumulators
//!   harvested by the experiment harness to regenerate every figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod access;
pub mod addr;
pub mod collections;
pub mod config;
pub mod flit;
pub mod ids;
pub mod kernel;
pub mod message;
pub mod packet;
pub mod stats;

pub use access::{AccessKind, CoalescedAccess, WavefrontOp, WavefrontTrace};
pub use addr::{LineAddr, LineMask, PAddr, VAddr, LINE_BYTES, PAGE_BYTES, SECTOR_BYTES};
pub use collections::OrderedMap;
pub use config::{
    fnv1a64, FabricConfig, NetCrafterConfig, SectorFillPolicy, SystemConfig, TopologyConfig,
};
pub use flit::{Chunk, Flit, STITCH_META_BYTES};
pub use ids::{AccessId, ClusterId, CtaId, CuId, GpuId, NodeId, PacketId, WavefrontId};
pub use kernel::{AccessPattern, BufferSpec, CtaSpec, KernelSpec};
pub use message::{MemReq, MemRsp, Message, Origin, TransReq, TransRsp};
pub use packet::{Packet, PacketKind, PacketPayload, TrafficClass, TrimInfo, ALL_PACKET_KINDS};
pub use stats::{Histogram, LatencyStat, Metrics, TimeSeries};
