//! Virtual and physical addresses, cache lines, sectors and pages.
//!
//! The simulated machine uses the address geometry of the paper's baseline:
//!
//! * 48-bit virtual addresses translated by a 4-level radix page table
//!   (9 bits per level, 4 KiB pages) — §2.3;
//! * 64-byte cache lines — Table 2;
//! * 16-byte sectors within a line, the granularity at which Trimming
//!   fetches remote data and at which the sectored L1 fills — §4.3.

use core::fmt;

/// Bytes per cache line (Table 2).
pub const LINE_BYTES: u64 = 64;
/// Bytes per page (standard 4 KiB small pages, §2.3).
pub const PAGE_BYTES: u64 = 4096;
/// Default Trimming / sector granularity in bytes (§4.3).
pub const SECTOR_BYTES: u64 = 16;
/// Number of page-table levels in the radix tree (§2.3).
pub const PT_LEVELS: u8 = 4;
/// Virtual-address bits carried by a PCIe-style packet header (§4.1).
pub const VA_BITS: u32 = 48;
/// Index bits per page-table level (512-entry tables).
pub const PT_LEVEL_BITS: u32 = 9;

/// A virtual address in the unified virtual memory space shared by all GPUs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

/// A physical address. The physical space is partitioned across GPUs: the
/// bits above [`PA_GPU_REGION_BITS`](crate::config::PA_GPU_REGION_BITS)
/// name the GPU whose HBM holds the byte.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

/// A physical cache-line address (a [`PAddr`] with the low 6 bits cleared).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

impl VAddr {
    /// Virtual page number of this address.
    #[inline]
    pub const fn vpn(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Byte offset within the 64 B cache line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// Radix-tree index at `level` (level 1 is the root, level 4 the leaf),
    /// matching the 4-level walk of §2.3.
    #[inline]
    pub const fn pt_index(self, level: u8) -> u64 {
        debug_assert!(level >= 1 && level <= PT_LEVELS);
        let shift = 12 + PT_LEVEL_BITS * (PT_LEVELS - level) as u32;
        (self.0 >> shift) & ((1 << PT_LEVEL_BITS) - 1)
    }

    /// The 2 MiB-aligned region this address falls in. One leaf page-table
    /// page maps exactly one such region; the paper places that PTE page on
    /// the GPU holding the region's first data page (§2.3).
    #[inline]
    pub const fn region_2mb(self) -> u64 {
        self.0 >> 21
    }
}

impl PAddr {
    /// Physical page frame number.
    #[inline]
    pub const fn pfn(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Physical cache-line address containing this byte.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 & !(LINE_BYTES - 1))
    }

    /// Byte offset within the 64 B cache line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// Sector index within the cache line at `sector_bytes` granularity.
    #[inline]
    pub const fn sector(self, sector_bytes: u64) -> u8 {
        (self.line_offset() / sector_bytes) as u8
    }
}

impl LineAddr {
    /// Constructs the line address containing `pa`.
    #[inline]
    pub const fn containing(pa: PAddr) -> Self {
        pa.line()
    }

    /// First byte of the line as a full physical address.
    #[inline]
    pub const fn base(self) -> PAddr {
        PAddr(self.0)
    }

    /// Physical page frame number of the line.
    #[inline]
    pub const fn pfn(self) -> u64 {
        self.0 / PAGE_BYTES
    }
}

/// Composes a physical address from a page frame number and an offset.
#[inline]
pub const fn pa_from_parts(pfn: u64, page_offset: u64) -> PAddr {
    PAddr(pfn * PAGE_BYTES + page_offset)
}

/// A byte-range mask over one 64 B cache line, recording exactly which bytes
/// a coalesced wavefront access touches.
///
/// The paper's Figure 7 characterizes inter-cluster read requests by how
/// many line bytes the wavefront actually needs; this mask is where that
/// information originates. It also drives the Trimming decision (§4.3): a
/// request whose mask fits in one 16 B sector is eligible for a trimmed
/// response.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineMask(pub u64);

impl LineMask {
    /// The empty mask.
    pub const EMPTY: LineMask = LineMask(0);
    /// Mask covering the whole 64 B line.
    pub const FULL: LineMask = LineMask(u64::MAX);

    /// Mask for `len` bytes starting at byte `offset` within the line.
    /// Saturates at the line end.
    #[inline]
    pub const fn span(offset: u64, len: u64) -> Self {
        debug_assert!(offset < LINE_BYTES);
        let end = if offset + len > LINE_BYTES {
            LINE_BYTES
        } else {
            offset + len
        };
        let n = end - offset;
        if n == 64 {
            return LineMask(u64::MAX);
        }
        LineMask(((1u64 << n) - 1) << offset)
    }

    /// Number of bytes covered.
    #[inline]
    pub const fn bytes(self) -> u32 {
        self.0.count_ones()
    }

    /// True if no byte is covered.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Union of two masks.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        LineMask(self.0 | other.0)
    }

    /// True if every byte of `self` is also in `other`.
    #[inline]
    pub const fn subset_of(self, other: Self) -> bool {
        self.0 & !other.0 == 0
    }

    /// Mask of the sectors (at `sector_bytes` granularity) needed to cover
    /// this byte mask. Bit `i` of the result covers bytes
    /// `[i*sector_bytes, (i+1)*sector_bytes)`.
    pub fn sectors(self, sector_bytes: u64) -> u16 {
        let n_sectors = (LINE_BYTES / sector_bytes) as u16;
        debug_assert!(n_sectors <= 16, "sector granularity below 4 B unsupported");
        let mut out = 0u16;
        for s in 0..n_sectors {
            let sector_mask = LineMask::span(s as u64 * sector_bytes, sector_bytes);
            if self.0 & sector_mask.0 != 0 {
                out |= 1 << s;
            }
        }
        out
    }

    /// True if all covered bytes fit in a single sector of `sector_bytes`,
    /// i.e. the access qualifies for Trimming's "needs 16 bytes" bit.
    pub fn fits_one_sector(self, sector_bytes: u64) -> bool {
        !self.is_empty() && self.sectors(sector_bytes).count_ones() == 1
    }

    /// Index of the lowest sector touched, at `sector_bytes` granularity.
    /// Returns `None` for an empty mask.
    pub fn first_sector(self, sector_bytes: u64) -> Option<u8> {
        if self.is_empty() {
            None
        } else {
            Some((self.0.trailing_zeros() as u64 / sector_bytes) as u8)
        }
    }

    /// Bucket of bytes required as reported in Figure 7: 16, 32, 48 or 64.
    /// An access needing 1–16 bytes buckets to 16, and so on.
    pub fn fig7_bucket(self) -> u32 {
        let b = self.bytes();
        (b.div_ceil(16)).max(1) * 16
    }
}

impl fmt::Debug for LineMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mask[{}B:{:#018x}]", self.bytes(), self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offsets() {
        let va = VAddr(0x12345);
        assert_eq!(va.vpn(), 0x12);
        assert_eq!(va.page_offset(), 0x345);
        assert_eq!(va.line_offset(), 0x05);
    }

    #[test]
    fn pt_indices_cover_48_bits() {
        // Address with distinct 9-bit groups.
        let va = VAddr((1u64 << 39) | (2 << 30) | (3 << 21) | (4 << 12) | 0xabc);
        assert_eq!(va.pt_index(1), 1);
        assert_eq!(va.pt_index(2), 2);
        assert_eq!(va.pt_index(3), 3);
        assert_eq!(va.pt_index(4), 4);
        assert_eq!(va.page_offset(), 0xabc);
    }

    #[test]
    fn region_2mb_is_leaf_table_granularity() {
        // One leaf table maps 512 pages * 4 KiB = 2 MiB.
        assert_eq!(VAddr(0).region_2mb(), VAddr((1 << 21) - 1).region_2mb());
        assert_ne!(VAddr(0).region_2mb(), VAddr(1 << 21).region_2mb());
    }

    #[test]
    fn line_and_sector_math() {
        let pa = PAddr(0x1003a);
        assert_eq!(pa.line(), LineAddr(0x10000));
        assert_eq!(pa.line_offset(), 0x3a);
        assert_eq!(pa.sector(16), 3);
        assert_eq!(LineAddr(0x10000).base(), PAddr(0x10000));
    }

    #[test]
    fn line_mask_span_and_bytes() {
        let m = LineMask::span(4, 8);
        assert_eq!(m.bytes(), 8);
        assert!(!m.is_empty());
        assert!(m.subset_of(LineMask::FULL));
        assert_eq!(LineMask::span(0, 64), LineMask::FULL);
        assert_eq!(
            LineMask::span(60, 100).bytes(),
            4,
            "span saturates at line end"
        );
    }

    #[test]
    fn sector_coverage() {
        let m = LineMask::span(0, 8);
        assert_eq!(m.sectors(16), 0b0001);
        assert!(m.fits_one_sector(16));
        assert_eq!(m.first_sector(16), Some(0));

        let m = LineMask::span(14, 4); // straddles sector 0/1 boundary
        assert_eq!(m.sectors(16), 0b0011);
        assert!(!m.fits_one_sector(16));

        let m = LineMask::span(48, 16);
        assert_eq!(m.sectors(16), 0b1000);
        assert_eq!(m.first_sector(16), Some(3));

        assert_eq!(LineMask::EMPTY.first_sector(16), None);
        assert!(!LineMask::EMPTY.fits_one_sector(16));
    }

    #[test]
    fn sector_granularity_4_and_8() {
        let m = LineMask::span(0, 4);
        assert_eq!(m.sectors(4), 0b1);
        assert_eq!(m.sectors(8), 0b1);
        let m = LineMask::span(8, 8);
        assert_eq!(m.sectors(8), 0b10);
        assert!(m.fits_one_sector(8));
    }

    #[test]
    fn fig7_buckets() {
        assert_eq!(LineMask::span(0, 1).fig7_bucket(), 16);
        assert_eq!(LineMask::span(0, 16).fig7_bucket(), 16);
        assert_eq!(LineMask::span(0, 17).fig7_bucket(), 32);
        assert_eq!(LineMask::span(0, 33).fig7_bucket(), 48);
        assert_eq!(LineMask::FULL.fig7_bucket(), 64);
    }

    #[test]
    fn mask_union_subset() {
        let a = LineMask::span(0, 8);
        let b = LineMask::span(8, 8);
        let u = a.union(b);
        assert_eq!(u.bytes(), 16);
        assert!(a.subset_of(u));
        assert!(b.subset_of(u));
        assert!(!u.subset_of(a));
    }
}
