//! Strongly-typed identifiers for the entities of the simulated system.
//!
//! Every identifier is a thin newtype over an integer so that indices into
//! the various component tables cannot be confused with one another. All of
//! them are `Copy`, ordered and hashable, and display as `kind<n>`.

use core::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $repr:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw integer value of this identifier.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Returns the identifier as a `usize`, for indexing tables.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A GPU (chiplet) in the multi-GPU node. GPUs are numbered globally,
    /// so with 2 clusters × 2 GPUs the ids are `gpu0..gpu3`.
    GpuId,
    u16,
    "gpu"
);

id_type!(
    /// A cluster of GPUs connected by the higher-bandwidth intra-cluster
    /// network. Clusters are connected to each other by the lower-bandwidth
    /// inter-cluster network that NetCrafter optimizes.
    ClusterId,
    u16,
    "cluster"
);

id_type!(
    /// A compute unit (CU / streaming multiprocessor) within one GPU.
    /// The id is local to its GPU.
    CuId,
    u16,
    "cu"
);

id_type!(
    /// A cooperative thread array (workgroup / thread block) of a kernel.
    CtaId,
    u32,
    "cta"
);

id_type!(
    /// A wavefront (warp): 64 adjacent threads executing in lockstep on a
    /// SIMD unit. The id is unique within one kernel launch.
    WavefrontId,
    u32,
    "wf"
);

id_type!(
    /// A network endpoint or intermediate hop. Every GPU's RDMA engine and
    /// every switch owns one `NodeId`; routing tables map destination nodes
    /// to output ports.
    NodeId,
    u16,
    "node"
);

id_type!(
    /// A memory access in flight, assigned at coalescing time and carried
    /// end-to-end so responses can be matched to requests.
    AccessId,
    u64,
    "acc"
);

id_type!(
    /// A network packet. The id doubles as the stitching `ID` metadata the
    /// paper adds when a payload-only chunk is stitched into a parent flit
    /// (§4.2, Figure 10(c)).
    PacketId,
    u64,
    "pkt"
);

impl GpuId {
    /// Returns the cluster this GPU belongs to, given the number of GPUs
    /// per cluster.
    #[inline]
    pub const fn cluster(self, gpus_per_cluster: u16) -> ClusterId {
        ClusterId(self.0 / gpus_per_cluster)
    }
}

/// A monotonically increasing id allocator usable for any id-macro type.
///
/// # Examples
///
/// ```
/// use netcrafter_proto::ids::{IdAlloc, PacketId};
///
/// let mut alloc = IdAlloc::<PacketId>::new();
/// assert_eq!(alloc.next(), PacketId(0));
/// assert_eq!(alloc.next(), PacketId(1));
/// ```
#[derive(Debug, Clone)]
pub struct IdAlloc<T> {
    // lint:allow(snapshot-field-parity) serialized via issued()/with_issued() by sim's Snap impl, which cannot name this private field
    next: u64,
    // lint:allow(snapshot-field-parity) PhantomData; no runtime state
    _marker: core::marker::PhantomData<T>,
}

impl<T: From<u64>> IdAlloc<T> {
    /// Creates an allocator starting at id 0.
    pub const fn new() -> Self {
        Self {
            next: 0,
            _marker: core::marker::PhantomData,
        }
    }

    /// Returns the next id and advances the allocator.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> T {
        let id = self.next;
        self.next += 1;
        T::from(id)
    }

    /// Number of ids handed out so far.
    pub const fn issued(&self) -> u64 {
        self.next
    }

    /// Recreates an allocator that has already handed out `issued` ids,
    /// so the next id is `issued`. Used when restoring saved state.
    pub const fn with_issued(issued: u64) -> Self {
        Self {
            next: issued,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<T: From<u64>> Default for IdAlloc<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(GpuId(0) < GpuId(3));
        assert_eq!(GpuId(2).index(), 2);
        assert_eq!(CuId(7).raw(), 7);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(GpuId(3).to_string(), "gpu3");
        assert_eq!(ClusterId(1).to_string(), "cluster1");
        assert_eq!(format!("{:?}", PacketId(42)), "pkt42");
    }

    #[test]
    fn gpu_cluster_mapping_matches_frontier_layout() {
        // 2 GPUs per cluster: gpu0,gpu1 -> cluster0; gpu2,gpu3 -> cluster1.
        assert_eq!(GpuId(0).cluster(2), ClusterId(0));
        assert_eq!(GpuId(1).cluster(2), ClusterId(0));
        assert_eq!(GpuId(2).cluster(2), ClusterId(1));
        assert_eq!(GpuId(3).cluster(2), ClusterId(1));
    }

    #[test]
    fn id_alloc_is_monotonic() {
        let mut a = IdAlloc::<AccessId>::new();
        let first = a.next();
        let second = a.next();
        assert_eq!(first, AccessId(0));
        assert_eq!(second, AccessId(1));
        assert_eq!(a.issued(), 2);
    }

    #[test]
    fn from_raw_round_trips() {
        let id: NodeId = 9u16.into();
        assert_eq!(id, NodeId(9));
    }
}
