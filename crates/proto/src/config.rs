//! System configuration: the paper's Table 2 baseline plus the NetCrafter
//! mechanism knobs and every sensitivity-study parameter.
//!
//! All components take their parameters from [`SystemConfig`]; the
//! experiment harness builds variants of the paper's baseline
//! ([`SystemConfig::paper_baseline`]) by toggling fields, exactly as the
//! evaluation section varies them (flit size, pooling window, bandwidth
//! ratios, sector policies).

use crate::addr::SECTOR_BYTES;
use crate::ids::{ClusterId, GpuId};

/// Simulated core clock: 1 GHz (Table 2), so 1 GB/s of link bandwidth is
/// exactly 1 byte per cycle.
pub const CLOCK_GHZ: f64 = 1.0;

/// Bits of physical address space owned by each GPU's memory partition
/// (64 GiB per GPU). The GPU owning a physical address is
/// `pa >> PA_GPU_REGION_BITS`.
pub const PA_GPU_REGION_BITS: u32 = 36;

/// How the L1 vector cache fills lines from remote responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectorFillPolicy {
    /// Baseline: every fill brings the whole 64 B line.
    FullLine,
    /// NetCrafter Trimming (§4.3): fills arriving from *inter-cluster*
    /// responses may carry a single sector; everything else is full-line.
    OnTrim,
    /// The sector-cache comparison baseline of §5.3: every fill, local or
    /// remote, brings only the requested sectors.
    Always,
}

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Lookup latency in cycles.
    pub lookup_cycles: u32,
    /// Miss-status-holding-register entries.
    pub mshr_entries: u32,
    /// Number of independent banks (1 for the L1).
    pub banks: u32,
}

/// Configuration of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Associativity; `u32::MAX` means fully associative.
    pub ways: u32,
    /// Lookup latency in cycles.
    pub lookup_cycles: u32,
    /// MSHR entries for outstanding misses.
    pub mshr_entries: u32,
}

/// DRAM timing/bandwidth model (Table 2: 1 TB/s, 100 ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Sustained bandwidth in bytes per cycle (1 TB/s at 1 GHz = 1000 B).
    pub bytes_per_cycle: u32,
    /// Access latency in cycles (100 ns at 1 GHz = 100 cycles).
    pub latency_cycles: u32,
}

/// Network switch parameters (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Data-processing pipeline depth in cycles.
    pub pipeline_cycles: u32,
    /// Per-port I/O buffer capacity in flits.
    pub buffer_entries: u32,
}

/// GMMU parameters: page-walk cache and parallel walkers (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmmuConfig {
    /// Page-walk-cache entries (fully associative).
    pub pwc_entries: u32,
    /// Page-walk-cache lookup latency in cycles.
    pub pwc_lookup_cycles: u32,
    /// Number of parallel page-table walkers.
    pub walkers: u32,
}

/// Switch-level fabric connecting the cluster (edge) switches.
///
/// The paper's node is a full mesh of two cluster switches (one link);
/// the scale-out fabrics add a two-tier fat-tree and a 3D torus so the
/// non-uniform-bandwidth mechanisms can be stress-tested across multi-hop
/// paths and oversubscription ratios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricConfig {
    /// Every cluster switch links directly to every other cluster switch
    /// (the paper baseline: 2 switches, 1 inter link).
    Mesh,
    /// Two-tier fat-tree: every cluster (edge) switch uplinks to each of
    /// `cores` core switches. Oversubscription ratio =
    /// injection bandwidth / uplink bandwidth per edge switch.
    FatTree {
        /// Number of core-tier switches.
        cores: u16,
    },
    /// 3D torus of cluster switches with deterministic dimension-order
    /// routing (X, then Y, then Z) and dateline virtual channels for
    /// deadlock freedom on the wrap links.
    Torus {
        /// Ring length in X (fastest-varying coordinate).
        x: u16,
        /// Ring length in Y.
        y: u16,
        /// Ring length in Z (slowest-varying coordinate).
        z: u16,
    },
}

impl FabricConfig {
    /// Compact, stable token used in [`SystemConfig::stable_repr`].
    pub fn stable_token(&self) -> String {
        match self {
            FabricConfig::Mesh => "mesh".to_string(),
            FabricConfig::FatTree { cores } => format!("ft{cores}"),
            FabricConfig::Torus { x, y, z } => format!("torus{x}x{y}x{z}"),
        }
    }
}

/// Shape and bandwidths of the hierarchical interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyConfig {
    /// Number of GPU clusters (2 in the Frontier-inspired baseline). Each
    /// cluster owns one edge switch.
    pub clusters: u16,
    /// GPUs per cluster (2 in the baseline).
    pub gpus_per_cluster: u16,
    /// Intra-cluster (higher-bandwidth) link rate in GB/s — bytes/cycle at
    /// the 1 GHz clock. Baseline: 128.
    pub intra_gbps: f64,
    /// Inter-cluster (lower-bandwidth) link rate in GB/s. Baseline: 16.
    pub inter_gbps: f64,
    /// How the cluster switches are wired together.
    pub fabric: FabricConfig,
    /// Wire latency in cycles of every switch↔switch fabric link. The
    /// paper-baseline mesh uses 1; the scale-out presets use 4 so the
    /// per-link lookahead heterogeneity is real.
    pub fabric_link_cycles: u32,
}

impl TopologyConfig {
    /// Total number of GPUs in the node.
    #[inline]
    pub fn total_gpus(&self) -> u16 {
        self.clusters * self.gpus_per_cluster
    }

    /// Cluster of a GPU.
    #[inline]
    pub fn cluster_of(&self, gpu: GpuId) -> ClusterId {
        gpu.cluster(self.gpus_per_cluster)
    }

    /// True if `a` and `b` are in different clusters, i.e. traffic between
    /// them crosses the lower-bandwidth inter-cluster network.
    #[inline]
    pub fn crosses_clusters(&self, a: GpuId, b: GpuId) -> bool {
        self.cluster_of(a) != self.cluster_of(b)
    }

    /// Intra-cluster link bandwidth in bytes per cycle.
    #[inline]
    pub fn intra_bytes_per_cycle(&self) -> f64 {
        self.intra_gbps * CLOCK_GHZ
    }

    /// Inter-cluster link bandwidth in bytes per cycle.
    #[inline]
    pub fn inter_bytes_per_cycle(&self) -> f64 {
        self.inter_gbps * CLOCK_GHZ
    }

    /// Total number of switches in the fabric: one edge switch per
    /// cluster, plus the core tier for fat-trees.
    #[inline]
    pub fn num_switches(&self) -> u16 {
        match self.fabric {
            FabricConfig::Mesh | FabricConfig::Torus { .. } => self.clusters,
            FabricConfig::FatTree { cores } => self.clusters + cores,
        }
    }

    /// Distinct fabric neighbors of one edge switch (physical links, not
    /// virtual channels). Used for oversubscription and capacity math.
    pub fn fabric_links_per_edge(&self) -> u16 {
        match self.fabric {
            FabricConfig::Mesh => self.clusters.saturating_sub(1),
            FabricConfig::FatTree { cores } => cores,
            FabricConfig::Torus { x, y, z } => [x, y, z]
                .iter()
                .map(|&d| match d {
                    0 | 1 => 0u16,
                    2 => 1,
                    _ => 2,
                })
                .sum(),
        }
    }

    /// Injection-to-uplink bandwidth ratio at one edge switch: the
    /// fat-tree oversubscription knob, generalized to all fabrics.
    pub fn oversubscription(&self) -> f64 {
        let uplinks = self.fabric_links_per_edge();
        if uplinks == 0 {
            return 0.0;
        }
        (self.gpus_per_cluster as f64 * self.intra_gbps) / (uplinks as f64 * self.inter_gbps)
    }

    /// Parses a `--topology` CLI spec into a topology with the paper's
    /// baseline bandwidths (override via the returned struct's fields).
    ///
    /// Grammar (case-sensitive, `:`-separated options):
    /// * `mesh` or `mesh:CxG` — full mesh of `C` clusters × `G` GPUs
    ///   (default 2×2, fabric latency 1 — the paper baseline).
    /// * `fat-tree:k=K[:g=G][:cores=N]` — `K` edge switches × `G` GPUs
    ///   (default 2) with `N` cores (default `K/2`), fabric latency 4.
    /// * `torus:XxYxZ[:g=G]` — `X·Y·Z` switches × `G` GPUs (default 1),
    ///   fabric latency 4.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let baseline = TopologyConfig {
            clusters: 2,
            gpus_per_cluster: 2,
            intra_gbps: 128.0,
            inter_gbps: 16.0,
            fabric: FabricConfig::Mesh,
            fabric_link_cycles: 1,
        };
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or("");
        let opts: Vec<&str> = parts.collect();
        let parse_u16 = |s: &str, what: &str| -> Result<u16, String> {
            s.parse::<u16>()
                .map_err(|_| format!("--topology: bad {what} {s:?} in {spec:?}"))
        };
        let parse_dims = |s: &str| -> Result<(u16, u16, u16), String> {
            let d: Vec<&str> = s.split('x').collect();
            if d.len() != 3 {
                return Err(format!("--topology: expected XxYxZ, got {s:?} in {spec:?}"));
            }
            Ok((
                parse_u16(d[0], "dimension")?,
                parse_u16(d[1], "dimension")?,
                parse_u16(d[2], "dimension")?,
            ))
        };
        match kind {
            "mesh" => {
                let mut t = baseline;
                if let Some(shape) = opts.first() {
                    let d: Vec<&str> = shape.split('x').collect();
                    if d.len() != 2 {
                        return Err(format!("--topology: expected mesh:CxG, got {spec:?}"));
                    }
                    t.clusters = parse_u16(d[0], "cluster count")?;
                    t.gpus_per_cluster = parse_u16(d[1], "GPUs per cluster")?;
                }
                Ok(t)
            }
            "fat-tree" => {
                let mut k = None;
                let mut g = 2u16;
                let mut cores = None;
                for o in &opts {
                    if let Some(v) = o.strip_prefix("k=") {
                        k = Some(parse_u16(v, "edge count")?);
                    } else if let Some(v) = o.strip_prefix("g=") {
                        g = parse_u16(v, "GPUs per cluster")?;
                    } else if let Some(v) = o.strip_prefix("cores=") {
                        cores = Some(parse_u16(v, "core count")?);
                    } else {
                        return Err(format!("--topology: unknown option {o:?} in {spec:?}"));
                    }
                }
                let k = k.ok_or_else(|| format!("--topology: fat-tree needs k=K in {spec:?}"))?;
                Ok(TopologyConfig {
                    clusters: k,
                    gpus_per_cluster: g,
                    fabric: FabricConfig::FatTree {
                        cores: cores.unwrap_or_else(|| (k / 2).max(1)),
                    },
                    fabric_link_cycles: 4,
                    ..baseline
                })
            }
            "torus" => {
                let dims = opts
                    .first()
                    .ok_or_else(|| format!("--topology: torus needs XxYxZ in {spec:?}"))?;
                let (x, y, z) = parse_dims(dims)?;
                let mut g = 1u16;
                for o in &opts[1..] {
                    if let Some(v) = o.strip_prefix("g=") {
                        g = parse_u16(v, "GPUs per cluster")?;
                    } else {
                        return Err(format!("--topology: unknown option {o:?} in {spec:?}"));
                    }
                }
                Ok(TopologyConfig {
                    clusters: x * y * z,
                    gpus_per_cluster: g,
                    fabric: FabricConfig::Torus { x, y, z },
                    fabric_link_cycles: 4,
                    ..baseline
                })
            }
            _ => Err(format!(
                "--topology: unknown fabric {kind:?} (mesh | fat-tree | torus) in {spec:?}"
            )),
        }
    }
}

/// Per-mechanism NetCrafter configuration (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetCrafterConfig {
    /// Enable the Stitching Engine (§4.2).
    pub stitching: bool,
    /// Flit Pooling window in cycles; 0 disables pooling. The paper sweeps
    /// 32–128 and picks 32 as the sweet spot (Figure 18/19).
    pub pooling_window: u32,
    /// Selective Flit Pooling: exempt latency-critical (PTW) flits from
    /// the pooling delay (§4.2, Optimization II).
    pub selective_pooling: bool,
    /// Enable Trimming of inter-cluster read responses (§4.3).
    pub trimming: bool,
    /// Enable Sequencing: prioritize PTW flits at the Cluster Queue (§4.3).
    pub sequencing: bool,
    /// Figure 8 characterization support: when set (with `sequencing`),
    /// the Cluster Queue prioritizes *data read* partitions instead of the
    /// PTW partitions — the "prioritize the same fraction of data
    /// accesses" comparison the paper uses to show PTW traffic is the
    /// latency-critical class.
    pub prioritize_data_instead: bool,
    /// How deep into each Cluster Queue partition the Stitching Engine
    /// searches for candidates — the width of the controller's candidate
    /// CAM. The paper does not specify this; 16 is our default and the
    /// ablation harness sweeps it.
    pub stitch_search_depth: u32,
    /// Policy activation cycle: the Cluster Queue knobs (stitching,
    /// pooling, sequencing and their refinements) stay inert until this
    /// cycle, so every configuration that differs only in those knobs
    /// evolves identically through the warmup window. 0 (the default)
    /// activates everything from cycle 0 — the historical behavior.
    ///
    /// This is the lever behind prefix-sharing sweeps: jobs whose
    /// [`SystemConfig::warmup_repr`] match can execute the shared
    /// `[0, warmup_cycles)` prefix once and fork the snapshot into each
    /// divergent suffix. Note the knobs that act through *construction*
    /// (`trimming`'s coupling with [`SystemConfig::sector_fill`], the
    /// trim granularity) are NOT gated and therefore stay part of the
    /// prefix identity.
    pub warmup_cycles: u64,
}

impl NetCrafterConfig {
    /// Everything off: the plain non-uniform baseline.
    pub const fn disabled() -> Self {
        Self {
            stitching: false,
            pooling_window: 0,
            selective_pooling: false,
            trimming: false,
            sequencing: false,
            prioritize_data_instead: false,
            stitch_search_depth: 16,
            warmup_cycles: 0,
        }
    }

    /// The full NetCrafter design evaluated in Figure 14: Stitching with
    /// 32-cycle Selective Flit Pooling, Trimming, and Sequencing.
    pub const fn full() -> Self {
        Self {
            stitching: true,
            pooling_window: 32,
            selective_pooling: true,
            trimming: true,
            sequencing: true,
            prioritize_data_instead: false,
            stitch_search_depth: 16,
            warmup_cycles: 0,
        }
    }

    /// Stitching only (no pooling) — the leftmost NetCrafter bar of
    /// Figures 12/18/19.
    pub const fn stitching_only() -> Self {
        Self {
            stitching: true,
            ..Self::disabled()
        }
    }

    /// True if any mechanism is active (a controller must be instantiated).
    /// `warmup_cycles` deliberately does not count: it delays mechanisms,
    /// it is not one, and the component roster must not depend on it.
    pub const fn any_enabled(&self) -> bool {
        self.stitching || self.trimming || self.sequencing
    }

    /// True once the policy knobs have activated at `now`. Warmup-gated
    /// components (the Cluster Queue) consult this at every knob decision
    /// point; before activation they behave exactly like a disabled
    /// configuration.
    #[inline]
    pub const fn active_at(&self, now: u64) -> bool {
        now >= self.warmup_cycles
    }

    /// This configuration with every warmup-gated knob forced to its
    /// inert value. Two configurations with equal `inert()` (and equal
    /// `warmup_cycles`, which is preserved) are byte-identical through
    /// the warmup window — the property the prefix-sharing planner keys
    /// on. `trimming` is NOT masked: its effect flows through the
    /// construction-time L1 sector-fill policy, not a cycle-gated
    /// decision point.
    pub const fn inert(&self) -> Self {
        Self {
            stitching: false,
            pooling_window: 0,
            selective_pooling: false,
            trimming: self.trimming,
            sequencing: false,
            prioritize_data_instead: false,
            stitch_search_depth: 16,
            warmup_cycles: self.warmup_cycles,
        }
    }
}

/// Complete system configuration (Table 2 + NetCrafter + study knobs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Interconnect shape and bandwidths.
    pub topology: TopologyConfig,
    /// Compute units per GPU (Table 2: 64; tests and fast experiments use
    /// scaled-down counts with proportionally scaled workloads).
    pub cus_per_gpu: u16,
    /// Maximum wavefronts resident per CU (latency hiding depth).
    pub max_waves_per_cu: u16,
    /// Maximum outstanding memory accesses per CU.
    pub max_outstanding_per_cu: u32,
    /// Maximum outstanding loads per *wavefront* before it stalls waiting
    /// for data — models non-blocking loads up to the first use (GPU ISAs
    /// issue several independent loads back to back). 1 reproduces a
    /// strictly blocking wavefront.
    pub max_loads_per_wave: u16,
    /// L1 vector cache (per CU): 64 KB, 20-cycle lookup, 32-entry MSHR.
    pub l1: CacheConfig,
    /// Shared L2: 4 MB/GPU, 16 banks, 16-way, 100-cycle lookup, 64 MSHRs.
    pub l2: CacheConfig,
    /// L1 TLB (per CU): 32-entry fully associative, 1-cycle.
    pub l1_tlb: TlbConfig,
    /// L2 TLB (per GPU): 512-entry, 8-way, 10-cycle, 64-entry MSHR.
    pub l2_tlb: TlbConfig,
    /// GMMU: 32-entry PWC (10-cycle), 16 parallel walkers.
    pub gmmu: GmmuConfig,
    /// DRAM: 1 TB/s, 100 ns.
    pub dram: DramConfig,
    /// Network switch: 30-cycle pipeline, 1024-entry buffers.
    pub switch: SwitchConfig,
    /// Flit size in bytes (16 baseline, 8 in Figure 21).
    pub flit_bytes: u32,
    /// NetCrafter mechanisms.
    pub netcrafter: NetCrafterConfig,
    /// L1 fill policy (baseline / Trimming / sector-cache comparison).
    pub sector_fill: SectorFillPolicy,
    /// Trimming / sector granularity in bytes (16 default; 4 and 8 in
    /// Figure 17).
    pub trim_granularity: u32,
    /// Fixed intra-GPU latencies: CU↔L1↔L2 hop latency in cycles.
    pub on_chip_hop_cycles: u32,
    /// RNG seed for the whole simulation (workload generation and any
    /// randomized tie-breaking) — runs are fully deterministic per seed.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's Table 2 baseline: 2 clusters × 2 GPUs, 128/16 GB/s,
    /// 64 CUs per GPU, NetCrafter disabled.
    pub fn paper_baseline() -> Self {
        Self {
            topology: TopologyConfig {
                clusters: 2,
                gpus_per_cluster: 2,
                intra_gbps: 128.0,
                inter_gbps: 16.0,
                fabric: FabricConfig::Mesh,
                fabric_link_cycles: 1,
            },
            cus_per_gpu: 64,
            max_waves_per_cu: 40,
            max_outstanding_per_cu: 32,
            max_loads_per_wave: 4,
            l1: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 4,
                lookup_cycles: 20,
                mshr_entries: 32,
                banks: 1,
            },
            l2: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                ways: 16,
                lookup_cycles: 100,
                mshr_entries: 64,
                banks: 16,
            },
            l1_tlb: TlbConfig {
                entries: 32,
                ways: u32::MAX,
                lookup_cycles: 1,
                mshr_entries: 8,
            },
            l2_tlb: TlbConfig {
                entries: 512,
                ways: 8,
                lookup_cycles: 10,
                mshr_entries: 64,
            },
            gmmu: GmmuConfig {
                pwc_entries: 32,
                pwc_lookup_cycles: 10,
                walkers: 16,
            },
            dram: DramConfig {
                bytes_per_cycle: 1000,
                latency_cycles: 100,
            },
            switch: SwitchConfig {
                pipeline_cycles: 30,
                buffer_entries: 1024,
            },
            flit_bytes: 16,
            netcrafter: NetCrafterConfig::disabled(),
            sector_fill: SectorFillPolicy::FullLine,
            trim_granularity: SECTOR_BYTES as u32,
            on_chip_hop_cycles: 2,
            seed: 0xC0FFEE,
        }
    }

    /// A scaled-down configuration for unit/integration tests and fast
    /// experiments: same ratios and latencies as the paper baseline but
    /// fewer CUs. Workload footprints must be scaled accordingly.
    pub fn small(cus_per_gpu: u16) -> Self {
        Self {
            cus_per_gpu,
            ..Self::paper_baseline()
        }
    }

    /// Replaces the topology's shape, keeping the baseline bandwidths
    /// and every non-network parameter.
    fn with_fabric(mut self, clusters: u16, gpus_per_cluster: u16, fabric: FabricConfig) -> Self {
        self.topology.clusters = clusters;
        self.topology.gpus_per_cluster = gpus_per_cluster;
        self.topology.fabric = fabric;
        self.topology.fabric_link_cycles = 4;
        self
    }

    /// 8-GPU fat-tree: 4 edge switches × 2 GPUs, 2 cores (2:1 fat-tree
    /// stage, 8:1 with the bandwidth taper — `--topology fat-tree:k=4`).
    pub fn fat_tree_8() -> Self {
        Self::paper_baseline().with_fabric(4, 2, FabricConfig::FatTree { cores: 2 })
    }

    /// 16-GPU fat-tree: 8 edge switches × 2 GPUs, 4 cores
    /// (`--topology fat-tree:k=8`).
    pub fn fat_tree_16() -> Self {
        Self::paper_baseline().with_fabric(8, 2, FabricConfig::FatTree { cores: 4 })
    }

    /// 64-GPU fat-tree: 16 edge switches × 4 GPUs, 8 cores
    /// (`--topology fat-tree:k=16:g=4:cores=8`).
    pub fn fat_tree_64() -> Self {
        Self::paper_baseline().with_fabric(16, 4, FabricConfig::FatTree { cores: 8 })
    }

    /// 8-GPU 3D torus: 2×2×2 switches, one GPU each
    /// (`--topology torus:2x2x2`).
    pub fn torus_8() -> Self {
        Self::paper_baseline().with_fabric(8, 1, FabricConfig::Torus { x: 2, y: 2, z: 2 })
    }

    /// 64-GPU 3D torus: 4×4×4 switches, one GPU each
    /// (`--topology torus:4x4x4`).
    pub fn torus_64() -> Self {
        Self::paper_baseline().with_fabric(64, 1, FabricConfig::Torus { x: 4, y: 4, z: 4 })
    }

    /// The *ideal* configuration of Figure 3: every link runs at the
    /// intra-cluster bandwidth, removing the non-uniformity.
    pub fn idealized(mut self) -> Self {
        self.topology.inter_gbps = self.topology.intra_gbps;
        self
    }

    /// Enables the full NetCrafter design (§5.2) with the paper's chosen
    /// parameters and the Trimming-aware L1 fill policy.
    pub fn with_netcrafter(mut self) -> Self {
        self.netcrafter = NetCrafterConfig::full();
        self.sector_fill = SectorFillPolicy::OnTrim;
        self
    }

    /// The sector-cache comparison baseline of §5.3: 16 B sectored L1
    /// fills everywhere, NetCrafter itself disabled.
    pub fn with_sector_cache(mut self) -> Self {
        self.netcrafter = NetCrafterConfig::disabled();
        self.sector_fill = SectorFillPolicy::Always;
        self
    }

    /// Total GPUs in the node.
    #[inline]
    pub fn total_gpus(&self) -> u16 {
        self.topology.total_gpus()
    }

    /// The GPU whose HBM partition owns physical address `pa`.
    #[inline]
    pub fn pa_owner(&self, pa: u64) -> GpuId {
        GpuId((pa >> PA_GPU_REGION_BITS) as u16)
    }

    /// First physical frame number of `gpu`'s memory partition.
    #[inline]
    pub fn gpu_frame_base(&self, gpu: GpuId) -> u64 {
        (gpu.raw() as u64) << (PA_GPU_REGION_BITS - 12)
    }

    /// Sectors per 64 B line at the configured trim granularity.
    #[inline]
    pub fn sectors_per_line(&self) -> u32 {
        (crate::addr::LINE_BYTES as u32) / self.trim_granularity
    }

    /// All-sectors mask for the configured granularity.
    #[inline]
    pub fn full_sector_mask(&self) -> u16 {
        ((1u32 << self.sectors_per_line()) - 1) as u16
    }

    /// A stable, human-readable, single-line serialization covering
    /// *every* configuration field.
    ///
    /// This is the cache identity of a simulation: two configs with equal
    /// `stable_repr` produce identical runs (given equal workload, scale
    /// and seed), and any field change alters the string. Floats are
    /// rendered via their IEEE-754 bit patterns so the representation is
    /// exact and platform-independent.
    pub fn stable_repr(&self) -> String {
        let t = &self.topology;
        let nc = &self.netcrafter;
        let fill = match self.sector_fill {
            SectorFillPolicy::FullLine => "full",
            SectorFillPolicy::OnTrim => "ontrim",
            SectorFillPolicy::Always => "always",
        };
        format!(
            "topo:{}x{}x{:016x}x{:016x};fab:{},{};cus:{};waves:{};outst:{};loads:{};\
             l1:{},{},{},{},{};l2:{},{},{},{},{};\
             l1tlb:{},{},{},{};l2tlb:{},{},{},{};gmmu:{},{},{};dram:{},{};\
             switch:{},{};flit:{};nc:{},{},{},{},{},{},{},{};fill:{};gran:{};\
             hop:{};seed:{:016x}",
            t.clusters,
            t.gpus_per_cluster,
            t.intra_gbps.to_bits(),
            t.inter_gbps.to_bits(),
            t.fabric.stable_token(),
            t.fabric_link_cycles,
            self.cus_per_gpu,
            self.max_waves_per_cu,
            self.max_outstanding_per_cu,
            self.max_loads_per_wave,
            self.l1.size_bytes,
            self.l1.ways,
            self.l1.lookup_cycles,
            self.l1.mshr_entries,
            self.l1.banks,
            self.l2.size_bytes,
            self.l2.ways,
            self.l2.lookup_cycles,
            self.l2.mshr_entries,
            self.l2.banks,
            self.l1_tlb.entries,
            self.l1_tlb.ways,
            self.l1_tlb.lookup_cycles,
            self.l1_tlb.mshr_entries,
            self.l2_tlb.entries,
            self.l2_tlb.ways,
            self.l2_tlb.lookup_cycles,
            self.l2_tlb.mshr_entries,
            self.gmmu.pwc_entries,
            self.gmmu.pwc_lookup_cycles,
            self.gmmu.walkers,
            self.dram.bytes_per_cycle,
            self.dram.latency_cycles,
            self.switch.pipeline_cycles,
            self.switch.buffer_entries,
            self.flit_bytes,
            nc.stitching as u8,
            nc.pooling_window,
            nc.selective_pooling as u8,
            nc.trimming as u8,
            nc.sequencing as u8,
            nc.prioritize_data_instead as u8,
            nc.stitch_search_depth,
            nc.warmup_cycles,
            fill,
            self.trim_granularity,
            self.on_chip_hop_cycles,
            self.seed,
        )
    }

    /// 64-bit FNV-1a hash of [`Self::stable_repr`] — the short cache key
    /// for this configuration.
    pub fn config_hash(&self) -> u64 {
        fnv1a64(self.stable_repr().as_bytes())
    }

    /// The *warmup identity* of this configuration: [`Self::stable_repr`]
    /// with every warmup-gated NetCrafter knob masked to its inert value
    /// (see [`NetCrafterConfig::inert`]), plus a roster token recording
    /// whether a NetCrafter controller is instantiated at all.
    ///
    /// Two configurations with equal `warmup_repr` — and a nonzero,
    /// therefore equal, `warmup_cycles` — produce byte-identical
    /// simulation state through cycle `warmup_cycles`, and their
    /// snapshots are mutually restorable (identical component rosters).
    /// This string is the internal-node key of the prefix-sharing plan
    /// tree.
    pub fn warmup_repr(&self) -> String {
        let mut masked = *self;
        masked.netcrafter = self.netcrafter.inert();
        // The roster differs between "some mechanism on" (ClusterQueue)
        // and "all off" (FifoQueue) even though the masked knobs agree,
        // so it must be part of the key.
        format!(
            "roster={};{}",
            u8::from(self.netcrafter.any_enabled()),
            masked.stable_repr()
        )
    }

    /// Validates internal consistency; called by the system builder.
    pub fn validate(&self) -> Result<(), String> {
        if self.flit_bytes == 0 || !self.flit_bytes.is_power_of_two() {
            return Err(format!(
                "flit size must be a power of two, got {}",
                self.flit_bytes
            ));
        }
        if self.trim_granularity == 0 || 64 % self.trim_granularity != 0 {
            return Err(format!(
                "trim granularity must divide the 64 B line, got {}",
                self.trim_granularity
            ));
        }
        if self.topology.clusters == 0 || self.topology.gpus_per_cluster == 0 {
            return Err("topology must contain at least one GPU".into());
        }
        if self.topology.fabric_link_cycles == 0 {
            return Err("fabric link latency must be at least one cycle".into());
        }
        match self.topology.fabric {
            FabricConfig::Mesh => {}
            FabricConfig::FatTree { cores } => {
                if cores == 0 {
                    return Err("fat-tree needs at least one core switch".into());
                }
            }
            FabricConfig::Torus { x, y, z } => {
                if x == 0 || y == 0 || z == 0 {
                    return Err(format!("torus dimensions must be nonzero, got {x}x{y}x{z}"));
                }
                if (x as u32) * (y as u32) * (z as u32) != self.topology.clusters as u32 {
                    return Err(format!(
                        "torus {x}x{y}x{z} does not match {} clusters",
                        self.topology.clusters
                    ));
                }
            }
        }
        if self.cus_per_gpu == 0 {
            return Err("need at least one CU per GPU".into());
        }
        if self.netcrafter.trimming && self.sector_fill == SectorFillPolicy::FullLine {
            return Err("Trimming requires a sectored L1 fill policy (OnTrim or Always)".into());
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

/// 64-bit FNV-1a: the workspace's standard stable hash for cache keys
/// (dependency-free and identical across platforms and runs, unlike
/// `std::hash::DefaultHasher`, which is seeded per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.cus_per_gpu, 64);
        assert_eq!(c.l1.size_bytes, 64 * 1024);
        assert_eq!(c.l1.lookup_cycles, 20);
        assert_eq!(c.l1.mshr_entries, 32);
        assert_eq!(c.l1_tlb.entries, 32);
        assert_eq!(c.l1_tlb.lookup_cycles, 1);
        assert_eq!(c.l2_tlb.entries, 512);
        assert_eq!(c.l2_tlb.ways, 8);
        assert_eq!(c.l2_tlb.lookup_cycles, 10);
        assert_eq!(c.l2.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.l2.banks, 16);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l2.lookup_cycles, 100);
        assert_eq!(c.dram.bytes_per_cycle, 1000);
        assert_eq!(c.dram.latency_cycles, 100);
        assert_eq!(c.gmmu.walkers, 16);
        assert_eq!(c.gmmu.pwc_entries, 32);
        assert_eq!(c.switch.pipeline_cycles, 30);
        assert_eq!(c.switch.buffer_entries, 1024);
        assert_eq!(c.topology.inter_gbps, 16.0);
        assert_eq!(c.topology.intra_gbps, 128.0);
        assert_eq!(c.flit_bytes, 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bandwidth_ratio_is_8_to_1() {
        let t = SystemConfig::paper_baseline().topology;
        assert_eq!(t.intra_bytes_per_cycle() / t.inter_bytes_per_cycle(), 8.0);
        // 16 GB/s at 16 B flits = exactly 1 flit/cycle on the slow link.
        assert_eq!(t.inter_bytes_per_cycle(), 16.0);
    }

    #[test]
    fn idealized_removes_nonuniformity() {
        let c = SystemConfig::paper_baseline().idealized();
        assert_eq!(c.topology.inter_gbps, c.topology.intra_gbps);
    }

    #[test]
    fn cluster_crossing() {
        let t = SystemConfig::paper_baseline().topology;
        assert_eq!(t.total_gpus(), 4);
        assert!(!t.crosses_clusters(GpuId(0), GpuId(1)));
        assert!(t.crosses_clusters(GpuId(1), GpuId(2)));
        assert!(t.crosses_clusters(GpuId(0), GpuId(3)));
    }

    #[test]
    fn pa_partitioning() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.pa_owner(0), GpuId(0));
        assert_eq!(c.pa_owner(1 << PA_GPU_REGION_BITS), GpuId(1));
        assert_eq!(c.pa_owner((3 << PA_GPU_REGION_BITS) + 0x123456), GpuId(3));
        assert_eq!(c.gpu_frame_base(GpuId(1)) * 4096, 1 << PA_GPU_REGION_BITS);
    }

    #[test]
    fn netcrafter_presets() {
        assert!(!NetCrafterConfig::disabled().any_enabled());
        let full = NetCrafterConfig::full();
        assert!(full.stitching && full.trimming && full.sequencing);
        assert_eq!(full.pooling_window, 32);
        assert!(full.selective_pooling);
        let s = NetCrafterConfig::stitching_only();
        assert!(s.stitching && !s.trimming && !s.sequencing);
        assert_eq!(s.pooling_window, 0);
    }

    #[test]
    fn sector_masks() {
        let c = SystemConfig::paper_baseline();
        assert_eq!(c.sectors_per_line(), 4);
        assert_eq!(c.full_sector_mask(), 0b1111);
        let mut c4 = c;
        c4.trim_granularity = 4;
        assert_eq!(c4.sectors_per_line(), 16);
        assert_eq!(c4.full_sector_mask(), 0xffff);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SystemConfig::paper_baseline();
        c.flit_bytes = 12;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.trim_granularity = 24;
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.netcrafter.trimming = true; // without sectored fill policy
        assert!(c.validate().is_err());
        assert!(SystemConfig::paper_baseline()
            .with_netcrafter()
            .validate()
            .is_ok());
    }

    #[test]
    fn stable_repr_distinguishes_every_knob() {
        let base = SystemConfig::paper_baseline();
        assert_eq!(
            base.stable_repr(),
            SystemConfig::paper_baseline().stable_repr()
        );
        assert_eq!(
            base.config_hash(),
            SystemConfig::paper_baseline().config_hash()
        );

        // A representative field from each sub-struct must perturb the key.
        let mut variants: Vec<SystemConfig> = Vec::new();
        variants.push(base.idealized());
        variants.push(base.with_netcrafter());
        variants.push(base.with_sector_cache());
        let mut c = base;
        c.cus_per_gpu = 8;
        variants.push(c);
        let mut c = base;
        c.flit_bytes = 8;
        variants.push(c);
        let mut c = base;
        c.trim_granularity = 8;
        variants.push(c);
        let mut c = base;
        c.seed = 1;
        variants.push(c);
        let mut c = base;
        c.topology.clusters = 3;
        variants.push(c);
        let mut c = base;
        c.topology.fabric = FabricConfig::FatTree { cores: 1 };
        variants.push(c);
        let mut c = base;
        c.topology.fabric_link_cycles = 4;
        variants.push(c);
        variants.push(SystemConfig::fat_tree_8());
        variants.push(SystemConfig::fat_tree_16());
        variants.push(SystemConfig::fat_tree_64());
        variants.push(SystemConfig::torus_8());
        variants.push(SystemConfig::torus_64());
        let mut c = base;
        c.netcrafter.pooling_window = 64;
        variants.push(c);
        let mut c = base;
        c.netcrafter.warmup_cycles = 5_000;
        variants.push(c);
        let mut c = base;
        c.l1.mshr_entries = 16;
        variants.push(c);

        let mut reprs = std::collections::BTreeSet::new();
        reprs.insert(base.stable_repr());
        for v in &variants {
            assert!(
                reprs.insert(v.stable_repr()),
                "collision: {}",
                v.stable_repr()
            );
        }
    }

    #[test]
    fn warmup_repr_masks_policy_knobs_but_keys_roster_and_fill() {
        // Two configs that differ only in warmup-inert policy knobs must share
        // a prefix key: both run the full ClusterQueue roster with every knob
        // gated off until `warmup_cycles`.
        let mut full = SystemConfig::paper_baseline().with_netcrafter();
        full.netcrafter.warmup_cycles = 2_000;
        let mut variant = full;
        variant.netcrafter.sequencing = false;
        variant.netcrafter.pooling_window = 0;
        variant.netcrafter.selective_pooling = false;
        variant.netcrafter.stitch_search_depth = 4;
        assert_ne!(full.stable_repr(), variant.stable_repr());
        assert_eq!(full.warmup_repr(), variant.warmup_repr());

        // Baseline (all knobs off) builds a FifoQueue roster: its snapshot
        // layout is incompatible, so the key must differ even though the
        // masked knob values match.
        let mut baseline = SystemConfig::paper_baseline();
        baseline.netcrafter.warmup_cycles = 2_000;
        assert_ne!(baseline.warmup_repr(), full.warmup_repr());

        // Trimming changes construction-time L1 fill behaviour, so it is NOT
        // masked out of the prefix key.
        let mut no_trim = full;
        no_trim.netcrafter.trimming = false;
        assert_ne!(no_trim.warmup_repr(), full.warmup_repr());

        // Different warmup horizons simulate different prefixes.
        let mut longer = full;
        longer.netcrafter.warmup_cycles = 4_000;
        assert_ne!(longer.warmup_repr(), full.warmup_repr());

        // Physical divergence (scale, seed) always splits the key.
        let mut scaled = full;
        scaled.cus_per_gpu = 8;
        assert_ne!(scaled.warmup_repr(), full.warmup_repr());
    }

    #[test]
    fn active_at_respects_warmup() {
        let mut nc = NetCrafterConfig::full();
        assert!(nc.active_at(0));
        nc.warmup_cycles = 100;
        assert!(!nc.active_at(0));
        assert!(!nc.active_at(99));
        assert!(nc.active_at(100));
        // `inert()` keeps trimming and the warmup horizon, drops the rest.
        let inert = nc.inert();
        assert!(!inert.stitching && !inert.sequencing && !inert.selective_pooling);
        assert_eq!(inert.pooling_window, 0);
        assert_eq!(inert.trimming, nc.trimming);
        assert_eq!(inert.warmup_cycles, nc.warmup_cycles);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn scale_out_presets_validate() {
        for (cfg, gpus, switches) in [
            (SystemConfig::fat_tree_8(), 8, 6),
            (SystemConfig::fat_tree_16(), 16, 12),
            (SystemConfig::fat_tree_64(), 64, 24),
            (SystemConfig::torus_8(), 8, 8),
            (SystemConfig::torus_64(), 64, 64),
        ] {
            assert!(cfg.validate().is_ok(), "{:?}", cfg.topology.fabric);
            assert_eq!(cfg.total_gpus(), gpus);
            assert_eq!(cfg.topology.num_switches(), switches);
        }
        // fat_tree_8: 2 GPUs × 128 GB/s injected over 2 cores × 16 GB/s.
        assert_eq!(SystemConfig::fat_tree_8().topology.oversubscription(), 8.0);
        // torus_8 (2x2x2): 3 distinct neighbors per switch.
        assert_eq!(SystemConfig::torus_8().topology.fabric_links_per_edge(), 3);
        assert_eq!(SystemConfig::torus_64().topology.fabric_links_per_edge(), 6);
    }

    #[test]
    fn topology_spec_parser() {
        let t = TopologyConfig::parse_spec("mesh").unwrap();
        assert_eq!(t, SystemConfig::paper_baseline().topology);
        let t = TopologyConfig::parse_spec("mesh:3x2").unwrap();
        assert_eq!((t.clusters, t.gpus_per_cluster), (3, 2));
        assert_eq!(t.fabric, FabricConfig::Mesh);

        let t = TopologyConfig::parse_spec("fat-tree:k=4").unwrap();
        assert_eq!(t, SystemConfig::fat_tree_8().topology);
        let t = TopologyConfig::parse_spec("fat-tree:k=16:g=4:cores=8").unwrap();
        assert_eq!(t, SystemConfig::fat_tree_64().topology);

        let t = TopologyConfig::parse_spec("torus:2x2x2").unwrap();
        assert_eq!(t, SystemConfig::torus_8().topology);
        let t = TopologyConfig::parse_spec("torus:4x2x1:g=2").unwrap();
        assert_eq!((t.clusters, t.gpus_per_cluster), (8, 2));
        assert_eq!(t.fabric, FabricConfig::Torus { x: 4, y: 2, z: 1 });

        for bad in [
            "ring",
            "fat-tree",
            "fat-tree:k=x",
            "fat-tree:k=4:banana",
            "torus",
            "torus:2x2",
            "torus:2x2x2:k=3",
            "mesh:3",
        ] {
            assert!(TopologyConfig::parse_spec(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn fabric_validation() {
        let mut c = SystemConfig::torus_8();
        c.topology.clusters = 9; // 2x2x2 != 9
        assert!(c.validate().is_err());

        let mut c = SystemConfig::fat_tree_8();
        c.topology.fabric = FabricConfig::FatTree { cores: 0 };
        assert!(c.validate().is_err());

        let mut c = SystemConfig::paper_baseline();
        c.topology.fabric_link_cycles = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sector_cache_preset() {
        let c = SystemConfig::paper_baseline().with_sector_cache();
        assert_eq!(c.sector_fill, SectorFillPolicy::Always);
        assert!(!c.netcrafter.any_enabled());
    }
}
