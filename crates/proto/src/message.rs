//! Protocol-level messages exchanged between simulated components.
//!
//! Components in the engine communicate exclusively by sending [`Message`]s
//! to each other's mailboxes. Within a GPU these are memory and translation
//! transactions; between GPUs everything is carried by [`Flit`]s over the
//! switched network, with credit messages implementing link-level flow
//! control (back-pressure, §5.1).

use crate::addr::{LineAddr, LineMask};
use crate::flit::Flit;
use crate::ids::{AccessId, GpuId, NodeId};
use crate::packet::TrafficClass;

/// Who, within a GPU, issued a memory request — the reply-routing tag a
/// response follows back. For requests that cross GPUs the origin names
/// the unit on the *requesting* GPU; the owning GPU's L2 always replies
/// toward its RDMA engine for non-local requesters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// A compute unit (GPU-local index) — L1 miss traffic.
    Cu(u16),
    /// The GMMU's page-table walkers.
    Gmmu,
    /// The RDMA engine (a remote GPU's request being serviced locally).
    Rdma,
    /// The L2 cache itself (fills and write-backs toward DRAM).
    L2,
}

/// A memory request for one cache line (or a subset of its sectors).
///
/// The same type serves every level: CU→L1, L1→local L2, RDMA-wrapped
/// remote requests, page-table-walker reads, and L2→DRAM fills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// End-to-end transaction id; responses echo it.
    pub access: AccessId,
    /// Physical line address.
    pub line: LineAddr,
    /// True for stores.
    pub write: bool,
    /// Bytes of the line the requester needs (reads) or writes (stores).
    pub mask: LineMask,
    /// Sector-fill request mask: which sectors of the line the requester
    /// wants returned. `u16::MAX`-style all-ones means "whole line"; the
    /// bit width accommodates 4 B sectors (16 per line).
    pub sectors: u16,
    /// Latency class — [`TrafficClass::Ptw`] for page-table reads.
    pub class: TrafficClass,
    /// GPU that issued the request.
    pub requester: GpuId,
    /// GPU whose memory partition owns the line.
    pub owner: GpuId,
    /// Unit on the requesting GPU to route the response back to.
    pub origin: Origin,
}

impl MemReq {
    /// True if the request must leave its issuing GPU.
    #[inline]
    pub fn is_remote(&self) -> bool {
        self.requester != self.owner
    }
}

/// A memory response for one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRsp {
    /// Transaction id echoed from the request.
    pub access: AccessId,
    /// Physical line address.
    pub line: LineAddr,
    /// True if this acknowledges a store.
    pub write: bool,
    /// Which sectors of the line this response carries. A full-line read
    /// response has all requested sectors set; a *trimmed* response (§4.3)
    /// carries exactly one.
    pub sectors_valid: u16,
    /// Latency class, echoed from the request.
    pub class: TrafficClass,
    /// GPU that issued the original request (response destination).
    pub requester: GpuId,
    /// GPU that served the data.
    pub owner: GpuId,
    /// Reply-routing tag echoed from the request.
    pub origin: Origin,
}

impl MemRsp {
    /// Builds the matching response for `req` carrying `sectors_valid`.
    pub fn for_req(req: &MemReq, sectors_valid: u16) -> Self {
        Self {
            access: req.access,
            line: req.line,
            write: req.write,
            sectors_valid,
            class: req.class,
            requester: req.requester,
            owner: req.owner,
            origin: req.origin,
        }
    }
}

/// A virtual-to-physical translation request (CU→L2 TLB, L2 TLB→GMMU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransReq {
    /// The access waiting on this translation.
    pub access: AccessId,
    /// Virtual page number to translate.
    pub vpn: u64,
    /// GPU-local index of the requesting CU.
    pub cu: u16,
}

/// A completed translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransRsp {
    /// The access that requested the translation.
    pub access: AccessId,
    /// Virtual page number.
    pub vpn: u64,
    /// Resolved physical frame number.
    pub pfn: u64,
    /// GPU-local index of the requesting CU (for routing back).
    pub cu: u16,
}

/// Any message deliverable to a component mailbox.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A memory request.
    MemReq(MemReq),
    /// A memory response.
    MemRsp(MemRsp),
    /// A translation request.
    TransReq(TransReq),
    /// A translation response.
    TransRsp(TransRsp),
    /// A flit on a network link or inside a switch. `from` names the
    /// sending hop for attribution; `link` is the *receiver's* port index
    /// for the link the flit arrived on, so fabrics with several parallel
    /// links between the same node pair (torus virtual channels) stay
    /// distinguishable.
    Flit {
        /// The flit itself.
        flit: Flit,
        /// Node that transmitted it (previous hop).
        from: NodeId,
        /// The receiver's port index for this link.
        link: u16,
    },
    /// Link-level credit return: the receiver freed `count` buffer slots
    /// on the link coming from the node that now receives this credit.
    /// `link` is the *receiver's* (credit consumer's) port index for that
    /// link — the port whose egress credits are replenished.
    Credit {
        /// Node returning the credit (the downstream buffer owner).
        from: NodeId,
        /// Number of freed flit slots.
        count: u32,
        /// The credit receiver's port index for this link.
        link: u16,
    },
}

impl Message {
    /// Short label for tracing and debugging.
    pub fn label(&self) -> &'static str {
        match self {
            Message::MemReq(_) => "mem-req",
            Message::MemRsp(_) => "mem-rsp",
            Message::TransReq(_) => "trans-req",
            Message::TransRsp(_) => "trans-rsp",
            Message::Flit { .. } => "flit",
            Message::Credit { .. } => "credit",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> MemReq {
        MemReq {
            access: AccessId(5),
            line: LineAddr(0x40),
            write: false,
            mask: LineMask::span(0, 16),
            sectors: 0b1111,
            class: TrafficClass::Data,
            requester: GpuId(3),
            owner: GpuId(1),
            origin: Origin::Cu(0),
        }
    }

    #[test]
    fn remote_detection() {
        assert!(req().is_remote());
        let mut local = req();
        local.owner = GpuId(3);
        assert!(!local.is_remote());
    }

    #[test]
    fn response_echoes_request() {
        let r = req();
        let rsp = MemRsp::for_req(&r, 0b0001);
        assert_eq!(rsp.access, r.access);
        assert_eq!(rsp.line, r.line);
        assert_eq!(rsp.requester, r.requester);
        assert_eq!(rsp.owner, r.owner);
        assert_eq!(rsp.sectors_valid, 0b0001);
        assert_eq!(rsp.class, TrafficClass::Data);
    }

    #[test]
    fn labels() {
        assert_eq!(Message::MemReq(req()).label(), "mem-req");
        assert_eq!(
            Message::Credit {
                from: NodeId(0),
                count: 1,
                link: 0
            }
            .label(),
            "credit"
        );
    }
}
