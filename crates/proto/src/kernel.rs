//! Kernel descriptors: what a workload generator hands to the system —
//! CTAs with their wavefront traces, and the data buffers they touch with
//! their access-pattern classification.
//!
//! The pattern classification is what LASP's compile-time static index
//! analysis produces in the paper (§2.2, \[42\]): it drives both CTA→GPU
//! scheduling and page placement. Workload generators know their own
//! access patterns exactly, so they play the role of the compiler pass.

use crate::access::WavefrontTrace;
use crate::ids::{CtaId, GpuId};
use crate::VAddr;

/// Data-access pattern classes used by LASP for placement (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Each CTA block touches a disjoint slice (e.g. BlackScholes):
    /// block-partition pages to co-locate with the CTAs.
    Partitioned,
    /// Neighbouring CTAs touch neighbouring data (e.g. SYR2K, IM2COL).
    Adjacent,
    /// CTAs gather from a shared structure (e.g. matrix multiply reads).
    Gather,
    /// CTAs scatter writes across a shared structure (e.g. ATAX, MVT).
    Scatter,
    /// Unpredictable accesses (GUPS, SPMV, PageRank, MIS): interleave
    /// pages across GPUs.
    Random,
}

/// A virtual-address-space data buffer of a kernel.
#[derive(Debug, Clone)]
pub struct BufferSpec {
    /// Human-readable name (for placement audits).
    pub name: String,
    /// First virtual address (page-aligned).
    pub base: VAddr,
    /// Size in bytes.
    pub bytes: u64,
    /// Pattern classification for LASP.
    pub pattern: AccessPattern,
}

impl BufferSpec {
    /// Number of pages the buffer spans.
    pub fn pages(&self) -> u64 {
        self.bytes.div_ceil(crate::PAGE_BYTES)
    }

    /// First virtual page number.
    pub fn base_vpn(&self) -> u64 {
        assert_eq!(
            self.base.0 % crate::PAGE_BYTES,
            0,
            "buffers are page-aligned"
        );
        self.base.vpn()
    }
}

/// One CTA: its wavefronts and an optional placement hint from the
/// generator (the GPU whose data slice it predominantly touches).
#[derive(Debug, Clone)]
pub struct CtaSpec {
    /// CTA id, unique within the kernel.
    pub id: CtaId,
    /// The CTA's wavefronts, in dispatch order.
    pub waves: Vec<WavefrontTrace>,
    /// Preferred GPU (from the generator's own locality knowledge);
    /// `None` lets LASP block-partition by CTA id.
    pub home_hint: Option<GpuId>,
}

/// A complete kernel launch.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Kernel name (workload + kernel index).
    pub name: String,
    /// All CTAs of the launch.
    pub ctas: Vec<CtaSpec>,
    /// The buffers the kernel touches.
    pub buffers: Vec<BufferSpec>,
}

impl KernelSpec {
    /// Total wavefronts across all CTAs.
    pub fn total_waves(&self) -> usize {
        self.ctas.iter().map(|c| c.waves.len()).sum()
    }

    /// Total dynamic operations across all wavefront traces.
    pub fn total_ops(&self) -> usize {
        self.ctas
            .iter()
            .flat_map(|c| &c.waves)
            .map(|w| w.ops.len())
            .sum()
    }

    /// Total memory operations.
    pub fn total_mem_ops(&self) -> usize {
        self.ctas
            .iter()
            .flat_map(|c| &c.waves)
            .map(super::access::WavefrontTrace::mem_ops)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{CoalescedAccess, WavefrontOp};
    use crate::ids::WavefrontId;

    #[test]
    fn buffer_geometry() {
        let b = BufferSpec {
            name: "a".into(),
            base: VAddr(0x10_000),
            bytes: 5000,
            pattern: AccessPattern::Random,
        };
        assert_eq!(b.pages(), 2);
        assert_eq!(b.base_vpn(), 0x10);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_buffer_panics() {
        let b = BufferSpec {
            name: "a".into(),
            base: VAddr(0x10_100),
            bytes: 64,
            pattern: AccessPattern::Random,
        };
        let _ = b.base_vpn();
    }

    #[test]
    fn kernel_counts() {
        let wave = |id: u32| WavefrontTrace {
            id: WavefrontId(id),
            cta: CtaId(0),
            ops: vec![
                WavefrontOp::Compute(5),
                WavefrontOp::Mem(CoalescedAccess::read(VAddr(0), 8)),
            ],
        };
        let k = KernelSpec {
            name: "k".into(),
            ctas: vec![CtaSpec {
                id: CtaId(0),
                waves: vec![wave(0), wave(1)],
                home_hint: Some(GpuId(1)),
            }],
            buffers: vec![],
        };
        assert_eq!(k.total_waves(), 2);
        assert_eq!(k.total_ops(), 4);
        assert_eq!(k.total_mem_ops(), 2);
    }
}
