//! Measurement infrastructure: named counters, histograms and latency
//! accumulators harvested by the experiment harness.
//!
//! Components keep their own cheap plain-struct counters on the hot path;
//! at the end of a run the system assembles everything into a [`Metrics`]
//! registry, which the figure generators query by name. Keys are dotted
//! paths such as `"net.inter.flits"` or `"gpu0.l1.misses"`.

use std::collections::BTreeMap;
use std::fmt;

/// Accumulates latency samples: count, sum, max.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (cycles).
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl LatencyStat {
    /// Records one latency sample.
    pub fn record(&mut self, cycles: u64) {
        self.count += 1;
        self.sum += cycles;
        self.max = self.max.max(cycles);
    }

    /// Arithmetic mean, or 0.0 if no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStat) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// A sparse integer histogram (bucket → count).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    // lint:allow(snapshot-field-parity) serialized via the public observation API by sim's Snap impl, which cannot name this private field
    buckets: BTreeMap<u64, u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` observations to `bucket`.
    pub fn add(&mut self, bucket: u64, n: u64) {
        *self.buckets.entry(bucket).or_insert(0) += n;
    }

    /// Records one observation of `bucket`.
    pub fn record(&mut self, bucket: u64) {
        self.add(bucket, 1);
    }

    /// Count in one bucket.
    pub fn get(&self, bucket: u64) -> u64 {
        self.buckets.get(&bucket).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Fraction of observations in `bucket` (0.0 if empty).
    pub fn fraction(&self, bucket: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(bucket) as f64 / total as f64
        }
    }

    /// Iterates `(bucket, count)` in ascending bucket order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&b, &c)| (b, c))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, c) in other.iter() {
            self.add(b, c);
        }
    }
}

/// A fixed-window time series: accumulates `u64` amounts into consecutive
/// cycle windows of equal width.
///
/// The backing vector grows on demand as samples land in later windows
/// (*rollover*), so recording is O(1) amortised and idle tails cost
/// nothing. Used by the telemetry layer for per-link bandwidth, queue
/// occupancy integrals and pooling-delay curves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeSeries {
    window: u64,
    // lint:allow(snapshot-field-parity) serialized via the public observation API by sim's Snap impl, which cannot name this private field
    buckets: Vec<u64>,
}

impl TimeSeries {
    /// Creates an empty series with `window` cycles per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> Self {
        assert!(window > 0, "TimeSeries window must be positive");
        TimeSeries {
            window,
            buckets: Vec::new(),
        }
    }

    /// Cycles per bucket.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Adds `amount` to the bucket containing `cycle`, extending the
    /// series as needed.
    #[inline]
    pub fn add(&mut self, cycle: u64, amount: u64) {
        let ix = (cycle / self.window) as usize;
        if ix >= self.buckets.len() {
            self.buckets.resize(ix + 1, 0);
        }
        self.buckets[ix] += amount;
    }

    /// Number of buckets (index of the last touched window + 1).
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if no sample was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Value of bucket `ix` (0 beyond the recorded range).
    pub fn bucket(&self, ix: usize) -> u64 {
        self.buckets.get(ix).copied().unwrap_or(0)
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Largest bucket value (0 if empty).
    pub fn peak(&self) -> u64 {
        self.buckets.iter().copied().max().unwrap_or(0)
    }

    /// Iterates `(window_start_cycle, value)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i as u64 * self.window, v))
    }

    /// Merges another series into this one, bucket by bucket.
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ — merging misaligned series
    /// would silently smear time.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.window, other.window,
            "cannot merge TimeSeries with different windows"
        );
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
    }
}

/// The harvested metrics of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    // lint:allow(snapshot-field-parity) serialized via the public to_kv()/from_kv() API by sim's Snap impl
    counters: BTreeMap<String, u64>,
    // lint:allow(snapshot-field-parity) serialized via the public to_kv()/from_kv() API by sim's Snap impl
    histograms: BTreeMap<String, Histogram>,
    // lint:allow(snapshot-field-parity) serialized via the public to_kv()/from_kv() API by sim's Snap impl
    latencies: BTreeMap<String, LatencyStat>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `key` (creating it at zero).
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_owned()).or_insert(0) += n;
    }

    /// Sets counter `key` to `n`, overwriting any prior value.
    pub fn set(&mut self, key: &str, n: u64) {
        self.counters.insert(key.to_owned(), n);
    }

    /// Reads counter `key` (0 if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Returns a mutable histogram for `key`.
    pub fn histogram_mut(&mut self, key: &str) -> &mut Histogram {
        self.histograms.entry(key.to_owned()).or_default()
    }

    /// Reads histogram `key`, if present.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Returns a mutable latency accumulator for `key`.
    pub fn latency_mut(&mut self, key: &str) -> &mut LatencyStat {
        self.latencies.entry(key.to_owned()).or_default()
    }

    /// Reads latency accumulator `key` (zeroed default if absent).
    pub fn latency(&self, key: &str) -> LatencyStat {
        self.latencies.get(key).copied().unwrap_or_default()
    }

    /// Ratio of two counters, or 0.0 when the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> f64 {
        let d = self.counter(den);
        if d == 0 {
            0.0
        } else {
            self.counter(num) as f64 / d as f64
        }
    }

    /// Iterates all counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterates counters whose key starts with `prefix`.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_owned()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
    }

    /// Renders all counters as two-column CSV (`key,value`), with latency
    /// accumulators flattened to `key.mean` / `key.max` / `key.count` rows
    /// — the export format for spreadsheet post-processing of runs.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("key,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("{k},{v}\n"));
        }
        for (k, l) in &self.latencies {
            out.push_str(&format!("{k}.mean,{:.2}\n", l.mean()));
            out.push_str(&format!("{k}.max,{}\n", l.max));
            out.push_str(&format!("{k}.count,{}\n", l.count));
        }
        for (k, h) in &self.histograms {
            for (bucket, count) in h.iter() {
                out.push_str(&format!("{k}.bucket{bucket},{count}\n"));
            }
        }
        out
    }

    /// Renders the registry as a line-oriented `key = value` text block
    /// that [`Metrics::from_kv`] parses back losslessly. This is the
    /// on-disk format of the bench result cache: keys are dotted paths
    /// (never containing spaces), so a single space-split is unambiguous.
    ///
    /// ```text
    /// counter net.inter.flits = 15
    /// latency net.read = 3 120 64          (count sum max)
    /// hist net.occupancy = 16:2 64:1       (bucket:count ...)
    /// ```
    pub fn to_kv(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, l) in &self.latencies {
            out.push_str(&format!("latency {k} = {} {} {}\n", l.count, l.sum, l.max));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("hist {k} ="));
            for (b, c) in h.iter() {
                out.push_str(&format!(" {b}:{c}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text produced by [`Metrics::to_kv`]. Returns `None` on
    /// any malformed line so a corrupt or truncated cache file is treated
    /// as a miss rather than yielding wrong figures.
    pub fn from_kv(text: &str) -> Option<Metrics> {
        let mut m = Metrics::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (tag, rest) = line.split_once(' ')?;
            let (key, value) = rest.split_once(" =")?;
            let value = value.trim_start();
            match tag {
                "counter" => {
                    m.counters.insert(key.to_owned(), value.parse().ok()?);
                }
                "latency" => {
                    let mut it = value.split_whitespace();
                    let stat = LatencyStat {
                        count: it.next()?.parse().ok()?,
                        sum: it.next()?.parse().ok()?,
                        max: it.next()?.parse().ok()?,
                    };
                    if it.next().is_some() {
                        return None;
                    }
                    m.latencies.insert(key.to_owned(), stat);
                }
                "hist" => {
                    let mut h = Histogram::new();
                    for pair in value.split_whitespace() {
                        let (b, c) = pair.split_once(':')?;
                        h.add(b.parse().ok()?, c.parse().ok()?);
                    }
                    m.histograms.insert(key.to_owned(), h);
                }
                _ => return None,
            }
        }
        Some(m)
    }

    /// Merges another registry into this one (counters add, histograms and
    /// latencies merge).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, l) in &other.latencies {
            self.latencies.entry(k.clone()).or_default().merge(l);
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, l) in &self.latencies {
            writeln!(
                f,
                "{k} = mean {:.1} / max {} ({} samples)",
                l.mean(),
                l.max,
                l.count
            )?;
        }
        for (k, h) in &self.histograms {
            write!(f, "{k} = {{")?;
            for (i, (b, c)) in h.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{b}: {c}")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stat_accumulates() {
        let mut l = LatencyStat::default();
        assert_eq!(l.mean(), 0.0);
        l.record(10);
        l.record(30);
        assert_eq!(l.count, 2);
        assert_eq!(l.mean(), 20.0);
        assert_eq!(l.max, 30);

        let mut other = LatencyStat::default();
        other.record(100);
        l.merge(&other);
        assert_eq!(l.count, 3);
        assert_eq!(l.max, 100);
    }

    #[test]
    fn histogram_fractions() {
        let mut h = Histogram::new();
        h.record(16);
        h.record(16);
        h.record(64);
        h.add(32, 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.get(16), 2);
        assert_eq!(h.fraction(16), 0.5);
        assert_eq!(h.fraction(48), 0.0);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(16, 2), (32, 1), (64, 1)]);
    }

    #[test]
    fn time_series_window_rollover() {
        let mut ts = TimeSeries::new(100);
        assert!(ts.is_empty());
        ts.add(0, 5);
        ts.add(99, 5); // same window
        assert_eq!(ts.len(), 1);
        ts.add(100, 7); // rolls into window 1
        assert_eq!(ts.len(), 2);
        ts.add(950, 1); // far rollover extends through empty windows
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.bucket(0), 10);
        assert_eq!(ts.bucket(1), 7);
        assert_eq!(ts.bucket(5), 0);
        assert_eq!(ts.bucket(9), 1);
        assert_eq!(ts.bucket(99), 0, "beyond recorded range reads as 0");
        assert_eq!(ts.total(), 18);
        assert_eq!(ts.peak(), 10);
        let points: Vec<_> = ts.iter().take(3).collect();
        assert_eq!(points, vec![(0, 10), (100, 7), (200, 0)]);
    }

    #[test]
    fn time_series_merge_extends_and_adds() {
        let mut a = TimeSeries::new(10);
        a.add(0, 1);
        a.add(15, 2);
        let mut b = TimeSeries::new(10);
        b.add(5, 10);
        b.add(35, 20);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.bucket(0), 11);
        assert_eq!(a.bucket(1), 2);
        assert_eq!(a.bucket(3), 20);
    }

    #[test]
    #[should_panic(expected = "different windows")]
    fn time_series_merge_rejects_window_mismatch() {
        let mut a = TimeSeries::new(10);
        a.merge(&TimeSeries::new(20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn time_series_rejects_zero_window() {
        let _ = TimeSeries::new(0);
    }

    #[test]
    fn metrics_counters_and_ratio() {
        let mut m = Metrics::new();
        m.add("net.inter.flits", 10);
        m.add("net.inter.flits", 5);
        m.set("net.inter.cycles", 30);
        assert_eq!(m.counter("net.inter.flits"), 15);
        assert_eq!(m.ratio("net.inter.flits", "net.inter.cycles"), 0.5);
        assert_eq!(m.ratio("x", "missing"), 0.0);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn prefix_iteration() {
        let mut m = Metrics::new();
        m.add("gpu0.l1.hits", 1);
        m.add("gpu0.l1.misses", 2);
        m.add("gpu1.l1.hits", 3);
        let gpu0: Vec<_> = m.counters_with_prefix("gpu0.").collect();
        assert_eq!(gpu0.len(), 2);
        assert!(gpu0.iter().all(|(k, _)| k.starts_with("gpu0.")));
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Metrics::new();
        a.add("c", 1);
        a.latency_mut("l").record(10);
        a.histogram_mut("h").record(1);

        let mut b = Metrics::new();
        b.add("c", 2);
        b.latency_mut("l").record(20);
        b.histogram_mut("h").record(1);

        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.latency("l").count, 2);
        assert_eq!(a.histogram("h").unwrap().get(1), 2);
    }

    #[test]
    fn csv_export_flattens_everything() {
        let mut m = Metrics::new();
        m.add("a.count", 7);
        m.latency_mut("a.lat").record(4);
        m.histogram_mut("a.hist").record(2);
        let csv = m.to_csv();
        assert!(csv.starts_with("key,value\n"));
        assert!(csv.contains("a.count,7\n"));
        assert!(csv.contains("a.lat.mean,4.00\n"));
        assert!(csv.contains("a.lat.count,1\n"));
        assert!(csv.contains("a.hist.bucket2,1\n"));
    }

    #[test]
    fn kv_round_trip_is_lossless() {
        let mut m = Metrics::new();
        m.add("net.inter.flits", 15);
        m.set("zero", 0);
        m.latency_mut("net.read").record(56);
        m.latency_mut("net.read").record(64);
        m.histogram_mut("net.occupancy").add(16, 2);
        m.histogram_mut("net.occupancy").add(64, 1);
        m.histogram_mut("empty.hist");

        let text = m.to_kv();
        let back = Metrics::from_kv(&text).expect("round trip parses");
        assert_eq!(back.counter("net.inter.flits"), 15);
        assert_eq!(back.counter("zero"), 0);
        assert_eq!(back.latency("net.read"), m.latency("net.read"));
        assert_eq!(
            back.histogram("net.occupancy"),
            m.histogram("net.occupancy")
        );
        assert_eq!(back.histogram("empty.hist"), Some(&Histogram::new()));
        // Re-serialising the parsed registry is byte-identical.
        assert_eq!(back.to_kv(), text);
    }

    #[test]
    fn kv_rejects_corrupt_input() {
        assert!(Metrics::from_kv("counter a = 1").is_some());
        assert!(Metrics::from_kv("").is_some());
        assert!(Metrics::from_kv("counter a = x").is_none());
        assert!(Metrics::from_kv("bogus a = 1").is_none());
        assert!(Metrics::from_kv("latency l = 1 2").is_none());
        assert!(Metrics::from_kv("latency l = 1 2 3 4").is_none());
        assert!(Metrics::from_kv("hist h = 1:2 3").is_none());
        assert!(Metrics::from_kv("counter truncated").is_none());
    }

    #[test]
    fn display_renders_all_sections() {
        let mut m = Metrics::new();
        m.add("a.count", 7);
        m.latency_mut("a.lat").record(4);
        m.histogram_mut("a.hist").record(2);
        let s = m.to_string();
        assert!(s.contains("a.count = 7"));
        assert!(s.contains("a.lat"));
        assert!(s.contains("a.hist"));
    }
}
