//! Deterministic collections for simulation state.
//!
//! The simulator's determinism contract (see DESIGN.md §"Determinism
//! rules") bans `std::collections::HashMap`/`HashSet` from sim-facing
//! crates: their iteration order depends on `RandomState`, so any loop
//! over them can leak host randomness into simulation state, statistics
//! or traces. [`OrderedMap`] is the sanctioned replacement — a hash map
//! whose iteration order is *insertion order*, independent of the keys'
//! hash values and of the host. It is in-tree and dependency-free like
//! the rest of this crate, hashing with the same FNV-1a function used
//! for config fingerprints.

use std::hash::{Hash, Hasher};

/// FNV-1a implementing [`std::hash::Hasher`], so any `K: Hash` key can
/// be hashed without `RandomState`. The stream of bytes fed by `Hash`
/// impls for a given key value is stable for a given compiler target,
/// and — more importantly — the *iteration order* of [`OrderedMap`]
/// never depends on these hash values at all.
#[derive(Debug, Clone)]
struct Fnv1aHasher(u64);

impl Default for Fnv1aHasher {
    fn default() -> Self {
        Fnv1aHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1aHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn hash_of<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = Fnv1aHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// A hash map that iterates in insertion order.
///
/// Lookups go through a bucket index (FNV-1a, chained); entries live in
/// an append-only vector, so `iter`/`keys`/`values` walk them in the
/// order they were first inserted. `remove` leaves a tombstone to
/// preserve the order of the survivors; tombstones are compacted away
/// once they outnumber live entries.
///
/// # Examples
///
/// ```
/// use netcrafter_proto::collections::OrderedMap;
///
/// let mut m = OrderedMap::new();
/// m.insert("b", 2);
/// m.insert("a", 1);
/// m.insert("c", 3);
/// m.remove(&"a");
/// let keys: Vec<&str> = m.keys().copied().collect();
/// assert_eq!(keys, ["b", "c"]); // insertion order, not hash order
/// ```
#[derive(Debug, Clone)]
pub struct OrderedMap<K, V> {
    /// Entries in insertion order; `None` marks a removed entry.
    // lint:allow(snapshot-field-parity) serialized wholesale via the public iter()/insert() API by sim's Snap impl, which cannot name this private field
    entries: Vec<Option<(K, V)>>,
    /// Bucket chains of indices into `entries`. Length is a power of two.
    // lint:allow(snapshot-field-parity) rebuilt by insert() during load; serialized via the public API by sim's Snap impl
    buckets: Vec<Vec<u32>>,
    // lint:allow(snapshot-field-parity) rebuilt by insert() during load; serialized via the public API by sim's Snap impl
    live: usize,
}

impl<K, V> Default for OrderedMap<K, V> {
    fn default() -> Self {
        OrderedMap {
            entries: Vec::new(),
            buckets: Vec::new(),
            live: 0,
        }
    }
}

impl<K: Hash + Eq, V> OrderedMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live entry remains.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn bucket_of(&self, key: &K) -> usize {
        debug_assert!(self.buckets.len().is_power_of_two());
        (hash_of(key) as usize) & (self.buckets.len() - 1)
    }

    /// Index into `entries` of the live entry for `key`, if present.
    fn find(&self, key: &K) -> Option<usize> {
        if self.buckets.is_empty() {
            return None;
        }
        let b = self.bucket_of(key);
        self.buckets[b].iter().copied().find_map(|ix| {
            let (k, _) = self.entries[ix as usize].as_ref()?;
            (k == key).then_some(ix as usize)
        })
    }

    /// Rebuilds the bucket index (and drops tombstones) sized for `cap`
    /// live entries.
    fn rebuild(&mut self, cap: usize) {
        self.entries.retain(Option::is_some);
        let n = (cap.max(4) * 2).next_power_of_two();
        self.buckets.clear();
        self.buckets.resize(n, Vec::new());
        for (ix, slot) in self.entries.iter().enumerate() {
            let (k, _) = slot.as_ref().expect("tombstones dropped above");
            let b = (hash_of(k) as usize) & (n - 1);
            self.buckets[b].push(ix as u32);
        }
    }

    /// Inserts `value` under `key`, returning the previous value if the
    /// key was already present (its insertion rank is kept).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(ix) = self.find(&key) {
            let slot = self.entries[ix].as_mut().expect("found entries are live");
            return Some(std::mem::replace(&mut slot.1, value));
        }
        if self.entries.len() + 1 > self.buckets.len() / 2 {
            self.rebuild(self.live + 1);
        }
        let b = self.bucket_of(&key);
        self.buckets[b].push(self.entries.len() as u32);
        self.entries.push(Some((key, value)));
        self.live += 1;
        None
    }

    /// The value stored under `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.find(key)
            .map(|ix| &self.entries[ix].as_ref().expect("live entry").1)
    }

    /// Mutable access to the value stored under `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.find(key)
            .map(|ix| &mut self.entries[ix].as_mut().expect("live entry").1)
    }

    /// True if `key` has a live entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Mutable access to the value under `key`, inserting
    /// `default()` first if the key is absent (the insertion takes the
    /// last rank, exactly like `HashMap::entry(..).or_insert_with`).
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let ix = match self.find(&key) {
            Some(ix) => ix,
            None => {
                self.insert(key, default());
                self.entries.len() - 1
            }
        };
        &mut self.entries[ix].as_mut().expect("live entry").1
    }

    /// Removes the entry for `key`, returning its value. The relative
    /// order of the remaining entries is unchanged.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let ix = self.find(key)?;
        let b = self.bucket_of(key);
        let chain = &mut self.buckets[b];
        let pos = chain
            .iter()
            .position(|&e| e as usize == ix)
            .expect("index chain holds every live entry");
        chain.remove(pos);
        let (_, v) = self.entries[ix].take().expect("found entries are live");
        self.live -= 1;
        // Compact once tombstones dominate, so a long-running map with
        // churn stays O(live) in memory and iteration time.
        if self.entries.len() >= 16 && self.live * 2 < self.entries.len() {
            self.rebuild(self.live);
        }
        Some(v)
    }

    /// Drops every entry, keeping allocations.
    pub fn clear(&mut self) {
        self.entries.clear();
        for chain in &mut self.buckets {
            chain.clear();
        }
        self.live = 0;
    }

    /// Entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries
            .iter()
            .filter_map(|slot| slot.as_ref().map(|(k, v)| (k, v)))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_in_insertion_order() {
        let mut m = OrderedMap::new();
        for k in [9u64, 2, 7, 4, 1, 8] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, [9, 2, 7, 4, 1, 8]);
        let vals: Vec<u64> = m.values().copied().collect();
        assert_eq!(vals, [90, 20, 70, 40, 10, 80]);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = OrderedMap::new();
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("a", 2), Some(1));
        assert_eq!(m.get(&"a"), Some(&2));
        *m.get_mut(&"a").unwrap() += 1;
        assert_eq!(m.remove(&"a"), Some(3));
        assert_eq!(m.remove(&"a"), None);
        assert!(m.is_empty());
    }

    #[test]
    fn reinsert_after_remove_takes_last_rank() {
        let mut m = OrderedMap::new();
        m.insert("a", 1);
        m.insert("b", 2);
        m.remove(&"a");
        m.insert("a", 3);
        let keys: Vec<&str> = m.keys().copied().collect();
        assert_eq!(keys, ["b", "a"]);
    }

    #[test]
    fn get_or_insert_with_appends_once() {
        let mut m = OrderedMap::new();
        *m.get_or_insert_with(5u32, || 0) += 1;
        *m.get_or_insert_with(5u32, || 100) += 1;
        assert_eq!(m.get(&5), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn removal_preserves_survivor_order_through_compaction() {
        let mut m = OrderedMap::new();
        for k in 0u64..64 {
            m.insert(k, k);
        }
        // Remove every even key: enough tombstones to trigger compaction.
        for k in (0u64..64).step_by(2) {
            assert_eq!(m.remove(&k), Some(k));
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        let expect: Vec<u64> = (0u64..64).filter(|k| k % 2 == 1).collect();
        assert_eq!(keys, expect);
        for k in &expect {
            assert_eq!(m.get(k), Some(k));
        }
        assert_eq!(m.len(), 32);
    }

    #[test]
    fn churn_matches_reference_model() {
        // Pseudo-random insert/remove churn cross-checked against a
        // Vec-based reference that models insertion order exactly.
        let mut m: OrderedMap<u64, u64> = OrderedMap::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x243F_6A88_85A3_08D3u64; // in-tree LCG, fixed seed
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for step in 0..4000u64 {
            let key = next() % 97;
            if next() % 3 == 0 {
                let got = m.remove(&key);
                let pos = reference.iter().position(|(k, _)| *k == key);
                let want = pos.map(|p| reference.remove(p).1);
                assert_eq!(got, want, "remove({key}) at step {step}");
            } else {
                let got = m.insert(key, step);
                let pos = reference.iter().position(|(k, _)| *k == key);
                let want = match pos {
                    Some(p) => Some(std::mem::replace(&mut reference[p].1, step)),
                    None => {
                        reference.push((key, step));
                        None
                    }
                };
                assert_eq!(got, want, "insert({key}) at step {step}");
            }
            assert_eq!(m.len(), reference.len());
        }
        let got: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, reference, "final iteration order matches the model");
    }

    #[test]
    fn clear_resets_but_keeps_working() {
        let mut m = OrderedMap::new();
        m.insert(1u8, 1u8);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        m.insert(2, 2);
        assert_eq!(m.get(&2), Some(&2));
        assert_eq!(m.len(), 1);
    }
}
