//! LASP — Locality-Aware Scheduling and Placement (Khairy et al. \[42\]),
//! plus the paper's PTE-page co-location extension (§2.2–§2.3).
//!
//! LASP uses compile-time classification of each buffer's access pattern
//! to (a) assign CTAs to GPUs in locality-preserving blocks and (b) place
//! each buffer's pages so the CTAs that touch them find them locally
//! where the pattern allows. Patterns that defy locality (Random,
//! Gather/Scatter over shared structures) get interleaved placement,
//! which is where remote — and in particular inter-cluster — traffic
//! comes from. The PTE extension places each leaf page-table page on the
//! GPU holding the first data page of its 2 MiB region, which
//! [`netcrafter_vm::PageTable::map`] implements directly.

use std::collections::BTreeMap;

use netcrafter_proto::kernel::{AccessPattern, KernelSpec};
use netcrafter_proto::{CtaId, GpuId, Metrics, WavefrontOp};
use netcrafter_vm::PageTable;

/// The result of the placement pass: a fully populated page table and the
/// CTA→GPU schedule.
#[derive(Debug)]
pub struct Placement {
    /// The node's shared page table, with every touched page mapped and
    /// every page-table page placed.
    pub page_table: PageTable,
    /// CTA → executing GPU.
    pub cta_gpu: BTreeMap<CtaId, GpuId>,
    /// Data pages placed on each GPU.
    pub pages_per_gpu: Vec<u64>,
}

impl Placement {
    /// GPU executing `cta`.
    pub fn gpu_of(&self, cta: CtaId) -> GpuId {
        self.cta_gpu[&cta]
    }

    /// Dumps placement statistics under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        for (g, pages) in self.pages_per_gpu.iter().enumerate() {
            metrics.add(&format!("{prefix}.gpu{g}.pages"), *pages);
        }
        metrics.add(
            &format!("{prefix}.pt_nodes"),
            self.page_table.node_count() as u64,
        );
    }
}

/// Runs LASP for `kernel` over `total_gpus` GPUs whose physical
/// partitions hold `frames_per_gpu` frames each.
///
/// CTA scheduling: a CTA with a `home_hint` goes to that GPU; the rest
/// are block-partitioned by CTA position (contiguous CTAs share a GPU,
/// the locality LASP's index analysis extracts).
///
/// Page placement per pattern:
/// * `Partitioned` / `Adjacent` / `Gather` / `Scatter` — block-partition
///   the buffer's pages across GPUs in order, aligning slice `g` with the
///   CTAs scheduled on GPU `g`.
/// * `Random` — interleave pages round-robin across GPUs (no locality to
///   exploit; matches LASP's fallback for irregular structures).
///
/// # Panics
///
/// Panics if a trace touches a virtual page outside every declared
/// buffer — generators must declare their footprints.
pub fn place(kernel: &KernelSpec, total_gpus: u16, frames_per_gpu: u64) -> Placement {
    let mut placer = Placer::new(total_gpus, frames_per_gpu);
    let cta_gpu = placer.place_kernel(kernel);
    let (page_table, pages_per_gpu) = placer.finish();
    Placement {
        page_table,
        cta_gpu,
        pages_per_gpu,
    }
}

/// Incremental LASP placement across a *sequence* of kernels sharing one
/// virtual address space: buffers already placed by an earlier kernel
/// keep their pages (first placement wins, as with first-touch).
pub struct Placer {
    total_gpus: u16,
    frames_per_gpu: u64,
    page_table: PageTable,
    next_frame: Vec<u64>,
    pages_per_gpu: Vec<u64>,
}

impl Placer {
    /// Creates a placer for a node of `total_gpus` GPUs.
    pub fn new(total_gpus: u16, frames_per_gpu: u64) -> Self {
        assert!(total_gpus > 0);
        Self {
            total_gpus,
            frames_per_gpu,
            page_table: PageTable::new(frames_per_gpu),
            next_frame: vec![0; total_gpus as usize],
            pages_per_gpu: vec![0; total_gpus as usize],
        }
    }

    /// Schedules one kernel's CTAs and places its (not-yet-placed) pages.
    /// Returns the CTA→GPU schedule for this kernel.
    pub fn place_kernel(&mut self, kernel: &KernelSpec) -> BTreeMap<CtaId, GpuId> {
        let g = self.total_gpus as u64;
        // CTA schedule.
        let n_ctas = kernel.ctas.len().max(1) as u64;
        let mut cta_gpu = BTreeMap::new();
        for (pos, cta) in kernel.ctas.iter().enumerate() {
            let gpu = cta
                .home_hint
                .unwrap_or_else(|| GpuId((pos as u64 * g / n_ctas) as u16));
            assert!(gpu.raw() < self.total_gpus, "home hint {gpu} out of range");
            cta_gpu.insert(cta.id, gpu);
        }

        // Page placement (first placement wins across kernels).
        for buffer in &kernel.buffers {
            let pages = buffer.pages();
            let base_vpn = buffer.base_vpn();
            for p in 0..pages {
                if self.page_table.translate(base_vpn + p).is_some() {
                    continue;
                }
                let gpu = match buffer.pattern {
                    AccessPattern::Random => GpuId((p % g) as u16),
                    AccessPattern::Partitioned
                    | AccessPattern::Adjacent
                    | AccessPattern::Gather
                    | AccessPattern::Scatter => GpuId((p * g / pages.max(1)) as u16),
                };
                let frame = gpu.raw() as u64 * self.frames_per_gpu + self.next_frame[gpu.index()];
                self.next_frame[gpu.index()] += 1;
                self.pages_per_gpu[gpu.index()] += 1;
                self.page_table.map(base_vpn + p, frame, gpu);
            }
        }

        // Audit: every touched page must be mapped.
        for cta in &kernel.ctas {
            for wave in &cta.waves {
                for op in &wave.ops {
                    if let WavefrontOp::Mem(acc) = op {
                        assert!(
                            self.page_table.translate(acc.vaddr.vpn()).is_some(),
                            "kernel {}: {:?} touches unmapped page (vpn {:#x}); declare the buffer",
                            kernel.name,
                            acc.vaddr,
                            acc.vaddr.vpn()
                        );
                    }
                }
            }
        }
        cta_gpu
    }

    /// Consumes the placer, yielding the populated page table and the
    /// per-GPU data-page counts.
    pub fn finish(self) -> (PageTable, Vec<u64>) {
        (self.page_table, self.pages_per_gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::access::{CoalescedAccess, WavefrontTrace};
    use netcrafter_proto::kernel::{BufferSpec, CtaSpec};
    use netcrafter_proto::{VAddr, WavefrontId, PAGE_BYTES};

    const FRAMES: u64 = 1 << 24;

    fn kernel(n_ctas: u32, pattern: AccessPattern, pages: u64) -> KernelSpec {
        let buffer = BufferSpec {
            name: "data".into(),
            base: VAddr(0x100_0000),
            bytes: pages * PAGE_BYTES,
            pattern,
        };
        let ctas = (0..n_ctas)
            .map(|i| CtaSpec {
                id: CtaId(i),
                waves: vec![WavefrontTrace {
                    id: WavefrontId(i),
                    cta: CtaId(i),
                    ops: vec![netcrafter_proto::WavefrontOp::Mem(CoalescedAccess::read(
                        VAddr(0x100_0000 + (i as u64 % pages) * PAGE_BYTES),
                        8,
                    ))],
                }],
                home_hint: None,
            })
            .collect();
        KernelSpec {
            name: "test".into(),
            ctas,
            buffers: vec![buffer],
        }
    }

    #[test]
    fn ctas_block_partitioned() {
        let p = place(&kernel(8, AccessPattern::Partitioned, 8), 4, FRAMES);
        // 8 CTAs over 4 GPUs: two per GPU, contiguous.
        assert_eq!(p.gpu_of(CtaId(0)), GpuId(0));
        assert_eq!(p.gpu_of(CtaId(1)), GpuId(0));
        assert_eq!(p.gpu_of(CtaId(2)), GpuId(1));
        assert_eq!(p.gpu_of(CtaId(7)), GpuId(3));
    }

    #[test]
    fn home_hints_override_blocking() {
        let mut k = kernel(4, AccessPattern::Partitioned, 4);
        k.ctas[0].home_hint = Some(GpuId(3));
        let p = place(&k, 4, FRAMES);
        assert_eq!(p.gpu_of(CtaId(0)), GpuId(3));
    }

    #[test]
    fn partitioned_pages_align_with_cta_blocks() {
        let p = place(&kernel(8, AccessPattern::Partitioned, 8), 4, FRAMES);
        // Page p of the buffer lives on gpu p*4/8: two pages per GPU.
        assert_eq!(p.pages_per_gpu, vec![2, 2, 2, 2]);
        // CTA 0 (gpu0) touches page 0, which is on gpu0: local.
        let vpn0 = VAddr(0x100_0000).vpn();
        let pfn0 = p.page_table.translate(vpn0).unwrap();
        assert_eq!(pfn0 / FRAMES, 0);
        // Page 7 is on gpu3.
        let pfn7 = p.page_table.translate(vpn0 + 7).unwrap();
        assert_eq!(pfn7 / FRAMES, 3);
    }

    #[test]
    fn random_pages_interleave() {
        let p = place(&kernel(4, AccessPattern::Random, 8), 4, FRAMES);
        let vpn0 = VAddr(0x100_0000).vpn();
        for page in 0..8u64 {
            let pfn = p.page_table.translate(vpn0 + page).unwrap();
            assert_eq!(pfn / FRAMES, page % 4, "page {page} interleaved");
        }
    }

    #[test]
    fn pte_pages_colocated_with_first_data_page() {
        let p = place(&kernel(4, AccessPattern::Random, 8), 4, FRAMES);
        let vpn0 = VAddr(0x100_0000).vpn();
        // All 8 pages share one 2 MiB region; the first page went to
        // gpu0, so the leaf PT node lives on gpu0.
        assert_eq!(p.page_table.node_owner(vpn0 + 5, 4), Some(GpuId(0)));
    }

    #[test]
    #[should_panic(expected = "unmapped page")]
    fn undeclared_touch_panics() {
        let mut k = kernel(1, AccessPattern::Random, 1);
        k.buffers.clear();
        let _ = place(&k, 4, FRAMES);
    }

    #[test]
    fn placement_report() {
        let p = place(&kernel(4, AccessPattern::Random, 8), 4, FRAMES);
        let mut m = Metrics::new();
        p.report(&mut m, "lasp");
        assert_eq!(m.counter("lasp.gpu0.pages"), 2);
        assert!(m.counter("lasp.pt_nodes") >= 4);
    }
}
