//! The GPU model: compute units executing coalesced wavefront access
//! streams, the RDMA engine bridging each GPU onto the inter-GPU network,
//! and LASP CTA scheduling / page placement (§2.1–§2.2).
//!
//! * [`Cu`] — a compute unit with its private L1 TLB and sectored L1
//!   vector cache. It interleaves up to `max_waves_per_cu` resident
//!   wavefronts for latency hiding, translates through the L1 TLB (misses
//!   go to the GPU's shared translation unit), and issues misses to the
//!   owning L2 — directly if local, through the RDMA engine if remote.
//! * [`Rdma`] — packetizes remote memory traffic into the six Table 1
//!   packet categories, applies Trimming bits to eligible read requests,
//!   segments packets into flits, and reassembles arrivals. One per GPU
//!   (the per-GPU RDMA engine of Griffin \[9\] the paper baselines on).
//! * [`lasp`] — Locality-Aware Scheduling and Placement \[42\]: assigns
//!   CTAs to GPUs and places data pages (plus the paper's PTE-page
//!   co-location extension) before the simulation starts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod coalescer;
pub mod cu;
pub mod lasp;
pub mod rdma;

pub use coalescer::{Coalescer, CoalescerStats, LaneAccess, WAVEFRONT_LANES};
pub use cu::{Cu, CuStats, CuWiring};
pub use lasp::{place, Placement, Placer};
pub use rdma::{Rdma, RdmaStats, RdmaWiring};
