//! The hardware memory coalescer (§2.1): merges the per-thread addresses
//! of a 64-lane wavefront into per-cache-line requests before they reach
//! the L1 vector cache.
//!
//! Threads within a wavefront issue one address each (or none, when
//! predicated off). The coalescer groups them by 64 B line and produces
//! one [`CoalescedAccess`] per distinct line, whose byte mask is the
//! union of the lanes' spans — exactly the quantity Figure 7
//! characterizes and Trimming exploits. A fully sequential wavefront
//! collapses to a handful of full-line accesses; a random-gather
//! wavefront degenerates to up to 64 small accesses.

use std::collections::BTreeMap;

use netcrafter_proto::access::{AccessKind, CoalescedAccess};
use netcrafter_proto::{LineMask, VAddr, LINE_BYTES};

/// Number of lanes (threads) per wavefront (§2.1: wavefront size 64).
pub const WAVEFRONT_LANES: usize = 64;

/// One lane's memory operand: an address and an element size in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAccess {
    /// The lane's element address.
    pub addr: VAddr,
    /// Element size (1–16 bytes; elements never straddle a line).
    pub bytes: u8,
}

impl LaneAccess {
    /// Convenience constructor.
    pub fn new(addr: u64, bytes: u8) -> Self {
        assert!(bytes >= 1 && bytes as u64 <= 16, "element size {bytes}");
        assert!(
            addr % LINE_BYTES + bytes as u64 <= LINE_BYTES,
            "element at {addr:#x} straddles a cache line"
        );
        Self {
            addr: VAddr(addr),
            bytes,
        }
    }
}

/// Statistics the coalescer keeps (per CU in hardware; callers aggregate).
#[derive(Debug, Clone, Copy, Default)]
pub struct CoalescerStats {
    /// Wavefront memory instructions processed.
    pub instructions: u64,
    /// Active lanes seen.
    pub lanes: u64,
    /// Coalesced line requests emitted.
    pub requests: u64,
}

impl CoalescerStats {
    /// Average requests per instruction — 1.0 is perfectly coalesced,
    /// 64.0 is fully divergent.
    pub fn requests_per_instruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.requests as f64 / self.instructions as f64
        }
    }
}

/// The coalescing unit.
#[derive(Debug, Default)]
pub struct Coalescer {
    /// Statistics.
    pub stats: CoalescerStats,
}

impl Coalescer {
    /// Creates a coalescer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Coalesces one wavefront memory instruction: the active lanes'
    /// operands merge into one request per distinct 64 B line, in
    /// ascending line order (the deterministic hardware arbitration).
    ///
    /// # Panics
    ///
    /// Panics if more than [`WAVEFRONT_LANES`] lanes are supplied.
    pub fn coalesce(&mut self, lanes: &[LaneAccess], kind: AccessKind) -> Vec<CoalescedAccess> {
        assert!(lanes.len() <= WAVEFRONT_LANES, "{} lanes", lanes.len());
        self.stats.instructions += 1;
        self.stats.lanes += lanes.len() as u64;
        let mut per_line: BTreeMap<u64, LineMask> = BTreeMap::new();
        for lane in lanes {
            let line = lane.addr.0 / LINE_BYTES;
            let mask = LineMask::span(lane.addr.line_offset(), lane.bytes as u64);
            per_line
                .entry(line)
                .and_modify(|m| *m = m.union(mask))
                .or_insert(mask);
        }
        self.stats.requests += per_line.len() as u64;
        per_line
            .into_iter()
            .map(|(line, mask)| CoalescedAccess::with_mask(VAddr(line * LINE_BYTES), kind, mask))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 64 lanes reading consecutive 4-byte elements span 4 lines and
    /// coalesce into exactly 4 full-line requests.
    #[test]
    fn sequential_lanes_coalesce_to_full_lines() {
        let mut c = Coalescer::new();
        let lanes: Vec<_> = (0..64)
            .map(|i| LaneAccess::new(0x1000 + i * 4, 4))
            .collect();
        let reqs = c.coalesce(&lanes, AccessKind::Read);
        assert_eq!(reqs.len(), 4);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.vaddr.0, 0x1000 + i as u64 * 64);
            assert_eq!(r.mask, LineMask::FULL);
            assert_eq!(r.bytes_required(), 64);
        }
        assert_eq!(c.stats.requests_per_instruction(), 4.0);
    }

    /// Random-gather lanes produce one small request per distinct line —
    /// the Figure 7 ≤16 B population.
    #[test]
    fn divergent_lanes_stay_small() {
        let mut c = Coalescer::new();
        let lanes: Vec<_> = (0..8)
            .map(|i| LaneAccess::new(0x10_000 + i * 4096, 8))
            .collect();
        let reqs = c.coalesce(&lanes, AccessKind::Read);
        assert_eq!(reqs.len(), 8, "no two lanes share a line");
        assert!(reqs.iter().all(|r| r.bytes_required() == 8));
        assert!(reqs.iter().all(|r| r.mask.fits_one_sector(16)));
    }

    /// Lanes hitting the same line with scattered elements union their
    /// masks into one request.
    #[test]
    fn same_line_lanes_merge_masks() {
        let mut c = Coalescer::new();
        let lanes = [
            LaneAccess::new(0x2000, 4),
            LaneAccess::new(0x2010, 4),
            LaneAccess::new(0x2030, 8),
        ];
        let reqs = c.coalesce(&lanes, AccessKind::Write);
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].bytes_required(), 16);
        assert_eq!(reqs[0].mask.sectors(16), 0b1011);
        assert!(reqs[0].kind.is_write());
    }

    /// Strided lanes (transpose columns): one 4 B element per line.
    #[test]
    fn strided_lanes_one_element_per_line() {
        let mut c = Coalescer::new();
        let lanes: Vec<_> = (0..16).map(|i| LaneAccess::new(i * 1024, 4)).collect();
        let reqs = c.coalesce(&lanes, AccessKind::Read);
        assert_eq!(reqs.len(), 16);
        assert!(reqs.iter().all(|r| r.bytes_required() == 4));
    }

    /// Output order is ascending-line deterministic regardless of lane
    /// order.
    #[test]
    fn output_is_line_sorted() {
        let mut c = Coalescer::new();
        let lanes = [
            LaneAccess::new(0x3040, 4),
            LaneAccess::new(0x3000, 4),
            LaneAccess::new(0x30c0, 4),
        ];
        let reqs = c.coalesce(&lanes, AccessKind::Read);
        let addrs: Vec<u64> = reqs.iter().map(|r| r.vaddr.0).collect();
        assert_eq!(addrs, vec![0x3000, 0x3040, 0x30c0]);
    }

    #[test]
    #[should_panic(expected = "straddles")]
    fn straddling_element_rejected() {
        let _ = LaneAccess::new(0x103c, 8);
    }

    #[test]
    #[should_panic(expected = "lanes")]
    fn too_many_lanes_rejected() {
        let mut c = Coalescer::new();
        let lanes: Vec<_> = (0..65).map(|i| LaneAccess::new(i * 64, 4)).collect();
        let _ = c.coalesce(&lanes, AccessKind::Read);
    }
}
