//! The compute unit: executes coalesced wavefront access streams with
//! latency hiding, owns a private L1 TLB and L1 vector cache, and feeds
//! the memory hierarchy (§2.1).
//!
//! A CU keeps up to `max_waves_per_cu` wavefronts resident and issues one
//! operation per cycle from a ready wavefront (round-robin). A wavefront
//! blocks on its own loads — other wavefronts keep issuing, which is the
//! latency tolerance GPUs (and Flit Pooling) rely on. Stores are posted:
//! they propagate write-through toward the owning L2 and only bound the
//! CU by the outstanding-access cap.

use std::collections::{BTreeMap, VecDeque};

use netcrafter_mem::{L1Access, L1Cache};
use netcrafter_proto::access::{CoalescedAccess, WavefrontOp, WavefrontTrace};
use netcrafter_proto::config::SystemConfig;
use netcrafter_proto::ids::IdAlloc;
use netcrafter_proto::{
    AccessId, CuId, GpuId, LatencyStat, MemReq, Message, Metrics, Origin, PAddr, TrafficClass,
    TransReq, PAGE_BYTES,
};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{BurstOutcome, Component, ComponentId, Ctx, Cycle, EventClass, Wake};
use netcrafter_vm::Tlb;

/// Where the CU's outgoing traffic goes.
#[derive(Debug, Clone)]
pub struct CuWiring {
    /// The GPU's shared translation unit (L2 TLB + GMMU).
    pub gmmu: ComponentId,
    /// The GPU's local L2 cache.
    pub l2: ComponentId,
    /// The GPU's RDMA engine (remote lines).
    pub rdma: ComponentId,
}

/// Per-CU statistics.
#[derive(Debug, Clone, Default)]
pub struct CuStats {
    /// Dynamic operations issued (MPKI denominator).
    pub instructions: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
    /// Reads whose line lives on another GPU.
    pub remote_reads: u64,
    /// Reads whose line lives across the inter-cluster network.
    pub inter_cluster_reads: u64,
    /// Figure 7: inter-cluster reads bucketed by bytes required
    /// (16/32/48/64).
    pub fig7: [u64; 4],
    /// End-to-end latency of inter-cluster reads (issue → data).
    pub inter_cluster_read_latency: LatencyStat,
    /// End-to-end latency of all reads.
    pub read_latency: LatencyStat,
    /// Cycles with no ready wavefront (stall cycles).
    pub idle_cycles: u64,
    /// Wavefronts completed.
    pub waves_done: u64,
}

impl Snap for CuStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.instructions.save(w);
        self.mem_ops.save(w);
        self.remote_reads.save(w);
        self.inter_cluster_reads.save(w);
        self.fig7.save(w);
        self.inter_cluster_read_latency.save(w);
        self.read_latency.save(w);
        self.idle_cycles.save(w);
        self.waves_done.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(CuStats {
            instructions: Snap::load(r)?,
            mem_ops: Snap::load(r)?,
            remote_reads: Snap::load(r)?,
            inter_cluster_reads: Snap::load(r)?,
            fig7: Snap::load(r)?,
            inter_cluster_read_latency: Snap::load(r)?,
            read_latency: Snap::load(r)?,
            idle_cycles: Snap::load(r)?,
            waves_done: Snap::load(r)?,
        })
    }
}

impl CuStats {
    /// Dumps counters under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        metrics.add(&format!("{prefix}.instructions"), self.instructions);
        metrics.add(&format!("{prefix}.mem_ops"), self.mem_ops);
        metrics.add(&format!("{prefix}.remote_reads"), self.remote_reads);
        metrics.add(
            &format!("{prefix}.inter_cluster_reads"),
            self.inter_cluster_reads,
        );
        for (i, count) in self.fig7.iter().enumerate() {
            metrics.add(&format!("{prefix}.fig7_{}B", (i + 1) * 16), *count);
        }
        metrics
            .latency_mut(&format!("{prefix}.inter_cluster_read_latency"))
            .merge(&self.inter_cluster_read_latency);
        metrics
            .latency_mut(&format!("{prefix}.read_latency"))
            .merge(&self.read_latency);
        metrics.add(&format!("{prefix}.idle_cycles"), self.idle_cycles);
        metrics.add(&format!("{prefix}.waves_done"), self.waves_done);
    }
}

#[derive(Debug)]
enum WfState {
    /// Can issue its next op.
    Ready,
    /// Computing or absorbing L1 hit latency until the given cycle.
    BusyUntil(Cycle),
    /// Waiting for a translation (the pending access resumes on reply).
    WaitTranslation(CoalescedAccess),
    /// Waiting for a read fill.
    WaitMem,
    /// L1/MSHR or outstanding-cap stall: retry the translated access.
    RetryAccess(CoalescedAccess, u64),
    /// Trace exhausted.
    Done,
}

impl Snap for WfState {
    fn save(&self, w: &mut SnapshotWriter) {
        match self {
            WfState::Ready => 0u8.save(w),
            WfState::BusyUntil(t) => {
                1u8.save(w);
                t.save(w);
            }
            WfState::WaitTranslation(acc) => {
                2u8.save(w);
                acc.save(w);
            }
            WfState::WaitMem => 3u8.save(w),
            WfState::RetryAccess(acc, pfn) => {
                4u8.save(w);
                acc.save(w);
                pfn.save(w);
            }
            WfState::Done => 5u8.save(w),
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match u8::load(r)? {
            0 => WfState::Ready,
            1 => WfState::BusyUntil(Snap::load(r)?),
            2 => WfState::WaitTranslation(Snap::load(r)?),
            3 => WfState::WaitMem,
            4 => WfState::RetryAccess(Snap::load(r)?, Snap::load(r)?),
            5 => WfState::Done,
            tag => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown wavefront state tag {tag}"
                )))
            }
        })
    }
}

#[derive(Debug)]
struct Wavefront {
    trace: WavefrontTrace,
    pc: usize,
    state: WfState,
    /// Loads in flight for this wavefront (non-blocking up to the CU's
    /// `max_loads_per_wave`).
    loads_in_flight: u16,
}

impl Snap for Wavefront {
    fn save(&self, w: &mut SnapshotWriter) {
        self.trace.save(w);
        self.pc.save(w);
        self.state.save(w);
        self.loads_in_flight.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let trace: WavefrontTrace = Snap::load(r)?;
        let pc: usize = Snap::load(r)?;
        if pc > trace.ops.len() {
            return Err(SnapshotError::Corrupt(format!(
                "wavefront pc {pc} past {} trace ops",
                trace.ops.len()
            )));
        }
        Ok(Wavefront {
            trace,
            pc,
            state: Snap::load(r)?,
            loads_in_flight: Snap::load(r)?,
        })
    }
}

/// A compute unit component.
pub struct Cu {
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    gpu: GpuId,
    #[allow(dead_code)]
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    cu: CuId,
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    cu_raw: u16,
    // lint:allow(snapshot-field-parity) construction-time identity; load_state only names it in decode error messages
    name: String,
    /// The CU's private L1 vector cache.
    pub l1: L1Cache,
    /// The CU's private L1 TLB.
    pub l1_tlb: Tlb,
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    wiring: CuWiring,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    gpus_per_cluster: u16,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    frames_per_gpu: u64,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    hop_cycles: u32,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    max_waves: usize,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    max_outstanding: u32,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    max_loads_per_wave: u16,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    full_sector_mask: u16,

    resident: Vec<Wavefront>,
    pending: VecDeque<WavefrontTrace>,
    rr: usize,
    ids: IdAlloc<AccessId>,
    // lint:allow(snapshot-field-parity) construction-time id-space base, derived from wiring
    id_base: u64,
    trans_waiters: BTreeMap<AccessId, usize>,
    read_waiters: BTreeMap<AccessId, usize>,
    issue_times: BTreeMap<AccessId, (Cycle, bool)>, // (issued, inter_cluster)
    outstanding: u32,
    /// Cycle of the last tick, the anchor for arithmetic `idle_cycles`
    /// catch-up after an event-driven scheduler skips blocked cycles.
    last_tick: Cycle,
    /// Whether the CU was busy at the end of the last tick. State is
    /// frozen between ticks, so this is the busy value for every cycle
    /// the scheduler skipped since (`load_waves` can flip it, but only
    /// at a kernel barrier, which re-ticks the CU immediately).
    was_busy: bool,
    /// Statistics.
    pub stats: CuStats,
}

impl Cu {
    /// Builds a CU of `gpu` with GPU-local index `cu`, executing `waves`.
    pub fn new(
        gpu: GpuId,
        cu: CuId,
        cfg: &SystemConfig,
        waves: Vec<WavefrontTrace>,
        wiring: CuWiring,
    ) -> Self {
        let l1 = L1Cache::new(&cfg.l1, cfg.sector_fill, cfg.trim_granularity);
        let l1_tlb = Tlb::new(&cfg.l1_tlb);
        // Globally unique access ids: gpu and cu in the high bits.
        let id_base = ((gpu.raw() as u64) << 40) | ((cu.raw() as u64) << 24);
        Self {
            gpu,
            cu,
            cu_raw: cu.raw(),
            name: format!("{gpu}.{cu}"),
            l1,
            l1_tlb,
            wiring,
            gpus_per_cluster: cfg.topology.gpus_per_cluster,
            frames_per_gpu: 1u64 << (netcrafter_proto::config::PA_GPU_REGION_BITS - 12),
            hop_cycles: cfg.on_chip_hop_cycles,
            max_waves: cfg.max_waves_per_cu as usize,
            max_outstanding: cfg.max_outstanding_per_cu,
            max_loads_per_wave: cfg.max_loads_per_wave.max(1),
            full_sector_mask: cfg.full_sector_mask(),
            resident: Vec::new(),
            pending: waves.into(),
            rr: 0,
            ids: IdAlloc::new(),
            id_base,
            trans_waiters: BTreeMap::new(),
            read_waiters: BTreeMap::new(),
            issue_times: BTreeMap::new(),
            outstanding: 0,
            last_tick: 0,
            was_busy: false,
            stats: CuStats::default(),
        }
    }

    fn next_id(&mut self) -> AccessId {
        AccessId(self.id_base + self.ids.next().raw())
    }

    fn owner_of(&self, pa: u64) -> GpuId {
        GpuId((pa / (self.frames_per_gpu * PAGE_BYTES)) as u16)
    }

    fn crosses_clusters(&self, owner: GpuId) -> bool {
        owner.cluster(self.gpus_per_cluster) != self.gpu.cluster(self.gpus_per_cluster)
    }

    fn activate_pending(&mut self) {
        while self.resident.len() < self.max_waves {
            let Some(trace) = self.pending.pop_front() else {
                break;
            };
            self.resident.push(Wavefront {
                trace,
                pc: 0,
                state: WfState::Ready,
                loads_in_flight: 0,
            });
        }
    }

    /// Loads another batch of wavefronts onto the CU — the dispatch path
    /// for a subsequent kernel after a global kernel barrier. Only legal
    /// while the CU is idle (the harness runs each kernel to quiescence
    /// before launching the next).
    pub fn load_waves(&mut self, waves: Vec<WavefrontTrace>) {
        assert!(
            !self.busy(),
            "{}: kernel barrier violated — waves loaded onto a busy CU",
            self.name
        );
        self.resident.clear();
        self.pending.extend(waves);
    }

    /// Executes the (already translated) access for wavefront `wf_ix`.
    fn do_mem_access(&mut self, ctx: &mut Ctx<'_>, wf_ix: usize, acc: CoalescedAccess, pfn: u64) {
        let now = ctx.cycle();
        let pa = PAddr(pfn * PAGE_BYTES + acc.vaddr.page_offset());
        let line = pa.line();
        let owner = self.owner_of(pa.0);
        let crosses = self.crosses_clusters(owner);
        let target = if owner == self.gpu {
            self.wiring.l2
        } else {
            self.wiring.rdma
        };

        // The coalesced mask is line-relative in the trace's virtual
        // space; physical line offset equals virtual line offset (pages
        // are line-aligned), so the mask carries over unchanged.
        if acc.kind.is_write() {
            if self.outstanding >= self.max_outstanding {
                self.resident[wf_ix].state = WfState::RetryAccess(acc, pfn);
                return;
            }
            self.l1.write(line, acc.mask, now);
            let req = MemReq {
                access: self.next_id(),
                line,
                write: true,
                mask: acc.mask,
                sectors: self.full_sector_mask,
                class: TrafficClass::Data,
                requester: self.gpu,
                owner,
                origin: Origin::Cu(self.cu_raw),
            };
            self.outstanding += 1;
            ctx.send(target, Message::MemReq(req), self.hop_cycles as u64);
            // Posted write: the wavefront moves on after the issue cycle.
            self.resident[wf_ix].state = WfState::BusyUntil(now + 1);
            return;
        }

        if self.outstanding >= self.max_outstanding {
            self.resident[wf_ix].state = WfState::RetryAccess(acc, pfn);
            return;
        }
        let id = self.next_id();
        match self.l1.read(line, acc.mask, id, now, crosses) {
            L1Access::Hit => {
                self.resident[wf_ix].state =
                    WfState::BusyUntil(now + self.l1.lookup_cycles() as Cycle);
            }
            L1Access::Miss { sectors } => {
                if crosses {
                    self.stats.inter_cluster_reads += 1;
                    self.stats.fig7[(acc.mask.fig7_bucket() as usize / 16) - 1] += 1;
                }
                if owner != self.gpu {
                    self.stats.remote_reads += 1;
                }
                let req = MemReq {
                    access: id,
                    line,
                    write: false,
                    mask: acc.mask,
                    sectors,
                    class: TrafficClass::Data,
                    requester: self.gpu,
                    owner,
                    origin: Origin::Cu(self.cu_raw),
                };
                self.outstanding += 1;
                self.read_waiters.insert(id, wf_ix);
                self.issue_times.insert(id, (now, crosses));
                ctx.tracer().begin(EventClass::Cache, "l1.miss", id.0);
                ctx.send(
                    target,
                    Message::MemReq(req),
                    (self.l1.lookup_cycles() + self.hop_cycles) as u64,
                );
                self.note_load_issued(wf_ix, now);
            }
            L1Access::MergedMiss => {
                self.read_waiters.insert(id, wf_ix);
                self.issue_times.insert(id, (now, crosses));
                ctx.tracer().begin(EventClass::Cache, "l1.miss", id.0);
                self.note_load_issued(wf_ix, now);
            }
            L1Access::Stall => {
                self.resident[wf_ix].state = WfState::RetryAccess(acc, pfn);
            }
        }
    }

    /// Starts the memory op `acc` for `wf_ix`: translation first.
    fn start_access(&mut self, ctx: &mut Ctx<'_>, wf_ix: usize, acc: CoalescedAccess) {
        self.stats.mem_ops += 1;
        let vpn = acc.vaddr.vpn();
        let now = ctx.cycle();
        if let Some(pfn) = self.l1_tlb.lookup(vpn, now) {
            self.do_mem_access(ctx, wf_ix, acc, pfn);
        } else {
            let id = self.next_id();
            self.trans_waiters.insert(id, wf_ix);
            let req = TransReq {
                access: id,
                vpn,
                cu: self.cu_raw,
            };
            ctx.send(
                self.wiring.gmmu,
                Message::TransReq(req),
                self.hop_cycles as u64,
            );
            self.resident[wf_ix].state = WfState::WaitTranslation(acc);
        }
    }

    /// Books an issued (in-flight) load on `wf_ix`: the wavefront keeps
    /// issuing until it exhausts its non-blocking-load budget, then waits
    /// for data (the first "use").
    fn note_load_issued(&mut self, wf_ix: usize, _now: Cycle) {
        let wf = &mut self.resident[wf_ix];
        wf.loads_in_flight += 1;
        wf.state = if wf.loads_in_flight >= self.max_loads_per_wave {
            WfState::WaitMem
        } else {
            WfState::Ready
        };
    }

    /// The earliest cycle at which ticking the CU can do more than
    /// increment `idle_cycles` (which `tick` catches up arithmetically
    /// from `last_tick`, so blocked cycles need no tick at all). A wave
    /// that can issue — `Ready`, retrying, or a `BusyUntil` deadline
    /// already due — needs every cycle; a pure compute phase sleeps
    /// until its deadline; memory- and translation-blocked waves sleep
    /// until a response message arrives. A non-empty pending queue only
    /// matters while a resident slot is free — except in the degenerate
    /// all-retired-but-queue-nonempty state, where the legacy scheduler
    /// spins, so we must spin too.
    fn blocked_wake(&self, now: Cycle) -> Wake {
        let mut wake = Wake::OnMessage;
        let mut active = false;
        for w in &self.resident {
            match w.state {
                WfState::Ready | WfState::RetryAccess(..) => return Wake::EveryCycle,
                WfState::BusyUntil(t) => {
                    if t <= now {
                        return Wake::EveryCycle;
                    }
                    wake = wake.earliest(Wake::At(t));
                    active = true;
                }
                WfState::WaitTranslation(_) | WfState::WaitMem => active = true,
                WfState::Done => {}
            }
        }
        if !self.pending.is_empty() && (self.resident.len() < self.max_waves || !active) {
            return Wake::EveryCycle;
        }
        wake
    }

    fn wake_read(&mut self, ctx: &mut Ctx<'_>, id: AccessId) {
        let now = ctx.cycle();
        let wf_ix = self
            .read_waiters
            .remove(&id)
            .unwrap_or_else(|| panic!("{}: stray read completion {id}", self.name));
        if let Some((issued, crosses)) = self.issue_times.remove(&id) {
            let lat = now - issued;
            self.stats.read_latency.record(lat);
            if crosses {
                self.stats.inter_cluster_read_latency.record(lat);
            }
        }
        ctx.tracer().end(EventClass::Cache, "l1.miss", id.0);
        let wf = &mut self.resident[wf_ix];
        debug_assert!(wf.loads_in_flight > 0);
        wf.loads_in_flight -= 1;
        if matches!(wf.state, WfState::WaitMem) {
            wf.state = WfState::BusyUntil(now + 1);
        }
    }
}

impl Component for Cu {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.cycle();
        // Catch up idle accounting for skipped cycles. `blocked_wake`
        // only lets the scheduler skip spans where no wave can issue and
        // no message arrives, and state is frozen between ticks — so the
        // reference model would have spent every skipped cycle in the
        // `!issued && busy` branch below, exactly when `was_busy` holds.
        let skipped = now.saturating_sub(self.last_tick + 1);
        if skipped > 0 && self.was_busy {
            self.stats.idle_cycles += skipped;
        }
        self.activate_pending();

        while let Some(msg) = ctx.recv() {
            match msg {
                Message::TransRsp(rsp) => {
                    let wf_ix = self
                        .trans_waiters
                        .remove(&rsp.access)
                        .unwrap_or_else(|| panic!("{}: stray translation", self.name));
                    self.l1_tlb.insert(rsp.vpn, rsp.pfn, now);
                    let WfState::WaitTranslation(acc) = self.resident[wf_ix].state else {
                        panic!("{}: wavefront not awaiting translation", self.name);
                    };
                    self.do_mem_access(ctx, wf_ix, acc, rsp.pfn);
                }
                Message::MemRsp(rsp) => {
                    self.outstanding -= 1;
                    if rsp.write {
                        // Posted-write ack: nothing blocks on it.
                    } else {
                        for id in self.l1.fill(rsp.line, rsp.sectors_valid, now) {
                            self.wake_read(ctx, id);
                        }
                    }
                }
                other => panic!("{}: unexpected {}", self.name, other.label()),
            }
        }

        // Retry stalled accesses before issuing new work (age order).
        for wf_ix in 0..self.resident.len() {
            if let WfState::RetryAccess(acc, pfn) = self.resident[wf_ix].state {
                self.do_mem_access(ctx, wf_ix, acc, pfn);
            }
        }

        // Issue one op from a ready wavefront (round-robin).
        let n = self.resident.len();
        let mut issued = false;
        for step in 0..n {
            let wf_ix = (self.rr + step) % n.max(1);
            let ready = match self.resident[wf_ix].state {
                WfState::Ready => true,
                WfState::BusyUntil(t) => t <= now,
                _ => false,
            };
            if !ready {
                continue;
            }
            let wf = &mut self.resident[wf_ix];
            if wf.pc >= wf.trace.ops.len() {
                wf.state = WfState::Done;
                self.stats.waves_done += 1;
                self.activate_pending();
                continue;
            }
            let op = wf.trace.ops[wf.pc];
            wf.pc += 1;
            match op {
                WavefrontOp::Compute(cycles) => {
                    // A compute phase of n cycles stands for ~n issued
                    // ALU instructions (the MPKI denominator).
                    self.stats.instructions += cycles as u64;
                    wf.state = WfState::BusyUntil(now + cycles as Cycle);
                }
                WavefrontOp::Mem(acc) => {
                    self.stats.instructions += 1;
                    wf.state = WfState::Ready;
                    self.start_access(ctx, wf_ix, acc);
                }
            }
            self.rr = (wf_ix + 1) % n.max(1);
            issued = true;
            break;
        }
        let busy = self.busy();
        if !issued && busy {
            self.stats.idle_cycles += 1;
        }

        // Reap finished wavefronts so `busy` can settle — but only once
        // every in-flight load has returned (a Done wavefront may still
        // have non-blocking loads outstanding). Reaping only removes
        // `Done` waves, which never contribute to `busy`, so the value
        // computed above stays valid as the end-of-tick anchor.
        if self
            .resident
            .iter()
            .all(|w| matches!(w.state, WfState::Done))
            && !self.resident.is_empty()
            && self.pending.is_empty()
            && self.read_waiters.is_empty()
        {
            self.resident.clear();
        }
        self.last_tick = now;
        self.was_busy = busy;
    }

    fn busy(&self) -> bool {
        !self.pending.is_empty()
            || self
                .resident
                .iter()
                .any(|w| !matches!(w.state, WfState::Done))
            || self.outstanding > 0
            || self.l1.busy()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_wake(&self, now: Cycle) -> Wake {
        // A drained CU changes state only on a message or a new kernel's
        // `load_waves` (which re-ticks it via the engine's
        // external-mutation tracking); a blocked CU sleeps until its
        // earliest wave deadline, with `tick` catching up the skipped
        // idle cycles arithmetically.
        self.blocked_wake(now)
    }

    fn tick_burst(&mut self, ctx: &mut Ctx<'_>) -> BurstOutcome {
        self.tick(ctx);
        // `tick` just computed and cached its end-of-tick busy value —
        // reuse it instead of re-scanning the resident waves and the L1.
        BurstOutcome {
            busy: self.was_busy,
            wake: self.blocked_wake(ctx.cycle()),
        }
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.l1.save_state(w);
        self.l1_tlb.save(w);
        self.resident.save(w);
        self.pending.save(w);
        self.rr.save(w);
        self.ids.save(w);
        self.trans_waiters.save(w);
        self.read_waiters.save(w);
        self.issue_times.save(w);
        self.outstanding.save(w);
        // The idle-accounting anchor is part of the dynamic state: an
        // event-driven snapshot may be taken mid-sleep, with the skipped
        // cycles' idle credit still pending — the restored run finishes
        // the catch-up from the same anchor under any scheduler.
        self.last_tick.save(w);
        self.was_busy.save(w);
        self.stats.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.l1.load_state(r)?;
        self.l1_tlb.load_into(r)?;
        self.resident = Snap::load(r)?;
        self.pending = Snap::load(r)?;
        self.rr = Snap::load(r)?;
        self.ids = Snap::load(r)?;
        self.trans_waiters = Snap::load(r)?;
        self.read_waiters = Snap::load(r)?;
        self.issue_times = Snap::load(r)?;
        self.outstanding = Snap::load(r)?;
        self.last_tick = Snap::load(r)?;
        self.was_busy = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        let waves = self.resident.len();
        for (which, waiters) in [
            ("translation", &self.trans_waiters),
            ("read", &self.read_waiters),
        ] {
            if let Some((id, wf_ix)) = waiters.iter().find(|&(_, &wf_ix)| wf_ix >= waves) {
                return Err(SnapshotError::Corrupt(format!(
                    "{}: {which} waiter {id} points at wavefront {wf_ix} of {waves}",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::access::AccessKind;
    use netcrafter_proto::LineMask;
    use netcrafter_proto::{CtaId, MemRsp, SystemConfig, VAddr, WavefrontId};
    use netcrafter_sim::EngineBuilder;
    use std::sync::Arc;
    use std::sync::Mutex;

    /// Answers translations (identity: pfn = vpn + base) and memory
    /// requests (full-line fills) after fixed delays.
    struct Backend {
        reqs: Arc<Mutex<Vec<MemReq>>>,
        trans: Arc<Mutex<Vec<TransReq>>>,
        mem_latency: u64,
        pfn_base: u64,
    }
    impl Component for Backend {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                match msg {
                    Message::TransReq(req) => {
                        self.trans.lock().unwrap().push(req);
                        ctx.send(
                            netcrafter_sim::ComponentId(0),
                            Message::TransRsp(netcrafter_proto::TransRsp {
                                access: req.access,
                                vpn: req.vpn,
                                pfn: req.vpn + self.pfn_base,
                                cu: req.cu,
                            }),
                            5,
                        );
                    }
                    Message::MemReq(req) => {
                        self.reqs.lock().unwrap().push(req);
                        ctx.send(
                            netcrafter_sim::ComponentId(0),
                            Message::MemRsp(MemRsp::for_req(&req, req.sectors)),
                            self.mem_latency,
                        );
                    }
                    other => panic!("backend got {}", other.label()),
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "backend"
        }
    }

    fn wave(id: u32, ops: Vec<WavefrontOp>) -> WavefrontTrace {
        WavefrontTrace {
            id: WavefrontId(id),
            cta: CtaId(0),
            ops,
        }
    }

    struct H {
        engine: netcrafter_sim::Engine,
        cu: ComponentId,
        reqs: Arc<Mutex<Vec<MemReq>>>,
        trans: Arc<Mutex<Vec<TransReq>>>,
    }

    fn harness(waves: Vec<WavefrontTrace>, pfn_base: u64) -> H {
        let mut cfg = SystemConfig::small(1);
        cfg.max_waves_per_cu = 4;
        let mut b = EngineBuilder::new();
        let cu_id = b.reserve(); // must be ComponentId(0): Backend replies there
        let be = b.reserve();
        let reqs = Arc::new(Mutex::new(Vec::new()));
        let trans = Arc::new(Mutex::new(Vec::new()));
        b.install(
            be,
            Box::new(Backend {
                reqs: Arc::clone(&reqs),
                trans: Arc::clone(&trans),
                mem_latency: 50,
                pfn_base,
            }),
        );
        b.install(
            cu_id,
            Box::new(Cu::new(
                GpuId(0),
                netcrafter_proto::CuId(0),
                &cfg,
                waves,
                CuWiring {
                    gmmu: be,
                    l2: be,
                    rdma: be,
                },
            )),
        );
        H {
            engine: b.build(),
            cu: cu_id,
            reqs,
            trans,
        }
    }

    #[test]
    fn read_misses_translate_then_fetch() {
        let w = wave(
            0,
            vec![WavefrontOp::Mem(CoalescedAccess::read(VAddr(0x1000), 8))],
        );
        let mut h = harness(vec![w], 0);
        let _ = h.cu;
        h.engine.run_to_quiescence(10_000);
        assert_eq!(h.trans.lock().unwrap().len(), 1, "one TLB miss");
        assert_eq!(h.reqs.lock().unwrap().len(), 1, "one L1 miss");
        let req = h.reqs.lock().unwrap()[0];
        assert!(!req.write);
        assert_eq!(req.line.0, 0x1000);
    }

    #[test]
    fn tlb_and_l1_hits_skip_traffic() {
        // Two reads of the same line: second is an L1 + TLB hit.
        let w = wave(
            0,
            vec![
                WavefrontOp::Mem(CoalescedAccess::read(VAddr(0x1000), 8)),
                WavefrontOp::Mem(CoalescedAccess::read(VAddr(0x1008), 8)),
            ],
        );
        let mut h = harness(vec![w], 0);
        h.engine.run_to_quiescence(10_000);
        assert_eq!(h.trans.lock().unwrap().len(), 1);
        assert_eq!(h.reqs.lock().unwrap().len(), 1);
    }

    #[test]
    fn writes_are_posted_write_through() {
        let w = wave(
            0,
            vec![
                WavefrontOp::Mem(CoalescedAccess::write(VAddr(0x1000), 64)),
                WavefrontOp::Compute(3),
            ],
        );
        let mut h = harness(vec![w], 0);
        h.engine.run_to_quiescence(10_000);
        let reqs = h.reqs.lock().unwrap();
        assert_eq!(reqs.len(), 1);
        assert!(reqs[0].write);
    }

    #[test]
    fn wavefronts_overlap_their_misses() {
        // Two wavefronts each read a distinct line; with 50-cycle memory
        // the runs overlap, so both requests are issued before either
        // response arrives.
        let w0 = wave(
            0,
            vec![WavefrontOp::Mem(CoalescedAccess::read(VAddr(0x1000), 8))],
        );
        let w1 = wave(
            1,
            vec![WavefrontOp::Mem(CoalescedAccess::read(VAddr(0x2000), 8))],
        );
        let mut h = harness(vec![w0, w1], 0);
        // Run just past issue: both memory requests out by cycle ~40
        // (translation round-trip ~10 + L1 lookup 20).
        h.engine.run_while(60, |_| true);
        assert_eq!(h.reqs.lock().unwrap().len(), 2, "misses overlap");
        h.engine.run_to_quiescence(10_000);
    }

    #[test]
    fn remote_lines_route_to_rdma_target() {
        // pfn_base pushes the PA into gpu1's partition; wiring routes all
        // targets to the same backend, but the request's owner records it.
        let frames = 1u64 << 24;
        let w = wave(
            0,
            vec![WavefrontOp::Mem(CoalescedAccess::read(VAddr(0x1000), 8))],
        );
        let mut h = harness(vec![w], frames);
        h.engine.run_to_quiescence(10_000);
        assert_eq!(h.reqs.lock().unwrap()[0].owner, GpuId(1));
    }

    #[test]
    fn compute_ops_take_their_cycles() {
        let w = wave(0, vec![WavefrontOp::Compute(100)]);
        let mut h = harness(vec![w], 0);
        let end = h.engine.run_to_quiescence(10_000);
        assert!(end >= 100, "compute burns 100 cycles, got {end}");
        assert!(h.reqs.lock().unwrap().is_empty());
    }

    #[test]
    fn trace_with_mixed_ops_completes() {
        let mut ops = Vec::new();
        for i in 0..10u64 {
            ops.push(WavefrontOp::Compute(2));
            ops.push(WavefrontOp::Mem(CoalescedAccess::with_mask(
                VAddr(0x1000 + i * 64),
                if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                LineMask::span(0, 8),
            )));
        }
        let waves = (0..4).map(|i| wave(i, ops.clone())).collect();
        let mut h = harness(waves, 0);
        h.engine.run_to_quiescence(100_000);
        assert!(h.reqs.lock().unwrap().len() >= 10);
    }
}
