//! The per-GPU RDMA engine (§2.1, \[9\]): the bridge between a GPU's
//! memory system and the inter-GPU network.
//!
//! Outbound, it wraps remote memory transactions into the six Table 1
//! packet categories, stamps Trimming bits on eligible read requests
//! (§4.3), segments packets into flits (step 4b of Figure 2) and
//! transmits them toward the cluster switch over the intra-cluster link.
//! Inbound, it returns link credits, reassembles flits into packets
//! (step 4e), forwards request packets into the local L2, and routes
//! response packets back to the CU or GMMU that asked.

use std::collections::VecDeque;

use netcrafter_core::TrimEngine;
use netcrafter_net::{EgressPort, EgressWire, FifoQueue, Reassembler, Segmenter};
use netcrafter_proto::config::SystemConfig;
use netcrafter_proto::{
    Flit, GpuId, MemRsp, Message, Metrics, NodeId, Packet, PacketId, PacketKind, PacketPayload,
    TrafficClass, TrimInfo,
};
use netcrafter_sim::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use netcrafter_sim::{BurstOutcome, Component, ComponentId, Ctx, Cycle, EventClass, Tracer, Wake};

/// Where the RDMA engine's traffic goes.
#[derive(Debug, Clone)]
pub struct RdmaWiring {
    /// The cluster switch this GPU hangs off.
    pub switch: ComponentId,
    /// Node id of that switch.
    pub switch_node: NodeId,
    /// This GPU's port index at the switch (stamped as `link` on
    /// everything sent to it).
    pub switch_port: u16,
    /// Credits granted by the switch's input buffer.
    pub switch_credits: u32,
    /// The GPU's local L2 (arriving remote requests are served there).
    pub l2: ComponentId,
    /// The GPU's translation unit (PT read responses go back here).
    pub gmmu: ComponentId,
    /// The GPU's CUs by local index (data responses go back here).
    pub cus: Vec<ComponentId>,
}

/// RDMA statistics.
#[derive(Debug, Clone, Default)]
pub struct RdmaStats {
    /// Packets sent, by Table 1 category.
    pub packets_out: [u64; 6],
    /// Packets received, by Table 1 category.
    pub packets_in: [u64; 6],
    /// Remote requests served against the local L2.
    pub requests_served: u64,
    /// Wire bytes of all packets sent (before flit padding).
    pub wire_bytes_out: u64,
}

impl Snap for RdmaStats {
    fn save(&self, w: &mut SnapshotWriter) {
        self.packets_out.save(w);
        self.packets_in.save(w);
        self.requests_served.save(w);
        self.wire_bytes_out.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RdmaStats {
            packets_out: Snap::load(r)?,
            packets_in: Snap::load(r)?,
            requests_served: Snap::load(r)?,
            wire_bytes_out: Snap::load(r)?,
        })
    }
}

impl RdmaStats {
    /// Dumps counters under `prefix`.
    pub fn report(&self, metrics: &mut Metrics, prefix: &str) {
        for (i, kind) in netcrafter_proto::ALL_PACKET_KINDS.iter().enumerate() {
            let label = kind.label().replace(' ', "_");
            metrics.add(&format!("{prefix}.out.{label}"), self.packets_out[i]);
            metrics.add(&format!("{prefix}.in.{label}"), self.packets_in[i]);
        }
        metrics.add(&format!("{prefix}.requests_served"), self.requests_served);
        metrics.add(&format!("{prefix}.wire_bytes_out"), self.wire_bytes_out);
    }
}

/// The RDMA engine component of one GPU.
pub struct Rdma {
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    gpu: GpuId,
    // lint:allow(snapshot-field-parity) construction-time wiring identity
    node: NodeId,
    // lint:allow(snapshot-field-parity) construction-time identity label; never serialized
    name: String,
    // lint:allow(snapshot-field-parity) construction-time wiring; the restore target is built with the same topology
    wiring: RdmaWiring,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    gpus_per_cluster: u16,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    hop_cycles: u32,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    granularity: u32,
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    full_sector_mask: u16,
    // lint:allow(snapshot-field-parity) stateless segmenter; holds only the configured flit size
    seg: Segmenter,
    reasm: Reassembler,
    /// The Trim Engine (stats live here; the decision uses the request's
    /// sector mask, which the requesting L1 set per its fill policy).
    pub trim: TrimEngine,
    egress: EgressPort,
    staging: VecDeque<Flit>,
    next_packet: u64,
    /// Statistics.
    pub stats: RdmaStats,
}

impl Rdma {
    /// Builds the RDMA engine of `gpu` at network node `node`.
    pub fn new(gpu: GpuId, node: NodeId, cfg: &SystemConfig, wiring: RdmaWiring) -> Self {
        let flits_per_cycle = cfg.topology.intra_bytes_per_cycle() / cfg.flit_bytes as f64;
        let egress = EgressPort::new(
            EgressWire {
                peer: wiring.switch,
                self_node: node,
                peer_port: wiring.switch_port,
                wire_latency: 1,
            },
            Box::new(FifoQueue::new()),
            cfg.switch.buffer_entries as usize,
            flits_per_cycle,
            wiring.switch_credits,
        );
        Self {
            gpu,
            node,
            name: format!("{gpu}.rdma"),
            gpus_per_cluster: cfg.topology.gpus_per_cluster,
            hop_cycles: cfg.on_chip_hop_cycles,
            granularity: cfg.trim_granularity,
            full_sector_mask: cfg.full_sector_mask(),
            seg: Segmenter::new(cfg.flit_bytes),
            reasm: Reassembler::new(),
            trim: TrimEngine::new(cfg.netcrafter.trimming, cfg.trim_granularity),
            egress,
            staging: VecDeque::new(),
            next_packet: (gpu.raw() as u64) << 48,
            wiring,
            stats: RdmaStats::default(),
        }
    }

    fn crosses_clusters(&self, other: GpuId) -> bool {
        other.cluster(self.gpus_per_cluster) != self.gpu.cluster(self.gpus_per_cluster)
    }

    fn next_packet_id(&mut self) -> PacketId {
        let id = self.next_packet;
        self.next_packet += 1;
        PacketId(id)
    }

    fn transmit(&mut self, packet: Packet, now: netcrafter_sim::Cycle) {
        self.stats.packets_out[packet.kind.index()] += 1;
        self.stats.wire_bytes_out += packet.wire_bytes() as u64;
        for flit in self.seg.segment(packet) {
            self.staging.push_back(flit);
        }
        self.drain_staging(now);
    }

    fn drain_staging(&mut self, now: netcrafter_sim::Cycle) {
        while !self.staging.is_empty() && self.egress.can_accept() {
            let flit = self.staging.pop_front().expect("front checked non-empty");
            self.egress.push(flit, now);
        }
    }

    /// Outbound request: a CU or GMMU transaction whose owner is remote.
    fn send_request(
        &mut self,
        req: netcrafter_proto::MemReq,
        now: netcrafter_sim::Cycle,
        tracer: &mut Tracer,
    ) {
        debug_assert_ne!(
            req.owner, self.gpu,
            "{}: local request routed to RDMA",
            self.name
        );
        let kind = if req.write {
            PacketKind::WriteReq
        } else if req.class == TrafficClass::Ptw {
            PacketKind::PageTableReq
        } else {
            PacketKind::ReadReq
        };
        // Trim bits: a data read that asks for exactly one sector (the
        // requesting L1 applies the policy) and crosses clusters.
        let trim = (kind == PacketKind::ReadReq
            && self.crosses_clusters(req.owner)
            && req.sectors.count_ones() == 1
            && req.sectors != self.full_sector_mask)
            .then(|| TrimInfo {
                granularity: self.granularity,
                sector: req.sectors.trailing_zeros() as u8,
            });
        let id = self.next_packet_id();
        if let Some(t) = &trim {
            tracer.instant(EventClass::Trim, "trim.request", id.0, t.sector as u64);
        }
        let packet = Packet {
            id,
            kind,
            src: self.node,
            dst: NodeId(req.owner.raw()),
            payload_bytes: if req.write { 64 } else { 0 },
            trim,
            inner: PacketPayload::Req(req),
        };
        self.transmit(packet, now);
    }

    /// Outbound response: the local L2 finished serving a remote request.
    fn send_response(&mut self, rsp: MemRsp, now: netcrafter_sim::Cycle, tracer: &mut Tracer) {
        debug_assert_ne!(rsp.requester, self.gpu);
        let crosses = self.crosses_clusters(rsp.requester);
        let (kind, payload) = if rsp.write {
            (PacketKind::WriteRsp, 0)
        } else if rsp.class == TrafficClass::Ptw {
            // Page-table responses carry the PA in the header (§4.1).
            (PacketKind::PageTableRsp, 0)
        } else {
            // The response carries exactly the sectors the requester's
            // fill policy asked for; a sub-line cross-cluster payload is
            // Trimming at work.
            let sectors = rsp.sectors_valid.count_ones();
            let payload = (sectors * self.granularity).min(64);
            self.trim.record_response(payload, crosses);
            (PacketKind::ReadRsp, payload)
        };
        let id = self.next_packet_id();
        if kind == PacketKind::ReadRsp && crosses && payload < 64 {
            tracer.instant(EventClass::Trim, "trim.response", id.0, payload as u64);
        }
        let packet = Packet {
            id,
            kind,
            src: self.node,
            dst: NodeId(rsp.requester.raw()),
            payload_bytes: payload,
            trim: None,
            inner: PacketPayload::Rsp(rsp),
        };
        self.transmit(packet, now);
    }

    /// Inbound packet, fully reassembled.
    fn deliver(&mut self, packet: Packet, ctx: &mut Ctx<'_>) {
        self.stats.packets_in[packet.kind.index()] += 1;
        match packet.inner {
            PacketPayload::Req(req) => {
                debug_assert_eq!(req.owner, self.gpu, "{}: misrouted request", self.name);
                self.stats.requests_served += 1;
                ctx.send(self.wiring.l2, Message::MemReq(req), self.hop_cycles as u64);
            }
            PacketPayload::Rsp(rsp) => {
                debug_assert_eq!(rsp.requester, self.gpu, "{}: misrouted response", self.name);
                let target = match rsp.origin {
                    netcrafter_proto::Origin::Cu(i) => self.wiring.cus[i as usize],
                    netcrafter_proto::Origin::Gmmu => self.wiring.gmmu,
                    other => panic!("{}: response to {other:?}", self.name),
                };
                ctx.send(target, Message::MemRsp(rsp), self.hop_cycles as u64);
            }
        }
    }
}

impl Component for Rdma {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.cycle();
        // Replay skipped cycles on the egress rate limiter before any
        // credit message can change the balance.
        self.egress.catch_up(now);
        while let Some(msg) = ctx.recv() {
            match msg {
                Message::MemReq(req) => self.send_request(req, now, ctx.tracer()),
                Message::MemRsp(rsp) => self.send_response(rsp, now, ctx.tracer()),
                Message::Flit { flit, from, .. } => {
                    debug_assert_eq!(from, self.wiring.switch_node);
                    ctx.send(
                        self.wiring.switch,
                        Message::Credit {
                            from: self.node,
                            count: 1,
                            link: self.wiring.switch_port,
                        },
                        1,
                    );
                    for packet in self.reasm.accept(flit) {
                        self.deliver(packet, ctx);
                    }
                }
                Message::Credit { count, .. } => self.egress.on_credit(count),
                other => panic!("{}: unexpected {}", self.name, other.label()),
            }
        }
        self.drain_staging(now);
        self.egress.tick(ctx);
    }

    /// Burst dispatch: the mailbox drains inside one `tick`, then one
    /// fused status check replaces the separate `busy` + `next_wake`
    /// virtual calls — the staging test answers both at once.
    fn tick_burst(&mut self, ctx: &mut Ctx<'_>) -> BurstOutcome {
        self.tick(ctx);
        if !self.staging.is_empty() {
            // Staged flits drain into the egress buffer as space frees.
            return BurstOutcome {
                busy: true,
                wake: Wake::EveryCycle,
            };
        }
        BurstOutcome {
            busy: self.egress.busy(),
            wake: self.egress.next_wake(ctx.cycle()),
        }
    }

    fn busy(&self) -> bool {
        !self.staging.is_empty() || self.egress.busy()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_wake(&self, now: Cycle) -> Wake {
        if !self.staging.is_empty() {
            // Staged flits drain into the egress buffer as space frees.
            return Wake::EveryCycle;
        }
        self.egress.next_wake(now)
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.reasm.save(w);
        self.trim.stats.save(w);
        self.egress.save_state(w);
        self.staging.save(w);
        self.next_packet.save(w);
        self.stats.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.reasm = Snap::load(r)?;
        self.trim.stats = Snap::load(r)?;
        self.egress.load_state(r)?;
        self.staging = Snap::load(r)?;
        self.next_packet = Snap::load(r)?;
        self.stats = Snap::load(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::{AccessId, LineAddr, LineMask, MemReq, Origin};
    use netcrafter_sim::EngineBuilder;
    use std::sync::Arc;
    use std::sync::Mutex;

    /// Collects flits (pretending to be the switch) and other messages.
    struct Collector {
        flits: Arc<Mutex<Vec<Flit>>>,
        msgs: Arc<Mutex<Vec<Message>>>,
        node: NodeId,
        credit_back: Option<ComponentId>,
    }
    impl Component for Collector {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                match msg {
                    Message::Flit { flit, .. } => {
                        self.flits.lock().unwrap().push(flit);
                        if let Some(peer) = self.credit_back {
                            ctx.send(
                                peer,
                                Message::Credit {
                                    from: self.node,
                                    count: 1,
                                    link: 0,
                                },
                                1,
                            );
                        }
                    }
                    other => self.msgs.lock().unwrap().push(other),
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "collector"
        }
    }

    struct H {
        engine: netcrafter_sim::Engine,
        rdma: ComponentId,
        flits: Arc<Mutex<Vec<Flit>>>,
        msgs: Arc<Mutex<Vec<Message>>>,
    }

    fn harness(trimming: bool) -> H {
        let mut cfg = SystemConfig::small(1);
        if trimming {
            cfg = cfg.with_netcrafter();
        }
        let mut b = EngineBuilder::new();
        let sw = b.reserve();
        let l2 = b.reserve();
        let gmmu = b.reserve();
        let cu = b.reserve();
        let rdma = b.reserve();
        let flits = Arc::new(Mutex::new(Vec::new()));
        let msgs = Arc::new(Mutex::new(Vec::new()));
        for id in [l2, gmmu, cu] {
            b.install(
                id,
                Box::new(Collector {
                    flits: Arc::clone(&flits),
                    msgs: Arc::clone(&msgs),
                    node: NodeId(4),
                    credit_back: None,
                }),
            );
        }
        b.install(
            sw,
            Box::new(Collector {
                flits: Arc::clone(&flits),
                msgs: Arc::clone(&msgs),
                node: NodeId(4),
                credit_back: Some(rdma),
            }),
        );
        b.install(
            rdma,
            Box::new(Rdma::new(
                GpuId(0),
                NodeId(0),
                &cfg,
                RdmaWiring {
                    switch: sw,
                    switch_node: NodeId(4),
                    switch_port: 0,
                    switch_credits: 1024,
                    l2,
                    gmmu,
                    cus: vec![cu],
                },
            )),
        );
        H {
            engine: b.build(),
            rdma,
            flits,
            msgs,
        }
    }

    fn remote_read(sectors: u16, owner: u16) -> MemReq {
        MemReq {
            access: AccessId(1),
            line: LineAddr(0x40),
            write: false,
            mask: LineMask::span(0, 8),
            sectors,
            class: TrafficClass::Data,
            requester: GpuId(0),
            owner: GpuId(owner),
            origin: Origin::Cu(0),
        }
    }

    #[test]
    fn read_request_is_one_flit() {
        let mut h = harness(false);
        h.engine
            .inject(h.rdma, Message::MemReq(remote_read(0b1111, 2)), 1);
        h.engine.run_to_quiescence(1000);
        let flits = h.flits.lock().unwrap();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].chunks[0].kind, PacketKind::ReadReq);
        assert_eq!(flits[0].used_bytes(), 12);
    }

    #[test]
    fn trim_bits_set_for_single_sector_cross_cluster_read() {
        let mut h = harness(true);
        h.engine
            .inject(h.rdma, Message::MemReq(remote_read(0b0010, 2)), 1);
        h.engine.run_to_quiescence(1000);
        let flits = h.flits.lock().unwrap();
        let info = flits[0].chunks[0].packet_info.as_ref().unwrap();
        assert_eq!(
            info.trim,
            Some(TrimInfo {
                granularity: 16,
                sector: 1
            })
        );
    }

    #[test]
    fn no_trim_bits_within_cluster() {
        let mut h = harness(true);
        // gpu1 is in the same cluster as gpu0.
        h.engine
            .inject(h.rdma, Message::MemReq(remote_read(0b0010, 1)), 1);
        h.engine.run_to_quiescence(1000);
        let flits = h.flits.lock().unwrap();
        let info = flits[0].chunks[0].packet_info.as_ref().unwrap();
        assert_eq!(info.trim, None);
    }

    #[test]
    fn full_read_response_is_five_flits() {
        let mut h = harness(false);
        let rsp = MemRsp {
            access: AccessId(9),
            line: LineAddr(0x80),
            write: false,
            sectors_valid: 0b1111,
            class: TrafficClass::Data,
            requester: GpuId(3),
            owner: GpuId(0),
            origin: Origin::Cu(2),
        };
        h.engine.inject(h.rdma, Message::MemRsp(rsp), 1);
        h.engine.run_to_quiescence(1000);
        assert_eq!(h.flits.lock().unwrap().len(), 5);
        assert_eq!(
            h.flits.lock().unwrap()[0].chunks[0].kind,
            PacketKind::ReadRsp
        );
    }

    #[test]
    fn trimmed_response_is_two_flits() {
        let mut h = harness(true);
        let rsp = MemRsp {
            access: AccessId(9),
            line: LineAddr(0x80),
            write: false,
            sectors_valid: 0b0100,
            class: TrafficClass::Data,
            requester: GpuId(3),
            owner: GpuId(0),
            origin: Origin::Cu(2),
        };
        h.engine.inject(h.rdma, Message::MemRsp(rsp), 1);
        h.engine.run_to_quiescence(1000);
        assert_eq!(h.flits.lock().unwrap().len(), 2, "trimmed 20 B response");
    }

    #[test]
    fn pt_response_is_header_only() {
        let mut h = harness(false);
        let rsp = MemRsp {
            access: AccessId(9),
            line: LineAddr(0x80),
            write: false,
            sectors_valid: u16::MAX,
            class: TrafficClass::Ptw,
            requester: GpuId(2),
            owner: GpuId(0),
            origin: Origin::Gmmu,
        };
        h.engine.inject(h.rdma, Message::MemRsp(rsp), 1);
        h.engine.run_to_quiescence(1000);
        let flits = h.flits.lock().unwrap();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].chunks[0].kind, PacketKind::PageTableRsp);
        assert_eq!(flits[0].used_bytes(), 12);
    }

    #[test]
    fn inbound_request_forwards_to_l2() {
        let mut h = harness(false);
        // Build the flits of a remote GPU's read request to us (owner 0).
        let seg = Segmenter::new(16);
        let req = MemReq {
            owner: GpuId(0),
            requester: GpuId(2),
            ..remote_read(0b1111, 0)
        };
        let packet = Packet {
            id: PacketId(7),
            kind: PacketKind::ReadReq,
            src: NodeId(2),
            dst: NodeId(0),
            payload_bytes: 0,
            trim: None,
            inner: PacketPayload::Req(req),
        };
        for flit in seg.segment(packet) {
            h.engine.inject(
                h.rdma,
                Message::Flit {
                    flit,
                    from: NodeId(4),
                    link: 0,
                },
                1,
            );
        }
        h.engine.run_to_quiescence(1000);
        let msgs = h.msgs.lock().unwrap();
        assert!(msgs
            .iter()
            .any(|m| matches!(m, Message::MemReq(r) if r.requester == GpuId(2))));
    }

    #[test]
    fn inbound_response_routes_to_origin_cu() {
        let mut h = harness(false);
        let seg = Segmenter::new(16);
        let rsp = MemRsp {
            access: AccessId(9),
            line: LineAddr(0x80),
            write: false,
            sectors_valid: 0b1111,
            class: TrafficClass::Data,
            requester: GpuId(0),
            owner: GpuId(2),
            origin: Origin::Cu(0),
        };
        let packet = Packet {
            id: PacketId(8),
            kind: PacketKind::ReadRsp,
            src: NodeId(2),
            dst: NodeId(0),
            payload_bytes: 64,
            trim: None,
            inner: PacketPayload::Rsp(rsp),
        };
        for flit in seg.segment(packet) {
            h.engine.inject(
                h.rdma,
                Message::Flit {
                    flit,
                    from: NodeId(4),
                    link: 0,
                },
                1,
            );
        }
        h.engine.run_to_quiescence(1000);
        let msgs = h.msgs.lock().unwrap();
        assert!(msgs
            .iter()
            .any(|m| matches!(m, Message::MemRsp(r) if !r.write)));
    }
}
