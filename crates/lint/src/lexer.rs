//! A minimal Rust lexer: just enough to walk a token stream with line
//! numbers, skip string/char literals and comments, and harvest
//! `lint:allow` annotations from comments.
//!
//! This is deliberately *not* a full Rust grammar (the workspace stays
//! dependency-free, so no `syn`): the rules in [`crate::rules`] only
//! need identifiers, punctuation and brace structure. The lexer must
//! however get the *boundaries* right — a `HashMap` inside a string
//! literal or a doc-comment example must not fire a rule — so string
//! escapes, raw strings, nested block comments, char literals and
//! lifetimes are all handled.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (multi-char operators arrive as
    /// consecutive tokens: `::` is `Punct(':') Punct(':')`).
    Punct(char),
    /// A literal (string, char, number); the payload is dropped.
    Literal,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A `// lint:allow(<rule>) reason` annotation harvested from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the closing parenthesis (trimmed).
    pub reason: String,
    /// 1-based line the annotation appears on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<SpannedTok>,
    /// Every `lint:allow` annotation found in comments.
    pub allows: Vec<Allow>,
    /// Lines that contain only whitespace and/or comments (1-based).
    /// Used to let an annotation cover the next code line even when
    /// separated by further comment lines.
    pub comment_only_lines: Vec<u32>,
}

/// Lexes `src` into tokens, annotations and comment-line info.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Lines on which at least one token starts (to derive comment-only
    // lines at the end).
    let mut code_lines: Vec<u32> = Vec::new();

    macro_rules! bump_lines {
        ($text:expr) => {
            line += $text.iter().filter(|&&c| c == b'\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments): scan for annotations.
                let end = b[i..]
                    .iter()
                    .position(|&c| c == b'\n')
                    .map_or(b.len(), |p| i + p);
                harvest_allows(&src[i..end], line, &mut out.allows);
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, possibly nested.
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                harvest_allows(&src[start..i], line, &mut out.allows);
                bump_lines!(&b[start..i]);
            }
            b'"' => {
                let start = i;
                i = skip_string(b, i + 1);
                bump_lines!(&b[start..i]);
                code_lines.push(line);
                out.tokens.push(SpannedTok {
                    tok: Tok::Literal,
                    line,
                });
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let start = i;
                i = skip_raw_or_byte_string(b, i);
                bump_lines!(&b[start..i]);
                code_lines.push(line);
                out.tokens.push(SpannedTok {
                    tok: Tok::Literal,
                    line,
                });
            }
            b'\'' => {
                // Lifetime or char literal.
                code_lines.push(line);
                if is_lifetime(b, i) {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens.push(SpannedTok {
                        tok: Tok::Lifetime,
                        line,
                    });
                } else {
                    let start = i;
                    i = skip_char_literal(b, i);
                    bump_lines!(&b[start..i]);
                    out.tokens.push(SpannedTok {
                        tok: Tok::Literal,
                        line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                code_lines.push(line);
                out.tokens.push(SpannedTok {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                // Numbers (incl. 0x..., suffixes). `1.5` lexes as
                // Literal '.' Literal, which is fine for our rules.
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                code_lines.push(line);
                out.tokens.push(SpannedTok {
                    tok: Tok::Literal,
                    line,
                });
            }
            c => {
                code_lines.push(line);
                out.tokens.push(SpannedTok {
                    tok: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }

    // Comment-only lines: every line up to the last seen that has no
    // token starting on it. (Blank lines count too — harmless, since
    // they cannot carry an annotation.)
    code_lines.dedup();
    let mut code = code_lines.into_iter().peekable();
    for l in 1..=line {
        while code.peek().is_some_and(|&cl| cl < l) {
            code.next();
        }
        if code.peek() != Some(&l) {
            out.comment_only_lines.push(l);
        }
    }
    out
}

/// True if position `i` starts a raw string (`r"`, `r#`), byte string
/// (`b"`), or raw byte string (`br"`, `br#`).
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match b.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(b.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a (raw/byte) string or byte-char literal starting at `i`;
/// returns the index just past it.
fn skip_raw_or_byte_string(b: &[u8], mut i: usize) -> usize {
    if b[i] == b'b' {
        i += 1;
        if i < b.len() && b[i] == b'\'' {
            return skip_char_literal(b, i);
        }
    }
    if i < b.len() && b[i] == b'r' {
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        // Possibly preceded by `r`: plain cooked string (b"...").
        return skip_string(b, i + 1);
    }
    // Raw string: count hashes, find closing `"###`.
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
        'scan: while i < b.len() {
            if b[i] == b'"' {
                let mut j = i + 1;
                let mut h = 0;
                while j < b.len() && b[j] == b'#' && h < hashes {
                    j += 1;
                    h += 1;
                }
                if h == hashes {
                    return j;
                }
                i += 1;
                continue 'scan;
            }
            i += 1;
        }
    }
    b.len()
}

/// Skips a cooked string body (opening quote already consumed).
fn skip_string(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a char literal starting at the opening `'`.
fn skip_char_literal(b: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    if i < b.len() && b[i] == b'\\' {
        i += 2;
        // Escapes like \u{1F600} or \x7f: scan to the closing quote.
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(b.len());
    }
    // One (possibly multi-byte UTF-8) character, then the closing quote.
    i += 1;
    while i < b.len() && b[i] != b'\'' {
        i += 1;
    }
    (i + 1).min(b.len())
}

/// Distinguishes a lifetime (`'a`, `'static`) from a char literal
/// (`'a'`, `'\n'`, `'}'`) at position `i` of a `'`.
fn is_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&next) = b.get(i + 1) else {
        return false;
    };
    if next == b'\\' || !(next == b'_' || next.is_ascii_alphabetic()) {
        return false;
    }
    // `'a'` is a char literal; `'a,` / `'a>` / `'a ` are lifetimes.
    let mut j = i + 1;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

/// Extracts every `lint:allow(<rule>) reason` from one comment's text.
/// Multiple annotations in one comment are all collected; the reason of
/// each runs to the next annotation or the end of the comment.
fn harvest_allows(comment: &str, line: u32, out: &mut Vec<Allow>) {
    const NEEDLE: &str = "lint:allow(";
    let mut rest = comment;
    let mut consumed_lines = 0u32;
    while let Some(pos) = rest.find(NEEDLE) {
        consumed_lines += rest[..pos].matches('\n').count() as u32;
        let after = &rest[pos + NEEDLE.len()..];
        let Some(close) = after.find(')') else {
            return;
        };
        let rule = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        let reason_end = tail.find(NEEDLE).unwrap_or(tail.len());
        let reason = tail[..reason_end]
            .lines()
            .next()
            .unwrap_or("")
            .trim()
            .trim_end_matches("*/")
            .trim()
            .to_string();
        out.push(Allow {
            rule,
            reason,
            line: line + consumed_lines,
        });
        rest = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn skips_strings_comments_and_chars() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            let a = "HashMap in a string";
            let b = r#"HashMap in a raw "string""#;
            let c = 'H';
            let d = '\'';
            let e: Vec<&'static str> = vec![];
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "ids: {ids:?}");
        assert!(ids.contains(&"real_ident".to_string()));
        let toks = lex(src).tokens;
        assert!(
            toks.iter().any(|t| t.tok == Tok::Lifetime),
            "'static lexes as a lifetime, not a char literal"
        );
    }

    #[test]
    fn char_literal_brace_does_not_break_structure() {
        let src = "fn f() { let x = '}'; g(); }";
        let toks = lex(src).tokens;
        let braces: Vec<char> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(c) if c == '{' || c == '}' => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(braces, ['{', '}']);
    }

    #[test]
    fn tracks_line_numbers() {
        let src = "a\nb\n\nc";
        let toks = lex(src).tokens;
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn harvests_allow_annotations() {
        let src = "\n// lint:allow(no-wall-clock) bench timing only\nlet t = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!(a.rule, "no-wall-clock");
        assert_eq!(a.reason, "bench timing only");
        assert_eq!(a.line, 2);
        assert!(lexed.comment_only_lines.contains(&2));
        assert!(!lexed.comment_only_lines.contains(&3));
    }

    #[test]
    fn harvests_multiple_allows_in_one_comment() {
        let src = "// lint:allow(a) one lint:allow(b) two\nx();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "a");
        assert_eq!(lexed.allows[0].reason, "one");
        assert_eq!(lexed.allows[1].rule, "b");
        assert_eq!(lexed.allows[1].reason, "two");
    }

    #[test]
    fn numeric_literals_with_suffixes() {
        let ids = idents("let x = 0xFFu64 + 1_000 - 2.5e3;");
        assert_eq!(ids, ["let", "x"]);
    }
}
