//! Same-crate call graph over the item index, and the interprocedural
//! analyses built on it: hot-path allocation reachability and
//! caller-aware tracer threading.
//!
//! Resolution is name-based (the lexer has no types), so it is
//! deliberately conservative in the direction that cannot produce
//! false negatives: a call site of name `f` edges to *every* same-crate
//! function named `f`. Over-approximation can only add findings, and
//! each extra finding is waivable at the call site; it can never hide
//! an allocation that is really reachable. Cross-crate calls are out of
//! scope — each crate's public surface is audited by its own rules.

use crate::index::{ident_at, punct_at, FileIndex, FnDef};
use crate::lexer::SpannedTok;

/// Keywords and builtins that look like call syntax but are not calls
/// to user functions (`if x (…)` never parses this way in Rust, but
/// `matches!`-free token soup still produces `Some(`, `Ok(` etc.).
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "return", "Some", "None", "Ok", "Err", "self", "Self", "fn",
    "in", "as", "let", "else", "move", "loop", "box", "await",
];

/// One function node in a crate's call graph.
#[derive(Debug, Clone, Copy)]
pub struct FnNode {
    /// Index into the driver's `FileIndex` slice.
    pub file: usize,
    /// `Some(impl index)` for methods, `None` for free functions.
    pub impl_ix: Option<usize>,
    /// Index into the impl's `fns` (or the file's `free_fns`).
    pub fn_ix: usize,
}

/// A call edge, anchored at its call site.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// 1-based line of the call site (in the caller's file).
    pub line: u32,
}

/// The call graph of one crate.
#[derive(Debug)]
pub struct CrateGraph {
    /// Function nodes, in file-then-definition order.
    pub nodes: Vec<FnNode>,
    /// Outgoing edges per node.
    pub edges: Vec<Vec<Edge>>,
}

impl CrateGraph {
    /// Resolves a node back to its `FnDef`.
    pub fn def<'a>(&self, files: &'a [FileIndex], n: usize) -> &'a FnDef {
        let node = self.nodes[n];
        match node.impl_ix {
            Some(ix) => &files[node.file].impls[ix].fns[node.fn_ix],
            None => &files[node.file].free_fns[node.fn_ix],
        }
    }
}

/// How a call site names its callee.
#[derive(Debug)]
enum CalleeRef {
    /// `recv.name(…)` — resolves by method name alone.
    Method(String),
    /// `Type::name(…)` — resolves by (type, name); `Self::` uses the
    /// enclosing impl's type.
    Qualified(String, String),
    /// `name(…)` — resolves to free functions.
    Bare(String),
}

/// Extracts call sites from a body token range. `self_ty` is the
/// enclosing impl's type for `Self::` resolution.
fn call_sites(
    tokens: &[SpannedTok],
    body: (usize, usize),
    self_ty: Option<&str>,
) -> Vec<(CalleeRef, u32)> {
    let (open, close) = body;
    let mut out = Vec::new();
    for i in open..close {
        let Some(name) = ident_at(tokens, i) else {
            continue;
        };
        if !punct_at(tokens, i + 1, '(') || NON_CALL_IDENTS.contains(&name) {
            continue;
        }
        // `fn name(` is a definition (closures have no name; nested fns
        // do) — not a call.
        if i > 0 && ident_at(tokens, i - 1) == Some("fn") {
            continue;
        }
        let line = tokens[i].line;
        let callee = if i > 0 && punct_at(tokens, i - 1, '.') {
            CalleeRef::Method(name.to_string())
        } else if i >= 3 && punct_at(tokens, i - 1, ':') && punct_at(tokens, i - 2, ':') {
            match ident_at(tokens, i - 3) {
                Some("Self") => match self_ty {
                    Some(ty) => CalleeRef::Qualified(ty.to_string(), name.to_string()),
                    None => CalleeRef::Bare(name.to_string()),
                },
                Some(ty) if ty.chars().next().is_some_and(char::is_uppercase) => {
                    CalleeRef::Qualified(ty.to_string(), name.to_string())
                }
                // `module::func(…)` — the module may be same-crate;
                // resolve by bare name so helpers in sibling modules
                // stay visible.
                Some(_) => CalleeRef::Bare(name.to_string()),
                None => CalleeRef::Bare(name.to_string()),
            }
        } else {
            CalleeRef::Bare(name.to_string())
        };
        out.push((callee, line));
    }
    out
}

/// Builds the call graph for the files of one crate (`files` must all
/// share a crate; `file_ixs` are their indices in the driver's slice).
pub fn build_crate_graph(files: &[FileIndex], file_ixs: &[usize]) -> CrateGraph {
    let mut nodes = Vec::new();
    for &f in file_ixs {
        for (impl_ix, im) in files[f].impls.iter().enumerate() {
            for fn_ix in 0..im.fns.len() {
                nodes.push(FnNode {
                    file: f,
                    impl_ix: Some(impl_ix),
                    fn_ix,
                });
            }
        }
        for fn_ix in 0..files[f].free_fns.len() {
            nodes.push(FnNode {
                file: f,
                impl_ix: None,
                fn_ix,
            });
        }
    }

    // Name maps for resolution.
    let mut methods_by_name: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    let mut methods_by_ty: std::collections::BTreeMap<(&str, &str), Vec<usize>> =
        Default::default();
    let mut free_by_name: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    for (n, node) in nodes.iter().enumerate() {
        let file = &files[node.file];
        match node.impl_ix {
            Some(ix) => {
                let im = &file.impls[ix];
                let name = im.fns[node.fn_ix].name.as_str();
                methods_by_name.entry(name).or_default().push(n);
                methods_by_ty
                    .entry((im.self_ty.as_str(), name))
                    .or_default()
                    .push(n);
            }
            None => {
                let name = file.free_fns[node.fn_ix].name.as_str();
                free_by_name.entry(name).or_default().push(n);
            }
        }
    }

    let mut edges = vec![Vec::new(); nodes.len()];
    for (n, node) in nodes.iter().enumerate() {
        let file = &files[node.file];
        let (self_ty, def) = match node.impl_ix {
            Some(ix) => (
                Some(file.impls[ix].self_ty.as_str()),
                &file.impls[ix].fns[node.fn_ix],
            ),
            None => (None, &file.free_fns[node.fn_ix]),
        };
        let Some(body) = def.body else {
            continue;
        };
        for (callee, line) in call_sites(&file.tokens, body, self_ty) {
            let targets: &[usize] = match &callee {
                CalleeRef::Method(name) => methods_by_name.get(name.as_str()).map_or(&[], |v| v),
                CalleeRef::Qualified(ty, name) => methods_by_ty
                    .get(&(ty.as_str(), name.as_str()))
                    .map_or(&[], |v| v),
                CalleeRef::Bare(name) => free_by_name.get(name.as_str()).map_or(&[], |v| v),
            };
            for &to in targets {
                if to != n {
                    edges[n].push(Edge { to, line });
                }
            }
        }
    }
    CrateGraph { nodes, edges }
}

/// The allocation patterns banned on the hot path, found in a body
/// range: `Box::new`, `Vec::new`, `.to_vec()`. Returns `(line, what)`.
pub fn alloc_sites(tokens: &[SpannedTok], body: (usize, usize)) -> Vec<(u32, &'static str)> {
    let (open, close) = body;
    let mut out = Vec::new();
    let mut ix = open;
    while ix < close {
        if let Some(ty @ ("Box" | "Vec")) = ident_at(tokens, ix) {
            if punct_at(tokens, ix + 1, ':')
                && punct_at(tokens, ix + 2, ':')
                && ident_at(tokens, ix + 3) == Some("new")
            {
                out.push((
                    tokens[ix].line,
                    if ty == "Box" { "Box::new" } else { "Vec::new" },
                ));
                ix += 4;
                continue;
            }
        }
        if punct_at(tokens, ix, '.') && ident_at(tokens, ix + 1) == Some("to_vec") {
            out.push((tokens[ix + 1].line, ".to_vec()"));
            ix += 2;
            continue;
        }
        ix += 1;
    }
    out
}

/// Transitive "can this function's call tree allocate" bit per node,
/// computed as a reverse-propagation fixpoint (a node that allocates
/// marks every caller, transitively). Waivers are ignored here — this
/// answers reachability, the rule layer decides reportability.
pub fn can_reach_alloc(files: &[FileIndex], g: &CrateGraph) -> Vec<bool> {
    let mut reach: Vec<bool> = g
        .nodes
        .iter()
        .enumerate()
        .map(|(n, node)| {
            let def = g.def(files, n);
            def.body
                .is_some_and(|b| !alloc_sites(&files[node.file].tokens, b).is_empty())
        })
        .collect();
    // Reverse edges once.
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
    for (n, es) in g.edges.iter().enumerate() {
        for e in es {
            callers[e.to].push(n);
        }
    }
    let mut work: Vec<usize> = (0..g.nodes.len()).filter(|&n| reach[n]).collect();
    while let Some(n) = work.pop() {
        for &c in &callers[n] {
            if !reach[c] {
                reach[c] = true;
                work.push(c);
            }
        }
    }
    reach
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;

    fn graph(src: &str) -> (Vec<FileIndex>, CrateGraph) {
        let files = vec![index_file("t.rs", src, Some("net"))];
        let g = build_crate_graph(&files, &[0]);
        (files, g)
    }

    fn name(files: &[FileIndex], g: &CrateGraph, n: usize) -> String {
        g.def(files, n).name.clone()
    }

    #[test]
    fn resolves_bare_method_and_qualified_calls() {
        let (files, g) = graph(
            "struct S;\nimpl S { fn a(&self) { self.b(); S::c(); helper(); } fn b(&self) {} fn \
             c() {} }\nfn helper() {}",
        );
        let a = (0..g.nodes.len())
            .find(|&n| name(&files, &g, n) == "a")
            .unwrap();
        let callees: Vec<String> = g.edges[a].iter().map(|e| name(&files, &g, e.to)).collect();
        assert_eq!(callees, ["b", "c", "helper"]);
    }

    #[test]
    fn self_calls_use_enclosing_type() {
        let (files, g) = graph("struct S;\nimpl S { fn a(&self) { Self::c(); } fn c() {} }");
        let a = (0..g.nodes.len())
            .find(|&n| name(&files, &g, n) == "a")
            .unwrap();
        assert_eq!(g.edges[a].len(), 1);
        assert_eq!(name(&files, &g, g.edges[a][0].to), "c");
    }

    #[test]
    fn alloc_reachability_propagates_to_callers() {
        let (files, g) = graph(
            "struct S;\nimpl S { fn tick(&mut self) { self.mid(); } fn mid(&mut self) { \
             self.deep(); } fn deep(&mut self) { let v = Vec::new(); v.len(); } fn clean(&self) \
             {} }",
        );
        let reach = can_reach_alloc(&files, &g);
        let by = |nm: &str| {
            (0..g.nodes.len())
                .find(|&n| name(&files, &g, n) == nm)
                .unwrap()
        };
        assert!(reach[by("tick")]);
        assert!(reach[by("mid")]);
        assert!(reach[by("deep")]);
        assert!(!reach[by("clean")]);
    }

    #[test]
    fn definitions_are_not_call_sites() {
        let (files, g) = graph("fn outer() { helper(); fn inner() {} }\nfn helper() {}");
        let outer = (0..g.nodes.len())
            .find(|&n| name(&files, &g, n) == "outer")
            .unwrap();
        // Exactly one edge — the call to helper; the nested `fn inner`
        // definition is not a call site.
        assert_eq!(g.edges[outer].len(), 1);
        assert_eq!(name(&files, &g, g.edges[outer][0].to), "helper");
    }
}
