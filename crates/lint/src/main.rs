//! CLI for the in-tree determinism & invariant lint.
//!
//! ```text
//! cargo run -p netcrafter-lint                      # lint the workspace
//! cargo run -p netcrafter-lint -- --jobs 4          # parallel indexing
//! cargo run -p netcrafter-lint -- --report out.json # + JSON report
//! cargo run -p netcrafter-lint -- --baseline ci/lint-field-inventory.json
//! cargo run -p netcrafter-lint -- --emit-inventory ci/lint-field-inventory.json
//! cargo run -p netcrafter-lint -- --as-crate net f.rs  # lint one file
//! cargo run -p netcrafter-lint -- --list-rules
//! ```
//!
//! `--baseline` activates the `snapshot-version-bump` rule against the
//! given field-inventory JSON; `--emit-inventory` writes the current
//! inventory there (the regeneration step after an intentional change).
//!
//! Exit codes: 0 clean, 1 unwaived violations, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use netcrafter_lint::{
    analyze_units, analyze_workspace, crate_of, render_json, render_text, summarize, Analysis,
    Inventory, SourceUnit, RULES,
};

struct Args {
    root: PathBuf,
    report: Option<PathBuf>,
    as_crate: Option<String>,
    paths: Vec<PathBuf>,
    list_rules: bool,
    jobs: usize,
    baseline: Option<PathBuf>,
    emit_inventory: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        report: None,
        as_crate: None,
        paths: Vec::new(),
        list_rules: false,
        jobs: 1,
        baseline: None,
        emit_inventory: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--report" => args.report = Some(it.next().ok_or("--report needs a value")?.into()),
            "--as-crate" => {
                args.as_crate = Some(it.next().ok_or("--as-crate needs a value")?);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v
                    .parse::<usize>()
                    .map_err(|_| format!("--jobs needs a positive integer, got {v}"))?
                    .max(1);
            }
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a value")?.into());
            }
            "--emit-inventory" => {
                args.emit_inventory =
                    Some(it.next().ok_or("--emit-inventory needs a value")?.into());
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: netcrafter-lint [--root DIR] [--report FILE] \
                     [--as-crate NAME] [--jobs N] [--baseline FILE] \
                     [--emit-inventory FILE] [--list-rules] [FILES...]"
                    .to_string())
            }
            p if !p.starts_with('-') => args.paths.push(p.into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn run(args: &Args, baseline: Option<(&str, &Inventory)>) -> std::io::Result<Analysis> {
    if args.paths.is_empty() {
        return analyze_workspace(&args.root, args.jobs, baseline);
    }
    let mut units = Vec::new();
    for path in &args.paths {
        let src = std::fs::read_to_string(path)
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        let rel = path.strip_prefix(&args.root).unwrap_or(path);
        let crate_name = match &args.as_crate {
            Some(name) => Some(name.clone()),
            None => crate_of(rel),
        };
        units.push(SourceUnit {
            path: rel.to_string_lossy().into_owned(),
            src,
            crate_name,
        });
    }
    Ok(analyze_units(&units, baseline))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in RULES {
            let scope = match rule.crates {
                Some(crates) => crates.join(", "),
                None => "all crates".to_string(),
            };
            println!("{}\n  scope: {}\n  {}\n", rule.name, scope, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let baseline = match &args.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("netcrafter-lint: reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match Inventory::parse_json(&text) {
                Ok(inv) => Some((path.to_string_lossy().into_owned(), inv)),
                Err(e) => {
                    eprintln!("netcrafter-lint: parsing {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let analysis = match run(&args, baseline.as_ref().map(|(p, inv)| (p.as_str(), inv))) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("netcrafter-lint: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", render_text(&analysis.findings));
    if let Some(report) = &args.report {
        if let Err(e) = std::fs::write(report, render_json(&analysis.findings)) {
            eprintln!("netcrafter-lint: writing {}: {e}", report.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = &args.emit_inventory {
        if let Err(e) = std::fs::write(path, analysis.inventory.to_json()) {
            eprintln!("netcrafter-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "netcrafter-lint: wrote field inventory ({} structs) to {}",
            analysis.inventory.structs.len(),
            path.display()
        );
    }
    if summarize(&analysis.findings).violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
