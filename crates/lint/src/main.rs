//! CLI for the in-tree determinism & invariant lint.
//!
//! ```text
//! cargo run -p netcrafter-lint                      # lint the workspace
//! cargo run -p netcrafter-lint -- --report out.json # + JSON report
//! cargo run -p netcrafter-lint -- --as-crate net f.rs  # lint one file
//! cargo run -p netcrafter-lint -- --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 unwaived violations, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use netcrafter_lint::{check_path, check_workspace, render_json, render_text, summarize, RULES};

struct Args {
    root: PathBuf,
    report: Option<PathBuf>,
    as_crate: Option<String>,
    paths: Vec<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        report: None,
        as_crate: None,
        paths: Vec::new(),
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--report" => args.report = Some(it.next().ok_or("--report needs a value")?.into()),
            "--as-crate" => {
                args.as_crate = Some(it.next().ok_or("--as-crate needs a value")?);
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: netcrafter-lint [--root DIR] [--report FILE] \
                     [--as-crate NAME] [--list-rules] [FILES...]"
                    .to_string())
            }
            p if !p.starts_with('-') => args.paths.push(p.into()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in RULES {
            let scope = match rule.crates {
                Some(crates) => crates.join(", "),
                None => "all crates".to_string(),
            };
            println!("{}\n  scope: {}\n  {}\n", rule.name, scope, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let result = if args.paths.is_empty() {
        check_workspace(&args.root)
    } else {
        let mut findings = Vec::new();
        let mut err = None;
        for path in &args.paths {
            match check_path(path, &args.root, args.as_crate.as_deref()) {
                Ok(fs) => findings.extend(fs),
                Err(e) => {
                    err = Some(std::io::Error::new(
                        e.kind(),
                        format!("{}: {e}", path.display()),
                    ));
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(findings),
        }
    };
    let findings = match result {
        Ok(f) => f,
        Err(e) => {
            eprintln!("netcrafter-lint: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", render_text(&findings));
    if let Some(report) = &args.report {
        if let Err(e) = std::fs::write(report, render_json(&findings)) {
            eprintln!("netcrafter-lint: writing {}: {e}", report.display());
            return ExitCode::from(2);
        }
    }
    if summarize(&findings).violations > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
