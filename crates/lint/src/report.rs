//! Human- and machine-readable output for lint findings.
//!
//! The machine-readable report is JSON, written with a local escaper
//! (the workspace is dependency-free; this mirrors the in-tree JSON
//! *parser* in `netcrafter_sim::trace`). CI uploads it to
//! `CI_ARTIFACT_DIR` so a failing lint run can be inspected without
//! re-running locally.

use crate::rules::Finding;

/// Summary counts over a finding set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// All findings, including waived ones.
    pub total: usize,
    /// Findings waived by a justified `lint:allow`.
    pub allowed: usize,
    /// Findings that fail the run.
    pub violations: usize,
}

/// Counts findings.
pub fn summarize(findings: &[Finding]) -> Summary {
    let allowed = findings.iter().filter(|f| f.allowed.is_some()).count();
    Summary {
        total: findings.len(),
        allowed,
        violations: findings.len() - allowed,
    }
}

/// Renders the human-readable report: one line per unwaived finding
/// (`file:line: [rule] message`), then a summary line.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings.iter().filter(|f| f.allowed.is_none()) {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    let s = summarize(findings);
    out.push_str(&format!(
        "netcrafter-lint: {} violation(s), {} waived finding(s), {} total\n",
        s.violations, s.allowed, s.total
    ));
    out
}

/// Renders the machine-readable JSON report (all findings, waived ones
/// included with their justification).
pub fn render_json(findings: &[Finding]) -> String {
    let s = summarize(findings);
    let mut out = String::from("{\n  \"version\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
        out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
        match &f.allowed {
            Some(reason) => out.push_str(&format!("\"allowed\": {}", json_str(reason))),
            None => out.push_str("\"allowed\": null"),
        }
        out.push('}');
    }
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"total\": {}, \"allowed\": {}, \"violations\": {}}}\n}}\n",
        s.total, s.allowed, s.violations
    ));
    out
}

/// JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, allowed: Option<&str>) -> Finding {
        Finding {
            rule,
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "bad \"thing\"".into(),
            allowed: allowed.map(String::from),
        }
    }

    #[test]
    fn summary_counts() {
        let fs = [finding("a", None), finding("b", Some("ok"))];
        let s = summarize(&fs);
        assert_eq!((s.total, s.allowed, s.violations), (2, 1, 1));
    }

    #[test]
    fn text_hides_waived_findings() {
        let fs = [finding("a", None), finding("b", Some("ok"))];
        let text = render_text(&fs);
        assert!(text.contains("[a]"));
        assert!(!text.contains("[b]"));
        assert!(text.contains("1 violation(s), 1 waived"));
    }

    #[test]
    fn json_escapes_and_includes_waived() {
        let fs = [finding("b", Some("it's fine"))];
        let json = render_json(&fs);
        assert!(json.contains("\\\"thing\\\""));
        assert!(json.contains("\"allowed\": \"it's fine\""));
        assert!(json.contains("\"violations\": 0"));
    }
}
