//! The item index: a structural view of one lexed file.
//!
//! The flat token walker that powered the first eight rules cannot
//! answer questions like "is every field of this struct referenced in
//! its `save_state`?" or "does this helper's caller thread a Tracer?".
//! This module extracts just enough structure from the token stream —
//! structs with ordered field lists, `impl` blocks with per-method body
//! ranges, free functions — for the field-sensitive and interprocedural
//! rules to work on, while staying a linear scan over the existing
//! lexer's output (still no `syn`; the workspace is offline).
//!
//! The extraction is deliberately forgiving: anything it cannot parse
//! (exotic generics, macro bodies) is skipped rather than guessed at,
//! so a parse gap degrades to a missed finding, never a false one.

use crate::lexer::{lex, Allow, SpannedTok, Tok};

/// One named field of a struct, in declaration order.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based line of the field declaration.
    pub line: u32,
}

/// A `struct` item.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// True for brace-bodied structs with named fields; unit and tuple
    /// structs have `named == false` and an empty field list.
    pub named: bool,
    /// Named fields in declaration order.
    pub fields: Vec<FieldDef>,
}

/// A function item (free or method) with its token extents.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[open, close]` of the parameter list's parentheses.
    pub sig: (usize, usize),
    /// Token range `[open, close]` of the body braces; `None` for
    /// bodiless declarations (trait methods, extern).
    pub body: Option<(usize, usize)>,
}

/// An `impl` block and the methods defined directly inside it.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// The implementing type's name (last path segment, generics
    /// stripped): `impl Snap for DelayQueue<T>` yields `DelayQueue`.
    pub self_ty: String,
    /// The trait's last path segment for trait impls, `None` for
    /// inherent impls.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Methods defined at the top level of the block.
    pub fns: Vec<FnDef>,
}

/// Everything the semantic rules need to know about one file.
#[derive(Debug)]
pub struct FileIndex {
    /// Path as reported in findings (repo-relative in workspace runs).
    pub path: String,
    /// Workspace crate the file belongs to (`None` activates every
    /// rule — fixtures and ad-hoc files).
    pub crate_name: Option<String>,
    /// Token stream with `#[cfg(test)] mod` bodies removed.
    pub tokens: Vec<SpannedTok>,
    /// Every `lint:allow` annotation in the file.
    pub allows: Vec<Allow>,
    /// Lines containing only whitespace/comments, sorted ascending.
    pub comment_only_lines: Vec<u32>,
    /// Structs in source order.
    pub structs: Vec<StructDef>,
    /// Impl blocks in source order.
    pub impls: Vec<ImplDef>,
    /// Free functions in source order.
    pub free_fns: Vec<FnDef>,
    /// Value of `const SNAPSHOT_VERSION: u32 = N;` if the file declares
    /// it (parsed from raw text; the lexer drops literal payloads).
    pub snapshot_version: Option<u32>,
}

impl FileIndex {
    /// True when the allow-annotation list waives `rule` at `line`
    /// (same line, or stacked on comment-only lines directly above).
    /// Does not mark the annotation used — the driver tracks that.
    pub fn allow_covers(&self, line: u32, rule: &str) -> bool {
        let hit = |l: u32| {
            self.allows
                .iter()
                .any(|a| a.line == l && a.rule == rule && !a.reason.is_empty())
        };
        if hit(line) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 && self.comment_only_lines.binary_search(&l).is_ok() {
            if hit(l) {
                return true;
            }
            l -= 1;
        }
        false
    }
}

/// Lexes and indexes one file.
pub fn index_file(path: &str, src: &str, crate_name: Option<&str>) -> FileIndex {
    let lexed = lex(src);
    let tokens = strip_test_modules(&lexed.tokens);
    let (structs, impls, free_fns) = extract_items(&tokens);
    FileIndex {
        path: path.to_string(),
        crate_name: crate_name.map(str::to_string),
        tokens,
        allows: lexed.allows,
        comment_only_lines: lexed.comment_only_lines,
        structs,
        impls,
        free_fns,
        snapshot_version: parse_snapshot_version(src),
    }
}

/// Reads the `SNAPSHOT_VERSION` constant's value out of raw source
/// text. The declaration is a stable, rustfmt-normalized one-liner in
/// `crates/sim/src/snapshot.rs`, so a string match is reliable here.
fn parse_snapshot_version(src: &str) -> Option<u32> {
    const NEEDLE: &str = "const SNAPSHOT_VERSION: u32 =";
    let pos = src.find(NEEDLE)?;
    let tail = src[pos + NEEDLE.len()..].trim_start();
    let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Removes the token ranges of `#[cfg(test)] mod … { … }` blocks: the
/// rules guard simulation logic, not its test harnesses (which freely
/// use unwrap, wall-clock-free defaults, etc.). Removing a balanced
/// brace region keeps the surrounding structure intact.
pub fn strip_test_modules(tokens: &[SpannedTok]) -> Vec<SpannedTok> {
    let mut drop = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // `#` `[` `cfg` `(` `test` `)` `]` is 7 tokens; then allow
            // further attributes, then expect `mod name {`.
            let mut j = i + 7;
            while j < tokens.len() && tokens[j].tok == Tok::Punct('#') {
                j = skip_attr(tokens, j);
            }
            if matches!(&tokens[j].tok, Tok::Ident(k) if k == "mod") {
                if let Some(open) = tokens[j..]
                    .iter()
                    .position(|t| t.tok == Tok::Punct('{'))
                    .map(|p| j + p)
                {
                    let close = matching_brace(tokens, open);
                    for flag in &mut drop[i..=close.min(tokens.len() - 1)] {
                        *flag = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    tokens
        .iter()
        .zip(&drop)
        .filter(|(_, &d)| !d)
        .map(|(t, _)| t.clone())
        .collect()
}

/// True if `#` at index `i` begins exactly `#[cfg(test)]`.
fn is_cfg_test_attr(tokens: &[SpannedTok], i: usize) -> bool {
    let pat: [&Tok; 7] = [
        &Tok::Punct('#'),
        &Tok::Punct('['),
        &Tok::Ident("cfg".into()),
        &Tok::Punct('('),
        &Tok::Ident("test".into()),
        &Tok::Punct(')'),
        &Tok::Punct(']'),
    ];
    tokens.len() >= i + pat.len() && pat.iter().zip(&tokens[i..]).all(|(p, t)| **p == t.tok)
}

/// Skips one `#[...]` attribute starting at the `#`; returns the index
/// just past its closing `]`.
pub(crate) fn skip_attr(tokens: &[SpannedTok], i: usize) -> usize {
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].tok == Tok::Punct('[') {
        let mut depth = 0i32;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    j
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub(crate) fn matching_brace(tokens: &[SpannedTok], open: usize) -> usize {
    matching_pair(tokens, open, '{', '}')
}

/// Index of the `)` matching the `(` at `open` (or the last token).
pub(crate) fn matching_paren(tokens: &[SpannedTok], open: usize) -> usize {
    matching_pair(tokens, open, '(', ')')
}

fn matching_pair(tokens: &[SpannedTok], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    for (ix, t) in tokens.iter().enumerate().skip(open) {
        match &t.tok {
            Tok::Punct(p) if *p == o => depth += 1,
            Tok::Punct(p) if *p == c => {
                depth -= 1;
                if depth == 0 {
                    return ix;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

pub(crate) fn ident_at(tokens: &[SpannedTok], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

pub(crate) fn punct_at(tokens: &[SpannedTok], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

/// Skips a balanced `<…>` generic group starting at the `<` at `i`;
/// `->` arrows inside (closure/fn-trait returns) do not count as
/// closing angles. Returns the index just past the closing `>`.
fn skip_angles(tokens: &[SpannedTok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < tokens.len() {
        if punct_at(tokens, j, '-') && punct_at(tokens, j + 1, '>') {
            j += 2;
            continue;
        }
        match tokens[j].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// One linear pass over the (test-stripped) token stream, collecting
/// structs, impl blocks and free functions. Enums, unions, traits and
/// `macro_rules!` bodies are skipped whole.
fn extract_items(tokens: &[SpannedTok]) -> (Vec<StructDef>, Vec<ImplDef>, Vec<FnDef>) {
    let mut structs = Vec::new();
    let mut impls = Vec::new();
    let mut free_fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match ident_at(tokens, i) {
            Some("macro_rules") if punct_at(tokens, i + 1, '!') => {
                i = skip_item_block(tokens, i + 2);
            }
            Some("struct") => {
                let (sd, next) = parse_struct(tokens, i);
                if let Some(sd) = sd {
                    structs.push(sd);
                }
                i = next;
            }
            Some("enum" | "union" | "trait") => {
                i = skip_item_block(tokens, i + 1);
            }
            Some("impl") => {
                let (im, next) = parse_impl(tokens, i);
                if let Some(im) = im {
                    impls.push(im);
                }
                i = next;
            }
            Some("fn") => {
                let (f, next) = parse_fn(tokens, i, tokens.len());
                if let Some(f) = f {
                    free_fns.push(f);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    (structs, impls, free_fns)
}

/// Advances past the current item: to just after the first balanced
/// `{…}` block, or just after a top-level `;`, whichever comes first.
fn skip_item_block(tokens: &[SpannedTok], mut j: usize) -> usize {
    while j < tokens.len() {
        if punct_at(tokens, j, '{') {
            return matching_brace(tokens, j) + 1;
        }
        if punct_at(tokens, j, ';') {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// Parses a struct item; `i` points at the `struct` keyword.
fn parse_struct(tokens: &[SpannedTok], i: usize) -> (Option<StructDef>, usize) {
    let line = tokens[i].line;
    let Some(name) = ident_at(tokens, i + 1).map(str::to_string) else {
        return (None, i + 1);
    };
    let mut j = i + 2;
    if punct_at(tokens, j, '<') {
        j = skip_angles(tokens, j);
    }
    // Unit / tuple / where-clause tokens precede the body (or `;`).
    loop {
        if j >= tokens.len() {
            return (None, j);
        }
        if punct_at(tokens, j, ';') {
            // Unit struct.
            return (
                (Some(StructDef {
                    name,
                    line,
                    named: false,
                    fields: Vec::new(),
                })),
                j + 1,
            );
        }
        if punct_at(tokens, j, '(') {
            // Tuple struct: skip fields, then the trailing `;`.
            let mut k = matching_paren(tokens, j) + 1;
            while k < tokens.len() && !punct_at(tokens, k, ';') {
                k += 1;
            }
            return (
                Some(StructDef {
                    name,
                    line,
                    named: false,
                    fields: Vec::new(),
                }),
                k + 1,
            );
        }
        if punct_at(tokens, j, '{') {
            break;
        }
        j += 1; // where-clause token
    }
    let open = j;
    let close = matching_brace(tokens, open);
    let mut fields = Vec::new();
    let mut k = open + 1;
    while k < close {
        while punct_at(tokens, k, '#') {
            k = skip_attr(tokens, k);
        }
        if k >= close {
            break;
        }
        if ident_at(tokens, k) == Some("pub") {
            k += 1;
            if punct_at(tokens, k, '(') {
                k = matching_paren(tokens, k) + 1;
            }
        }
        let Some(fname) = ident_at(tokens, k).map(str::to_string) else {
            k += 1;
            continue;
        };
        // `name :` (single colon) introduces a field; `name ::` is a
        // path inside a type and cannot appear in field-name position.
        if !punct_at(tokens, k + 1, ':') || punct_at(tokens, k + 2, ':') {
            k += 1;
            continue;
        }
        fields.push(FieldDef {
            name: fname,
            line: tokens[k].line,
        });
        // Skip the type up to the next top-level `,`.
        k += 2;
        let mut paren = 0i32;
        let mut angle = 0i32;
        let mut brack = 0i32;
        while k < close {
            if punct_at(tokens, k, '-') && punct_at(tokens, k + 1, '>') {
                k += 2;
                continue;
            }
            match tokens[k].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => paren -= 1,
                Tok::Punct('[') => brack += 1,
                Tok::Punct(']') => brack -= 1,
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct(',') if paren == 0 && angle == 0 && brack == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
    }
    (
        Some(StructDef {
            name,
            line,
            named: true,
            fields,
        }),
        close + 1,
    )
}

/// Collects the last segment of a type/trait path (skipping `&`,
/// lifetimes, `mut`, `dyn` prefixes and per-segment generics); stops
/// before `for`, `where` or anything that is not part of the path.
fn collect_path(tokens: &[SpannedTok], mut j: usize) -> (Option<String>, usize) {
    loop {
        if punct_at(tokens, j, '&') {
            j += 1;
            continue;
        }
        match tokens.get(j).map(|t| &t.tok) {
            Some(Tok::Lifetime) => j += 1,
            Some(Tok::Ident(id)) if id == "mut" || id == "dyn" => j += 1,
            _ => break,
        }
    }
    let mut last = None;
    while let Some(id) = ident_at(tokens, j) {
        if id == "for" || id == "where" {
            break;
        }
        last = Some(id.to_string());
        j += 1;
        if punct_at(tokens, j, '<') {
            j = skip_angles(tokens, j);
        }
        if punct_at(tokens, j, ':') && punct_at(tokens, j + 1, ':') {
            j += 2;
        } else {
            break;
        }
    }
    (last, j)
}

/// Parses an impl block; `i` points at the `impl` keyword.
fn parse_impl(tokens: &[SpannedTok], i: usize) -> (Option<ImplDef>, usize) {
    let line = tokens[i].line;
    let mut j = i + 1;
    if punct_at(tokens, j, '<') {
        j = skip_angles(tokens, j);
    }
    let (first, after_first) = collect_path(tokens, j);
    j = after_first;
    let (trait_name, self_ty) = if ident_at(tokens, j) == Some("for") {
        let (second, after_second) = collect_path(tokens, j + 1);
        j = after_second;
        (first, second)
    } else {
        (None, first)
    };
    let Some(self_ty) = self_ty else {
        // Unparseable (e.g. `impl !Send for …`): skip the whole block.
        return (None, skip_item_block(tokens, j));
    };
    while j < tokens.len() && !punct_at(tokens, j, '{') {
        j += 1; // where clause
    }
    if j >= tokens.len() {
        return (None, j);
    }
    let open = j;
    let close = matching_brace(tokens, open);
    let mut fns = Vec::new();
    let mut k = open + 1;
    while k < close {
        if punct_at(tokens, k, '#') {
            k = skip_attr(tokens, k);
            continue;
        }
        if ident_at(tokens, k) == Some("fn") {
            let (f, next) = parse_fn(tokens, k, close);
            if let Some(f) = f {
                fns.push(f);
            }
            k = next;
            continue;
        }
        if punct_at(tokens, k, '{') {
            // Associated-const initializer etc.: stay at method depth.
            k = matching_brace(tokens, k) + 1;
            continue;
        }
        k += 1;
    }
    (
        Some(ImplDef {
            self_ty,
            trait_name,
            line,
            fns,
        }),
        close + 1,
    )
}

/// Parses one `fn`; `k` points at the keyword, `limit` bounds the scan
/// (the enclosing impl's closing brace, or the token count).
fn parse_fn(tokens: &[SpannedTok], k: usize, limit: usize) -> (Option<FnDef>, usize) {
    let Some(name) = ident_at(tokens, k + 1).map(str::to_string) else {
        return (None, k + 1);
    };
    let line = tokens[k].line;
    let mut j = k + 2;
    if punct_at(tokens, j, '<') {
        j = skip_angles(tokens, j);
    }
    if !punct_at(tokens, j, '(') {
        return (None, j);
    }
    let sig_open = j;
    let sig_close = matching_paren(tokens, j);
    j = sig_close + 1;
    while j < limit {
        if punct_at(tokens, j, '{') {
            let open = j;
            let close = matching_brace(tokens, open);
            return (
                Some(FnDef {
                    name,
                    line,
                    sig: (sig_open, sig_close),
                    body: Some((open, close)),
                }),
                close + 1,
            );
        }
        if punct_at(tokens, j, ';') {
            return (
                Some(FnDef {
                    name,
                    line,
                    sig: (sig_open, sig_close),
                    body: None,
                }),
                j + 1,
            );
        }
        j += 1;
    }
    (
        Some(FnDef {
            name,
            line,
            sig: (sig_open, sig_close),
            body: None,
        }),
        j,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(src: &str) -> FileIndex {
        index_file("t.rs", src, None)
    }

    #[test]
    fn extracts_struct_fields_in_order() {
        let ix = index(
            "pub struct Port { pub peer: Option<NodeId>, in_pipe: VecDeque<(u64, Flit)>, \
             stalled: bool }\nstruct Unit;\nstruct Pair(u32, u32);",
        );
        assert_eq!(ix.structs.len(), 3);
        let port = &ix.structs[0];
        assert!(port.named);
        let names: Vec<&str> = port.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["peer", "in_pipe", "stalled"]);
        assert!(!ix.structs[1].named);
        assert!(!ix.structs[2].named);
    }

    #[test]
    fn skips_field_attrs_and_generic_commas() {
        let ix = index(
            "struct S<T: Clone> where T: Default {\n  #[allow(dead_code)]\n  a: BTreeMap<u32, \
             Vec<T>>,\n  b: fn(u32, u32) -> bool,\n  c: [u8; 4],\n}",
        );
        let names: Vec<&str> = ix.structs[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn extracts_impls_and_methods() {
        let ix = index(
            "impl Component for Switch { fn tick(&mut self) { self.a += 1; } fn save_state(&self, \
             w: &mut W) {} }\nimpl Switch { fn helper(&self) -> u32 { 0 } }\nimpl<T: Snap> Snap \
             for DelayQueue<T> { fn save(&self, w: &mut W); }",
        );
        assert_eq!(ix.impls.len(), 3);
        assert_eq!(ix.impls[0].self_ty, "Switch");
        assert_eq!(ix.impls[0].trait_name.as_deref(), Some("Component"));
        let fn_names: Vec<&str> = ix.impls[0].fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fn_names, ["tick", "save_state"]);
        assert!(ix.impls[0].fns[0].body.is_some());
        assert_eq!(ix.impls[1].trait_name, None);
        assert_eq!(ix.impls[2].self_ty, "DelayQueue");
        assert_eq!(ix.impls[2].trait_name.as_deref(), Some("Snap"));
        assert!(ix.impls[2].fns[0].body.is_none());
    }

    #[test]
    fn free_fns_and_test_mods() {
        let ix = index(
            "fn helper(x: u32) -> u32 { x + 1 }\n#[cfg(test)]\nmod tests { fn hidden() {} \
             struct Ghost { g: u32 } }",
        );
        assert_eq!(ix.free_fns.len(), 1);
        assert_eq!(ix.free_fns[0].name, "helper");
        assert!(ix.structs.is_empty());
    }

    #[test]
    fn qualified_trait_paths_resolve_to_last_segment() {
        let ix = index("impl crate::engine::Component for mem::Dram { fn tick(&mut self) {} }");
        assert_eq!(ix.impls[0].trait_name.as_deref(), Some("Component"));
        assert_eq!(ix.impls[0].self_ty, "Dram");
    }

    #[test]
    fn snapshot_version_parses_from_raw_text() {
        let ix = index("pub const SNAPSHOT_VERSION: u32 = 3;\n");
        assert_eq!(ix.snapshot_version, Some(3));
        assert_eq!(index("fn f() {}").snapshot_version, None);
    }

    #[test]
    fn enums_traits_and_macros_are_skipped() {
        let ix = index(
            "enum E { A { x: u32 }, B }\ntrait T { fn save_state(&self); }\nmacro_rules! m { () \
             => { struct Fake { f: u32 } }; }\nstruct Real { r: u32 }",
        );
        assert_eq!(ix.structs.len(), 1);
        assert_eq!(ix.structs[0].name, "Real");
        assert!(ix.free_fns.is_empty());
    }
}
