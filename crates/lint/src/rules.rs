//! The determinism & invariant rules, and the engine that runs them
//! over a lexed file.
//!
//! Each rule is grounded in a real hazard this workspace has hit (or is
//! one contributor away from hitting); DESIGN.md §"Determinism rules"
//! documents the rationale for each. Rules are scoped to the crates
//! where the hazard matters, skip `#[cfg(test)]` modules, and can be
//! waived per-site with `// lint:allow(<rule>) reason` — an annotation
//! must carry a non-empty reason, and an annotation that suppresses
//! nothing is itself reported (`unused-allow`), so stale waivers cannot
//! accumulate.

use crate::lexer::{lex, SpannedTok, Tok};

/// Crates whose state feeds simulation outcomes: iteration order,
/// timing or dropped invariants here silently invalidate cross-run
/// comparisons.
pub const SIM_CRATES: &[&str] = &[
    "sim", "net", "mem", "vm", "gpu", "core", "proto", "multigpu",
];

/// Event-emission entry points that must thread the engine [`Tracer`]
/// (or a `Ctx`, which carries it): dropping the tracer from one of
/// these signatures silently blinds the tracing layer to the
/// stitch/pool/trim/sequence decisions the figures are built on.
pub const TRACED_ENTRY_POINTS: &[&str] = &[
    "pop",
    "push_flit",
    "stitch_into",
    "unstitch",
    "request_bits",
    "record_response",
];

/// Type names that provide interior mutability: a non-`const` `static`
/// holding one of these is ambient mutable state, which component code
/// could reach without going through the engine — invisible to domain
/// partitioning and racy under [`ParallelEventDriven`] workers.
pub const INTERIOR_MUTABLE_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "Cell",
    "LazyCell",
    "LazyLock",
    "Mutex",
    "OnceCell",
    "OnceLock",
    "RefCell",
    "RwLock",
    "UnsafeCell",
];

/// One rule violation (or waived violation) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (kebab-case, matches the allow-annotation spelling).
    pub rule: &'static str,
    /// Path as given to the engine (repo-relative in workspace runs).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when a `lint:allow` annotation waives this
    /// finding; waived findings do not fail the run but are kept in the
    /// machine-readable report.
    pub allowed: Option<String>,
}

/// Static description of one rule.
pub struct Rule {
    /// Kebab-case name used in reports and allow-annotations.
    pub name: &'static str,
    /// One-line rationale shown by `--list-rules`.
    pub summary: &'static str,
    /// Crates the rule applies to; `None` applies everywhere.
    pub crates: Option<&'static [&'static str]>,
    check: fn(&[SpannedTok], &mut Vec<(u32, String)>),
}

/// The rule registry, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-unordered-iteration",
        summary: "std HashMap/HashSet banned in sim-facing crates; \
                  iteration order leaks host randomness into simulation \
                  state — use proto::collections::OrderedMap",
        crates: Some(SIM_CRATES),
        check: check_unordered_iteration,
    },
    Rule {
        name: "no-wall-clock",
        summary: "std::time::{Instant,SystemTime} banned outside bench; \
                  wall-clock reads in sim logic break bit-exact replay",
        crates: Some(SIM_CRATES),
        check: check_wall_clock,
    },
    Rule {
        name: "wake-contract",
        summary: "every non-test `impl Component` must define `next_wake` \
                  explicitly; relying on the EveryCycle default silently \
                  forfeits the event-driven scheduler's contract audit",
        crates: Some(&["sim", "net", "mem", "vm", "gpu", "core", "multigpu"]),
        check: check_wake_contract,
    },
    Rule {
        name: "snapshot-coverage",
        summary: "every non-test `impl Component` must implement the \
                  `save_state`/`load_state` pair; a component the trait \
                  defaults would panic for makes every checkpoint of a \
                  system containing it abort at snapshot time",
        crates: Some(&["sim", "net", "mem", "vm", "gpu", "core", "multigpu"]),
        check: check_snapshot_coverage,
    },
    Rule {
        name: "no-unchecked-narrowing",
        summary: "bare `as u16`/`as u8` narrowing banned in net/sim hot \
                  paths; use try_into/try_from with an expect message",
        crates: Some(&["net", "sim"]),
        check: check_narrowing,
    },
    Rule {
        name: "no-ambient-state",
        summary: "static mut, thread_local! and statics with interior \
                  mutability banned in sim-facing crates; ambient state \
                  bypasses the engine and silently breaks domain \
                  partitioning under the parallel scheduler",
        crates: Some(SIM_CRATES),
        check: check_ambient_state,
    },
    Rule {
        name: "tracer-threading",
        summary: "event-emission entry points (pop, push_flit, stitch/\
                  trim/seq) must take a Tracer or Ctx so scheduling \
                  decisions stay visible in traces",
        crates: Some(&["net", "core"]),
        check: check_tracer_threading,
    },
    Rule {
        name: "no-hot-path-alloc",
        summary: "Box::new/Vec::new/to_vec banned inside `tick`/`tick_burst` \
                  bodies in sim-facing crates; per-flit allocation there \
                  defeats the arena/burst batching — preallocate, reuse a \
                  scratch field, or waive with a reason",
        crates: Some(SIM_CRATES),
        check: check_hot_path_alloc,
    },
];

/// Looks a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Runs every applicable rule over one file's source text.
///
/// `crate_name` is the workspace crate the file belongs to (`None`
/// applies every rule — used for fixtures). Returns findings with
/// allow-annotations already resolved, plus `unused-allow` /
/// `allow-missing-reason` meta-findings.
pub fn check_file(path: &str, src: &str, crate_name: Option<&str>) -> Vec<Finding> {
    let lexed = lex(src);
    let tokens = strip_test_modules(&lexed.tokens);

    let mut raw: Vec<(u32, &'static str, String)> = Vec::new();
    for rule in RULES {
        let applies = match (rule.crates, crate_name) {
            (Some(crates), Some(name)) => crates.contains(&name),
            _ => true,
        };
        if !applies {
            continue;
        }
        let mut hits = Vec::new();
        (rule.check)(&tokens, &mut hits);
        for (line, message) in hits {
            raw.push((line, rule.name, message));
        }
    }
    raw.sort_by_key(|&(line, rule, _)| (line, rule));

    let mut used_allows = vec![false; lexed.allows.len()];
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .map(|(line, rule, message)| Finding {
            rule,
            file: path.to_string(),
            line,
            message,
            allowed: match_allow(&lexed, line, rule, &mut used_allows),
        })
        .collect();

    // Meta-findings: annotations must be justified and must be load-
    // bearing. Neither can itself be allow-annotated away.
    for (ix, allow) in lexed.allows.iter().enumerate() {
        if allow.reason.is_empty() {
            findings.push(Finding {
                rule: "allow-missing-reason",
                file: path.to_string(),
                line: allow.line,
                message: format!(
                    "lint:allow({}) has no justification; write \
                     `// lint:allow({}) <why this site is safe>`",
                    allow.rule, allow.rule
                ),
                allowed: None,
            });
        } else if !used_allows[ix] {
            findings.push(Finding {
                rule: "unused-allow",
                file: path.to_string(),
                line: allow.line,
                message: format!(
                    "lint:allow({}) suppresses nothing on this or the \
                     next code line; remove the stale annotation",
                    allow.rule
                ),
                allowed: None,
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Resolves the allow-annotation for a finding of `rule` at `line`, if
/// any: an annotation counts when it sits on the finding's own line or
/// on a comment line directly above it (further comment-only lines may
/// stack in between). Annotations without a reason never match — they
/// are reported separately.
fn match_allow(
    lexed: &crate::lexer::Lexed,
    line: u32,
    rule: &str,
    used: &mut [bool],
) -> Option<String> {
    let candidate = |l: u32, used: &mut [bool]| -> Option<String> {
        for (ix, a) in lexed.allows.iter().enumerate() {
            if a.line == l && a.rule == rule && !a.reason.is_empty() {
                used[ix] = true;
                return Some(a.reason.clone());
            }
        }
        None
    };
    if let Some(reason) = candidate(line, used) {
        return Some(reason);
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 && lexed.comment_only_lines.binary_search(&l).is_ok() {
        if let Some(reason) = candidate(l, used) {
            return Some(reason);
        }
        l -= 1;
    }
    None
}

/// Removes the token ranges of `#[cfg(test)] mod … { … }` blocks: the
/// rules guard simulation logic, not its test harnesses (which freely
/// use unwrap, wall-clock-free defaults, etc.). Removing a balanced
/// brace region keeps the surrounding structure intact.
fn strip_test_modules(tokens: &[SpannedTok]) -> Vec<SpannedTok> {
    let mut drop = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_attr(tokens, i) {
            // `#` `[` `cfg` `(` `test` `)` `]` is 7 tokens; then allow
            // further attributes, then expect `mod name {`.
            let mut j = i + 7;
            while j < tokens.len() && tokens[j].tok == Tok::Punct('#') {
                j = skip_attr(tokens, j);
            }
            if matches!(&tokens[j].tok, Tok::Ident(k) if k == "mod") {
                if let Some(open) = tokens[j..]
                    .iter()
                    .position(|t| t.tok == Tok::Punct('{'))
                    .map(|p| j + p)
                {
                    let close = matching_brace(tokens, open);
                    for flag in &mut drop[i..=close.min(tokens.len() - 1)] {
                        *flag = true;
                    }
                    i = close + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    tokens
        .iter()
        .zip(&drop)
        .filter(|(_, &d)| !d)
        .map(|(t, _)| t.clone())
        .collect()
}

/// True if `#` at index `i` begins exactly `#[cfg(test)]`.
fn is_cfg_test_attr(tokens: &[SpannedTok], i: usize) -> bool {
    let pat: [&Tok; 7] = [
        &Tok::Punct('#'),
        &Tok::Punct('['),
        &Tok::Ident("cfg".into()),
        &Tok::Punct('('),
        &Tok::Ident("test".into()),
        &Tok::Punct(')'),
        &Tok::Punct(']'),
    ];
    tokens.len() >= i + pat.len() && pat.iter().zip(&tokens[i..]).all(|(p, t)| **p == t.tok)
}

/// Skips one `#[...]` attribute starting at the `#`; returns the index
/// just past its closing `]`.
fn skip_attr(tokens: &[SpannedTok], i: usize) -> usize {
    let mut j = i + 1;
    if j < tokens.len() && tokens[j].tok == Tok::Punct('[') {
        let mut depth = 0i32;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    j
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(tokens: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0i32;
    for (ix, t) in tokens.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return ix;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

fn ident_at(tokens: &[SpannedTok], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct_at(tokens: &[SpannedTok], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
}

fn check_unordered_iteration(tokens: &[SpannedTok], out: &mut Vec<(u32, String)>) {
    for t in tokens {
        if let Tok::Ident(name) = &t.tok {
            if name == "HashMap" || name == "HashSet" {
                out.push((
                    t.line,
                    format!(
                        "{name} iterates in RandomState order, which can leak \
                         host randomness into simulation state; use \
                         netcrafter_proto::collections::OrderedMap (or a \
                         BTreeMap for sorted-key semantics)"
                    ),
                ));
            }
        }
    }
}

fn check_wall_clock(tokens: &[SpannedTok], out: &mut Vec<(u32, String)>) {
    let mut i = 0;
    while i < tokens.len() {
        let hit = match ident_at(tokens, i) {
            Some("std")
                if punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && ident_at(tokens, i + 3) == Some("time") =>
            {
                Some("std::time")
            }
            Some(id @ ("Instant" | "SystemTime"))
                if punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && ident_at(tokens, i + 3) == Some("now") =>
            {
                Some(id)
            }
            _ => None,
        };
        if let Some(what) = hit {
            out.push((
                tokens[i].line,
                format!(
                    "wall-clock access via {what}: host time must never \
                     reach simulation logic (cycle counts come from the \
                     engine); host timing belongs in the bench crate"
                ),
            ));
            i += 4;
            continue;
        }
        i += 1;
    }
}

/// Finds every `impl … Component for … { … }` block, yielding the
/// `impl` keyword's line and the body's `{`/`}` token range. Shared by
/// the trait-contract rules (`wake-contract`, `snapshot-coverage`).
fn component_impl_bodies(tokens: &[SpannedTok]) -> Vec<(u32, usize, usize)> {
    let mut found = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("impl") {
            i += 1;
            continue;
        }
        let impl_line = tokens[i].line;
        // Skip optional `<generics>`.
        let mut j = i + 1;
        if punct_at(tokens, j, '<') {
            let mut depth = 0i32;
            while j < tokens.len() {
                match tokens[j].tok {
                    Tok::Punct('<') => depth += 1,
                    Tok::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Collect the path up to `for`; the trait is its last segment.
        let mut last_seg: Option<&str> = None;
        while let Some(id) = ident_at(tokens, j) {
            if id == "for" {
                break;
            }
            last_seg = Some(id);
            j += 1;
            while punct_at(tokens, j, ':') {
                j += 1;
            }
        }
        if last_seg != Some("Component") || ident_at(tokens, j) != Some("for") {
            i += 1;
            continue;
        }
        let Some(open) = tokens[j..]
            .iter()
            .position(|t| t.tok == Tok::Punct('{'))
            .map(|p| j + p)
        else {
            i += 1;
            continue;
        };
        let close = matching_brace(tokens, open);
        found.push((impl_line, open, close));
        i = close + 1;
    }
    found
}

fn check_wake_contract(tokens: &[SpannedTok], out: &mut Vec<(u32, String)>) {
    for (impl_line, open, close) in component_impl_bodies(tokens) {
        let defines_next_wake = (open..close).any(|ix| {
            ident_at(tokens, ix) == Some("fn") && ident_at(tokens, ix + 1) == Some("next_wake")
        });
        if !defines_next_wake {
            out.push((
                impl_line,
                "impl Component without an explicit `next_wake`: the \
                 EveryCycle default is correct but hides the component \
                 from the wake-contract audit — state the wake policy \
                 (and its justification) explicitly"
                    .to_string(),
            ));
        }
    }
}

fn check_snapshot_coverage(tokens: &[SpannedTok], out: &mut Vec<(u32, String)>) {
    for (impl_line, open, close) in component_impl_bodies(tokens) {
        let defines = |name: &str| {
            (open..close).any(|ix| {
                ident_at(tokens, ix) == Some("fn") && ident_at(tokens, ix + 1) == Some(name)
            })
        };
        let missing: Vec<&str> = ["save_state", "load_state"]
            .into_iter()
            .filter(|n| !defines(n))
            .collect();
        if !missing.is_empty() {
            out.push((
                impl_line,
                format!(
                    "impl Component without {}: the trait defaults panic, \
                     so any checkpoint of a system containing this \
                     component aborts at snapshot time — implement the \
                     save_state/load_state pair (or waive with a reason \
                     if the component can never appear in a \
                     checkpointable system)",
                    missing.join(" and "),
                ),
            ));
        }
    }
}

fn check_narrowing(tokens: &[SpannedTok], out: &mut Vec<(u32, String)>) {
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("as") {
            if let Some(ty @ ("u8" | "u16")) = ident_at(tokens, i + 1) {
                out.push((
                    tokens[i].line,
                    format!(
                        "bare `as {ty}` silently truncates on overflow; on \
                         cycle/flit-size arithmetic that corrupts results \
                         instead of failing — use `{ty}::try_from(..).expect(..)` \
                         or a checked helper"
                    ),
                ));
            }
        }
    }
}

fn check_ambient_state(tokens: &[SpannedTok], out: &mut Vec<(u32, String)>) {
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) == Some("thread_local") && punct_at(tokens, i + 1, '!') {
            out.push((
                tokens[i].line,
                "thread_local! is ambient per-thread state: a component \
                 migrated to a parallel-scheduler worker silently reads a \
                 different instance — thread simulation state through the \
                 component or the engine instead"
                    .to_string(),
            ));
            i += 2;
            continue;
        }
        // `'static` lexes as a Lifetime token, so an Ident here is the
        // `static` item keyword.
        if ident_at(tokens, i) != Some("static") {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        if ident_at(tokens, i + 1) == Some("mut") {
            out.push((
                line,
                "`static mut` is unsynchronized ambient state: any write \
                 races under the parallel scheduler and breaks bit-exact \
                 replay — own the state in a component"
                    .to_string(),
            ));
            i += 2;
            continue;
        }
        // `static NAME: Type = init;` — scan the item for interior-
        // mutability types. The engine cannot see state that lives here,
        // so domain partitioning cannot keep it deterministic.
        let mut j = i + 1;
        while j < tokens.len() && tokens[j].tok != Tok::Punct(';') {
            if let Some(id) = ident_at(tokens, j) {
                if INTERIOR_MUTABLE_TYPES.contains(&id) {
                    out.push((
                        line,
                        format!(
                            "non-const `static` holding {id}: interior \
                             mutability makes this ambient simulation state \
                             that bypasses the engine and the domain \
                             partition — own it in a component, or waive \
                             with a justification if it never feeds \
                             simulation outcomes"
                        ),
                    ));
                    break;
                }
            }
            j += 1;
        }
        while j < tokens.len() && tokens[j].tok != Tok::Punct(';') {
            j += 1;
        }
        i = j + 1;
    }
}

/// Scans `fn tick` / `fn tick_burst` bodies (component dispatch hot
/// paths, including non-trait helpers like `EgressPort::tick`) for the
/// allocator calls the burst/arena refactor was built to eliminate:
/// `Box::new`, `Vec::new` and `.to_vec()`. Growth of a preallocated
/// buffer (`push`, `with_capacity` at construction) is fine; minting a
/// fresh heap object per tick is not.
fn check_hot_path_alloc(tokens: &[SpannedTok], out: &mut Vec<(u32, String)>) {
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("fn") {
            i += 1;
            continue;
        }
        let is_tick = matches!(ident_at(tokens, i + 1), Some("tick" | "tick_burst"));
        if !is_tick {
            i += 1;
            continue;
        }
        let Some(open) = tokens[i..]
            .iter()
            .position(|t| t.tok == Tok::Punct('{'))
            .map(|p| i + p)
        else {
            break;
        };
        let close = matching_brace(tokens, open);
        for ix in open..close {
            if let Some(ty @ ("Box" | "Vec")) = ident_at(tokens, ix) {
                if punct_at(tokens, ix + 1, ':')
                    && punct_at(tokens, ix + 2, ':')
                    && ident_at(tokens, ix + 3) == Some("new")
                {
                    out.push((
                        tokens[ix].line,
                        format!(
                            "{ty}::new inside a tick body allocates on the \
                             dispatch hot path; the burst/arena design moves \
                             payloads through recycled slots — preallocate \
                             the buffer once (a scratch field) or reuse an \
                             existing one"
                        ),
                    ));
                }
            }
            if punct_at(tokens, ix, '.') && ident_at(tokens, ix + 1) == Some("to_vec") {
                out.push((
                    tokens[ix + 1].line,
                    ".to_vec() inside a tick body copies into a fresh heap \
                     allocation every call; move or borrow the data instead \
                     (or stage it in a reusable scratch buffer)"
                        .to_string(),
                ));
            }
        }
        i = close + 1;
    }
}

fn check_tracer_threading(tokens: &[SpannedTok], out: &mut Vec<(u32, String)>) {
    let mut i = 0;
    while i + 2 < tokens.len() {
        if ident_at(tokens, i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(tokens, i + 1) else {
            i += 1;
            continue;
        };
        if !TRACED_ENTRY_POINTS.contains(&name) || !punct_at(tokens, i + 2, '(') {
            i += 1;
            continue;
        }
        let name = name.to_string();
        // Scan the parameter list for a Tracer or Ctx.
        let mut depth = 0i32;
        let mut j = i + 2;
        let mut has_tracer = false;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(id) if id == "Tracer" || id == "Ctx" => has_tracer = true,
                _ => {}
            }
            j += 1;
        }
        if !has_tracer {
            out.push((
                tokens[i].line,
                format!(
                    "`fn {name}` is a traced event-emission entry point but \
                     its signature drops the Tracer: decisions made here \
                     become invisible in traces — take `&mut Tracer` (or a \
                     `Ctx`, which carries one)"
                ),
            ));
        }
        i = j + 1;
    }
}
