//! The determinism & invariant rules and the local (single-file) rule
//! implementations.
//!
//! Each rule is grounded in a real hazard this workspace has hit (or is
//! one contributor away from hitting); DESIGN.md §"Determinism rules"
//! documents the rationale for each. Rules are scoped to the crates
//! where the hazard matters, skip `#[cfg(test)]` modules, and can be
//! waived per-site with `// lint:allow(<rule>) reason` — an annotation
//! must carry a non-empty reason, and an annotation that suppresses
//! nothing is itself reported (`unused-allow`), so stale waivers cannot
//! accumulate.
//!
//! Rules with `check: None` are semantic: they need the whole-workspace
//! item index and live in [`crate::semantic`], dispatched by the driver
//! in `lib.rs`.

use crate::index::{ident_at, matching_brace, punct_at, FileIndex};
use crate::lexer::Tok;

/// Crates whose state feeds simulation outcomes: iteration order,
/// timing or dropped invariants here silently invalidate cross-run
/// comparisons.
pub const SIM_CRATES: &[&str] = &[
    "sim", "net", "mem", "vm", "gpu", "core", "proto", "multigpu",
];

/// Event-emission entry points that must thread the engine [`Tracer`]
/// (or a `Ctx`, which carries it): dropping the tracer from one of
/// these signatures silently blinds the tracing layer to the
/// stitch/pool/trim/sequence decisions the figures are built on.
pub const TRACED_ENTRY_POINTS: &[&str] = &[
    "pop",
    "push_flit",
    "stitch_into",
    "unstitch",
    "request_bits",
    "record_response",
];

/// Type names that provide interior mutability: a non-`const` `static`
/// holding one of these is ambient mutable state, which component code
/// could reach without going through the engine — invisible to domain
/// partitioning and racy under [`ParallelEventDriven`] workers.
pub const INTERIOR_MUTABLE_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "Cell",
    "LazyCell",
    "LazyLock",
    "Mutex",
    "OnceCell",
    "OnceLock",
    "RefCell",
    "RwLock",
    "UnsafeCell",
];

/// One rule violation (or waived violation) at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (kebab-case, matches the allow-annotation spelling).
    pub rule: &'static str,
    /// Path as given to the engine (repo-relative in workspace runs).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` when a `lint:allow` annotation waives this
    /// finding; waived findings do not fail the run but are kept in the
    /// machine-readable report.
    pub allowed: Option<String>,
}

/// A single-file rule body: pushes `(line, message)` raw findings.
pub(crate) type LocalCheck = fn(&FileIndex, &mut Vec<(u32, String)>);

/// Static description of one rule.
pub struct Rule {
    /// Kebab-case name used in reports and allow-annotations.
    pub name: &'static str,
    /// One-line rationale shown by `--list-rules`.
    pub summary: &'static str,
    /// Crates the rule applies to; `None` applies everywhere.
    pub crates: Option<&'static [&'static str]>,
    /// Single-file check, or `None` for whole-workspace semantic rules
    /// implemented in [`crate::semantic`].
    pub(crate) check: Option<LocalCheck>,
}

/// Crates the Component trait-contract rules cover (`proto` holds no
/// components).
const COMPONENT_CRATES: &[&str] = &["sim", "net", "mem", "vm", "gpu", "core", "multigpu"];

/// The rule registry, in report order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-unordered-iteration",
        summary: "std HashMap/HashSet banned in sim-facing crates; \
                  iteration order leaks host randomness into simulation \
                  state — use proto::collections::OrderedMap",
        crates: Some(SIM_CRATES),
        check: Some(check_unordered_iteration),
    },
    Rule {
        name: "no-wall-clock",
        summary: "std::time::{Instant,SystemTime} banned outside bench; \
                  wall-clock reads in sim logic break bit-exact replay",
        crates: Some(SIM_CRATES),
        check: Some(check_wall_clock),
    },
    Rule {
        name: "wake-contract",
        summary: "every non-test `impl Component` must define `next_wake` \
                  explicitly; relying on the EveryCycle default silently \
                  forfeits the event-driven scheduler's contract audit",
        crates: Some(COMPONENT_CRATES),
        check: Some(check_wake_contract),
    },
    Rule {
        name: "snapshot-coverage",
        summary: "every non-test `impl Component` must implement the \
                  `save_state`/`load_state` pair; a component the trait \
                  defaults would panic for makes every checkpoint of a \
                  system containing it abort at snapshot time",
        crates: Some(COMPONENT_CRATES),
        check: Some(check_snapshot_coverage),
    },
    Rule {
        name: "snapshot-field-parity",
        summary: "every field of a snapshotted struct must be referenced \
                  in both halves of its save/load pair, in the same \
                  order; an unsnapshotted field silently resets on \
                  restore — waive per field with the reason it is \
                  restore-invariant",
        crates: Some(SIM_CRATES),
        check: None,
    },
    Rule {
        name: "snapshot-version-bump",
        summary: "a diff-visible change to a snapshotted struct's field \
                  list must come with a SNAPSHOT_VERSION bump; checked \
                  against the committed field-inventory baseline \
                  (regenerate with --emit-inventory); active only when \
                  --baseline is given",
        crates: Some(SIM_CRATES),
        check: None,
    },
    Rule {
        name: "no-unchecked-narrowing",
        summary: "bare `as u16`/`as u8` narrowing banned in net/sim hot \
                  paths; use try_into/try_from with an expect message",
        crates: Some(&["net", "sim"]),
        check: Some(check_narrowing),
    },
    Rule {
        name: "no-ambient-state",
        summary: "static mut, thread_local! and statics with interior \
                  mutability banned in sim-facing crates; ambient state \
                  bypasses the engine and silently breaks domain \
                  partitioning under the parallel scheduler",
        crates: Some(SIM_CRATES),
        check: Some(check_ambient_state),
    },
    Rule {
        name: "tracer-threading",
        summary: "event-emission entry points (pop, push_flit, stitch/\
                  trim/seq) must take a Tracer or Ctx so scheduling \
                  decisions stay visible in traces; a helper is exempt \
                  when every same-crate caller threads one",
        crates: Some(&["net", "core"]),
        check: None,
    },
    Rule {
        name: "no-hot-path-alloc",
        summary: "Box::new/Vec::new/to_vec banned inside `tick`/`tick_burst` \
                  bodies and every same-crate helper they reach (call-graph \
                  fixpoint); per-flit allocation there defeats the arena/\
                  burst batching — preallocate, reuse a scratch field, or \
                  waive at the call site with a reason",
        crates: Some(SIM_CRATES),
        check: Some(check_hot_path_alloc),
    },
];

/// Looks a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Whether `rule` applies to a file of `crate_name` (`None` — fixtures,
/// ad-hoc files — activates every rule).
pub(crate) fn rule_applies(rule: &Rule, crate_name: Option<&str>) -> bool {
    match (rule.crates, crate_name) {
        (Some(crates), Some(name)) => crates.contains(&name),
        _ => true,
    }
}

fn check_unordered_iteration(fi: &FileIndex, out: &mut Vec<(u32, String)>) {
    for t in &fi.tokens {
        if let Tok::Ident(name) = &t.tok {
            if name == "HashMap" || name == "HashSet" {
                out.push((
                    t.line,
                    format!(
                        "{name} iterates in RandomState order, which can leak \
                         host randomness into simulation state; use \
                         netcrafter_proto::collections::OrderedMap (or a \
                         BTreeMap for sorted-key semantics)"
                    ),
                ));
            }
        }
    }
}

fn check_wall_clock(fi: &FileIndex, out: &mut Vec<(u32, String)>) {
    let tokens = &fi.tokens;
    let mut i = 0;
    while i < tokens.len() {
        let hit = match ident_at(tokens, i) {
            Some("std")
                if punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && ident_at(tokens, i + 3) == Some("time") =>
            {
                Some("std::time")
            }
            Some(id @ ("Instant" | "SystemTime"))
                if punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && ident_at(tokens, i + 3) == Some("now") =>
            {
                Some(id)
            }
            _ => None,
        };
        if let Some(what) = hit {
            out.push((
                tokens[i].line,
                format!(
                    "wall-clock access via {what}: host time must never \
                     reach simulation logic (cycle counts come from the \
                     engine); host timing belongs in the bench crate"
                ),
            ));
            i += 4;
            continue;
        }
        i += 1;
    }
}

fn check_wake_contract(fi: &FileIndex, out: &mut Vec<(u32, String)>) {
    for im in &fi.impls {
        if im.trait_name.as_deref() != Some("Component") {
            continue;
        }
        if !im.fns.iter().any(|f| f.name == "next_wake") {
            out.push((
                im.line,
                "impl Component without an explicit `next_wake`: the \
                 EveryCycle default is correct but hides the component \
                 from the wake-contract audit — state the wake policy \
                 (and its justification) explicitly"
                    .to_string(),
            ));
        }
    }
}

fn check_snapshot_coverage(fi: &FileIndex, out: &mut Vec<(u32, String)>) {
    for im in &fi.impls {
        if im.trait_name.as_deref() != Some("Component") {
            continue;
        }
        let missing: Vec<&str> = ["save_state", "load_state"]
            .into_iter()
            .filter(|n| !im.fns.iter().any(|f| &f.name == n))
            .collect();
        if !missing.is_empty() {
            out.push((
                im.line,
                format!(
                    "impl Component without {}: the trait defaults panic, \
                     so any checkpoint of a system containing this \
                     component aborts at snapshot time — implement the \
                     save_state/load_state pair (or waive with a reason \
                     if the component can never appear in a \
                     checkpointable system)",
                    missing.join(" and "),
                ),
            ));
        }
    }
}

fn check_narrowing(fi: &FileIndex, out: &mut Vec<(u32, String)>) {
    let tokens = &fi.tokens;
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("as") {
            if let Some(ty @ ("u8" | "u16")) = ident_at(tokens, i + 1) {
                out.push((
                    tokens[i].line,
                    format!(
                        "bare `as {ty}` silently truncates on overflow; on \
                         cycle/flit-size arithmetic that corrupts results \
                         instead of failing — use `{ty}::try_from(..).expect(..)` \
                         or a checked helper"
                    ),
                ));
            }
        }
    }
}

fn check_ambient_state(fi: &FileIndex, out: &mut Vec<(u32, String)>) {
    let tokens = &fi.tokens;
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) == Some("thread_local") && punct_at(tokens, i + 1, '!') {
            out.push((
                tokens[i].line,
                "thread_local! is ambient per-thread state: a component \
                 migrated to a parallel-scheduler worker silently reads a \
                 different instance — thread simulation state through the \
                 component or the engine instead"
                    .to_string(),
            ));
            i += 2;
            continue;
        }
        // `'static` lexes as a Lifetime token, so an Ident here is the
        // `static` item keyword.
        if ident_at(tokens, i) != Some("static") {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        if ident_at(tokens, i + 1) == Some("mut") {
            out.push((
                line,
                "`static mut` is unsynchronized ambient state: any write \
                 races under the parallel scheduler and breaks bit-exact \
                 replay — own the state in a component"
                    .to_string(),
            ));
            i += 2;
            continue;
        }
        // `static NAME: Type = init;` — scan the item for interior-
        // mutability types. The engine cannot see state that lives here,
        // so domain partitioning cannot keep it deterministic.
        let mut j = i + 1;
        while j < tokens.len() && tokens[j].tok != Tok::Punct(';') {
            if let Some(id) = ident_at(tokens, j) {
                if INTERIOR_MUTABLE_TYPES.contains(&id) {
                    out.push((
                        line,
                        format!(
                            "non-const `static` holding {id}: interior \
                             mutability makes this ambient simulation state \
                             that bypasses the engine and the domain \
                             partition — own it in a component, or waive \
                             with a justification if it never feeds \
                             simulation outcomes"
                        ),
                    ));
                    break;
                }
            }
            j += 1;
        }
        while j < tokens.len() && tokens[j].tok != Tok::Punct(';') {
            j += 1;
        }
        i = j + 1;
    }
}

/// The local half of `no-hot-path-alloc`: scans `fn tick` /
/// `fn tick_burst` bodies wherever they appear in the token stream
/// (including trait default bodies, which the item index skips) for
/// `Box::new`, `Vec::new` and `.to_vec()`. Growth of a preallocated
/// buffer (`push`, `with_capacity` at construction) is fine; minting a
/// fresh heap object per tick is not. The interprocedural half in
/// [`crate::semantic`] extends the ban through the call graph.
fn check_hot_path_alloc(fi: &FileIndex, out: &mut Vec<(u32, String)>) {
    let tokens = &fi.tokens;
    let mut i = 0;
    while i < tokens.len() {
        if ident_at(tokens, i) != Some("fn") {
            i += 1;
            continue;
        }
        let is_tick = matches!(ident_at(tokens, i + 1), Some("tick" | "tick_burst"));
        if !is_tick {
            i += 1;
            continue;
        }
        let Some(open) = tokens[i..]
            .iter()
            .position(|t| t.tok == Tok::Punct('{'))
            .map(|p| i + p)
        else {
            break;
        };
        let close = matching_brace(tokens, open);
        for (line, what) in crate::callgraph::alloc_sites(tokens, (open, close)) {
            let detail = match what {
                ".to_vec()" => ".to_vec() inside a tick body copies into a fresh \
                     heap allocation every call; move or borrow the data \
                     instead (or stage it in a reusable scratch buffer)"
                    .to_string(),
                _ => format!(
                    "{what} inside a tick body allocates on the \
                     dispatch hot path; the burst/arena design moves \
                     payloads through recycled slots — preallocate \
                     the buffer once (a scratch field) or reuse an \
                     existing one"
                ),
            };
            out.push((line, detail));
        }
        i = close + 1;
    }
}
