//! `netcrafter-lint`: the in-tree determinism & invariant static-
//! analysis pass.
//!
//! The simulator's evaluation rests on bit-exact determinism: the
//! scheduler-equivalence CI step, the perf-regression gate and the
//! Chrome-trace byte-diffs all assume two runs of one config produce
//! identical flit streams. This crate makes the determinism rules
//! machine-checked instead of tribal knowledge: a small Rust lexer (no
//! `syn`; the workspace stays offline and dependency-free) feeds an
//! item index (structs, impls, call graph) and a rule engine with
//! per-site `// lint:allow(<rule>) reason` waivers and a machine-
//! readable findings report. Local rules see one file; semantic rules
//! (snapshot field parity, interprocedural hot-path allocation,
//! caller-aware tracer threading, version-bump baseline diff) see the
//! whole workspace.
//!
//! Run it over the workspace with `cargo run -p netcrafter-lint`; see
//! DESIGN.md §"Determinism rules" for the rule catalogue and rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod index;
pub mod inventory;
pub mod lexer;
pub mod report;
pub mod rules;
mod semantic;

pub use inventory::Inventory;
pub use report::{render_json, render_text, summarize, Summary};
pub use rules::{Finding, Rule, RULES};

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use index::{index_file, FileIndex};
use semantic::Raw;

/// One in-memory source file to analyze.
#[derive(Debug, Clone)]
pub struct SourceUnit {
    /// Path as it should appear in findings.
    pub path: String,
    /// Full source text.
    pub src: String,
    /// Workspace crate (`None` activates every rule).
    pub crate_name: Option<String>,
}

/// The result of one analysis run.
#[derive(Debug)]
pub struct Analysis {
    /// Resolved findings, ordered by (file, line, rule).
    pub findings: Vec<Finding>,
    /// The snapshot field inventory of the analyzed sources.
    pub inventory: Inventory,
}

/// The workspace crate a source path belongs to: `crates/<name>/…` maps
/// to `<name>`, the root `src/` to `netcrafter`, anything else to
/// `None` (every rule applies — used for fixtures and ad-hoc files).
pub fn crate_of(path: &Path) -> Option<String> {
    let mut comps = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(c) = comps.next() {
        if c == "crates" {
            return comps.next().map(|n| n.to_string());
        }
        if c == "src" {
            return Some("netcrafter".to_string());
        }
    }
    None
}

/// Collects the `.rs` files the workspace pass scans, sorted for
/// deterministic reports: every `crates/<c>/src/**/*.rs` (the linter's
/// own crate excluded — its sources quote rule patterns and its test
/// fixtures are violations on purpose) plus the root `src/`.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "lint"))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes a set of in-memory sources together (they share the item
/// index, so cross-file rules see all of them). `baseline` is the
/// `(path, parsed inventory)` pair for `snapshot-version-bump`; the
/// rule is inactive without one.
pub fn analyze_units(units: &[SourceUnit], baseline: Option<(&str, &Inventory)>) -> Analysis {
    let files: Vec<FileIndex> = units
        .iter()
        .map(|u| index_file(&u.path, &u.src, u.crate_name.as_deref()))
        .collect();
    finish(files, baseline)
}

/// Reads, indexes (in parallel with `jobs` threads) and analyzes the
/// whole workspace under `root`.
pub fn analyze_workspace(
    root: &Path,
    jobs: usize,
    baseline: Option<(&str, &Inventory)>,
) -> std::io::Result<Analysis> {
    let paths = workspace_files(root)?;
    let files = index_paths(root, &paths, jobs)?;
    Ok(finish(files, baseline))
}

/// Reads and lexes/indexes `paths` with up to `jobs` worker threads.
/// Results come back in path order regardless of completion order, so
/// reports stay deterministic.
fn index_paths(root: &Path, paths: &[PathBuf], jobs: usize) -> std::io::Result<Vec<FileIndex>> {
    let n = paths.len();
    let workers = jobs.max(1).min(n.max(1));
    let slots: Vec<Mutex<Option<std::io::Result<FileIndex>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let index_one = |path: &Path| -> std::io::Result<FileIndex> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        let crate_name = crate_of(rel);
        Ok(index_file(
            &rel.to_string_lossy(),
            &src,
            crate_name.as_deref(),
        ))
    };
    if workers <= 1 {
        return paths.iter().map(|p| index_one(p)).collect();
    }
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let res = index_one(&paths[i]);
                *slots[i].lock().expect("indexing worker never panics") = Some(res);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("indexing worker never panics")
                .expect("every slot filled")
        })
        .collect()
}

/// Runs local rules per file, semantic rules over the whole index,
/// then resolves allow-annotations and appends the meta-findings.
fn finish(files: Vec<FileIndex>, baseline: Option<(&str, &Inventory)>) -> Analysis {
    let mut raw: Vec<Raw> = Vec::new();
    for (fx, fi) in files.iter().enumerate() {
        for rule in RULES {
            let Some(check) = rule.check else {
                continue;
            };
            if !rules::rule_applies(rule, fi.crate_name.as_deref()) {
                continue;
            }
            let mut hits = Vec::new();
            check(fi, &mut hits);
            for (line, message) in hits {
                raw.push(Raw {
                    file: fx,
                    line,
                    rule: rule.name,
                    message,
                });
            }
        }
    }
    semantic::snapshot_field_parity(&files, &mut raw);
    semantic::interproc_hot_path_alloc(&files, &mut raw);
    semantic::tracer_threading(&files, &mut raw);
    let (inventory, locations) = semantic::inventory_with_locations(&files);
    if let Some((path, base)) = baseline {
        semantic::snapshot_version_bump(&files, &inventory, &locations, base, path, &mut raw);
    }

    // Group raw findings per file, resolve allows, emit meta-findings.
    let mut per_file: Vec<Vec<(u32, &'static str, String)>> = vec![Vec::new(); files.len()];
    for r in raw {
        per_file[r.file].push((r.line, r.rule, r.message));
    }
    let mut findings = Vec::new();
    for (fx, mut file_raw) in per_file.into_iter().enumerate() {
        let fi = &files[fx];
        file_raw.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
        file_raw.dedup();
        let mut used_allows = vec![false; fi.allows.len()];
        let mut file_findings: Vec<Finding> = Vec::new();
        for (line, rule, message) in file_raw {
            let allowed = match_allow(fi, line, rule, &mut used_allows);
            file_findings.push(Finding {
                rule,
                file: fi.path.clone(),
                line,
                message,
                allowed,
            });
        }
        // Meta-findings: annotations must be justified and must be
        // load-bearing. Neither can itself be allow-annotated away.
        for (ix, allow) in fi.allows.iter().enumerate() {
            if allow.reason.is_empty() {
                file_findings.push(Finding {
                    rule: "allow-missing-reason",
                    file: fi.path.clone(),
                    line: allow.line,
                    message: format!(
                        "lint:allow({}) has no justification; write \
                         `// lint:allow({}) <why this site is safe>`",
                        allow.rule, allow.rule
                    ),
                    allowed: None,
                });
            } else if !used_allows[ix] {
                file_findings.push(Finding {
                    rule: "unused-allow",
                    file: fi.path.clone(),
                    line: allow.line,
                    message: format!(
                        "lint:allow({}) suppresses nothing on this or the \
                         next code line; remove the stale annotation",
                        allow.rule
                    ),
                    allowed: None,
                });
            }
        }
        file_findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        findings.extend(file_findings);
    }
    Analysis {
        findings,
        inventory,
    }
}

/// Resolves the allow-annotation for a finding of `rule` at `line`, if
/// any: an annotation counts when it sits on the finding's own line or
/// on a comment line directly above it (further comment-only lines may
/// stack in between). Annotations without a reason never match — they
/// are reported separately.
fn match_allow(fi: &FileIndex, line: u32, rule: &str, used: &mut [bool]) -> Option<String> {
    let candidate = |l: u32, used: &mut [bool]| -> Option<String> {
        for (ix, a) in fi.allows.iter().enumerate() {
            if a.line == l && a.rule == rule && !a.reason.is_empty() {
                used[ix] = true;
                return Some(a.reason.clone());
            }
        }
        None
    };
    if let Some(reason) = candidate(line, used) {
        return Some(reason);
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 && fi.comment_only_lines.binary_search(&l).is_ok() {
        if let Some(reason) = candidate(l, used) {
            return Some(reason);
        }
        l -= 1;
    }
    None
}

/// Runs every applicable rule over one file's source text (the file is
/// analyzed alone, so cross-file struct resolution sees only it).
pub fn check_file(path: &str, src: &str, crate_name: Option<&str>) -> Vec<Finding> {
    analyze_units(
        &[SourceUnit {
            path: path.to_string(),
            src: src.to_string(),
            crate_name: crate_name.map(str::to_string),
        }],
        None,
    )
    .findings
}

/// Lints one file from disk. `as_crate` overrides crate detection
/// (fixtures use this to activate every rule); `root` makes reported
/// paths repo-relative when possible.
pub fn check_path(
    path: &Path,
    root: &Path,
    as_crate: Option<&str>,
) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path);
    let crate_name = match as_crate {
        Some(name) => Some(name.to_string()),
        None => crate_of(rel),
    };
    Ok(check_file(
        &rel.to_string_lossy(),
        &src,
        crate_name.as_deref(),
    ))
}

/// Lints the whole workspace under `root` (single-threaded; the CLI
/// exposes `--jobs` via [`analyze_workspace`]).
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(analyze_workspace(root, 1, None)?.findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_detection() {
        assert_eq!(
            crate_of(Path::new("crates/net/src/seg.rs")).as_deref(),
            Some("net")
        );
        assert_eq!(
            crate_of(Path::new("src/lib.rs")).as_deref(),
            Some("netcrafter")
        );
        assert_eq!(crate_of(Path::new("ci.sh")), None);
    }

    #[test]
    fn parallel_indexing_matches_serial() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let serial = analyze_workspace(root, 1, None).expect("serial run");
        let parallel = analyze_workspace(root, 4, None).expect("parallel run");
        assert_eq!(serial.findings, parallel.findings);
        assert_eq!(serial.inventory, parallel.inventory);
    }
}
