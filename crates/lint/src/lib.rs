//! `netcrafter-lint`: the in-tree determinism & invariant static-
//! analysis pass.
//!
//! The simulator's evaluation rests on bit-exact determinism: the
//! scheduler-equivalence CI step, the perf-regression gate and the
//! Chrome-trace byte-diffs all assume two runs of one config produce
//! identical flit streams. This crate makes the determinism rules
//! machine-checked instead of tribal knowledge: a small Rust lexer (no
//! `syn`; the workspace stays offline and dependency-free) feeds a rule
//! engine with per-site `// lint:allow(<rule>) reason` waivers and a
//! machine-readable findings report.
//!
//! Run it over the workspace with `cargo run -p netcrafter-lint`; see
//! DESIGN.md §"Determinism rules" for the rule catalogue and rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{render_json, render_text, summarize, Summary};
pub use rules::{check_file, Finding, Rule, RULES};

use std::path::{Path, PathBuf};

/// The workspace crate a source path belongs to: `crates/<name>/…` maps
/// to `<name>`, the root `src/` to `netcrafter`, anything else to
/// `None` (every rule applies — used for fixtures and ad-hoc files).
pub fn crate_of(path: &Path) -> Option<String> {
    let mut comps = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(c) = comps.next() {
        if c == "crates" {
            return comps.next().map(|n| n.to_string());
        }
        if c == "src" {
            return Some("netcrafter".to_string());
        }
    }
    None
}

/// Collects the `.rs` files the workspace pass scans, sorted for
/// deterministic reports: every `crates/<c>/src/**/*.rs` (the linter's
/// own crate excluded — its sources quote rule patterns and its test
/// fixtures are violations on purpose) plus the root `src/`.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "lint"))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        collect_rs(&dir.join("src"), &mut files)?;
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file from disk. `as_crate` overrides crate detection
/// (fixtures use this to activate every rule); `root` makes reported
/// paths repo-relative when possible.
pub fn check_path(
    path: &Path,
    root: &Path,
    as_crate: Option<&str>,
) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path);
    let crate_name = match as_crate {
        Some(name) => Some(name.to_string()),
        None => crate_of(rel),
    };
    Ok(check_file(
        &rel.to_string_lossy(),
        &src,
        crate_name.as_deref(),
    ))
}

/// Lints the whole workspace under `root`.
pub fn check_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in workspace_files(root)? {
        findings.extend(check_path(&file, root, None)?);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_detection() {
        assert_eq!(
            crate_of(Path::new("crates/net/src/seg.rs")).as_deref(),
            Some("net")
        );
        assert_eq!(
            crate_of(Path::new("src/lib.rs")).as_deref(),
            Some("netcrafter")
        );
        assert_eq!(crate_of(Path::new("ci.sh")), None);
    }
}
