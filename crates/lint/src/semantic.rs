//! The semantic (field-sensitive / interprocedural) rules: snapshot
//! field parity, transitive hot-path allocation, caller-aware tracer
//! threading, and the snapshot-version-bump baseline diff.
//!
//! Unlike the local rules in [`crate::rules`], these need the whole
//! workspace in view: a struct and the `impl Snap` that serializes it
//! can live in different crates, and an allocation can hide an
//! arbitrary number of calls below `tick`. They run once per analysis
//! over the full [`FileIndex`] slice and report findings anchored in
//! whichever file the fix belongs in.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{alloc_sites, build_crate_graph, can_reach_alloc};
use crate::index::{ident_at, FileIndex};
use crate::inventory::Inventory;
use crate::rules::{rule_applies, rule_by_name, TRACED_ENTRY_POINTS};

/// An unresolved finding: like [`crate::Finding`] but file-indexed and
/// not yet matched against allow-annotations.
#[derive(Debug)]
pub(crate) struct Raw {
    /// Index into the analysis' `FileIndex` slice.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: &'static str,
    /// Finding text.
    pub message: String,
}

/// A resolved `save`/`load` pair: the impl that serializes, and the
/// struct whose fields it must cover.
struct Pair {
    impl_file: usize,
    impl_ix: usize,
    /// Indices into the impl's `fns`.
    save_fn: usize,
    load_fn: usize,
    /// `("save_state", "load_state")` or `("save", "load")`.
    names: (&'static str, &'static str),
    struct_file: usize,
    struct_ix: usize,
}

/// Finds every serializer pair in the workspace and resolves its
/// struct. An impl whose type cannot be resolved to exactly one named
/// struct (primitives, generic containers, ambiguous names) is skipped
/// — the extraction must never guess.
fn snapshot_pairs(files: &[FileIndex]) -> Vec<Pair> {
    let mut pairs = Vec::new();
    for (fx, fi) in files.iter().enumerate() {
        for (ix, im) in fi.impls.iter().enumerate() {
            let find = |name: &str| {
                im.fns
                    .iter()
                    .position(|f| f.name == name && f.body.is_some())
            };
            let candidate = if im.trait_name.as_deref() == Some("Snap") {
                find("save")
                    .zip(find("load"))
                    .map(|p| (p, ("save", "load")))
            } else {
                find("save_state")
                    .zip(find("load_state"))
                    .map(|p| (p, ("save_state", "load_state")))
            };
            let Some(((save_fn, load_fn), names)) = candidate else {
                continue;
            };
            let Some((struct_file, struct_ix)) = resolve_struct(files, &im.self_ty, fx) else {
                continue;
            };
            pairs.push(Pair {
                impl_file: fx,
                impl_ix: ix,
                save_fn,
                load_fn,
                names,
                struct_file,
                struct_ix,
            });
        }
    }
    pairs
}

/// Resolves a type name to its struct: same file first, then unique in
/// the impl's crate, then unique across the workspace (covers proto
/// structs whose `Snap` impls live in the sim crate).
fn resolve_struct(files: &[FileIndex], name: &str, home: usize) -> Option<(usize, usize)> {
    if let Some(ix) = files[home].structs.iter().position(|s| s.name == name) {
        return Some((home, ix));
    }
    let home_crate = files[home].crate_name.as_deref();
    let matches = |same_crate: bool| -> Vec<(usize, usize)> {
        files
            .iter()
            .enumerate()
            .filter(|(_, f)| !same_crate || f.crate_name.as_deref() == home_crate)
            .flat_map(|(fx, f)| {
                f.structs
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.name == name)
                    .map(move |(sx, _)| (fx, sx))
            })
            .collect()
    };
    let in_crate = matches(true);
    match in_crate.len() {
        1 => Some(in_crate[0]),
        0 => {
            let global = matches(false);
            (global.len() == 1).then(|| global[0])
        }
        _ => None,
    }
}

/// First token index (within `body`) where `field` is referenced, if
/// any.
fn first_ref(files: &[FileIndex], file: usize, body: (usize, usize), field: &str) -> Option<usize> {
    (body.0..body.1).find(|&ix| ident_at(&files[file].tokens, ix) == Some(field))
}

/// `snapshot-field-parity`: every declared field of a snapshotted
/// struct must be referenced in both halves of its serializer pair, in
/// the same order. Per-field findings anchor at the field declaration
/// (waivable there); order findings anchor at the save fn.
pub(crate) fn snapshot_field_parity(files: &[FileIndex], out: &mut Vec<Raw>) {
    let rule = rule_by_name("snapshot-field-parity").expect("registered");
    for p in snapshot_pairs(files) {
        if !rule_applies(rule, files[p.impl_file].crate_name.as_deref()) {
            continue;
        }
        let st = &files[p.struct_file].structs[p.struct_ix];
        if !st.named {
            continue;
        }
        let im = &files[p.impl_file].impls[p.impl_ix];
        let (save_name, load_name) = p.names;
        let save_body = im.fns[p.save_fn].body.expect("paired fns have bodies");
        let load_body = im.fns[p.load_fn].body.expect("paired fns have bodies");
        let mut save_seen: Vec<(usize, &str)> = Vec::new();
        let mut load_seen: Vec<(usize, &str)> = Vec::new();
        for f in &st.fields {
            let s = first_ref(files, p.impl_file, save_body, &f.name);
            let l = first_ref(files, p.impl_file, load_body, &f.name);
            match (s, l) {
                (Some(si), Some(li)) => {
                    save_seen.push((si, &f.name));
                    load_seen.push((li, &f.name));
                }
                (None, None) => out.push(Raw {
                    file: p.struct_file,
                    line: f.line,
                    rule: rule.name,
                    message: format!(
                        "field `{}` of `{}` is never referenced in {save_name} or \
                         {load_name}: its value silently resets on restore — \
                         snapshot it (and bump SNAPSHOT_VERSION), or waive this \
                         field with the reason it is restore-invariant",
                        f.name, st.name
                    ),
                }),
                (Some(_), None) => out.push(Raw {
                    file: p.struct_file,
                    line: f.line,
                    rule: rule.name,
                    message: format!(
                        "field `{}` of `{}` is referenced in {save_name} but not \
                         {load_name}: the saved bytes are never consumed, so every \
                         later read desynchronizes the decode stream",
                        f.name, st.name
                    ),
                }),
                (None, Some(_)) => out.push(Raw {
                    file: p.struct_file,
                    line: f.line,
                    rule: rule.name,
                    message: format!(
                        "field `{}` of `{}` is referenced in {load_name} but not \
                         {save_name}: restore reads bytes that were never written \
                         for it",
                        f.name, st.name
                    ),
                }),
            }
        }
        save_seen.sort_unstable();
        load_seen.sort_unstable();
        let save_order: Vec<&str> = save_seen.iter().map(|&(_, n)| n).collect();
        let load_order: Vec<&str> = load_seen.iter().map(|&(_, n)| n).collect();
        if save_order != load_order {
            out.push(Raw {
                file: p.impl_file,
                line: im.fns[p.save_fn].line,
                rule: rule.name,
                message: format!(
                    "`{}`: {save_name} and {load_name} reference the fields of \
                     `{}` in different orders (save: {} / load: {}); the snapshot \
                     byte stream is positional, so the orders must match",
                    im.self_ty,
                    st.name,
                    save_order.join(", "),
                    load_order.join(", "),
                ),
            });
        }
    }
}

/// Interprocedural half of `no-hot-path-alloc`: walk the same-crate
/// call graph from every `tick`/`tick_burst` and report allocation
/// sites in reached helpers. An allow-annotation at a call site cuts
/// the walk there (the waived call is still reported, as waived, so
/// the annotation registers as used); helpers named `tick`/`tick_burst`
/// are themselves roots and already covered by the local rule.
pub(crate) fn interproc_hot_path_alloc(files: &[FileIndex], out: &mut Vec<Raw>) {
    let rule = rule_by_name("no-hot-path-alloc").expect("registered");
    for (_, file_ixs) in crate_groups(files) {
        if !rule_applies(rule, files[file_ixs[0]].crate_name.as_deref()) {
            continue;
        }
        let g = build_crate_graph(files, &file_ixs);
        let reach = can_reach_alloc(files, &g);
        let is_root = |n: usize| matches!(g.def(files, n).name.as_str(), "tick" | "tick_burst");

        let mut visited = vec![false; g.nodes.len()];
        let mut parent: Vec<Option<(usize, u32)>> = vec![None; g.nodes.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (n, slot) in visited.iter_mut().enumerate() {
            if is_root(n) && g.def(files, n).body.is_some() {
                *slot = true;
                queue.push_back(n);
            }
        }
        let mut waived_calls: BTreeSet<(usize, u32, String)> = BTreeSet::new();
        while let Some(u) = queue.pop_front() {
            let caller_file = g.nodes[u].file;
            for e in &g.edges[u] {
                if !reach[e.to] {
                    continue;
                }
                if files[caller_file].allow_covers(e.line, rule.name) {
                    waived_calls.insert((caller_file, e.line, g.def(files, e.to).name.clone()));
                    continue;
                }
                if !visited[e.to] {
                    visited[e.to] = true;
                    parent[e.to] = Some((u, e.line));
                    queue.push_back(e.to);
                }
            }
        }

        let chain = |n: usize| -> String {
            let mut names = vec![g.def(files, n).name.clone()];
            let mut cur = n;
            while let Some((p, _)) = parent[cur] {
                names.push(g.def(files, p).name.clone());
                cur = p;
            }
            names.reverse();
            names.join(" -> ")
        };

        let mut reported: BTreeSet<(usize, u32)> = BTreeSet::new();
        for (n, &seen) in visited.iter().enumerate() {
            if !seen || is_root(n) {
                continue;
            }
            let def = g.def(files, n);
            let Some(body) = def.body else {
                continue;
            };
            let file = g.nodes[n].file;
            for (line, what) in alloc_sites(&files[file].tokens, body) {
                if reported.insert((file, line)) {
                    out.push(Raw {
                        file,
                        line,
                        rule: rule.name,
                        message: format!(
                            "{what} in `{}` allocates on the dispatch hot path: \
                             reachable from the tick loop via {} — preallocate or \
                             reuse a scratch buffer, or waive no-hot-path-alloc at \
                             the call site to accept the cost",
                            def.name,
                            chain(n),
                        ),
                    });
                }
            }
        }
        for (file, line, callee) in waived_calls {
            out.push(Raw {
                file,
                line,
                rule: rule.name,
                message: format!(
                    "call into `{callee}` can reach a heap allocation from the \
                     tick hot path (accepted at this call site)"
                ),
            });
        }
    }
}

/// Caller-aware `tracer-threading`: a traced entry point whose
/// signature drops the Tracer is exempt when it has at least one
/// same-crate caller and every such caller threads a `Tracer`/`Ctx` —
/// the decision is then reported one level up, where the tracer lives.
pub(crate) fn tracer_threading(files: &[FileIndex], out: &mut Vec<Raw>) {
    let rule = rule_by_name("tracer-threading").expect("registered");
    for (_, file_ixs) in crate_groups(files) {
        if !rule_applies(rule, files[file_ixs[0]].crate_name.as_deref()) {
            continue;
        }
        let g = build_crate_graph(files, &file_ixs);
        let sig_has_tracer = |n: usize| {
            let def = g.def(files, n);
            let toks = &files[g.nodes[n].file].tokens;
            (def.sig.0..=def.sig.1).any(|ix| matches!(ident_at(toks, ix), Some("Tracer" | "Ctx")))
        };
        // Reverse edges once to find callers.
        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); g.nodes.len()];
        for (u, es) in g.edges.iter().enumerate() {
            for e in es {
                callers[e.to].push(u);
            }
        }
        for (n, direct_callers) in callers.iter().enumerate() {
            let def = g.def(files, n);
            if !TRACED_ENTRY_POINTS.contains(&def.name.as_str()) || sig_has_tracer(n) {
                continue;
            }
            let exempt =
                !direct_callers.is_empty() && direct_callers.iter().all(|&u| sig_has_tracer(u));
            if exempt {
                continue;
            }
            out.push(Raw {
                file: g.nodes[n].file,
                line: def.line,
                rule: rule.name,
                message: format!(
                    "`fn {}` is a traced event-emission entry point but its \
                     signature drops the Tracer: decisions made here become \
                     invisible in traces — take `&mut Tracer` (or a `Ctx`, which \
                     carries one); a helper is exempt only when every same-crate \
                     caller threads a Tracer",
                    def.name
                ),
            });
        }
    }
}

/// Builds the snapshot field inventory plus each struct's location
/// (for anchoring `snapshot-version-bump` findings).
pub(crate) fn inventory_with_locations(
    files: &[FileIndex],
) -> (Inventory, BTreeMap<String, (usize, u32)>) {
    let mut inv = Inventory {
        snapshot_version: files.iter().find_map(|f| f.snapshot_version),
        structs: Vec::new(),
    };
    let mut locations = BTreeMap::new();
    for p in snapshot_pairs(files) {
        let st = &files[p.struct_file].structs[p.struct_ix];
        if !st.named {
            continue;
        }
        let crate_label = files[p.struct_file]
            .crate_name
            .clone()
            .unwrap_or_else(|| "unscoped".to_string());
        let key = format!("{crate_label}::{}", st.name);
        if locations.contains_key(&key) {
            continue;
        }
        locations.insert(key.clone(), (p.struct_file, st.line));
        inv.structs
            .push((key, st.fields.iter().map(|f| f.name.clone()).collect()));
    }
    inv.structs.sort();
    (inv, locations)
}

/// `snapshot-version-bump`: diff the current inventory against the
/// committed baseline. A field-list change without a `SNAPSHOT_VERSION`
/// bump is the real hazard; any other drift (bumped but baseline not
/// regenerated, structs added/removed) is a stale baseline, which CI
/// also refuses.
pub(crate) fn snapshot_version_bump(
    files: &[FileIndex],
    current: &Inventory,
    locations: &BTreeMap<String, (usize, u32)>,
    baseline: &Inventory,
    baseline_path: &str,
    out: &mut Vec<Raw>,
) {
    let rule = rule_by_name("snapshot-version-bump").expect("registered");
    let regen = format!(
        "regenerate with `cargo run -p netcrafter-lint -- --emit-inventory {baseline_path}`"
    );
    // Findings with no surviving struct to anchor to go to the file
    // that declares SNAPSHOT_VERSION (the snapshot module).
    let anchor = files
        .iter()
        .position(|f| f.snapshot_version.is_some())
        .unwrap_or(0);
    let version_bumped = current.snapshot_version != baseline.snapshot_version;
    let mut fields_changed = false;

    for (key, fields) in &current.structs {
        let &(file, line) = locations.get(key).expect("inventory keys have locations");
        match baseline.fields_of(key) {
            None => {
                fields_changed = true;
                out.push(Raw {
                    file,
                    line,
                    rule: rule.name,
                    message: format!(
                        "snapshotted struct `{key}` is missing from the \
                         field-inventory baseline ({baseline_path}); {regen}"
                    ),
                });
            }
            Some(base) if base != fields.as_slice() => {
                fields_changed = true;
                let added: Vec<&str> = fields
                    .iter()
                    .filter(|f| !base.contains(f))
                    .map(String::as_str)
                    .collect();
                let removed: Vec<&str> = base
                    .iter()
                    .filter(|f| !fields.contains(f))
                    .map(String::as_str)
                    .collect();
                let what = if added.is_empty() && removed.is_empty() {
                    "fields reordered".to_string()
                } else {
                    let mut parts = Vec::new();
                    if !added.is_empty() {
                        parts.push(format!("added {}", added.join(", ")));
                    }
                    if !removed.is_empty() {
                        parts.push(format!("removed {}", removed.join(", ")));
                    }
                    parts.join("; ")
                };
                let message = if version_bumped {
                    format!(
                        "field list of `{key}` changed ({what}) and \
                         SNAPSHOT_VERSION was bumped; the baseline \
                         {baseline_path} is stale — {regen}"
                    )
                } else {
                    format!(
                        "field list of `{key}` changed ({what}) without a \
                         SNAPSHOT_VERSION bump: old checkpoints would decode as \
                         garbage — bump SNAPSHOT_VERSION in \
                         crates/sim/src/snapshot.rs, then {regen}"
                    )
                };
                out.push(Raw {
                    file,
                    line,
                    rule: rule.name,
                    message,
                });
            }
            Some(_) => {}
        }
    }
    for (key, _) in &baseline.structs {
        if current.fields_of(key).is_none() {
            fields_changed = true;
            out.push(Raw {
                file: anchor,
                line: 1,
                rule: rule.name,
                message: format!(
                    "struct `{key}` recorded in {baseline_path} is no longer \
                     snapshotted (renamed or removed); {regen}"
                ),
            });
        }
    }
    if version_bumped && !fields_changed {
        out.push(Raw {
            file: anchor,
            line: 1,
            rule: rule.name,
            message: format!(
                "SNAPSHOT_VERSION is {:?} but the baseline {baseline_path} \
                 records {:?}; {regen}",
                current.snapshot_version, baseline.snapshot_version
            ),
        });
    }
}

/// Groups file indices by crate, in first-appearance order.
fn crate_groups(files: &[FileIndex]) -> Vec<(Option<String>, Vec<usize>)> {
    let mut order: Vec<Option<String>> = Vec::new();
    let mut groups: BTreeMap<Option<String>, Vec<usize>> = BTreeMap::new();
    for (fx, fi) in files.iter().enumerate() {
        let key = fi.crate_name.clone();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(fx);
    }
    order
        .into_iter()
        .map(|k| {
            let v = groups[&k].clone();
            (k, v)
        })
        .collect()
}
