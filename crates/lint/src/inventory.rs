//! The snapshot field inventory: a committed JSON baseline of every
//! snapshotted struct's field list, used by the `snapshot-version-bump`
//! rule to make field-list changes diff-visible.
//!
//! The format is deliberately tiny (the workspace has no JSON crate):
//!
//! ```json
//! {
//!   "version": 1,
//!   "snapshot_version": 3,
//!   "structs": {
//!     "net::Switch": ["node", "name", "ports"]
//!   }
//! }
//! ```
//!
//! Keys are `<crate>::<Struct>`, field arrays are in declaration order,
//! and struct keys are sorted so regeneration is byte-stable. The
//! parser below accepts exactly what [`Inventory::to_json`] emits (plus
//! whitespace variations) — it is a baseline reader, not a general
//! JSON library.

/// The field inventory of every snapshotted struct in the workspace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Inventory {
    /// The `SNAPSHOT_VERSION` constant's value at generation time.
    pub snapshot_version: Option<u32>,
    /// `(<crate>::<Struct>, fields in declaration order)`, sorted by
    /// key.
    pub structs: Vec<(String, Vec<String>)>,
}

impl Inventory {
    /// Looks up a struct's baseline field list.
    pub fn fields_of(&self, key: &str) -> Option<&[String]> {
        self.structs
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|ix| self.structs[ix].1.as_slice())
    }

    /// Serializes to the canonical (byte-stable) JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n");
        match self.snapshot_version {
            Some(v) => out.push_str(&format!("  \"snapshot_version\": {v},\n")),
            None => out.push_str("  \"snapshot_version\": null,\n"),
        }
        out.push_str("  \"structs\": {");
        for (ix, (key, fields)) in self.structs.iter().enumerate() {
            if ix > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{key}\": ["));
            for (fx, f) in fields.iter().enumerate() {
                if fx > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{f}\""));
            }
            out.push(']');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses the canonical form back. Returns a human-readable error
    /// for anything malformed.
    pub fn parse_json(src: &str) -> Result<Self, String> {
        let mut p = Parser {
            s: src.as_bytes(),
            i: 0,
        };
        p.expect(b'{')?;
        let mut inv = Inventory::default();
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "version" => {
                    let v = p.number_or_null()?.ok_or("\"version\" must be a number")?;
                    if v != 1 {
                        return Err(format!("unsupported inventory version {v}"));
                    }
                }
                "snapshot_version" => inv.snapshot_version = p.number_or_null()?,
                "structs" => {
                    p.expect(b'{')?;
                    if !p.peek_is(b'}') {
                        loop {
                            let name = p.string()?;
                            p.expect(b':')?;
                            p.expect(b'[')?;
                            let mut fields = Vec::new();
                            if !p.peek_is(b']') {
                                loop {
                                    fields.push(p.string()?);
                                    if !p.comma_or(b']')? {
                                        break;
                                    }
                                }
                            } else {
                                p.expect(b']')?;
                            }
                            inv.structs.push((name, fields));
                            if !p.comma_or(b'}')? {
                                break;
                            }
                        }
                    } else {
                        p.expect(b'}')?;
                    }
                }
                other => return Err(format!("unknown inventory key \"{other}\"")),
            }
            if !p.comma_or(b'}')? {
                break;
            }
        }
        inv.structs.sort();
        Ok(inv)
    }
}

/// Cursor over the inventory JSON bytes.
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek_is(&mut self, c: u8) -> bool {
        self.skip_ws();
        self.s.get(self.i) == Some(&c)
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    /// Consumes either `,` (returns true: another element follows) or
    /// the closing delimiter (returns false).
    fn comma_or(&mut self, close: u8) -> Result<bool, String> {
        self.skip_ws();
        match self.s.get(self.i) {
            Some(b',') => {
                self.i += 1;
                Ok(true)
            }
            Some(c) if *c == close => {
                self.i += 1;
                Ok(false)
            }
            _ => Err(format!(
                "expected ',' or '{}' at byte {}",
                close as char, self.i
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i] != b'"' {
            if self.s[self.i] == b'\\' {
                return Err("escapes are not used in inventory keys".to_string());
            }
            self.i += 1;
        }
        if self.i >= self.s.len() {
            return Err("unterminated string".to_string());
        }
        let out = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.i += 1;
        Ok(out)
    }

    fn number_or_null(&mut self) -> Result<Option<u32>, String> {
        self.skip_ws();
        if self.s[self.i..].starts_with(b"null") {
            self.i += 4;
            return Ok(None);
        }
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a number at byte {start}"));
        }
        String::from_utf8_lossy(&self.s[start..self.i])
            .parse()
            .map(Some)
            .map_err(|e| format!("bad number: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Inventory {
        Inventory {
            snapshot_version: Some(3),
            structs: vec![
                (
                    "core::ClusterQueue".into(),
                    vec!["cfg".into(), "queues".into()],
                ),
                ("net::Switch".into(), vec!["ports".into()]),
            ],
        }
    }

    #[test]
    fn round_trips() {
        let inv = sample();
        let json = inv.to_json();
        let back = Inventory::parse_json(&json).expect("parses");
        assert_eq!(inv, back);
    }

    #[test]
    fn empty_struct_map_round_trips() {
        let inv = Inventory {
            snapshot_version: None,
            structs: Vec::new(),
        };
        let back = Inventory::parse_json(&inv.to_json()).expect("parses");
        assert_eq!(inv, back);
    }

    #[test]
    fn lookup_by_key() {
        let inv = sample();
        assert_eq!(inv.fields_of("net::Switch").map(<[String]>::len), Some(1));
        assert!(inv.fields_of("net::Missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Inventory::parse_json("not json").is_err());
        assert!(Inventory::parse_json("{\"version\": 2, \"structs\": {}}").is_err());
    }
}
