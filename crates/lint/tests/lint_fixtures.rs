//! Fixture self-tests: every `bad_*` fixture must fire its rule, every
//! `allowed_*` fixture must be fully waived, and the clean fixture must
//! produce nothing. This is the linter's own regression corpus — CI
//! additionally runs the CLI over each bad fixture and asserts a
//! nonzero exit.

use std::path::{Path, PathBuf};

use netcrafter_lint::{check_path, summarize, Finding};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints a fixture as if it lived in the `net` crate, which is in scope
/// for every rule.
fn lint(name: &str) -> Vec<Finding> {
    check_path(&fixture(name), Path::new("."), Some("net")).expect("fixture readable")
}

fn violations(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.allowed.is_none()).collect()
}

#[track_caller]
fn assert_fires(name: &str, rule: &str, at_least: usize) {
    let findings = lint(name);
    let hits: Vec<_> = violations(&findings)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect();
    assert!(
        hits.len() >= at_least,
        "{name}: expected >= {at_least} unwaived {rule} finding(s), got {findings:?}"
    );
}

#[track_caller]
fn assert_fully_waived(name: &str) {
    let findings = lint(name);
    let summary = summarize(&findings);
    assert_eq!(
        summary.violations, 0,
        "{name}: expected every finding waived, got {findings:?}"
    );
    assert!(
        summary.allowed > 0,
        "{name}: expected waived findings to exist (the fixture must \
         exercise the annotation), got {findings:?}"
    );
}

#[test]
fn bad_unordered_iteration_fires() {
    // Both the import and each struct field use fire.
    assert_fires("bad_unordered_iteration.rs", "no-unordered-iteration", 3);
}

#[test]
fn bad_wall_clock_fires() {
    assert_fires("bad_wall_clock.rs", "no-wall-clock", 2);
}

#[test]
fn bad_wake_contract_fires() {
    assert_fires("bad_wake_contract.rs", "wake-contract", 1);
}

#[test]
fn bad_snapshot_coverage_fires() {
    // Both the pairless impl and the save-only impl fire.
    assert_fires("bad_snapshot_coverage.rs", "snapshot-coverage", 2);
}

#[test]
fn bad_narrowing_fires() {
    assert_fires("bad_narrowing.rs", "no-unchecked-narrowing", 2);
}

#[test]
fn bad_tracer_threading_fires() {
    // Both the trait impl `pop` and the free `stitch_into` fire.
    assert_fires("bad_tracer_threading.rs", "tracer-threading", 2);
}

#[test]
fn bad_ambient_state_fires() {
    // static mut, the atomic static, the Mutex static and thread_local!
    // each fire.
    assert_fires("bad_ambient_state.rs", "no-ambient-state", 4);
}

#[test]
fn bad_hot_path_alloc_fires() {
    // Vec::new, Box::new (in tick) and .to_vec (in tick_burst) each
    // fire; the constructor's Vec::new does not.
    assert_fires("bad_hot_path_alloc.rs", "no-hot-path-alloc", 3);
}

#[test]
fn unused_and_reasonless_allows_fire() {
    assert_fires("bad_unused_allow.rs", "unused-allow", 1);
    assert_fires("bad_unused_allow.rs", "allow-missing-reason", 1);
}

#[test]
fn allowed_fixtures_are_fully_waived() {
    for name in [
        "allowed_unordered_iteration.rs",
        "allowed_wall_clock.rs",
        "allowed_wake_contract.rs",
        "allowed_snapshot_coverage.rs",
        "allowed_narrowing.rs",
        "allowed_tracer_threading.rs",
        "allowed_ambient_state.rs",
        "allowed_hot_path_alloc.rs",
    ] {
        assert_fully_waived(name);
    }
}

#[test]
fn clean_fixture_is_silent() {
    let findings = lint("clean.rs");
    assert!(findings.is_empty(), "clean fixture fired: {findings:?}");
}

#[test]
fn rule_scoping_by_crate() {
    // The same bad file is out of scope for the bench crate (every rule
    // here is sim-facing), so nothing fires.
    let findings = check_path(
        &fixture("bad_unordered_iteration.rs"),
        Path::new("."),
        Some("bench"),
    )
    .expect("fixture readable");
    assert!(
        findings.is_empty(),
        "bench is out of scope for sim rules: {findings:?}"
    );
}

#[test]
fn every_rule_has_bad_and_allowed_coverage() {
    // Keeps the corpus honest as rules are added: each registered rule
    // name must appear in at least one fixture finding above.
    let mut covered: Vec<&str> = Vec::new();
    for name in [
        "bad_unordered_iteration.rs",
        "bad_wall_clock.rs",
        "bad_wake_contract.rs",
        "bad_snapshot_coverage.rs",
        "bad_narrowing.rs",
        "bad_tracer_threading.rs",
        "bad_ambient_state.rs",
        "bad_hot_path_alloc.rs",
    ] {
        for f in lint(name) {
            if !covered.contains(&f.rule) {
                covered.push(f.rule);
            }
        }
    }
    for rule in netcrafter_lint::RULES {
        assert!(
            covered.contains(&rule.name),
            "rule {} has no bad fixture coverage",
            rule.name
        );
    }
}
