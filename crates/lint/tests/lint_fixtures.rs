//! Fixture self-tests: every `bad_*` fixture must fire its rule, every
//! `allowed_*` fixture must be fully waived, and the clean fixture must
//! produce nothing. This is the linter's own regression corpus — CI
//! additionally runs the CLI over each bad fixture and asserts a
//! nonzero exit.

use std::path::{Path, PathBuf};

use netcrafter_lint::{analyze_units, check_path, summarize, Finding, Inventory, SourceUnit};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints a fixture as if it lived in the `net` crate, which is in scope
/// for every rule.
fn lint(name: &str) -> Vec<Finding> {
    check_path(&fixture(name), Path::new("."), Some("net")).expect("fixture readable")
}

/// Lints a fixture against its `<name>.baseline.json` companion, which
/// activates the snapshot-version-bump rule.
fn lint_with_baseline(name: &str) -> Vec<Finding> {
    let path = fixture(name);
    let src = std::fs::read_to_string(&path).expect("fixture readable");
    let baseline_path = path.with_extension("baseline.json");
    let baseline_text = std::fs::read_to_string(&baseline_path).expect("baseline readable");
    let baseline = Inventory::parse_json(&baseline_text).expect("baseline parses");
    let units = [SourceUnit {
        path: path.to_string_lossy().into_owned(),
        src,
        crate_name: Some("net".to_string()),
    }];
    analyze_units(
        &units,
        Some((baseline_path.to_string_lossy().as_ref(), &baseline)),
    )
    .findings
}

fn violations(findings: &[Finding]) -> Vec<&Finding> {
    findings.iter().filter(|f| f.allowed.is_none()).collect()
}

#[track_caller]
fn assert_fires(name: &str, rule: &str, at_least: usize) {
    let findings = lint(name);
    let hits: Vec<_> = violations(&findings)
        .into_iter()
        .filter(|f| f.rule == rule)
        .collect();
    assert!(
        hits.len() >= at_least,
        "{name}: expected >= {at_least} unwaived {rule} finding(s), got {findings:?}"
    );
}

#[track_caller]
fn assert_fully_waived(name: &str) {
    let findings = lint(name);
    let summary = summarize(&findings);
    assert_eq!(
        summary.violations, 0,
        "{name}: expected every finding waived, got {findings:?}"
    );
    assert!(
        summary.allowed > 0,
        "{name}: expected waived findings to exist (the fixture must \
         exercise the annotation), got {findings:?}"
    );
}

#[test]
fn bad_unordered_iteration_fires() {
    // Both the import and each struct field use fire.
    assert_fires("bad_unordered_iteration.rs", "no-unordered-iteration", 3);
}

#[test]
fn bad_wall_clock_fires() {
    assert_fires("bad_wall_clock.rs", "no-wall-clock", 2);
}

#[test]
fn bad_wake_contract_fires() {
    assert_fires("bad_wake_contract.rs", "wake-contract", 1);
}

#[test]
fn bad_snapshot_coverage_fires() {
    // Both the pairless impl and the save-only impl fire.
    assert_fires("bad_snapshot_coverage.rs", "snapshot-coverage", 2);
}

#[test]
fn bad_narrowing_fires() {
    assert_fires("bad_narrowing.rs", "no-unchecked-narrowing", 2);
}

#[test]
fn bad_tracer_threading_fires() {
    // Both the trait impl `pop` and the free `stitch_into` fire.
    assert_fires("bad_tracer_threading.rs", "tracer-threading", 2);
}

#[test]
fn bad_ambient_state_fires() {
    // static mut, the atomic static, the Mutex static and thread_local!
    // each fire.
    assert_fires("bad_ambient_state.rs", "no-ambient-state", 4);
}

#[test]
fn bad_hot_path_alloc_fires() {
    // Vec::new, Box::new (in tick) and .to_vec (in tick_burst) each
    // fire; the constructor's Vec::new does not.
    assert_fires("bad_hot_path_alloc.rs", "no-hot-path-alloc", 3);
}

#[test]
fn bad_snapshot_field_parity_fires() {
    // credits (never referenced), inflight (save-only), backlog
    // (load-only) fire at their declarations; the head/tail order
    // mismatch fires at save_state.
    assert_fires("bad_snapshot_field_parity.rs", "snapshot-field-parity", 4);
}

#[test]
fn bad_hot_path_alloc_interproc_fires() {
    // The Vec::new in flush, two calls below tick, fires with the chain
    // tick -> drain -> flush named in the message.
    let findings = lint("bad_hot_path_alloc_interproc.rs");
    let hit = violations(&findings)
        .into_iter()
        .find(|f| f.rule == "no-hot-path-alloc")
        .unwrap_or_else(|| panic!("no interprocedural finding: {findings:?}"));
    assert!(
        hit.message.contains("tick -> drain -> flush"),
        "chain missing from message: {}",
        hit.message
    );
}

#[test]
fn bad_snapshot_version_bump_fires() {
    let findings = lint_with_baseline("bad_snapshot_version_bump.rs");
    let hits: Vec<_> = violations(&findings)
        .into_iter()
        .filter(|f| f.rule == "snapshot-version-bump")
        .collect();
    assert_eq!(hits.len(), 1, "expected one version-bump hit: {findings:?}");
    assert!(
        hits[0].message.contains("added ecc"),
        "message should name the added field: {}",
        hits[0].message
    );
}

#[test]
fn allowed_snapshot_version_bump_is_fully_waived() {
    let findings = lint_with_baseline("allowed_snapshot_version_bump.rs");
    let summary = summarize(&findings);
    assert_eq!(summary.violations, 0, "expected waived: {findings:?}");
    assert!(
        summary.allowed > 0,
        "waiver must be exercised: {findings:?}"
    );
}

#[test]
fn unused_and_reasonless_allows_fire() {
    assert_fires("bad_unused_allow.rs", "unused-allow", 1);
    assert_fires("bad_unused_allow.rs", "allow-missing-reason", 1);
}

#[test]
fn allowed_fixtures_are_fully_waived() {
    for name in [
        "allowed_unordered_iteration.rs",
        "allowed_wall_clock.rs",
        "allowed_wake_contract.rs",
        "allowed_snapshot_coverage.rs",
        "allowed_narrowing.rs",
        "allowed_tracer_threading.rs",
        "allowed_ambient_state.rs",
        "allowed_hot_path_alloc.rs",
        "allowed_snapshot_field_parity.rs",
        "allowed_hot_path_alloc_interproc.rs",
    ] {
        assert_fully_waived(name);
    }
}

#[test]
fn clean_fixture_is_silent() {
    let findings = lint("clean.rs");
    assert!(findings.is_empty(), "clean fixture fired: {findings:?}");
}

#[test]
fn rule_scoping_by_crate() {
    // The same bad file is out of scope for the bench crate (every rule
    // here is sim-facing), so nothing fires.
    let findings = check_path(
        &fixture("bad_unordered_iteration.rs"),
        Path::new("."),
        Some("bench"),
    )
    .expect("fixture readable");
    assert!(
        findings.is_empty(),
        "bench is out of scope for sim rules: {findings:?}"
    );
}

#[test]
fn every_rule_has_bad_and_allowed_coverage() {
    // Keeps the corpus honest as rules are added: each registered rule
    // name must appear in at least one fixture finding above.
    let mut covered: Vec<&str> = Vec::new();
    for name in [
        "bad_unordered_iteration.rs",
        "bad_wall_clock.rs",
        "bad_wake_contract.rs",
        "bad_snapshot_coverage.rs",
        "bad_narrowing.rs",
        "bad_tracer_threading.rs",
        "bad_ambient_state.rs",
        "bad_hot_path_alloc.rs",
        "bad_snapshot_field_parity.rs",
        "bad_hot_path_alloc_interproc.rs",
    ] {
        for f in lint(name) {
            if !covered.contains(&f.rule) {
                covered.push(f.rule);
            }
        }
    }
    for f in lint_with_baseline("bad_snapshot_version_bump.rs") {
        if !covered.contains(&f.rule) {
            covered.push(f.rule);
        }
    }
    for rule in netcrafter_lint::RULES {
        assert!(
            covered.contains(&rule.name),
            "rule {} has no bad fixture coverage",
            rule.name
        );
    }
}
