//! The linter's ultimate fixture is the workspace itself: this test
//! runs the full pass over the real source tree and asserts zero
//! unwaived findings — exactly what the `ci.sh` lint step enforces —
//! plus some structural properties of the scan.

use std::path::Path;

use netcrafter_lint::{check_workspace, summarize, workspace_files};

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root")
}

#[test]
fn workspace_has_zero_unwaived_findings() {
    let findings = check_workspace(workspace_root()).expect("workspace readable");
    let violations: Vec<_> = findings.iter().filter(|f| f.allowed.is_none()).collect();
    assert!(
        violations.is_empty(),
        "determinism lint violations in the workspace:\n{}",
        violations
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_waivers_are_all_load_bearing() {
    // `unused-allow` would surface as a violation above, but assert the
    // inverse explicitly too: some findings exist and every one carries
    // a justification (the annotations in cq.rs / trim.rs are real).
    let findings = check_workspace(workspace_root()).expect("workspace readable");
    let summary = summarize(&findings);
    assert_eq!(summary.violations, 0);
    assert!(
        summary.allowed >= 2,
        "expected the documented waived sites (ClusterQueue::pop, trim \
         entry points) to be exercised, got {summary:?}"
    );
}

#[test]
fn scan_covers_every_sim_crate() {
    let files = workspace_files(workspace_root()).expect("workspace readable");
    for krate in netcrafter_lint::rules::SIM_CRATES {
        assert!(
            files.iter().any(|f| f
                .components()
                .any(|c| c.as_os_str().to_string_lossy() == *krate)),
            "scan misses crate {krate}"
        );
    }
    // The linter's own sources (and their on-purpose-bad fixtures) are
    // excluded from the workspace pass.
    assert!(
        !files
            .iter()
            .any(|f| f.to_string_lossy().contains("crates/lint")),
        "the linter must not scan itself"
    );
}
