//! Fixture: snapshot-field-parity — every declared field must round-trip
//! through both save_state and load_state, in matching order.

pub struct Gadget {
    /// Fires: referenced in neither body — silently resets on restore.
    credits: u64,
    /// Fires: saved but never loaded — desynchronizes the decode stream.
    inflight: u64,
    /// Fires: loaded but never saved — reads bytes that were never written.
    backlog: u64,
    head: u64,
    tail: u64,
}

impl Component for Gadget {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {}

    fn busy(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "gadget"
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }

    // Fires: head/tail are written here in the opposite order to the one
    // load_state consumes them in — the byte stream is positional.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.inflight);
        w.u64(self.tail);
        w.u64(self.head);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.backlog = r.u64()?;
        self.head = r.u64()?;
        self.tail = r.u64()?;
        Ok(())
    }
}
