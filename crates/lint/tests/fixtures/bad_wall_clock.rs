//! Fixture: wall-clock reads in sim logic must fire no-wall-clock.
use std::time::Instant;

pub fn tick_duration() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

pub fn epoch() -> u64 {
    let now = std::time::SystemTime::now();
    let _ = now;
    0
}
