//! Fixture: an `impl Component` without `next_wake` must fire
//! wake-contract.

pub struct Widget {
    busy: bool,
}

impl Component for Widget {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {}

    fn busy(&self) -> bool {
        self.busy
    }

    fn name(&self) -> &str {
        "widget"
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        self.busy.save(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.busy = Snap::load(r)?;
        Ok(())
    }
}
