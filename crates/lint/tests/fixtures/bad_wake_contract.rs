//! Fixture: an `impl Component` without `next_wake` must fire
//! wake-contract.

pub struct Widget {
    busy: bool,
}

impl Component for Widget {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {}

    fn busy(&self) -> bool {
        self.busy
    }

    fn name(&self) -> &str {
        "widget"
    }
}
