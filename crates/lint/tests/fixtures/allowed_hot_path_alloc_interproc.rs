//! Fixture: a call-site waiver accepts the allocation cost of a reached
//! helper and cuts the interprocedural walk there — the waived call is
//! still reported (as waived) so the annotation registers as used.

pub struct Spiller {
    held: Vec<u64>,
}

impl Component for Spiller {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        // lint:allow(no-hot-path-alloc) spill is a cold overflow path, hit only when the arena is exhausted
        self.spill(ctx);
    }

    fn busy(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "spiller"
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64_slice(&self.held);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.held = r.u64_slice()?;
        Ok(())
    }
}

impl Spiller {
    fn spill(&mut self, ctx: &mut Ctx<'_>) {
        let overflow = self.held.to_vec();
        for word in overflow {
            ctx.send_word(word);
        }
        self.held.clear();
    }
}
