//! Fixture: a justified allow-annotation waives the finding.

// lint:allow(no-unordered-iteration) membership-only set, never iterated
use std::collections::HashSet;

pub struct Dedup {
    // lint:allow(no-unordered-iteration) membership-only set, never iterated
    seen: HashSet<u64>,
}
