//! Fixture: entry points that thread the Tracer (or a Ctx) are clean;
//! an annotated convenience wrapper is waived.

impl EgressQueue for LoudQueue {
    fn pop(&mut self, now: Cycle, tracer: &mut Tracer) -> Option<Flit> {
        self.q.pop_front()
    }
}

pub fn push_flit(ctx: &mut Ctx<'_>, flit: Flit) {
    ctx.send_flit(flit);
}

impl LoudQueue {
    // lint:allow(tracer-threading) test-only convenience wrapper over EgressQueue::pop
    pub fn pop(&mut self, now: Cycle) -> Option<Flit> {
        let mut tracer = Tracer::off();
        EgressQueue::pop(self, now, &mut tracer)
    }
}
