//! Fixture: annotated impl relying on the EveryCycle default is waived,
//! and a test-module impl is out of scope entirely.

pub struct Widget;

// lint:allow(wake-contract) dense component, genuinely ticks every cycle
impl Component for Widget {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
    fn busy(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "widget"
    }
    fn save_state(&self, _w: &mut SnapshotWriter) {}
    fn load_state(&mut self, _r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    struct Stub;
    impl Component for Stub {
        fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "stub"
        }
    }
}
