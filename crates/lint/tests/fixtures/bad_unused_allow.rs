//! Fixture: a stale annotation (nothing to suppress) and a reason-less
//! annotation both fire meta-rules.

// lint:allow(no-unordered-iteration) nothing here actually uses one
pub fn clean() -> u32 {
    42
}

pub fn also_clean() -> u32 {
    // lint:allow(no-wall-clock)
    let t = 7;
    t
}
