//! Fixture: snapshot-version-bump — the field list diverged from the
//! committed baseline (`bad_snapshot_version_bump.baseline.json`, which
//! records `Frame` as [id, bytes] at the same version) without bumping
//! SNAPSHOT_VERSION, so old checkpoints would decode as garbage.

pub const SNAPSHOT_VERSION: u32 = 3;

pub struct Frame {
    pub id: u64,
    pub bytes: u64,
    /// Added since the baseline was generated — fires.
    pub ecc: u64,
}

impl Snap for Frame {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.id);
        w.u64(self.bytes);
        w.u64(self.ecc);
    }

    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Frame {
            id: r.u64()?,
            bytes: r.u64()?,
            ecc: r.u64()?,
        })
    }
}
