//! Fixture: a deliberate layout change whose compatibility story lives
//! outside SNAPSHOT_VERSION (here: a struct that has never shipped in a
//! checkpoint) is waived at the declaration.

pub const SNAPSHOT_VERSION: u32 = 3;

// lint:allow(snapshot-version-bump) prototype struct; no checkpoint containing it has ever been written
pub struct Frame {
    pub id: u64,
    pub bytes: u64,
    pub ecc: u64,
}

impl Snap for Frame {
    fn save(&self, w: &mut SnapshotWriter) {
        w.u64(self.id);
        w.u64(self.bytes);
        w.u64(self.ecc);
    }

    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Frame {
            id: r.u64()?,
            bytes: r.u64()?,
            ecc: r.u64()?,
        })
    }
}
