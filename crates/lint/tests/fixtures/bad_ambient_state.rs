//! Fixture: ambient mutable state in sim logic must fire
//! no-ambient-state — the engine cannot partition state it cannot see.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static mut FLIT_COUNT: u64 = 0;

static SEEN: AtomicU64 = AtomicU64::new(0);

static LOG: Mutex<Vec<u64>> = Mutex::new(Vec::new());

thread_local! {
    static SCRATCH: std::cell::RefCell<Vec<u8>> = std::cell::RefCell::new(Vec::new());
}

pub fn observe(cycle: u64) {
    SEEN.store(cycle, Ordering::Relaxed);
}
