//! Fixture: a justified tick-body allocation is waived; preallocated
//! buffers reused across ticks never fire.

pub struct Widget {
    scratch: Vec<u64>,
}

impl Component for Widget {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        // Reusing the preallocated scratch field: no finding.
        self.scratch.clear();
        while let Some(msg) = ctx.recv() {
            self.scratch.push(msg.label_hash());
        }
        // lint:allow(no-hot-path-alloc) cold error path, runs at most once per simulation
        let report = Box::new(self.scratch.len());
        drop(report);
    }

    fn busy(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "widget"
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64_slice(&self.scratch);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.scratch = r.u64_slice()?;
        Ok(())
    }
}
