//! Fixture: a justified narrowing cast is waived; checked conversions
//! never fire.

pub fn node_of(index: usize) -> u16 {
    // lint:allow(no-unchecked-narrowing) index < 4 by construction (two clusters x two switches)
    index as u16
}

pub fn checked(index: usize) -> u16 {
    u16::try_from(index).expect("node id fits u16")
}
