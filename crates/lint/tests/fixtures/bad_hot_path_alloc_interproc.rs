//! Fixture: the interprocedural half of no-hot-path-alloc — an
//! allocation in a helper reached from tick fires at the allocation
//! site, with the call chain named.

pub struct Pump {
    staged: Vec<u64>,
}

impl Component for Pump {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        self.drain(ctx);
    }

    fn busy(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "pump"
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64_slice(&self.staged);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.staged = r.u64_slice()?;
        Ok(())
    }
}

impl Pump {
    fn drain(&mut self, ctx: &mut Ctx<'_>) {
        self.flush(ctx);
    }

    // Two levels below tick: the fixpoint still reaches it.
    fn flush(&mut self, ctx: &mut Ctx<'_>) {
        // Fires: reachable via tick -> drain -> flush.
        let mut batch = Vec::new();
        while let Some(msg) = ctx.recv() {
            batch.push(msg);
        }
        for msg in batch {
            ctx.send(msg);
        }
    }
}
