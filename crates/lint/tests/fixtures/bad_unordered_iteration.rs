//! Fixture: std hash collections in sim-facing code must fire
//! no-unordered-iteration.
use std::collections::{HashMap, HashSet};

pub struct RouteTable {
    routes: HashMap<u16, usize>,
    seen: HashSet<u64>,
}

impl RouteTable {
    pub fn total(&self) -> usize {
        // Iteration over a RandomState map: the classic leak.
        self.routes.values().sum()
    }
}
