//! Fixture: idiomatic deterministic sim code fires nothing.
use std::collections::BTreeMap;

pub struct Table {
    routes: BTreeMap<u16, usize>,
}

impl Component for Table {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx.cycle();
    }
    fn busy(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "table"
    }
    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }
    fn save_state(&self, w: &mut SnapshotWriter) {
        self.routes.save(w);
    }
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.routes = Snap::load(r)?;
        Ok(())
    }
}

impl EgressQueue for Table {
    fn pop(&mut self, _now: Cycle, tracer: &mut Tracer) -> Option<Flit> {
        let _ = tracer;
        None
    }
}

pub fn widen(x: u16) -> u64 {
    // Widening casts are fine; only u8/u16 narrowing is flagged.
    x as u64
}

pub fn checked_narrow(x: usize) -> u16 {
    u16::try_from(x).expect("fits")
}
