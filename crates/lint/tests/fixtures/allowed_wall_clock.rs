//! Fixture: an annotated host-timing site is waived.

pub fn host_elapsed() -> u128 {
    // lint:allow(no-wall-clock) host-side progress reporting, never read by sim logic
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
