//! Fixture: an event-emission entry point whose signature drops the
//! Tracer must fire tracer-threading.

impl EgressQueue for SilentQueue {
    fn pop(&mut self, now: Cycle) -> Option<Flit> {
        self.q.pop_front()
    }
}

pub fn stitch_into(parent: &mut Flit, cand: Flit) -> u64 {
    parent.stitch(cand);
    1
}
