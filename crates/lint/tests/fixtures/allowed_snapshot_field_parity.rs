//! Fixture: restore-invariant fields are waived per field, at the
//! declaration; snapshotted fields never fire.

pub struct Meter {
    /// Construction-time config: legitimately not serialized.
    // lint:allow(snapshot-field-parity) construction-time config; identical in the restore target by construction
    rate: u64,
    count: u64,
}

impl Component for Meter {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {}

    fn busy(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "meter"
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.count);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.count = r.u64()?;
        Ok(())
    }
}
