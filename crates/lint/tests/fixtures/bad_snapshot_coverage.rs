//! Fixture: an `impl Component` missing the `save_state`/`load_state`
//! pair must fire snapshot-coverage (the trait defaults panic, so a
//! checkpoint of any system containing the component aborts).

pub struct Opaque {
    queued: Vec<u64>,
}

impl Component for Opaque {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {}

    fn busy(&self) -> bool {
        !self.queued.is_empty()
    }

    fn name(&self) -> &str {
        "opaque"
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }
}

pub struct HalfDone {
    queued: Vec<u64>,
}

impl Component for HalfDone {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {}

    fn busy(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "half-done"
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }

    // Saving without loading still fires: both halves are required.
    fn save_state(&self, w: &mut SnapshotWriter) {
        self.queued.save(w);
    }
}
