//! Fixture: an annotated process-wide default that never feeds
//! simulation outcomes is waived.
use std::sync::atomic::AtomicBool;

// lint:allow(no-ambient-state) CLI default read once before the engine is built; never mutated mid-run
static LEGACY_DEFAULT: AtomicBool = AtomicBool::new(false);

pub fn legacy() -> &'static AtomicBool {
    &LEGACY_DEFAULT
}
