//! Fixture: allocator calls inside `tick`/`tick_burst` bodies must fire
//! no-hot-path-alloc. Allocation outside tick bodies never fires.

pub struct Widget {
    staged: Vec<u64>,
}

impl Component for Widget {
    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        // A fresh per-tick buffer: exactly the churn the arena removes.
        let mut scratch = Vec::new();
        while let Some(msg) = ctx.recv() {
            scratch.push(Box::new(msg));
        }
        self.staged = scratch.len() as u64;
    }

    fn tick_burst(&mut self, ctx: &mut Ctx<'_>) -> BurstOutcome {
        let copied = self.staged.to_vec();
        drop(copied);
        BurstOutcome {
            busy: false,
            wake: Wake::OnMessage,
        }
    }

    fn busy(&self) -> bool {
        false
    }

    fn name(&self) -> &str {
        "widget"
    }

    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }

    fn save_state(&self, _w: &mut SnapshotWriter) {}

    fn load_state(&mut self, _r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        Ok(())
    }
}

/// Construction-time allocation is fine: only tick bodies are hot.
pub fn build() -> Widget {
    Widget {
        staged: Vec::new(),
    }
}
