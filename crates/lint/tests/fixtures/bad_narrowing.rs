//! Fixture: bare narrowing casts must fire no-unchecked-narrowing.

pub fn node_of(index: usize) -> u16 {
    index as u16
}

pub fn sector_count(bytes: u32) -> u8 {
    (bytes / 32) as u8
}
