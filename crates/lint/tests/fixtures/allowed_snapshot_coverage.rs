//! Fixture: a waived snapshot-less impl passes, and test-module impls
//! are out of scope entirely.

pub struct Probe;

// lint:allow(snapshot-coverage) debug-only probe, never built into a checkpointable system
impl Component for Probe {
    fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
    fn busy(&self) -> bool {
        false
    }
    fn name(&self) -> &str {
        "probe"
    }
    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::OnMessage
    }
}

#[cfg(test)]
mod tests {
    struct Stub;
    impl Component for Stub {
        fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "stub"
        }
    }
}
