//! Mutation test for `snapshot-field-parity`: for every field a real
//! component's save body references, erase those references (rename the
//! identifier within the save-body line span — the linter lexes, it
//! never compiles) and assert the rule catches the now load-only field.
//! This is the guarantee the rule exists for: no single dropped field
//! write can slip through a restore silently.

use std::path::Path;

use netcrafter_lint::index::index_file;
use netcrafter_lint::lexer::Tok;
use netcrafter_lint::{analyze_units, crate_of, workspace_files, SourceUnit};

/// The save/load naming convention per impl kind, as the parity rule
/// pairs them.
fn pair_names(trait_name: Option<&str>) -> (&'static str, &'static str) {
    match trait_name {
        Some("Snap") => ("save", "load"),
        _ => ("save_state", "load_state"),
    }
}

/// Renames word-boundary occurrences of `field` to `__mutated__` on
/// 1-based lines `span.0..=span.1` of `src`.
fn rename_in_span(src: &str, field: &str, span: (u32, u32)) -> String {
    let mut out = Vec::new();
    for (ix, line) in src.lines().enumerate() {
        let ln = ix as u32 + 1;
        if ln < span.0 || ln > span.1 {
            out.push(line.to_string());
            continue;
        }
        let is_word = |c: char| c.is_ascii_alphanumeric() || c == '_';
        let mut rewritten = String::with_capacity(line.len());
        let mut rest = line;
        while let Some(pos) = rest.find(field) {
            let before_ok = rest[..pos]
                .chars()
                .last()
                .or_else(|| rewritten.chars().last())
                .is_none_or(|c| !is_word(c));
            let end = pos + field.len();
            let after_ok = rest[end..].chars().next().is_none_or(|c| !is_word(c));
            if before_ok && after_ok {
                rewritten.push_str(&rest[..pos]);
                rewritten.push_str("__mutated__");
                rest = &rest[end..];
            } else {
                let step = rest[pos..].chars().next().map_or(1, char::len_utf8);
                rewritten.push_str(&rest[..pos + step]);
                rest = &rest[pos + step..];
            }
        }
        rewritten.push_str(rest);
        out.push(rewritten);
    }
    out.join("\n")
}

#[test]
fn every_saved_field_write_is_load_bearing() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let mut mutations = 0usize;
    for path in workspace_files(&root).expect("workspace walk") {
        let rel = path.strip_prefix(&root).unwrap_or(&path);
        let crate_name = crate_of(rel);
        let src = std::fs::read_to_string(&path).expect("source readable");
        let rel_str = rel.to_string_lossy().into_owned();
        let fi = index_file(&rel_str, &src, crate_name.as_deref());

        for im in &fi.impls {
            let (save_name, load_name) = pair_names(im.trait_name.as_deref());
            let Some(save) = im.fns.iter().find(|f| f.name == save_name) else {
                continue;
            };
            let Some(load) = im.fns.iter().find(|f| f.name == load_name) else {
                continue;
            };
            let (Some(save_body), Some(_)) = (save.body, load.body) else {
                continue;
            };
            // Same-file struct resolution keeps the mutated unit
            // self-contained for re-analysis.
            let Some(st) = fi.structs.iter().find(|s| s.name == im.self_ty && s.named) else {
                continue;
            };
            let span = (
                fi.tokens[save_body.0].line,
                fi.tokens[save_body.1.min(fi.tokens.len() - 1)].line,
            );
            for field in &st.fields {
                let referenced = (save_body.0..save_body.1)
                    .any(|i| matches!(&fi.tokens[i].tok, Tok::Ident(name) if name == &field.name));
                if !referenced {
                    continue;
                }
                let mutated = rename_in_span(&src, &field.name, span);
                let units = [SourceUnit {
                    path: rel_str.clone(),
                    src: mutated,
                    crate_name: crate_name.clone(),
                }];
                let findings = analyze_units(&units, None).findings;
                let caught = findings.iter().any(|f| {
                    f.rule == "snapshot-field-parity"
                        && f.allowed.is_none()
                        && f.message.contains(&format!("`{}`", field.name))
                });
                assert!(
                    caught,
                    "dropping the {} write of `{}::{}.{}` went undetected; findings: {:#?}",
                    save_name,
                    crate_name.as_deref().unwrap_or("?"),
                    st.name,
                    field.name,
                    findings
                );
                mutations += 1;
            }
        }
    }
    // The floor keeps this test honest: if indexing regresses and stops
    // seeing real components, zero mutations would vacuously pass.
    assert!(
        mutations >= 15,
        "expected to mutate at least 15 field writes across the workspace, got {mutations}"
    );
}
