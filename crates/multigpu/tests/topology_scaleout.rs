//! Scale-out fabrics end to end: the fat-tree and torus presets must
//! run real workloads to completion across multi-hop paths, conserve
//! flits at every switch, stay bit-identical across schedulers, and
//! round-trip their per-switch controller state through a snapshot.

use netcrafter_multigpu::{Experiment, RunResult, System, SystemVariant};
use netcrafter_proto::{SystemConfig, TopologyConfig};
use netcrafter_workloads::{Scale, Workload};

/// Quick-scale compute on a scale-out preset: 2 CUs per GPU, with the
/// kernel launch widened by `Scale::for_gpus` so the per-GPU load of
/// the 4-GPU mesh carries over to the bigger fabric.
fn scale_out(mut cfg: SystemConfig, workload: Workload, variant: SystemVariant) -> Experiment {
    cfg.cus_per_gpu = 2;
    let scale = Scale::tiny().for_gpus(cfg.total_gpus());
    Experiment::quick(workload, variant)
        .with_base_cfg(cfg)
        .with_scale(scale)
}

/// The fabric presets every test sweeps: both scale-out builders, plus a
/// torus with a 3-ring so the dateline virtual channels (only present on
/// rings of length ≥ 3) forward real traffic, not just unit-test flits.
fn fabrics() -> Vec<(&'static str, SystemConfig)> {
    let mut torus3 = SystemConfig::paper_baseline();
    torus3.topology = TopologyConfig::parse_spec("torus:3x1x1:g=2").expect("valid spec");
    vec![
        ("fat-tree-8", SystemConfig::fat_tree_8()),
        ("torus-8", SystemConfig::torus_8()),
        ("torus-3x1x1", torus3),
    ]
}

/// Every switch must see traffic, and — with no stitching or pooling to
/// merge flits — every flit that arrives at a switch must leave it:
/// multi-hop forwarding neither drops nor duplicates.
#[test]
fn scale_out_fabrics_complete_and_conserve_flits() {
    for (name, cfg) in fabrics() {
        let r: RunResult = scale_out(cfg, Workload::Gups, SystemVariant::Baseline).run();
        assert!(r.exec_cycles > 0, "{name}: must simulate");
        let m = &r.metrics;
        assert!(
            m.counter("net.inter.flits") > 0,
            "{name}: traffic must cross the fabric"
        );
        let mut arrived = 0u64;
        let mut egressed = 0u64;
        for s in 0..cfg.topology.num_switches() {
            let a = m.counter(&format!("switch{s}.arrived"));
            assert!(a > 0, "{name}: switch {s} must forward traffic");
            arrived += a;
            // `.flits` (with the dot) is the per-port egress total;
            // data_flits/ptw_flits/stitched_flits end in `_flits`.
            egressed += m
                .counters_with_prefix(&format!("switch{s}.port"))
                .filter(|(k, _)| k.ends_with(".flits"))
                .map(|(_, v)| v)
                .sum::<u64>();
        }
        assert_eq!(
            arrived, egressed,
            "{name}: flits arriving at switches must equal flits egressed"
        );
    }
}

/// Deterministic multi-hop routing: the conservative parallel scheduler
/// (one domain per cluster *and* per switch) must reproduce the
/// sequential run bit for bit on every fabric, including with the
/// per-switch NetCrafter controllers enabled.
#[test]
fn scale_out_runs_are_bit_identical_across_schedulers() {
    for (name, cfg) in fabrics() {
        for variant in [SystemVariant::Baseline, SystemVariant::NetCrafter] {
            let seq = scale_out(cfg, Workload::Gups, variant).run();
            let par = scale_out(cfg, Workload::Gups, variant)
                .with_threads(4)
                .run();
            assert_eq!(
                seq.exec_cycles, par.exec_cycles,
                "{name}/{variant:?}: cycle counts diverge"
            );
            assert_eq!(
                seq.metrics.to_kv(),
                par.metrics.to_kv(),
                "{name}/{variant:?}: metrics diverge"
            );
        }
    }
}

/// Builds the system a NetCrafter fat-tree-8 experiment simulates,
/// without running it.
fn build_fat_tree_system() -> System {
    let exp = scale_out(
        SystemConfig::fat_tree_8(),
        Workload::Gups,
        SystemVariant::NetCrafter,
    );
    let cfg = exp.variant.apply(exp.base_cfg);
    let kernel = exp
        .workload
        .generate(&exp.scale, cfg.total_gpus(), exp.seed);
    System::build(cfg, &kernel)
}

/// Snapshot round-trip with per-switch controller state: a fat-tree has
/// six switches, each with its own NetCrafter cluster queues mid-flight
/// at the snapshot point, and save ∘ load must be the identity.
#[test]
fn per_switch_controller_state_survives_a_snapshot_round_trip() {
    let mut sys = build_fat_tree_system();
    sys.run_until(2_000);
    let hash = sys.state_hash();
    let snapshot = sys.save_snapshot();

    let mut copy = build_fat_tree_system();
    assert_ne!(copy.state_hash(), hash, "cycle-0 state must differ");
    copy.restore(&snapshot).expect("snapshot restores");
    assert_eq!(copy.state_hash(), hash, "state hash survives a round trip");
    assert_eq!(copy.save_snapshot(), snapshot, "re-encoding is identical");

    // Both replicas must agree after simulating on from the restore
    // point — the restored controllers keep pooling/stitching decisions
    // on the same cycles.
    assert_eq!(sys.run(1_000_000), copy.run(1_000_000));
    assert_eq!(sys.state_hash(), copy.state_hash());
}
