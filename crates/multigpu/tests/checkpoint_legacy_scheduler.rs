//! Restore equivalence under the legacy tick-everything scheduler.
//!
//! This lives in its own integration-test binary because the scheduler
//! default is process-global: flipping it here must not race the other
//! checkpoint tests, which run under the event-driven default.

use netcrafter_multigpu::{CheckpointPlan, Experiment, SystemVariant};
use netcrafter_workloads::Workload;

#[test]
fn snapshot_taken_under_legacy_scheduler_round_trips() {
    netcrafter_sim::set_default_scheduler(netcrafter_sim::SchedulerMode::Legacy);
    let exp = || Experiment::quick(Workload::Gups, SystemVariant::NetCrafter);

    let cold = exp().run();
    let mid = cold.exec_cycles / 2;
    assert!(mid > 0);

    let take = CheckpointPlan {
        checkpoint_at: Some(mid),
        restore_from: None,
        fork_at: None,
        fork: None,
    };
    let ckpt = exp().run_checkpointed(&take).expect("no restore involved");
    let (cycle, bytes) = ckpt.snapshot.expect("checkpoint requested");
    assert_eq!(cycle, mid);
    assert_eq!(cold.metrics.to_kv(), ckpt.result.metrics.to_kv());

    let restore = CheckpointPlan {
        checkpoint_at: None,
        restore_from: Some(bytes),
        fork_at: None,
        fork: None,
    };
    let warm = exp().run_checkpointed(&restore).expect("snapshot restores");
    assert_eq!(warm.resumed_at, mid);
    assert_eq!(cold.exec_cycles, warm.result.exec_cycles);
    assert_eq!(cold.metrics.to_kv(), warm.result.metrics.to_kv());
}
