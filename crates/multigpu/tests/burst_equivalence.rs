//! Burst-vs-scalar equivalence: dispatching woken components through
//! `tick_burst` (the default since the batched hot path landed) must
//! reproduce the scalar tick + busy + next_wake reference byte for byte
//! — `Metrics`, chrome-trace JSON, and per-link time series — on the
//! fig14 matrix and on a multi-hop fat-tree trace. Every natively
//! ported component (Switch, Rdma, Dram, and the EgressPort/Cluster
//! Queue machinery they drive) sits on these paths.

use netcrafter_multigpu::{Experiment, RunResult, SystemVariant, TraceData, TraceOptions};
use netcrafter_proto::SystemConfig;
use netcrafter_sim::TraceConfig;
use netcrafter_workloads::{Scale, Workload};

fn traced(exp: &Experiment) -> (RunResult, TraceData) {
    let opts = TraceOptions {
        config: Some(TraceConfig::default()),
        sample_window: Some(256),
    };
    exp.run_traced(&opts)
}

fn assert_identical(scalar: (RunResult, TraceData), burst: (RunResult, TraceData), what: &str) {
    assert_eq!(
        scalar.0.exec_cycles, burst.0.exec_cycles,
        "{what}: cycle counts diverge"
    );
    assert_eq!(
        scalar.0.metrics.to_kv(),
        burst.0.metrics.to_kv(),
        "{what}: metrics diverge"
    );
    assert_eq!(
        scalar.1.trace.to_chrome_json(),
        burst.1.trace.to_chrome_json(),
        "{what}: chrome-trace JSON diverges"
    );
    assert_eq!(
        scalar.1.links_to_jsonl(),
        burst.1.links_to_jsonl(),
        "{what}: per-link time series diverge"
    );
}

#[test]
fn burst_metrics_are_bit_identical_across_the_fig14_variants() {
    // A slice of the fig14 matrix: every NetCrafter mechanism
    // (stitching, pooling, sequencing, trimming) runs under both
    // dispatch modes.
    for variant in [
        SystemVariant::Baseline,
        SystemVariant::NetCrafter,
        SystemVariant::StitchOnly,
    ] {
        for workload in [Workload::Gups, Workload::Atax] {
            let scalar = Experiment::quick(workload, variant)
                .with_burst_dispatch(false)
                .run();
            let burst = Experiment::quick(workload, variant).run();
            assert_eq!(
                scalar.exec_cycles, burst.exec_cycles,
                "{workload:?}/{variant:?}: cycle counts diverge"
            );
            assert_eq!(
                scalar.metrics.to_kv(),
                burst.metrics.to_kv(),
                "{workload:?}/{variant:?}: metrics diverge"
            );
        }
    }
}

#[test]
fn burst_trace_and_timeseries_bytes_are_identical() {
    let exp = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter);
    let scalar = traced(&exp.clone().with_burst_dispatch(false));
    let burst = traced(&exp);
    assert_identical(scalar, burst, "fig14/gups");
}

#[test]
fn burst_matches_scalar_on_a_fat_tree_8_trace() {
    // Multi-hop traffic through six switches: the Switch burst path (and
    // its fused status pass) carries every flit more than once.
    let mut cfg = SystemConfig::fat_tree_8();
    cfg.cus_per_gpu = 2;
    let scale = Scale::tiny().for_gpus(cfg.total_gpus());
    let exp = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter)
        .with_base_cfg(cfg)
        .with_scale(scale);
    let scalar = traced(&exp.clone().with_burst_dispatch(false));
    let burst = traced(&exp);
    assert_identical(scalar, burst, "fat-tree-8/gups");
}

#[test]
fn burst_dispatch_composes_with_the_parallel_scheduler() {
    // Worker domains inherit the engine's burst flag; scalar-parallel
    // must equal burst-parallel must equal burst-sequential.
    let exp = Experiment::quick(Workload::Mt, SystemVariant::NetCrafter);
    let seq_burst = exp.clone().run();
    let par_scalar = exp.clone().with_threads(4).with_burst_dispatch(false).run();
    let par_burst = exp.with_threads(4).run();
    assert_eq!(seq_burst.metrics.to_kv(), par_scalar.metrics.to_kv());
    assert_eq!(seq_burst.metrics.to_kv(), par_burst.metrics.to_kv());
}
