//! Determinism of checkpoint/restore on real multi-GPU simulations:
//! pausing at an epoch barrier, snapshotting, and continuing in a fresh
//! process image must be byte-identical to the uninterrupted run —
//! `Metrics`, chrome-trace JSON, per-link time series and the engine
//! state hash alike. ci.sh enforces the same contract end-to-end through
//! the `simulate` CLI; these tests pin it per-layer so a violation is
//! caught next to the snapshot code, not in a file diff.

use netcrafter_multigpu::{
    CheckpointPlan, Experiment, System, SystemVariant, TraceData, TraceOptions,
};
use netcrafter_sim::snapshot::SnapshotError;
use netcrafter_sim::TraceConfig;
use netcrafter_workloads::Workload;

fn experiment() -> Experiment {
    Experiment::quick(Workload::Gups, SystemVariant::NetCrafter)
}

fn trace_opts() -> TraceOptions {
    TraceOptions {
        config: Some(TraceConfig::default()),
        sample_window: Some(256),
    }
}

/// The uninterrupted traced reference run, plus a midpoint cycle that is
/// strictly inside the simulation.
fn reference() -> (netcrafter_multigpu::RunResult, TraceData, u64) {
    let (result, data) = experiment().run_traced(&trace_opts());
    let mid = result.exec_cycles / 2;
    assert!(
        mid > 0,
        "quick GUPS must run long enough to have a midpoint"
    );
    (result, data, mid)
}

#[test]
fn checkpoint_restore_continue_is_bit_identical() {
    let (cold, cold_data, mid) = reference();

    // Pausing to checkpoint must not perturb the run that continues.
    let plan = CheckpointPlan {
        checkpoint_at: Some(mid),
        restore_from: None,
        fork_at: None,
        fork: None,
    };
    let (ckpt, ckpt_data) = experiment()
        .run_traced_checkpointed(&trace_opts(), &plan)
        .expect("no restore involved");
    assert_eq!(cold.exec_cycles, ckpt.result.exec_cycles);
    assert_eq!(cold.metrics.to_kv(), ckpt.result.metrics.to_kv());
    assert_eq!(
        cold_data.trace.to_chrome_json(),
        ckpt_data.trace.to_chrome_json()
    );
    let (cycle, bytes) = ckpt.snapshot.expect("checkpoint requested");
    assert_eq!(cycle, mid, "run paused exactly at the requested barrier");

    // Restoring the snapshot and continuing must reproduce the cold run
    // byte for byte, including observability recorded before the pause.
    let plan = CheckpointPlan {
        checkpoint_at: None,
        restore_from: Some(bytes),
        fork_at: None,
        fork: None,
    };
    let (warm, warm_data) = experiment()
        .run_traced_checkpointed(&trace_opts(), &plan)
        .expect("snapshot restores");
    assert_eq!(warm.resumed_at, mid);
    assert_eq!(cold.exec_cycles, warm.result.exec_cycles);
    assert_eq!(cold.metrics.to_kv(), warm.result.metrics.to_kv());
    assert_eq!(
        cold_data.trace.to_chrome_json(),
        warm_data.trace.to_chrome_json(),
        "restored chrome-trace JSON must be byte-identical"
    );
    assert_eq!(
        cold_data.links_to_jsonl(),
        warm_data.links_to_jsonl(),
        "restored per-link time series must be byte-identical"
    );
}

#[test]
fn snapshot_is_portable_to_the_parallel_scheduler() {
    let (cold, _, mid) = reference();
    let take = CheckpointPlan {
        checkpoint_at: Some(mid),
        restore_from: None,
        fork_at: None,
        fork: None,
    };
    // Snapshot under the sequential event-driven scheduler …
    let ckpt = experiment().run_checkpointed(&take).expect("no restore");
    let (_, bytes) = ckpt.snapshot.expect("checkpoint requested");
    // … and continue under 4 conservative-parallel domain workers: the
    // snapshot excludes scheduler-derived state by design.
    let restore = CheckpointPlan {
        checkpoint_at: None,
        restore_from: Some(bytes),
        fork_at: None,
        fork: None,
    };
    let warm = experiment()
        .with_threads(4)
        .run_checkpointed(&restore)
        .expect("snapshot restores under the parallel scheduler");
    assert_eq!(warm.resumed_at, mid);
    assert_eq!(cold.exec_cycles, warm.result.exec_cycles);
    assert_eq!(cold.metrics.to_kv(), warm.result.metrics.to_kv());
}

/// Builds the system an [`experiment`] run simulates, without running it.
fn build_system() -> System {
    let exp = experiment();
    let cfg = exp.variant.apply(exp.base_cfg);
    let kernel = exp
        .workload
        .generate(&exp.scale, cfg.total_gpus(), exp.seed);
    System::build(cfg, &kernel)
}

#[test]
fn state_hash_is_a_fixed_point_across_save_and_load() {
    let mut sys = build_system();
    sys.run_until(2_000);
    let hash = sys.state_hash();
    let snapshot = sys.save_snapshot();

    // Loading into a freshly built system reproduces the hash, and
    // re-saving reproduces the snapshot bytes exactly (the encoding is
    // canonical, so save ∘ load is the identity).
    let mut copy = build_system();
    assert_ne!(copy.state_hash(), hash, "cycle-0 state must differ");
    copy.restore(&snapshot).expect("snapshot restores");
    assert_eq!(copy.state_hash(), hash, "state hash survives a round trip");
    assert_eq!(copy.save_snapshot(), snapshot, "re-encoding is identical");

    // Both replicas must also agree after simulating further.
    assert_eq!(sys.run(1_000_000), copy.run(1_000_000));
    assert_eq!(sys.state_hash(), copy.state_hash());
}

#[test]
fn corrupted_and_foreign_snapshots_fail_loudly() {
    let mut sys = build_system();
    sys.run_until(1_000);
    let good = sys.save_snapshot();

    // Truncation anywhere must be detected, never silently zero-filled.
    let mut sys = build_system();
    let err = sys
        .restore(&good[..good.len() - 3])
        .expect_err("truncated snapshot must not restore");
    assert!(
        matches!(err, SnapshotError::Truncated { .. }),
        "unexpected error for truncation: {err}"
    );

    // A foreign file fails on the magic number before any state loads.
    let mut sys = build_system();
    let err = sys
        .restore(b"definitely not a snapshot")
        .expect_err("foreign bytes must not restore");
    assert!(
        matches!(err, SnapshotError::BadMagic(_)),
        "unexpected error for foreign bytes: {err}"
    );

    // An old-format snapshot fails with the version pair, not by
    // misinterpreting the body: the version is the u32 after the magic.
    let mut old = good.clone();
    old[4..8].copy_from_slice(&0u32.to_le_bytes());
    let mut sys = build_system();
    let err = sys
        .restore(&old)
        .expect_err("version-0 snapshot must not restore");
    match err {
        SnapshotError::VersionMismatch { found, expected } => {
            assert_eq!(found, 0);
            assert!(expected >= 1);
        }
        other => panic!("unexpected error for old version: {other}"),
    }

    // Trailing garbage after a complete state is rejected too.
    let mut padded = good;
    padded.push(0);
    let mut sys = build_system();
    let err = sys
        .restore(&padded)
        .expect_err("trailing bytes must not restore");
    assert!(
        matches!(err, SnapshotError::Corrupt(_)),
        "unexpected error for trailing bytes: {err}"
    );
}
