//! End-to-end checks of the observability layer on real simulations: the
//! structured event trace must agree with the scalar [`Metrics`] counters
//! the figures are built from, must not perturb the simulation, and must
//! export valid, deterministic Chrome-trace JSON.
//!
//! [`Metrics`]: netcrafter_proto::Metrics

use netcrafter_multigpu::{Experiment, RunResult, SystemVariant, TraceData, TraceOptions};
use netcrafter_sim::trace::json;
use netcrafter_sim::{Phase, TraceConfig};
use netcrafter_workloads::Workload;

/// A quick GUPS run with full tracing and 256-cycle link sampling.
fn traced_quick(variant: SystemVariant) -> (RunResult, TraceData) {
    let opts = TraceOptions {
        config: Some(TraceConfig::default()),
        sample_window: Some(256),
    };
    Experiment::quick(Workload::Gups, variant).run_traced(&opts)
}

#[test]
fn traced_event_counts_agree_with_metrics() {
    let (result, data) = traced_quick(SystemVariant::NetCrafter);
    let m = &result.metrics;
    let t = &data.trace;
    assert!(!t.events.is_empty(), "a full trace records events");

    // Every flit arrival at a switch is one `flit.rx` instant.
    assert_eq!(t.count("flit.rx") as u64, m.counter("net.arrived"));
    // Every page-table walk opens one `ptw.walk` span.
    assert_eq!(
        t.count_phase("ptw.walk", Phase::Begin) as u64,
        m.counter("total.gmmu.walks")
    );
    assert!(t.count("ptw.walk") > 0, "cold TLBs must walk");
    // Walk spans close: the run drains, so begins pair with ends.
    assert_eq!(
        t.count_phase("ptw.walk", Phase::Begin),
        t.count_phase("ptw.walk", Phase::End)
    );
    // L1 miss lifetimes likewise all complete.
    assert_eq!(
        t.count_phase("l1.miss", Phase::Begin),
        t.count_phase("l1.miss", Phase::End)
    );
    // Every stitched parent ejected from a Cluster Queue is one event.
    assert_eq!(
        t.count("stitch.eject") as u64,
        m.counter("net.inter.cq.stitched_parents")
    );
}

#[test]
fn link_series_sums_match_flit_counters() {
    let (result, data) = traced_quick(SystemVariant::Baseline);
    assert!(!data.links.is_empty(), "sampling covers every egress port");
    let inter_flits: u64 = data
        .links
        .iter()
        .filter(|l| l.is_inter)
        .map(|l| l.series.flits.total())
        .sum();
    assert_eq!(
        inter_flits,
        result.metrics.counter("net.inter.flits"),
        "windowed per-link flit series must sum to the scalar counter"
    );
    let jsonl = data.links_to_jsonl();
    for line in jsonl.lines() {
        json::parse(line).expect("every time-series line is valid JSON");
    }
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let exp = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter);
    let plain = exp.run();
    let (traced, _) = traced_quick(SystemVariant::NetCrafter);
    assert_eq!(plain.exec_cycles, traced.exec_cycles);
    assert_eq!(plain.metrics.to_kv(), traced.metrics.to_kv());
}

#[test]
fn chrome_json_from_a_real_run_round_trips() {
    let (_, data) = traced_quick(SystemVariant::NetCrafter);
    let text = data.trace.to_chrome_json();
    let doc = json::parse(&text).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    // One thread_name metadata record per track, then the real events.
    let meta = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .count();
    assert_eq!(meta, data.trace.tracks.len());
    assert_eq!(events.len(), meta + data.trace.events.len());
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
        assert!(matches!(ph, "M" | "i" | "b" | "e" | "C"), "phase {ph:?}");
        if ph != "M" {
            assert!(e.get("ts").and_then(json::Value::as_f64).is_some());
            assert!(e.get("cat").and_then(|v| v.as_str()).is_some());
        }
    }
}

#[test]
fn traces_of_identical_runs_are_identical() {
    let (_, a) = traced_quick(SystemVariant::NetCrafter);
    let (_, b) = traced_quick(SystemVariant::NetCrafter);
    assert_eq!(a.trace.to_chrome_json(), b.trace.to_chrome_json());
    assert_eq!(a.links_to_jsonl(), b.links_to_jsonl());
}

#[test]
fn filter_restricts_what_is_recorded() {
    let opts = TraceOptions {
        config: Some(TraceConfig::parse("class=ptw").expect("valid filter")),
        sample_window: None,
    };
    let (_, data) = Experiment::quick(Workload::Gups, SystemVariant::Baseline).run_traced(&opts);
    assert!(data.trace.count("ptw.walk") > 0, "ptw class is kept");
    assert_eq!(data.trace.count("flit.rx"), 0, "flit class is filtered");
    assert!(data.links.is_empty(), "sampling stays off");

    let opts = TraceOptions {
        config: Some(TraceConfig::parse("comp=no-such-component").expect("valid filter")),
        sample_window: None,
    };
    let (_, data) = Experiment::quick(Workload::Gups, SystemVariant::Baseline).run_traced(&opts);
    assert!(
        data.trace.events.is_empty(),
        "component filter excludes all"
    );
}
