//! Bit-exactness of the conservative parallel scheduler on real
//! multi-GPU simulations: a run with `threads = 4` must reproduce the
//! sequential event-driven run byte for byte — `Metrics`, chrome-trace
//! JSON, and per-link time series. ci.sh enforces the same contract on
//! the full fig14 figure matrix; these tests pin it per-run so a
//! violation is caught next to the scheduler, not in a table diff.

use netcrafter_multigpu::{Experiment, RunResult, SystemVariant, TraceData, TraceOptions};
use netcrafter_sim::TraceConfig;
use netcrafter_workloads::Workload;

fn traced(threads: usize) -> (RunResult, TraceData) {
    let opts = TraceOptions {
        config: Some(TraceConfig::default()),
        sample_window: Some(256),
    };
    Experiment::quick(Workload::Gups, SystemVariant::NetCrafter)
        .with_threads(threads)
        .run_traced(&opts)
}

#[test]
fn parallel_metrics_are_bit_identical_across_the_fig14_variants() {
    // A slice of the fig14 matrix: every NetCrafter mechanism
    // (stitching, pooling, sequencing, trimming) crosses domains.
    for variant in [
        SystemVariant::Baseline,
        SystemVariant::NetCrafter,
        SystemVariant::StitchOnly,
    ] {
        for workload in [Workload::Gups, Workload::Atax] {
            let seq = Experiment::quick(workload, variant).run();
            let par = Experiment::quick(workload, variant).with_threads(4).run();
            assert_eq!(
                seq.exec_cycles, par.exec_cycles,
                "{workload:?}/{variant:?}: cycle counts diverge"
            );
            assert_eq!(
                seq.metrics.to_kv(),
                par.metrics.to_kv(),
                "{workload:?}/{variant:?}: metrics diverge"
            );
        }
    }
}

#[test]
fn parallel_trace_and_timeseries_bytes_are_identical() {
    let (seq_result, seq_data) = traced(1);
    let (par_result, par_data) = traced(4);
    assert_eq!(seq_result.exec_cycles, par_result.exec_cycles);
    assert_eq!(seq_result.metrics.to_kv(), par_result.metrics.to_kv());
    assert_eq!(
        seq_data.trace.to_chrome_json(),
        par_data.trace.to_chrome_json(),
        "chrome-trace JSON must be byte-identical"
    );
    assert_eq!(
        seq_data.links_to_jsonl(),
        par_data.links_to_jsonl(),
        "per-link time series must be byte-identical"
    );
}

#[test]
fn thread_counts_beyond_the_domain_count_are_harmless() {
    let seq = Experiment::quick(Workload::Mt, SystemVariant::NetCrafter).run();
    let par = Experiment::quick(Workload::Mt, SystemVariant::NetCrafter)
        .with_threads(64)
        .run();
    assert_eq!(seq.metrics.to_kv(), par.metrics.to_kv());
}
