//! Node assembly: instantiates and wires every component of the
//! non-uniform bandwidth multi-GPU system (Figure 2 / Table 2).

use std::collections::BTreeMap;
use std::sync::Arc;

use netcrafter_core::ClusterQueue;
use netcrafter_gpu::{lasp, Cu, CuWiring, Rdma, RdmaWiring};
use netcrafter_mem::l2::{L2Cache, L2Wiring};
use netcrafter_mem::Dram;
use netcrafter_net::PortSeries;
use netcrafter_net::{FifoQueue, Switch, SwitchPortSpec, Topology};
use netcrafter_proto::config::PA_GPU_REGION_BITS;
use netcrafter_proto::WavefrontTrace;
use netcrafter_proto::{GpuId, KernelSpec, Metrics, SystemConfig};
use netcrafter_sim::snapshot::{
    read_header, write_header, ForkSnapshot, Snap, SnapshotError, SnapshotReader, SnapshotWriter,
};
use netcrafter_sim::{ComponentId, Cycle, Engine, EngineBuilder, Trace, TraceConfig};
use netcrafter_vm::{TranslationUnit, TranslationWiring};

/// One sampled egress link: a human-readable label plus its time series.
#[derive(Debug)]
pub struct LinkSeries {
    /// `"<switch>-><peer node>"`, e.g. `"cluster0.switch->node4"`.
    pub link: String,
    /// True for inter-cluster links (the ones NetCrafter targets).
    pub is_inter: bool,
    /// Windowed bandwidth/occupancy/pooling curves for the link.
    pub series: PortSeries,
}

/// Component ids of everything in the node, for stats harvesting.
#[derive(Debug, Clone)]
pub struct SystemIds {
    /// CUs, indexed `[gpu][cu]`.
    pub cus: Vec<Vec<ComponentId>>,
    /// L2 caches per GPU.
    pub l2s: Vec<ComponentId>,
    /// DRAM stacks per GPU.
    pub drams: Vec<ComponentId>,
    /// Translation units per GPU.
    pub gmmus: Vec<ComponentId>,
    /// RDMA engines per GPU.
    pub rdmas: Vec<ComponentId>,
    /// All switches, in topology order: edge switches per cluster first,
    /// then any fat-tree core tier.
    pub switches: Vec<ComponentId>,
}

/// Human-readable name of switch `idx`: `"cluster<N>.switch"` for edge
/// switches, `"core<K>.switch"` for fat-tree cores.
fn switch_name(topo: &Topology, idx: usize) -> String {
    match topo.switch_spec(idx).cluster {
        Some(c) => format!("{c}.switch"),
        None => format!("core{}.switch", idx - topo.clusters() as usize),
    }
}

/// Per-CU wavefront batches for one kernel: `[gpu][cu] -> waves`.
type Dispatch = Vec<Vec<Vec<WavefrontTrace>>>;

/// The assembled multi-GPU node.
pub struct System {
    /// The simulation engine holding every component.
    pub engine: Engine,
    /// Component directory.
    pub ids: SystemIds,
    cfg: SystemConfig,
    kernel_name: String,
    pages_per_gpu: Vec<u64>,
    /// Kernels awaiting their global barrier (name, dispatch).
    pending_kernels: std::collections::VecDeque<(String, Dispatch)>,
    /// Per-kernel execution times recorded by [`System::run_all`].
    pub kernel_cycles: Vec<(String, Cycle)>,
}

impl System {
    /// Builds the node described by `cfg` and loads `kernel` onto it:
    /// LASP places CTAs and pages (including PTE pages), wavefronts are
    /// dispatched to CUs, and every component is wired.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation or the kernel touches undeclared
    /// memory.
    pub fn build(cfg: SystemConfig, kernel: &KernelSpec) -> Self {
        Self::build_multi(cfg, std::slice::from_ref(kernel))
    }

    /// Dispatch for one kernel: a CTA runs entirely on one CU; a GPU's
    /// CTAs round-robin over its CUs.
    fn dispatch(
        kernel: &KernelSpec,
        cta_gpu: &BTreeMap<netcrafter_proto::CtaId, GpuId>,
        total_gpus: u16,
        cus_per_gpu: u16,
    ) -> Dispatch {
        let mut cu_waves: Dispatch = (0..total_gpus)
            .map(|_| (0..cus_per_gpu).map(|_| Vec::new()).collect())
            .collect();
        let mut next_cu = vec![0usize; total_gpus as usize];
        for cta in &kernel.ctas {
            let gpu = cta_gpu[&cta.id];
            let cu = next_cu[gpu.index()] % cus_per_gpu as usize;
            next_cu[gpu.index()] += 1;
            cu_waves[gpu.index()][cu].extend(cta.waves.iter().cloned());
        }
        cu_waves
    }

    /// Builds the node and loads a *sequence* of kernels separated by
    /// global kernel barriers (§2.2's serial kernel launches): LASP
    /// places all kernels' pages up front (first placement wins, like
    /// first-touch across launches), kernel 0 is dispatched immediately,
    /// and [`System::run_all`] launches each subsequent kernel when the
    /// previous one drains.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation, `kernels` is empty, or any
    /// kernel touches undeclared memory.
    pub fn build_multi(cfg: SystemConfig, kernels: &[KernelSpec]) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid config: {e}"));
        assert!(!kernels.is_empty(), "need at least one kernel");
        let topo = Topology::new(&cfg.topology);
        let total_gpus = topo.total_gpus();
        let frames_per_gpu = 1u64 << (PA_GPU_REGION_BITS - 12);

        // LASP: CTA schedules + data/PTE placement across all kernels.
        let mut placer = lasp::Placer::new(total_gpus, frames_per_gpu);
        let mut dispatches: std::collections::VecDeque<(String, Dispatch)> = kernels
            .iter()
            .map(|k| {
                let cta_gpu = placer.place_kernel(k);
                (
                    k.name.clone(),
                    Self::dispatch(k, &cta_gpu, total_gpus, cfg.cus_per_gpu),
                )
            })
            .collect();
        let (page_table, pages_per_gpu) = placer.finish();
        let page_table = Arc::new(page_table);
        let (kernel_name, mut cu_waves) = dispatches.pop_front().expect("non-empty");

        // Reserve ids: per GPU (cus…, gmmu, l2, dram, rdma), then switches.
        let mut b = EngineBuilder::new();
        let mut ids = SystemIds {
            cus: Vec::new(),
            l2s: Vec::new(),
            drams: Vec::new(),
            gmmus: Vec::new(),
            rdmas: Vec::new(),
            switches: Vec::new(),
        };
        for _g in 0..total_gpus {
            let cus: Vec<ComponentId> = (0..cfg.cus_per_gpu).map(|_| b.reserve()).collect();
            ids.cus.push(cus);
            ids.gmmus.push(b.reserve());
            ids.l2s.push(b.reserve());
            ids.drams.push(b.reserve());
            ids.rdmas.push(b.reserve());
        }
        for _s in 0..topo.num_switches() {
            ids.switches.push(b.reserve());
        }

        let flit = cfg.flit_bytes as f64;
        let intra_fpc = cfg.topology.intra_bytes_per_cycle() / flit;
        let inter_fpc = cfg.topology.inter_bytes_per_cycle() / flit;
        let buf = cfg.switch.buffer_entries;

        // Install per-GPU components.
        for g in 0..total_gpus {
            let gpu = GpuId(g);
            let gix = gpu.index();
            let cluster = topo.gpu_cluster(gpu);
            let switch_comp = ids.switches[cluster.index()];
            let switch_node = topo.switch_node(cluster);

            for (c, &cu_id) in ids.cus[gix].iter().enumerate() {
                let waves = std::mem::take(&mut cu_waves[gix][c]);
                b.install(
                    cu_id,
                    Box::new(Cu::new(
                        gpu,
                        netcrafter_proto::CuId(c as u16),
                        &cfg,
                        waves,
                        CuWiring {
                            gmmu: ids.gmmus[gix],
                            l2: ids.l2s[gix],
                            rdma: ids.rdmas[gix],
                        },
                    )),
                );
            }
            b.install(
                ids.gmmus[gix],
                Box::new(TranslationUnit::new(
                    gpu,
                    &cfg.l2_tlb,
                    &cfg.gmmu,
                    cfg.on_chip_hop_cycles,
                    Arc::clone(&page_table),
                    TranslationWiring {
                        cus: ids.cus[gix].clone(),
                        l2: ids.l2s[gix],
                        rdma: ids.rdmas[gix],
                    },
                )),
            );
            b.install(
                ids.l2s[gix],
                Box::new(L2Cache::new(
                    gpu,
                    &cfg.l2,
                    cfg.full_sector_mask(),
                    cfg.on_chip_hop_cycles,
                    L2Wiring {
                        cus: ids.cus[gix].clone(),
                        gmmu: ids.gmmus[gix],
                        rdma: ids.rdmas[gix],
                        dram: ids.drams[gix],
                    },
                )),
            );
            b.install(
                ids.drams[gix],
                Box::new(Dram::new(gpu, &cfg.dram, ids.l2s[gix])),
            );
            b.install(
                ids.rdmas[gix],
                Box::new(Rdma::new(
                    gpu,
                    topo.gpu_node(gpu),
                    &cfg,
                    RdmaWiring {
                        switch: switch_comp,
                        switch_node,
                        switch_port: topo.gpu_port_at_switch(gpu),
                        switch_credits: buf,
                        l2: ids.l2s[gix],
                        gmmu: ids.gmmus[gix],
                        cus: ids.cus[gix].clone(),
                    },
                )),
            );
        }

        // Install switches straight from the topology's static specs:
        // GPU ports first (edge switches only), then fabric links, with
        // the deterministic multi-hop route tables. Each inter-cluster
        // egress port carries its *own* NetCrafter controller instance
        // (a ClusterQueue keyed to the adjacent switch), so pooling,
        // stitching and sequencing state is per switch, not global.
        for (s, spec) in topo.switch_specs().enumerate() {
            let mut ports = Vec::with_capacity(spec.links.len());
            for link in &spec.links {
                let (peer, fpc, queue): (ComponentId, f64, Box<dyn netcrafter_net::EgressQueue>) =
                    if link.is_inter {
                        let queue: Box<dyn netcrafter_net::EgressQueue> =
                            if cfg.netcrafter.any_enabled() {
                                Box::new(ClusterQueue::new(cfg.netcrafter, link.peer))
                            } else {
                                Box::new(FifoQueue::new())
                            };
                        (
                            ids.switches[topo.switch_index(link.peer)],
                            inter_fpc * link.rate_scale,
                            queue,
                        )
                    } else {
                        let gpu = topo.node_gpu(link.peer).expect("GPU link peers a GPU");
                        (
                            ids.rdmas[gpu.index()],
                            intra_fpc,
                            Box::new(FifoQueue::new()),
                        )
                    };
                ports.push(SwitchPortSpec {
                    peer,
                    peer_node: link.peer,
                    peer_port: link.peer_port,
                    flits_per_cycle: fpc,
                    initial_credits: buf,
                    input_capacity: buf as usize,
                    output_capacity: buf as usize,
                    queue,
                    wire_latency: link.latency,
                    is_inter: link.is_inter,
                });
            }
            b.install(
                ids.switches[s],
                Box::new(Switch::new(
                    spec.node,
                    switch_name(&topo, s),
                    cfg.switch.pipeline_cycles,
                    ports,
                    spec.routes.clone(),
                )),
            );
        }

        Self {
            engine: b.build(),
            ids,
            cfg,
            kernel_name,
            pages_per_gpu,
            pending_kernels: dispatches,
            kernel_cycles: Vec::new(),
        }
    }

    /// Runs every loaded kernel to completion, honouring global kernel
    /// barriers: the next kernel launches only when the node is fully
    /// drained. Returns the total execution time; per-kernel times are in
    /// [`System::kernel_cycles`].
    pub fn run_all(&mut self, max_cycles_per_kernel: Cycle) -> Cycle {
        let mut started = self.engine.cycle();
        let mut end = self.engine.run_to_quiescence(max_cycles_per_kernel);
        self.kernel_cycles
            .push((self.kernel_name.clone(), end - started));
        while let Some((name, dispatch)) = self.pending_kernels.pop_front() {
            self.kernel_name = name;
            for (g, per_cu) in dispatch.into_iter().enumerate() {
                for (c, waves) in per_cu.into_iter().enumerate() {
                    if waves.is_empty() {
                        continue;
                    }
                    let cu_id = self.ids.cus[g][c];
                    self.engine
                        .get_mut::<Cu>(cu_id)
                        .expect("cu installed")
                        .load_waves(waves);
                }
            }
            started = end;
            end = self.engine.run_to_quiescence(max_cycles_per_kernel);
            self.kernel_cycles
                .push((self.kernel_name.clone(), end - started));
        }
        end
    }

    /// The configuration the node was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Derives the conservative-parallel partition of the node from its
    /// topology: one domain per GPU cluster (that cluster's CUs, GMMUs,
    /// caches, DRAM stacks and RDMA engines) plus one domain *per
    /// switch*. Every message crossing a domain boundary rides a
    /// GPU↔switch or switch↔switch wire, so each domain pair's lookahead
    /// is the minimum latency of the links joining them — a heterogeneous
    /// fabric (4-cycle switch↔switch hops over 1-cycle GPU wires) keeps
    /// its per-link bounds instead of collapsing to the global minimum.
    pub fn partition(&self) -> netcrafter_sim::Partition {
        let topo = Topology::new(&self.cfg.topology);
        let clusters = topo.clusters() as usize;
        let domains = clusters + topo.num_switches() as usize;
        let total = self.ids.switches.last().expect("at least one switch").0 + 1;
        let mut domain_of = vec![usize::MAX; total];
        for (g, cus) in self.ids.cus.iter().enumerate() {
            let dom = topo.gpu_cluster(GpuId(g as u16)).index();
            for &cu in cus {
                domain_of[cu.0] = dom;
            }
            domain_of[self.ids.gmmus[g].0] = dom;
            domain_of[self.ids.l2s[g].0] = dom;
            domain_of[self.ids.drams[g].0] = dom;
            domain_of[self.ids.rdmas[g].0] = dom;
        }
        for (s, &sw) in self.ids.switches.iter().enumerate() {
            domain_of[sw.0] = clusters + s;
        }
        assert!(
            domain_of.iter().all(|&d| d != usize::MAX),
            "every component must belong to a domain"
        );
        // Pair matrix: GPU wires bound cluster↔edge-switch pairs, fabric
        // links bound switch↔switch pairs; pairs with no direct link
        // never exchange messages.
        const NO_LINK: u64 = u64::MAX;
        let mut pairs = vec![NO_LINK; domains * domains];
        let bound = |pairs: &mut Vec<u64>, a: usize, b: usize, lat: u64| {
            pairs[a * domains + b] = pairs[a * domains + b].min(lat);
            pairs[b * domains + a] = pairs[b * domains + a].min(lat);
        };
        for (s, spec) in topo.switch_specs().enumerate() {
            for link in &spec.links {
                if link.is_inter {
                    let peer = clusters + topo.switch_index(link.peer);
                    bound(&mut pairs, clusters + s, peer, link.latency);
                } else {
                    let gpu = topo.node_gpu(link.peer).expect("GPU link peers a GPU");
                    let dom = topo.gpu_cluster(gpu).index();
                    bound(&mut pairs, clusters + s, dom, link.latency);
                }
            }
        }
        netcrafter_sim::Partition::with_pair_lookahead(domain_of, pairs)
    }

    /// Runs subsequent simulation on `threads` worker threads under the
    /// conservative parallel scheduler (bit-identical results; see
    /// DESIGN.md §3.3). A single thread — or a single-cluster topology,
    /// which has only cluster+fabric concurrency to harvest anyway —
    /// leaves the sequential event-driven scheduler in place.
    pub fn set_threads(&mut self, threads: usize) {
        if threads > 1 {
            let partition = self.partition();
            self.engine.set_parallel(partition, threads);
        }
    }

    /// Turns on structured event tracing for every component, filtered by
    /// `config`. Call before running; harvest with [`System::take_trace`].
    pub fn enable_tracing(&mut self, config: TraceConfig) {
        self.engine.enable_tracing(config);
    }

    /// Drains the recorded trace (empty if tracing was never enabled).
    pub fn take_trace(&mut self) -> Trace {
        self.engine.take_trace()
    }

    /// Turns on windowed bandwidth/occupancy sampling on every switch
    /// egress port, with `window`-cycle buckets. Call before running;
    /// harvest with [`System::take_link_series`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn enable_link_sampling(&mut self, window: Cycle) {
        for &sw_id in &self.ids.switches {
            self.engine
                .get_mut::<Switch>(sw_id)
                .expect("switch installed")
                .enable_sampling(window);
        }
    }

    /// Drains the per-link time series sampled since
    /// [`System::enable_link_sampling`], labelled `switch->peer`.
    pub fn take_link_series(&mut self) -> Vec<LinkSeries> {
        let topo = Topology::new(&self.cfg.topology);
        let mut out = Vec::new();
        for (s, &sw_id) in self.ids.switches.iter().enumerate() {
            let name = switch_name(&topo, s);
            let sw = self
                .engine
                .get_mut::<Switch>(sw_id)
                .expect("switch installed");
            for (peer_node, is_inter, series) in sw.take_series() {
                out.push(LinkSeries {
                    link: format!("{name}->{peer_node}"),
                    is_inter,
                    series,
                });
            }
        }
        out
    }

    /// Kernel loaded on the node.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Runs the loaded kernel to completion (quiescence). Returns the
    /// execution time in cycles.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to quiesce within `max_cycles` — a
    /// deadlock or livelock in the model.
    pub fn run(&mut self, max_cycles: Cycle) -> Cycle {
        self.engine.run_to_quiescence(max_cycles)
    }

    /// Runs forward to `cycle` without requiring quiescence. Pausing here
    /// is always a global epoch barrier (sequential stepping under every
    /// scheduler mode), so the paused state is a valid snapshot point.
    pub fn run_until(&mut self, cycle: Cycle) -> Cycle {
        self.engine.run_until(cycle)
    }

    /// Serializes the node's full dynamic state — the kernel-barrier
    /// bookkeeping plus the engine body (every component, mailboxes,
    /// in-flight messages, the tracer) — behind the versioned snapshot
    /// header. Restore with [`System::restore`] on a node built from the
    /// *same* config and kernels.
    pub fn save_snapshot(&mut self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        write_header(&mut w);
        self.kernel_name.save(&mut w);
        self.pending_kernels.save(&mut w);
        self.kernel_cycles.save(&mut w);
        self.engine.save_state_into(&mut w);
        w.into_bytes()
    }

    /// Restores a snapshot produced by [`System::save_snapshot`] onto a
    /// freshly built identical node, validating the header and that every
    /// byte is consumed. Continuing the run afterwards is byte-identical
    /// to the run that produced the snapshot — including the structured
    /// trace and time series, which the snapshot carries from cycle 0.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        read_header(&mut r)?;
        self.kernel_name = Snap::load(&mut r)?;
        self.pending_kernels = Snap::load(&mut r)?;
        self.kernel_cycles = Snap::load(&mut r)?;
        self.engine.load_state_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing byte(s) after system state",
                r.remaining()
            )));
        }
        Ok(())
    }

    /// FNV-1a fingerprint of the node's canonical state encoding (kernel
    /// bookkeeping + engine body, no header).
    pub fn state_hash(&mut self) -> u64 {
        let mut w = SnapshotWriter::new();
        self.kernel_name.save(&mut w);
        self.pending_kernels.save(&mut w);
        self.kernel_cycles.save(&mut w);
        self.engine.save_state_into(&mut w);
        netcrafter_proto::fnv1a64(&w.into_bytes())
    }

    /// Serializes the paused node into an in-memory [`ForkSnapshot`] for
    /// prefix-sharing sweeps: the same bytes as [`System::save_snapshot`]
    /// behind an `Arc`, tagged with the pause cycle and the body's
    /// [`System::state_hash`]. One serialization pass produces both the
    /// bytes and the fingerprint; restoring the fork N times costs N
    /// pointer clones, not N encodes. Restore with [`System::restore`] on
    /// a node built from the same config and kernels.
    pub fn fork_snapshot(&mut self) -> ForkSnapshot {
        let mut body = SnapshotWriter::new();
        self.kernel_name.save(&mut body);
        self.pending_kernels.save(&mut body);
        self.kernel_cycles.save(&mut body);
        self.engine.save_state_into(&mut body);
        let body = body.into_bytes();
        let hash = netcrafter_proto::fnv1a64(&body);
        let mut w = SnapshotWriter::new();
        write_header(&mut w);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&body);
        ForkSnapshot::new(self.engine.cycle(), bytes, hash)
    }

    /// Total flits transmitted so far on inter-cluster egress ports.
    fn inter_flits_now(&self) -> u64 {
        self.ids
            .switches
            .iter()
            .map(|&sw| {
                let sw: &Switch = self.engine.get(sw).expect("switch installed");
                sw.port_stats()
                    .filter(|(_, is_inter, _)| *is_inter)
                    .map(|(_, _, stats)| stats.flits)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Runs like [`System::run`] but samples the inter-cluster links every
    /// `interval` cycles, returning a `(cycle, flits_in_interval)` series —
    /// the utilization-over-time view (flits per interval divided by the
    /// links' flit capacity gives instantaneous utilization).
    pub fn run_sampled(&mut self, max_cycles: Cycle, interval: Cycle) -> Vec<(Cycle, u64)> {
        assert!(interval > 0);
        let limit = self.engine.cycle() + max_cycles;
        let mut samples = Vec::new();
        let mut last = self.inter_flits_now();
        while !self.engine.quiescent() {
            assert!(self.engine.cycle() < limit, "simulation did not quiesce");
            let until = self.engine.cycle() + interval;
            self.engine.run_while(interval, |e| e.cycle() < until);
            let now_flits = self.inter_flits_now();
            samples.push((self.engine.cycle(), now_flits - last));
            last = now_flits;
        }
        samples
    }

    /// Collects every component's statistics plus system-level derived
    /// counters into one registry.
    pub fn harvest(&self) -> Metrics {
        let mut m = Metrics::new();
        let cycles = self.engine.cycle();
        m.set("sys.cycles", cycles);
        m.set("sys.messages", self.engine.messages_delivered());
        for (g, pages) in self.pages_per_gpu.iter().enumerate() {
            m.set(&format!("lasp.gpu{g}.pages"), *pages);
        }

        for (g, cu_ids) in self.ids.cus.iter().enumerate() {
            for &cu_id in cu_ids {
                let cu: &Cu = self.engine.get(cu_id).expect("cu installed");
                cu.stats.report(&mut m, &format!("gpu{g}.cu"));
                cu.stats.report(&mut m, "total.cu");
                cu.l1.stats.report(&mut m, &format!("gpu{g}.l1"));
                cu.l1.stats.report(&mut m, "total.l1");
                cu.l1_tlb.stats.report(&mut m, &format!("gpu{g}.l1tlb"));
                cu.l1_tlb.stats.report(&mut m, "total.l1tlb");
            }
            let tu: &TranslationUnit = self.engine.get(self.ids.gmmus[g]).expect("gmmu installed");
            tu.stats.report(&mut m, &format!("gpu{g}.gmmu"));
            tu.stats.report(&mut m, "total.gmmu");
            tu.l2_tlb.stats.report(&mut m, &format!("gpu{g}.l2tlb"));
            tu.l2_tlb.stats.report(&mut m, "total.l2tlb");
            let l2: &L2Cache = self.engine.get(self.ids.l2s[g]).expect("l2 installed");
            l2.stats.report(&mut m, &format!("gpu{g}.l2"));
            l2.stats.report(&mut m, "total.l2");
            let dram: &Dram = self.engine.get(self.ids.drams[g]).expect("dram installed");
            dram.stats.report(&mut m, &format!("gpu{g}.dram"));
            dram.stats.report(&mut m, "total.dram");
            let rdma: &Rdma = self.engine.get(self.ids.rdmas[g]).expect("rdma installed");
            rdma.stats.report(&mut m, &format!("gpu{g}.rdma"));
            rdma.stats.report(&mut m, "total.rdma");
            rdma.trim.stats.report(&mut m, &format!("gpu{g}.trim"));
            rdma.trim.stats.report(&mut m, "total.trim");
        }

        let topo = Topology::new(&self.cfg.topology);
        for (c, &sw_id) in self.ids.switches.iter().enumerate() {
            let sw: &Switch = self.engine.get(sw_id).expect("switch installed");
            sw.report(&mut m, &format!("switch{c}"));
            sw.report(&mut m, "net");
        }
        // Inter-cluster link capacity over the run, for utilization:
        // sum the actual fabric egress ports' rate shares (a full mesh
        // has clusters*(clusters-1) full-rate ports; torus VC pairs split
        // one physical channel, so each counts its rate_scale).
        let inter_weight: f64 = topo
            .switch_specs()
            .flat_map(|s| s.links.iter())
            .filter(|l| l.is_inter)
            .map(|l| l.rate_scale)
            .sum();
        let inter_fpc = self.cfg.topology.inter_bytes_per_cycle() / self.cfg.flit_bytes as f64;
        m.set(
            "net.inter.capacity_flits",
            (cycles as f64 * inter_fpc * inter_weight) as u64,
        );
        m.set("net.inter.flit_bytes", self.cfg.flit_bytes as u64);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcrafter_proto::access::{CoalescedAccess, WavefrontOp, WavefrontTrace};
    use netcrafter_proto::kernel::{AccessPattern, BufferSpec, CtaSpec};
    use netcrafter_proto::{CtaId, VAddr, WavefrontId, PAGE_BYTES};

    /// A minimal 2-CTA kernel over an interleaved buffer: guaranteed to
    /// generate remote and inter-cluster traffic on a 2×2 node.
    fn tiny_kernel() -> KernelSpec {
        let base = 0x4000_0000u64;
        let pages = 8u64;
        let buffer = BufferSpec {
            name: "data".into(),
            base: VAddr(base),
            bytes: pages * PAGE_BYTES,
            pattern: AccessPattern::Random,
        };
        let mut ctas = Vec::new();
        for c in 0..2u32 {
            let mut ops = Vec::new();
            for i in 0..12u64 {
                // Touch every page: pages interleave across 4 GPUs.
                let page = (i + c as u64 * 3) % pages;
                ops.push(WavefrontOp::Mem(CoalescedAccess::read(
                    VAddr(base + page * PAGE_BYTES + (i % 8) * 64),
                    8,
                )));
                ops.push(WavefrontOp::Compute(2));
            }
            ops.push(WavefrontOp::Mem(CoalescedAccess::write(
                VAddr(base + c as u64 * PAGE_BYTES),
                64,
            )));
            ctas.push(CtaSpec {
                id: CtaId(c),
                waves: vec![WavefrontTrace {
                    id: WavefrontId(c),
                    cta: CtaId(c),
                    ops,
                }],
                home_hint: None,
            });
        }
        KernelSpec {
            name: "tiny".into(),
            ctas,
            buffers: vec![buffer],
        }
    }

    #[test]
    fn baseline_system_runs_to_completion() {
        let cfg = SystemConfig::small(2);
        let mut sys = System::build(cfg, &tiny_kernel());
        let cycles = sys.run(1_000_000);
        assert!(cycles > 0);
        let m = sys.harvest();
        assert_eq!(m.counter("sys.cycles"), cycles);
        assert!(m.counter("total.cu.instructions") > 0);
        assert!(m.counter("total.l1.reads") > 0);
        assert!(
            m.counter("net.inter.flits") > 0,
            "interleaved pages must cross clusters"
        );
        assert!(m.counter("total.gmmu.walks") > 0, "cold TLBs must walk");
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let cfg = SystemConfig::small(2);
        let run = || {
            let mut sys = System::build(cfg, &tiny_kernel());
            let cycles = sys.run(1_000_000);
            (cycles, sys.engine.messages_delivered())
        };
        assert_eq!(run(), run(), "simulation must be deterministic");
    }

    #[test]
    fn netcrafter_system_runs_and_stitches_or_trims() {
        let cfg = SystemConfig::small(2).with_netcrafter();
        let mut sys = System::build(cfg, &tiny_kernel());
        sys.run(1_000_000);
        let m = sys.harvest();
        // 8 B random reads across clusters: trimming must engage.
        assert!(m.counter("total.trim.trimmed") > 0, "trimming engages");
    }

    #[test]
    fn ideal_config_is_faster_than_baseline() {
        // Use a heavier kernel so the slow link actually congests.
        let mut kernel = tiny_kernel();
        for cta in &mut kernel.ctas {
            let ops = cta.waves[0].ops.clone();
            for _ in 0..8 {
                cta.waves[0].ops.extend(ops.clone());
            }
        }
        let base = {
            let mut sys = System::build(SystemConfig::small(2), &kernel);
            sys.run(4_000_000)
        };
        let ideal = {
            let mut sys = System::build(SystemConfig::small(2).idealized(), &kernel);
            sys.run(4_000_000)
        };
        assert!(
            ideal <= base,
            "uniform high bandwidth cannot be slower: ideal {ideal} vs base {base}"
        );
    }

    #[test]
    fn sampling_tracks_traffic_phases() {
        let mut sys = System::build(SystemConfig::small(2), &tiny_kernel());
        let samples = sys.run_sampled(1_000_000, 200);
        assert!(!samples.is_empty());
        let total: u64 = samples.iter().map(|(_, f)| f).sum();
        let m = sys.harvest();
        assert_eq!(
            total,
            m.counter("net.inter.flits"),
            "samples sum to the total"
        );
        // Cycles are monotonically increasing interval ends.
        for w in samples.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn multi_kernel_runs_with_barriers() {
        // Two launches of the tiny kernel back to back: the second must
        // start only after the first drains, and both complete.
        let k1 = tiny_kernel();
        let mut k2 = tiny_kernel();
        k2.name = "tiny-2".into();
        let total_mem = (k1.total_mem_ops() + k2.total_mem_ops()) as u64;
        let mut sys = System::build_multi(SystemConfig::small(2), &[k1, k2]);
        let end = sys.run_all(1_000_000);
        assert!(end > 0);
        assert_eq!(sys.kernel_cycles.len(), 2);
        assert_eq!(sys.kernel_cycles[0].0, "tiny");
        assert_eq!(sys.kernel_cycles[1].0, "tiny-2");
        assert!(sys.kernel_cycles[1].1 > 0, "second kernel does real work");
        let m = sys.harvest();
        assert_eq!(m.counter("total.cu.mem_ops"), total_mem);
        // The second launch re-touches the same pages: warm TLBs and
        // caches make it cheaper than the first.
        assert!(
            sys.kernel_cycles[1].1 <= sys.kernel_cycles[0].1,
            "warm second launch: {:?}",
            sys.kernel_cycles
        );
    }

    #[test]
    fn multi_kernel_shares_first_placement() {
        let k1 = tiny_kernel();
        let k2 = tiny_kernel();
        let single = System::build(SystemConfig::small(2), &tiny_kernel());
        let multi = System::build_multi(SystemConfig::small(2), &[k1, k2]);
        // Same buffer ⇒ same pages placed once, not twice.
        assert_eq!(single.pages_per_gpu, multi.pages_per_gpu);
    }

    #[test]
    fn all_accesses_complete_exactly_once() {
        let kernel = tiny_kernel();
        let total_mem: u64 = kernel.total_mem_ops() as u64;
        let mut sys = System::build(SystemConfig::small(2), &kernel);
        sys.run(1_000_000);
        let m = sys.harvest();
        assert_eq!(m.counter("total.cu.mem_ops"), total_mem);
    }
}
