//! Whole-node assembly and measurement harness: builds the non-uniform
//! bandwidth multi-GPU system of Figure 2 (clusters of GPUs behind
//! per-cluster switches, 128 GB/s inside a cluster, 16 GB/s between
//! clusters), runs workloads on it, and harvests the statistics every
//! paper figure is derived from.
//!
//! * [`System`] — wires CUs, L2s, DRAMs, translation units, RDMA engines
//!   and switches into a deterministic engine, with NetCrafter's Cluster
//!   Queues installed on the inter-cluster egress ports when enabled.
//! * [`Experiment`] / [`SystemVariant`] — the evaluation configurations
//!   of §5: baseline, ideal (uniform high bandwidth), each NetCrafter
//!   mechanism in isolation and combination, the sector-cache baseline,
//!   and the sensitivity-study variants (pooling windows, flit sizes,
//!   bandwidth ratios).
//! * [`RunResult`] — execution time plus the derived measures the figures
//!   plot (link utilization, padding distribution, PTW traffic share,
//!   stitch rate, L1 MPKI, inter-cluster read latency).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod experiment;
pub mod system;

pub use experiment::{
    CheckpointPlan, CheckpointedRun, Experiment, JobSpec, RunResult, SystemVariant, TraceData,
    TraceOptions,
};
pub use system::{LinkSeries, System};
