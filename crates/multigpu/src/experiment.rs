//! Experiment configurations and derived measures — the vocabulary of
//! the paper's evaluation section (§5).

use netcrafter_proto::{Metrics, NetCrafterConfig, SectorFillPolicy, SystemConfig};
use netcrafter_sim::snapshot::{ForkSnapshot, SnapshotError};
use netcrafter_sim::{Trace, TraceConfig};
use netcrafter_workloads::{Scale, Workload};

use crate::system::{LinkSeries, System};

/// The system configurations the evaluation compares (§5.2–§5.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SystemVariant {
    /// The non-uniform bandwidth baseline (Table 2), everything off.
    Baseline,
    /// The impractical *ideal*: inter-cluster links run at intra-cluster
    /// bandwidth (Figure 3).
    Ideal,
    /// Full NetCrafter: Stitching + 32-cycle Selective Flit Pooling +
    /// Trimming + Sequencing (the rightmost Figure 14 bar).
    NetCrafter,
    /// Stitching alone, no pooling (Figures 12/18/19 leftmost).
    StitchOnly,
    /// Stitching with (optionally selective) Flit Pooling of the given
    /// window (Figures 18/19 sweeps).
    StitchPool {
        /// Pooling window in cycles.
        window: u32,
        /// Exempt PTW flits from pooling.
        selective: bool,
    },
    /// Stitching + Selective Pooling + Trimming (the cumulative middle
    /// bar of Figure 14).
    StitchTrim,
    /// Trimming alone (with its sectored L1 fills).
    TrimOnly,
    /// Sequencing alone (PTW prioritization).
    SeqOnly,
    /// Figure 8's counterfactual: prioritize data-read flits instead of
    /// PTW flits.
    DataPrio,
    /// The §5.3 comparison baseline: 16 B sectored L1 everywhere,
    /// NetCrafter off.
    SectorCache,
}

impl SystemVariant {
    /// Applies the variant to a base configuration. The base config's
    /// `netcrafter.warmup_cycles` survives the variant's knob overwrite:
    /// the warmup window is a sweep-level lever (it makes every variant's
    /// pre-activation trajectory identical for prefix sharing), not part
    /// of any variant's identity.
    pub fn apply(self, mut cfg: SystemConfig) -> SystemConfig {
        let warmup = cfg.netcrafter.warmup_cycles;
        match self {
            SystemVariant::Baseline => {
                cfg.netcrafter = NetCrafterConfig::disabled();
                cfg.sector_fill = SectorFillPolicy::FullLine;
            }
            SystemVariant::Ideal => {
                cfg = cfg.idealized();
                cfg.netcrafter = NetCrafterConfig::disabled();
                cfg.sector_fill = SectorFillPolicy::FullLine;
            }
            SystemVariant::NetCrafter => {
                cfg = cfg.with_netcrafter();
            }
            SystemVariant::StitchOnly => {
                cfg.netcrafter = NetCrafterConfig::stitching_only();
                cfg.sector_fill = SectorFillPolicy::FullLine;
            }
            SystemVariant::StitchPool { window, selective } => {
                cfg.netcrafter = NetCrafterConfig {
                    stitching: true,
                    pooling_window: window,
                    selective_pooling: selective,
                    ..NetCrafterConfig::disabled()
                };
                cfg.sector_fill = SectorFillPolicy::FullLine;
            }
            SystemVariant::StitchTrim => {
                cfg.netcrafter = NetCrafterConfig {
                    stitching: true,
                    pooling_window: 32,
                    selective_pooling: true,
                    trimming: true,
                    ..NetCrafterConfig::disabled()
                };
                cfg.sector_fill = SectorFillPolicy::OnTrim;
            }
            SystemVariant::TrimOnly => {
                cfg.netcrafter = NetCrafterConfig {
                    trimming: true,
                    ..NetCrafterConfig::disabled()
                };
                cfg.sector_fill = SectorFillPolicy::OnTrim;
            }
            SystemVariant::SeqOnly => {
                cfg.netcrafter = NetCrafterConfig {
                    sequencing: true,
                    ..NetCrafterConfig::disabled()
                };
                cfg.sector_fill = SectorFillPolicy::FullLine;
            }
            SystemVariant::DataPrio => {
                cfg.netcrafter = NetCrafterConfig {
                    sequencing: true,
                    prioritize_data_instead: true,
                    ..NetCrafterConfig::disabled()
                };
                cfg.sector_fill = SectorFillPolicy::FullLine;
            }
            SystemVariant::SectorCache => {
                cfg = cfg.with_sector_cache();
            }
        }
        cfg.netcrafter.warmup_cycles = warmup;
        cfg
    }

    /// Display label for tables.
    pub fn label(self) -> String {
        match self {
            SystemVariant::Baseline => "Baseline".into(),
            SystemVariant::Ideal => "Ideal".into(),
            SystemVariant::NetCrafter => "NetCrafter".into(),
            SystemVariant::StitchOnly => "Stitching".into(),
            SystemVariant::StitchPool { window, selective } => {
                if selective {
                    format!("Stitch+SelPool{window}")
                } else {
                    format!("Stitch+Pool{window}")
                }
            }
            SystemVariant::StitchTrim => "Stitch+Trim".into(),
            SystemVariant::TrimOnly => "Trimming".into(),
            SystemVariant::SeqOnly => "Sequencing".into(),
            SystemVariant::DataPrio => "DataPrio".into(),
            SystemVariant::SectorCache => "SectorCache(16B)".into(),
        }
    }
}

/// The outcome of one run: execution time plus harvested metrics, with
/// accessors for every figure's derived measure.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// End-to-end execution time in cycles.
    pub exec_cycles: u64,
    /// All harvested counters/histograms/latencies.
    pub metrics: Metrics,
}

impl RunResult {
    /// Inter-cluster link utilization in [0, 1] (Figure 4).
    pub fn inter_utilization(&self) -> f64 {
        self.metrics
            .ratio("net.inter.flits", "net.inter.capacity_flits")
    }

    /// Mean inter-cluster read latency in cycles (Figures 5 and 15).
    pub fn inter_read_latency(&self) -> f64 {
        self.metrics
            .latency("total.cu.inter_cluster_read_latency")
            .mean()
    }

    /// Fraction of inter-cluster flits with the given padding percentage
    /// bucket (0, 25, 50 or 75) — Figure 6.
    pub fn padding_fraction(&self, pct: u32) -> f64 {
        let total = self.metrics.counter("net.inter.flits");
        if total == 0 {
            return 0.0;
        }
        self.metrics.counter(&format!("net.inter.padding{pct}")) as f64 / total as f64
    }

    /// Distribution of inter-cluster reads by bytes required (Figure 7):
    /// fractions for 16/32/48/64 B.
    pub fn fig7_fractions(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        let total: u64 = (1..=4)
            .map(|i| self.metrics.counter(&format!("total.cu.fig7_{}B", i * 16)))
            .sum();
        if total == 0 {
            return out;
        }
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self
                .metrics
                .counter(&format!("total.cu.fig7_{}B", (i + 1) * 16)) as f64
                / total as f64;
        }
        out
    }

    /// PTW-related share of inter-cluster bytes (Figure 9).
    pub fn ptw_byte_share(&self) -> f64 {
        let ptw = self.metrics.counter("net.inter.ptw_bytes");
        let data = self.metrics.counter("net.inter.data_bytes");
        if ptw + data == 0 {
            0.0
        } else {
            ptw as f64 / (ptw + data) as f64
        }
    }

    /// Fraction of would-be inter-cluster flits that were stitched away
    /// into parents (Figure 12): absorbed / (transmitted + absorbed).
    pub fn stitched_fraction(&self) -> f64 {
        let absorbed = self.metrics.counter("net.inter.cq.absorbed");
        let popped = self.metrics.counter("net.inter.cq.popped");
        if absorbed + popped == 0 {
            0.0
        } else {
            absorbed as f64 / (absorbed + popped) as f64
        }
    }

    /// Bytes that crossed inter-cluster links, counting each transmitted
    /// flit at full flit size (Figure 20's currency).
    pub fn inter_link_bytes(&self) -> u64 {
        self.metrics.counter("net.inter.flits") * self.metrics.counter("net.inter.flit_bytes")
    }

    /// L1 misses per kilo-instruction (Figures 16/17).
    pub fn l1_mpki(&self) -> f64 {
        1000.0 * self.metrics.counter("total.l1.misses") as f64
            / self.metrics.counter("total.cu.instructions").max(1) as f64
    }

    /// Renders the result as the line-oriented text block used by the
    /// bench crate's on-disk result cache: one `exec_cycles` header line
    /// followed by [`Metrics::to_kv`].
    pub fn to_kv(&self) -> String {
        format!(
            "exec_cycles = {}\n{}",
            self.exec_cycles,
            self.metrics.to_kv()
        )
    }

    /// Parses the text produced by [`RunResult::to_kv`]; `None` on any
    /// corruption so cache readers fall back to re-simulating.
    pub fn from_kv(text: &str) -> Option<RunResult> {
        let (first, rest) = text.split_once('\n')?;
        let exec_cycles = first.strip_prefix("exec_cycles = ")?.parse().ok()?;
        Some(RunResult {
            exec_cycles,
            metrics: Metrics::from_kv(rest)?,
        })
    }
}

/// One configured run: workload × variant × scale × base config.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Workload to run.
    pub workload: Workload,
    /// System variant.
    pub variant: SystemVariant,
    /// Base configuration (topology, CU count, flit size, …); the
    /// variant is applied on top at [`Experiment::run`].
    pub base_cfg: SystemConfig,
    /// Workload scale.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Watchdog limit.
    pub max_cycles: u64,
    /// Worker threads for the conservative parallel scheduler; 1 runs
    /// sequentially. Results are bit-identical either way, so this is
    /// host-side tuning, not a simulation input.
    pub threads: usize,
    /// Drive woken components through `tick_burst` (the default). `false`
    /// forces the scalar tick + busy + next_wake dispatch; results are
    /// bit-identical either way (the burst-vs-scalar equivalence suite
    /// pins this), so like `threads` it is host-side tuning only.
    pub burst: bool,
}

impl Experiment {
    /// A standard experiment: 4 GPUs × 8 CUs, small scale.
    pub fn new(workload: Workload, variant: SystemVariant) -> Self {
        Self {
            workload,
            variant,
            base_cfg: SystemConfig::small(8),
            scale: Scale::small(),
            seed: 0xC0FFEE,
            max_cycles: 80_000_000,
            threads: 1,
            burst: true,
        }
    }

    /// A minimal configuration for doc tests and smoke tests: 2 CUs per
    /// GPU, tiny workloads — runs in milliseconds.
    pub fn quick(workload: Workload, variant: SystemVariant) -> Self {
        Self {
            workload,
            variant,
            base_cfg: SystemConfig::small(2),
            scale: Scale::tiny(),
            seed: 0xC0FFEE,
            max_cycles: 20_000_000,
            threads: 1,
            burst: true,
        }
    }

    /// Replaces the workload scale.
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Replaces the base configuration.
    pub fn with_base_cfg(mut self, cfg: SystemConfig) -> Self {
        self.base_cfg = cfg;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the worker-thread count (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Toggles burst dispatch (`true` is the default; `false` selects the
    /// scalar tick/busy/next_wake reference path).
    pub fn with_burst_dispatch(mut self, on: bool) -> Self {
        self.burst = on;
        self
    }

    /// Builds the system, runs the workload to completion and harvests.
    pub fn run(&self) -> RunResult {
        let (run, _) = self
            .run_inner(None, &CheckpointPlan::default())
            .expect("no snapshot restore involved");
        run.result
    }

    /// Like [`Experiment::run`], but with the requested observability
    /// turned on: event tracing when `opts.config` is set, per-link
    /// time-series sampling when `opts.sample_window` is set. Returns the
    /// normal result plus everything recorded.
    pub fn run_traced(&self, opts: &TraceOptions) -> (RunResult, TraceData) {
        let (run, data) = self
            .run_inner(Some(opts), &CheckpointPlan::default())
            .expect("no snapshot restore involved");
        (run.result, data.expect("tracing requested"))
    }

    /// Like [`Experiment::run`], but driven by a [`CheckpointPlan`]: the
    /// run can warm-start from a snapshot and/or pause at a cycle to take
    /// one. Checkpoint → restore → continue is byte-identical to the
    /// uninterrupted run (metrics, traces and time series alike).
    ///
    /// # Errors
    ///
    /// Returns the restore error when `plan.restore_from` is corrupt, has
    /// a version mismatch, or was taken on a different configuration.
    pub fn run_checkpointed(
        &self,
        plan: &CheckpointPlan,
    ) -> Result<CheckpointedRun, SnapshotError> {
        Ok(self.run_inner(None, plan)?.0)
    }

    /// [`Experiment::run_traced`] with a [`CheckpointPlan`]. The snapshot
    /// carries the tracer and time-series state, so a restored run's trace
    /// is complete from cycle 0, not from the restore point.
    ///
    /// # Errors
    ///
    /// Returns the restore error when `plan.restore_from` is invalid.
    pub fn run_traced_checkpointed(
        &self,
        opts: &TraceOptions,
        plan: &CheckpointPlan,
    ) -> Result<(CheckpointedRun, TraceData), SnapshotError> {
        let (run, data) = self.run_inner(Some(opts), plan)?;
        Ok((run, data.expect("tracing requested")))
    }

    /// Runs the experiment forward to `until` (or quiescence, whichever
    /// comes first) and returns an in-memory [`ForkSnapshot`] of the
    /// paused state — a standalone prefix simulation, discarded after the
    /// fork. Sweeps prefer [`CheckpointPlan::fork_at`], which captures
    /// the same fork from a run that then continues to completion.
    /// Every job whose configuration is warmup-equivalent to this one
    /// (same [`JobSpec::prefix_key`]) can restore the fork via
    /// [`CheckpointPlan::fork`] and continue byte-identically to its own
    /// cold run, because no policy knob has acted before `until` when
    /// `until <= warmup_cycles`.
    ///
    /// # Errors
    ///
    /// Infallible today (the fork is serialized, never parsed); the
    /// `Result` keeps the signature uniform with the restore paths.
    pub fn run_prefix(&self, until: u64) -> Result<ForkSnapshot, SnapshotError> {
        let cfg = self.variant.apply(self.base_cfg);
        let kernel = self
            .workload
            .generate(&self.scale, cfg.total_gpus(), self.seed);
        let mut sys = System::build(cfg, &kernel);
        sys.set_threads(self.threads);
        sys.engine.set_burst_dispatch(self.burst);
        sys.run_until(until);
        Ok(sys.fork_snapshot())
    }

    fn run_inner(
        &self,
        opts: Option<&TraceOptions>,
        plan: &CheckpointPlan,
    ) -> Result<(CheckpointedRun, Option<TraceData>), SnapshotError> {
        let cfg = self.variant.apply(self.base_cfg);
        let kernel = self
            .workload
            .generate(&self.scale, cfg.total_gpus(), self.seed);
        let mut sys = System::build(cfg, &kernel);
        if let Some(opts) = opts {
            if let Some(config) = &opts.config {
                sys.enable_tracing(config.clone());
            }
            if let Some(window) = opts.sample_window {
                sys.enable_link_sampling(window);
            }
        }
        sys.set_threads(self.threads);
        sys.engine.set_burst_dispatch(self.burst);
        if let Some(fork) = &plan.fork {
            // In-memory fork takes precedence over the persistent tier:
            // it is already resident and always at least as deep into the
            // run as any disk snapshot the planner would have chosen.
            sys.restore(fork.bytes())?;
            debug_assert_eq!(
                sys.state_hash(),
                fork.state_hash(),
                "fork restore must reproduce the paused state byte-exactly"
            );
        } else if let Some(bytes) = &plan.restore_from {
            sys.restore(bytes)?;
        }
        let resumed_at = sys.engine.cycle();
        // Apply the pause points in ascending cycle order, skipping any
        // the restore already moved past.
        let mut pauses: Vec<(u64, bool)> = Vec::new();
        if let Some(at) = plan.fork_at.filter(|&at| at > resumed_at) {
            pauses.push((at, true));
        }
        if let Some(at) = plan.checkpoint_at.filter(|&at| at > resumed_at) {
            pauses.push((at, false));
        }
        pauses.sort_unstable();
        let mut snapshot = None;
        let mut fork = None;
        for (at, is_fork) in pauses {
            sys.run_until(at);
            // The run may quiesce before the requested cycle; the
            // snapshot is tagged with the cycle actually paused at.
            if is_fork {
                fork = Some(sys.fork_snapshot());
            } else {
                snapshot = Some((sys.engine.cycle(), sys.save_snapshot()));
            }
        }
        let exec_cycles = sys.run(self.max_cycles);
        let result = RunResult {
            exec_cycles,
            metrics: sys.harvest(),
        };
        let data = opts.map(|_| TraceData {
            trace: sys.take_trace(),
            links: sys.take_link_series(),
        });
        Ok((
            CheckpointedRun {
                result,
                snapshot,
                fork,
                resumed_at,
            },
            data,
        ))
    }
}

/// Checkpoint/restore controls for one run. The default plan (no
/// checkpoint, no restore) reproduces [`Experiment::run`] exactly.
#[derive(Debug, Clone, Default)]
pub struct CheckpointPlan {
    /// Pause at this cycle and snapshot the state. No snapshot is taken
    /// when the run quiesces first or a restore already starts past it.
    pub checkpoint_at: Option<u64>,
    /// Pause at this cycle and capture an in-memory [`ForkSnapshot`] into
    /// [`CheckpointedRun::fork`], then continue to completion — how a
    /// prefix-sharing sweep's *representative* job produces the fork its
    /// group mates restore, without a separate warmup-only simulation.
    /// No fork is captured when the run quiesces first or a restore
    /// already starts past it.
    pub fork_at: Option<u64>,
    /// Snapshot bytes (from [`CheckpointedRun::snapshot`]) to warm-start
    /// from; the experiment's configuration must match the run that
    /// produced them.
    pub restore_from: Option<Vec<u8>>,
    /// In-memory fork (from [`CheckpointedRun::fork`] or
    /// [`Experiment::run_prefix`]) to warm-start from. Takes precedence
    /// over `restore_from`; the experiment's configuration must be
    /// warmup-equivalent to the run that produced the fork (same
    /// [`JobSpec::prefix_key`]).
    pub fork: Option<ForkSnapshot>,
}

/// Outcome of [`Experiment::run_checkpointed`].
#[derive(Debug)]
pub struct CheckpointedRun {
    /// The run's result, identical to an uninterrupted run's.
    pub result: RunResult,
    /// `(cycle, bytes)` of the snapshot taken at `checkpoint_at`, when
    /// one was requested (the cycle is earlier when the run quiesced
    /// before the requested pause point).
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// The in-memory fork captured at `fork_at`, when one was requested
    /// and the run reached the pause point.
    pub fork: Option<ForkSnapshot>,
    /// Cycle the simulation actually started stepping from: 0 for a cold
    /// run, the snapshot's cycle after a warm start.
    pub resumed_at: u64,
}

/// What [`Experiment::run_traced`] should record.
#[derive(Debug, Clone, Default)]
pub struct TraceOptions {
    /// Event-trace filter; `None` leaves tracing off.
    pub config: Option<TraceConfig>,
    /// Time-series bucket width in cycles; `None` leaves sampling off.
    pub sample_window: Option<u64>,
}

impl TraceOptions {
    /// Trace everything, no time series.
    pub fn trace_all() -> Self {
        Self {
            config: Some(TraceConfig::default()),
            sample_window: None,
        }
    }

    /// Sample every link with `window`-cycle buckets, no event trace.
    pub fn sample(window: u64) -> Self {
        Self {
            config: None,
            sample_window: Some(window),
        }
    }
}

/// Everything [`Experiment::run_traced`] recorded.
#[derive(Debug)]
pub struct TraceData {
    /// The structured event trace (empty when tracing was off).
    pub trace: Trace,
    /// Per-link time series (empty when sampling was off).
    pub links: Vec<LinkSeries>,
}

impl TraceData {
    /// Renders the link series as compact JSONL: one object per
    /// `(link, metric)` pair with the window width and bucket values.
    pub fn links_to_jsonl(&self) -> String {
        let mut out = String::new();
        for link in &self.links {
            for (metric, series) in [
                ("bytes", &link.series.bytes),
                ("flits", &link.series.flits),
                ("occupancy", &link.series.occupancy),
                ("pooled", &link.series.pooled),
            ] {
                out.push_str(&format!(
                    "{{\"link\":{},\"inter\":{},\"metric\":\"{}\",\"window\":{},\"buckets\":[",
                    netcrafter_sim::trace::json_string(&link.link),
                    link.is_inter,
                    metric,
                    series.window(),
                ));
                for (i, (_, v)) in series.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&v.to_string());
                }
                out.push_str("]}\n");
            }
        }
        out
    }
}

/// A plain-data description of one sweep job: an [`Experiment`] plus the
/// display tag the figure generators use to retrieve its result.
///
/// `JobSpec` is `Send` by construction (all fields are owned plain data),
/// so a sweep runner can hand specs to `std::thread` workers. Two key
/// derivations matter:
///
/// * [`JobSpec::memo_key`] — the in-process memo identity. It mirrors the
///   key the sequential runner always used (`workload|variant|tag`), so
///   figure generators keep retrieving results the same way.
/// * [`JobSpec::cache_key`] — the *physical* identity of the simulation:
///   the variant-applied configuration (via its stable representation),
///   workload, scale, seed and watchdog limit. Jobs that differ only in
///   display tag share one persistent cache entry.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Workload to run.
    pub workload: Workload,
    /// System variant.
    pub variant: SystemVariant,
    /// Base configuration the variant is applied on top of.
    pub base_cfg: SystemConfig,
    /// Workload scale.
    pub scale: Scale,
    /// Workload seed.
    pub seed: u64,
    /// Watchdog limit.
    pub max_cycles: u64,
    /// Worker threads for the parallel scheduler. Deliberately excluded
    /// from both [`JobSpec::memo_key`] and [`JobSpec::cache_key`]:
    /// parallel execution is bit-identical to sequential, so results are
    /// interchangeable across thread counts.
    pub threads: usize,
    /// Display tag distinguishing sweep points of one variant (e.g.
    /// `"clusters4"`); empty for plain runs.
    pub tag: String,
}

impl JobSpec {
    /// Wraps an [`Experiment`] with its retrieval tag.
    pub fn new(exp: Experiment, tag: impl Into<String>) -> Self {
        Self {
            workload: exp.workload,
            variant: exp.variant,
            base_cfg: exp.base_cfg,
            scale: exp.scale,
            seed: exp.seed,
            max_cycles: exp.max_cycles,
            threads: exp.threads,
            tag: tag.into(),
        }
    }

    /// The runnable experiment this spec describes.
    pub fn to_experiment(&self) -> Experiment {
        Experiment {
            workload: self.workload,
            variant: self.variant,
            base_cfg: self.base_cfg,
            scale: self.scale,
            seed: self.seed,
            max_cycles: self.max_cycles,
            threads: self.threads,
            burst: true,
        }
    }

    /// In-process memo key: `workload|variant-label|tag`. This is the key
    /// format the sequential bench runner has always used.
    pub fn memo_key(&self) -> String {
        format!("{}|{}|{}", self.workload, self.variant.label(), self.tag)
    }

    /// Stable cross-process cache key covering every input that affects
    /// the simulation outcome. Deliberately excludes `tag` (display-only).
    pub fn cache_key(&self) -> String {
        let applied = self.variant.apply(self.base_cfg);
        format!(
            "v1;wl={:?};{};scale={}x{}x{}x{};wlseed={:016x};max={}",
            self.workload,
            applied.stable_repr(),
            self.scale.ctas,
            self.scale.waves_per_cta,
            self.scale.mem_ops_per_wave,
            self.scale.footprint_pages,
            self.seed,
            self.max_cycles,
        )
    }

    /// Prefix-sharing group key: jobs with equal keys evolve
    /// byte-identically up to their NetCrafter warmup cycle, so one
    /// simulated prefix (an in-memory [`ForkSnapshot`]) serves them all.
    ///
    /// The key is the variant-applied configuration's
    /// [`SystemConfig::warmup_repr`] — the stable representation with the
    /// warmup-inert policy knobs masked, plus the component-roster token —
    /// combined with the workload identity. `max_cycles` is deliberately
    /// excluded: a prefix paused at the warmup cycle is valid for any
    /// watchdog deeper than it (the planner enforces that per job).
    ///
    /// `None` means this job cannot share a prefix:
    /// * no warmup window (`warmup_cycles == 0`) — knobs act from cycle 0;
    /// * no NetCrafter knob enabled — the build uses the plain FIFO
    ///   egress roster, whose snapshot layout differs from the
    ///   ClusterQueue roster (and an all-off run has nothing to share a
    ///   warmup *with*);
    /// * the watchdog is not strictly deeper than the warmup window.
    pub fn prefix_key(&self) -> Option<String> {
        let applied = self.variant.apply(self.base_cfg);
        let warmup = applied.netcrafter.warmup_cycles;
        if warmup == 0 || !applied.netcrafter.any_enabled() || warmup >= self.max_cycles {
            return None;
        }
        Some(format!(
            "p1;wl={:?};{};scale={}x{}x{}x{};wlseed={:016x}",
            self.workload,
            applied.warmup_repr(),
            self.scale.ctas,
            self.scale.waves_per_cta,
            self.scale.mem_ops_per_wave,
            self.scale.footprint_pages,
            self.seed,
        ))
    }

    /// The variant-applied warmup cycle — the pause point of this job's
    /// shared prefix when [`JobSpec::prefix_key`] is `Some`.
    pub fn warmup_cycles(&self) -> u64 {
        self.variant.apply(self.base_cfg).netcrafter.warmup_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_produce_expected_configs() {
        let base = SystemConfig::paper_baseline();
        let ideal = SystemVariant::Ideal.apply(base);
        assert_eq!(ideal.topology.inter_gbps, ideal.topology.intra_gbps);

        let nc = SystemVariant::NetCrafter.apply(base);
        assert!(nc.netcrafter.stitching && nc.netcrafter.trimming && nc.netcrafter.sequencing);
        assert_eq!(nc.sector_fill, SectorFillPolicy::OnTrim);

        let so = SystemVariant::StitchOnly.apply(base);
        assert!(so.netcrafter.stitching);
        assert_eq!(so.netcrafter.pooling_window, 0);

        let sp = SystemVariant::StitchPool {
            window: 64,
            selective: true,
        }
        .apply(base);
        assert_eq!(sp.netcrafter.pooling_window, 64);
        assert!(sp.netcrafter.selective_pooling);

        let sc = SystemVariant::SectorCache.apply(base);
        assert_eq!(sc.sector_fill, SectorFillPolicy::Always);
        assert!(!sc.netcrafter.any_enabled());

        let seq = SystemVariant::SeqOnly.apply(base);
        assert!(seq.netcrafter.sequencing && !seq.netcrafter.stitching);
        assert!(seq.validate().is_ok());
    }

    #[test]
    fn quick_experiment_runs_gups() {
        let r = Experiment::quick(Workload::Gups, SystemVariant::Baseline).run();
        assert!(r.exec_cycles > 0);
        assert!(r.metrics.counter("total.cu.mem_ops") > 0);
        assert!(r.inter_utilization() > 0.0, "GUPS loads the slow link");
        let fig7 = r.fig7_fractions();
        assert!(fig7[0] > 0.9, "GUPS needs <=16 B nearly always: {fig7:?}");
    }

    #[test]
    fn ideal_beats_baseline_on_network_bound_workload() {
        let base = Experiment::quick(Workload::Gups, SystemVariant::Baseline).run();
        let ideal = Experiment::quick(Workload::Gups, SystemVariant::Ideal).run();
        assert!(
            ideal.exec_cycles <= base.exec_cycles,
            "ideal {} vs base {}",
            ideal.exec_cycles,
            base.exec_cycles
        );
    }

    #[test]
    fn netcrafter_stitches_on_quick_run() {
        let r = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter).run();
        assert!(r.stitched_fraction() > 0.0, "some flits must stitch");
        assert!(
            r.metrics.counter("total.trim.trimmed") > 0,
            "trimming engages"
        );
    }

    #[test]
    fn job_spec_is_send_and_round_trips() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<JobSpec>();

        let exp = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter);
        let job = JobSpec::new(exp.clone(), "flit8");
        assert_eq!(job.memo_key(), "GUPS|NetCrafter|flit8");
        let back = job.to_experiment();
        assert_eq!(back.workload, exp.workload);
        assert_eq!(back.base_cfg, exp.base_cfg);
        assert_eq!(back.seed, exp.seed);
        assert_eq!(back.max_cycles, exp.max_cycles);
    }

    #[test]
    fn cache_key_tracks_physical_inputs_only() {
        let exp = Experiment::quick(Workload::Gups, SystemVariant::Baseline);
        let a = JobSpec::new(exp.clone(), "");
        let b = JobSpec::new(exp.clone(), "some-tag");
        assert_eq!(a.cache_key(), b.cache_key(), "tag is display-only");
        assert_ne!(a.memo_key(), b.memo_key());

        let other_variant = JobSpec::new(
            Experiment::quick(Workload::Gups, SystemVariant::NetCrafter),
            "",
        );
        assert_ne!(a.cache_key(), other_variant.cache_key());

        let other_seed = JobSpec::new(exp.clone().with_seed(7), "");
        assert_ne!(a.cache_key(), other_seed.cache_key());

        let other_scale = JobSpec::new(exp.clone().with_scale(Scale::small()), "");
        assert_ne!(a.cache_key(), other_scale.cache_key());

        let mut longer = JobSpec::new(exp, "");
        longer.max_cycles += 1;
        assert_ne!(a.cache_key(), longer.cache_key());
    }

    #[test]
    fn variant_apply_preserves_warmup_cycles() {
        let mut base = SystemConfig::paper_baseline();
        base.netcrafter.warmup_cycles = 1_234;
        for v in [
            SystemVariant::Baseline,
            SystemVariant::Ideal,
            SystemVariant::NetCrafter,
            SystemVariant::StitchOnly,
            SystemVariant::StitchTrim,
            SystemVariant::SeqOnly,
            SystemVariant::SectorCache,
        ] {
            assert_eq!(
                v.apply(base).netcrafter.warmup_cycles,
                1_234,
                "variant {v:?} must not clobber the warmup window"
            );
        }
    }

    #[test]
    fn prefix_key_groups_warmup_equivalent_jobs() {
        let mut exp = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter);
        // No warmup window: nothing to share.
        assert!(JobSpec::new(exp.clone(), "").prefix_key().is_none());

        exp.base_cfg.netcrafter.warmup_cycles = 500;
        let nc = JobSpec::new(exp.clone(), "");
        let key = nc.prefix_key().expect("warmup window set");
        assert_eq!(nc.warmup_cycles(), 500);

        // Policy variants on the same ClusterQueue roster + fill policy
        // share the prefix with full NetCrafter.
        let mut st = exp.clone();
        st.variant = SystemVariant::StitchTrim;
        assert_eq!(JobSpec::new(st, "").prefix_key().as_ref(), Some(&key));

        // Different display tag never splits a group.
        assert_eq!(
            JobSpec::new(exp.clone(), "other-tag").prefix_key().as_ref(),
            Some(&key)
        );

        // Different max_cycles does not split the group either (the
        // prefix is valid under any deeper watchdog).
        let mut deeper = exp.clone();
        deeper.max_cycles *= 2;
        assert_eq!(JobSpec::new(deeper, "").prefix_key().as_ref(), Some(&key));

        // FullLine-fill variants share a *different* prefix: trimming's
        // sectored fills change warmup state.
        let mut so = exp.clone();
        so.variant = SystemVariant::StitchOnly;
        let so_key = JobSpec::new(so.clone(), "")
            .prefix_key()
            .expect("shareable");
        assert_ne!(so_key, key);
        let mut seq = exp.clone();
        seq.variant = SystemVariant::SeqOnly;
        assert_eq!(JobSpec::new(seq, "").prefix_key().as_ref(), Some(&so_key));

        // Baseline runs the FIFO roster: no sharing.
        let mut baseline = exp.clone();
        baseline.variant = SystemVariant::Baseline;
        assert!(JobSpec::new(baseline, "").prefix_key().is_none());

        // A watchdog at or below the warmup window disables sharing.
        let mut shallow = exp.clone();
        shallow.max_cycles = 500;
        assert!(JobSpec::new(shallow, "").prefix_key().is_none());

        // Physical divergence splits the group.
        let mut reseeded = exp;
        reseeded.seed = 7;
        assert_ne!(JobSpec::new(reseeded, "").prefix_key().unwrap(), key);
    }

    #[test]
    fn forked_run_is_byte_identical_to_cold() {
        // The tentpole oracle at experiment granularity: run a shared
        // prefix once, fork it in memory, and finish two *different*
        // policy variants from the fork. Each must match its own cold run
        // byte-for-byte (exec cycles and every metric).
        let mut exp = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter);
        exp.base_cfg.netcrafter.warmup_cycles = 400;
        let fork = exp.run_prefix(400).expect("prefix run is infallible");
        assert!(fork.cycle() <= 400);
        assert!(!fork.bytes().is_empty());

        for variant in [SystemVariant::NetCrafter, SystemVariant::StitchTrim] {
            let mut member = exp.clone();
            member.variant = variant;
            let cold = member.run();
            let plan = CheckpointPlan {
                checkpoint_at: None,
                fork_at: None,
                restore_from: None,
                fork: Some(fork.clone()),
            };
            let warm = member.run_checkpointed(&plan).expect("fork restores");
            assert_eq!(warm.resumed_at, fork.cycle());
            assert_eq!(warm.result.exec_cycles, cold.exec_cycles, "{variant:?}");
            assert_eq!(
                warm.result.metrics.to_kv(),
                cold.metrics.to_kv(),
                "{variant:?} metrics diverged after fork restore"
            );
        }
    }

    #[test]
    fn fork_at_captures_mid_run_without_perturbing_the_run() {
        // A representative job pauses at the warmup cycle, forks, and
        // continues. Its own result must match an uninterrupted run, and
        // the captured fork must be byte-identical to a standalone
        // prefix simulation's.
        let mut exp = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter);
        exp.base_cfg.netcrafter.warmup_cycles = 400;
        let cold = exp.run();
        let plan = CheckpointPlan {
            checkpoint_at: None,
            fork_at: Some(400),
            restore_from: None,
            fork: None,
        };
        let run = exp.run_checkpointed(&plan).expect("nothing to restore");
        assert_eq!(run.result.exec_cycles, cold.exec_cycles);
        assert_eq!(run.result.metrics.to_kv(), cold.metrics.to_kv());
        let fork = run.fork.expect("fork captured at cycle 400");
        let standalone = exp.run_prefix(400).expect("prefix run");
        assert_eq!(fork.cycle(), standalone.cycle());
        assert_eq!(fork.state_hash(), standalone.state_hash());
        assert_eq!(fork.bytes(), standalone.bytes());

        // A sibling restoring the mid-run fork matches its own cold run.
        let mut member = exp.clone();
        member.variant = SystemVariant::StitchTrim;
        let member_cold = member.run();
        let restore = CheckpointPlan {
            checkpoint_at: None,
            fork_at: None,
            restore_from: None,
            fork: Some(fork),
        };
        let warm = member.run_checkpointed(&restore).expect("fork restores");
        assert_eq!(warm.resumed_at, 400);
        assert_eq!(warm.result.exec_cycles, member_cold.exec_cycles);
        assert_eq!(warm.result.metrics.to_kv(), member_cold.metrics.to_kv());
    }

    #[test]
    fn fork_takes_precedence_over_disk_restore() {
        let mut exp = Experiment::quick(Workload::Gups, SystemVariant::NetCrafter);
        exp.base_cfg.netcrafter.warmup_cycles = 400;
        let fork = exp.run_prefix(400).expect("prefix run");
        let plan = CheckpointPlan {
            checkpoint_at: None,
            fork_at: None,
            // Garbage in the persistent slot: if the fork really wins,
            // these bytes are never parsed.
            restore_from: Some(vec![0xde, 0xad, 0xbe, 0xef]),
            fork: Some(fork),
        };
        let warm = exp.run_checkpointed(&plan).expect("fork wins");
        assert_eq!(warm.result.exec_cycles, exp.run().exec_cycles);
    }

    #[test]
    fn run_result_kv_round_trip() {
        let r = Experiment::quick(Workload::Gups, SystemVariant::Baseline).run();
        let text = r.to_kv();
        let back = RunResult::from_kv(&text).expect("round trip parses");
        assert_eq!(back.exec_cycles, r.exec_cycles);
        assert_eq!(back.metrics.to_kv(), r.metrics.to_kv());
        assert_eq!(back.inter_read_latency(), r.inter_read_latency());
        assert!(RunResult::from_kv("garbage").is_none());
        assert!(RunResult::from_kv("exec_cycles = nope\n").is_none());
    }

    #[test]
    fn variant_labels_are_unique() {
        let labels: Vec<String> = [
            SystemVariant::Baseline,
            SystemVariant::Ideal,
            SystemVariant::NetCrafter,
            SystemVariant::StitchOnly,
            SystemVariant::StitchPool {
                window: 32,
                selective: false,
            },
            SystemVariant::StitchPool {
                window: 32,
                selective: true,
            },
            SystemVariant::StitchTrim,
            SystemVariant::TrimOnly,
            SystemVariant::SeqOnly,
            SystemVariant::SectorCache,
        ]
        .iter()
        .map(|v| v.label())
        .collect();
        let unique: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
