//! Conservative parallel discrete-event execution across domains.
//!
//! [`SchedulerMode::ParallelEventDriven`](crate::SchedulerMode) splits the
//! component set into *domains* (one per GPU cluster plus the switch/root
//! domain, derived from the topology by `multigpu::system`), runs each
//! domain's event-driven loop on a worker thread, and synchronizes at a
//! conservative epoch barrier with *asymmetric per-domain horizons*.
//! Domain `d`'s horizon in an epoch starting at the globally earliest
//! pending event `g` is `g + Lin(d) - 1`, where `Lin(d)` is the minimum
//! *incoming* pair lookahead over every other domain `s` (the per-pair
//! matrix of [`Partition::with_pair_lookahead`], or the global minimum
//! `L` when no matrix was supplied — in which case every horizon equals
//! the classic `g + L - 1`). Safety: a message sent by any domain `s`
//! during the epoch is sent at some cycle `c >= g`, so it arrives at
//! `c + L(s, d) >= g + Lin(d)` — strictly beyond `d`'s horizon. No
//! domain can receive a message for a cycle it has already executed, so
//! causality is preserved without rollback, while domains behind
//! high-latency links run epochs their own slack allows (see DESIGN.md
//! §3.6 for the full argument).
//!
//! **Bit-exactness.** Every delivery carries a canonical key
//! `(send_cycle, src component id, per-src sequence)`. The sequential
//! scheduler delivers same-cycle messages in wheel push order, which is
//! exactly ascending key order (sends commit in tick order — ascending
//! id — within a cycle, and the overflow refill is order-preserving), so
//! sorting each slot by key before delivery reproduces the sequential
//! delivery order no matter how the barrier interleaved cross-domain
//! transfers. Tracer shards and delivery-ring logs are merged in
//! `(cycle, track)` / `(cycle, key)` order behind a *watermark*: with
//! asymmetric horizons a fast domain may emit events for cycles a slow
//! domain has not reached yet, so merged events are held back until
//! every domain has fully executed past their cycle (the minimum
//! per-domain completed cycle). See DESIGN.md §3.3 for the full
//! determinism argument.
//!
//! **Quiescence.** Sampling components tick every cycle until *global*
//! quiescence, so a domain must not free-run past the final cycle. A
//! domain therefore executes events only while *locally* active (busy
//! components or local messages in flight); once locally quiescent its
//! remaining wakes are pure observation ticks, which the barrier replays
//! afterwards — through the epoch end while the system is still globally
//! active, or through the global quiescence cycle `X = max` over domains
//! of the last driving cycle on the final barrier. `X` equals the
//! sequential stop cycle because the sequential run's last step always
//! delivers a message or retires the last busy component.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::mpsc;

use netcrafter_proto::Message;

use crate::arena::{Arena, Handle};
use crate::engine::{Component, ComponentId, Ctx, Engine, TraceEvent, NEVER, WHEEL_SLOTS};
use crate::trace::{Event, Tracer};
use crate::Cycle;

/// Canonical delivery key: `(send cycle, src component id, per-src
/// sequence)`. Sorting same-cycle deliveries by this key reproduces the
/// sequential wheel push order exactly.
type Key = (Cycle, u32, u32);

/// Pseudo-source for messages injected from outside the simulation (or
/// already in flight when the parallel run starts): they sort after any
/// same-cycle real send, which is safe because injections only happen
/// while the engine is paused (their recorded send cycle predates every
/// in-run send cycle).
const SRC_EXTERNAL: u32 = u32::MAX;

/// A message crossing a domain boundary, exchanged at epoch barriers.
struct CrossMsg {
    when: Cycle,
    key: Key,
    dst: ComponentId,
    msg: Message,
}

/// Static assignment of components to domains plus the proven lookahead.
///
/// Build one with [`Partition::new`] and install it with
/// [`Engine::set_parallel`]. Domain indices must be dense (`0..domains`)
/// and the lookahead is the minimum cross-domain `Ctx::send` delay in
/// cycles — every cross-domain send is asserted against it at runtime.
#[derive(Debug, Clone)]
pub struct Partition {
    pub(crate) domain_of: Vec<usize>,
    pub(crate) domains: usize,
    pub(crate) lookahead: u64,
    /// Optional per-domain-pair minimum send delay, row-major
    /// `domains × domains`; `u64::MAX` marks pairs with no direct link.
    /// When present, cross-domain sends are asserted against the pair's
    /// own bound instead of the global minimum — a send over a
    /// high-latency fabric link that undercuts *that link's* latency is
    /// caught even though it clears the global minimum.
    pub(crate) pair_lookahead: Option<Vec<u64>>,
}

impl Partition {
    /// Builds a partition from a component-id-indexed domain table.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead` is zero or any domain index in
    /// `0..max(domain_of)+1` is unused (domains must be dense).
    pub fn new(domain_of: Vec<usize>, lookahead: u64) -> Partition {
        assert!(
            lookahead >= 1,
            "partition lookahead must be at least one cycle"
        );
        let domains = Self::check_dense(&domain_of);
        Partition {
            domain_of,
            domains,
            lookahead,
            pair_lookahead: None,
        }
    }

    /// Builds a partition with a per-domain-pair lookahead matrix
    /// (row-major `domains × domains`, `u64::MAX` = no direct link). The
    /// epoch length is still the minimum over linked pairs — conservative
    /// for every pair — but each cross-domain send is asserted against
    /// its own pair's bound, so a heterogeneous fabric keeps per-link
    /// latency contracts honest.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape is wrong, a linked pair's bound is
    /// zero, no pair is linked, or the domain table is not dense.
    pub fn with_pair_lookahead(domain_of: Vec<usize>, pairs: Vec<u64>) -> Partition {
        let domains = Self::check_dense(&domain_of);
        assert_eq!(
            pairs.len(),
            domains * domains,
            "pair lookahead matrix must be domains^2 = {}",
            domains * domains
        );
        let mut min = NEVER;
        for a in 0..domains {
            for b in 0..domains {
                if a == b {
                    continue;
                }
                let v = pairs[a * domains + b];
                if v < NEVER {
                    assert!(
                        v >= 1,
                        "pair ({a},{b}) lookahead must be at least one cycle"
                    );
                    min = min.min(v);
                }
            }
        }
        assert!(min < NEVER, "pair lookahead matrix links no domain pair");
        Partition {
            domain_of,
            domains,
            lookahead: min,
            pair_lookahead: Some(pairs),
        }
    }

    fn check_dense(domain_of: &[usize]) -> usize {
        let domains = domain_of.iter().map(|&d| d + 1).max().unwrap_or(0);
        let mut seen = vec![false; domains];
        for &d in domain_of {
            seen[d] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "partition domain indices must be dense (0..{domains})"
        );
        domains
    }

    /// Number of domains.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// The proven minimum cross-domain send delay, in cycles.
    pub fn lookahead(&self) -> u64 {
        self.lookahead
    }

    /// The minimum send delay proven for the `(a, b)` domain pair: the
    /// matrix entry when one was supplied, the global minimum otherwise.
    pub fn pair_lookahead(&self, a: usize, b: usize) -> u64 {
        match &self.pair_lookahead {
            Some(m) => m[a * self.domains + b],
            None => self.lookahead,
        }
    }
}

/// Partition plus worker-thread count, installed by
/// [`Engine::set_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    pub(crate) partition: Partition,
    pub(crate) threads: usize,
}

/// One domain's slice of the engine: components, mailboxes, a keyed delay
/// wheel, and a private event-driven scheduler mirroring `Engine::step`.
struct DomainState {
    /// This domain's index.
    dom: usize,
    /// Global component ids owned here, ascending (so ascending local
    /// index equals ascending global id — the sequential tick order).
    ids: Vec<usize>,
    comps: Vec<Box<dyn Component>>,
    inboxes: Vec<VecDeque<Handle>>,
    /// Backing store for this domain's message payloads (wheel slots and
    /// mailboxes move 8-byte handles, mirroring the sequential engine).
    arena: Arena<Message>,
    /// Global id -> local index (valid only for this domain's members).
    local_of: Vec<usize>,
    /// Global id -> owning domain (shared table, cloned per domain).
    domain_of: Vec<usize>,
    /// Keyed delay wheel: `(key, local dst, message)` per slot, sorted by
    /// key at delivery time.
    wheel: Vec<Vec<(Key, usize, Handle)>>,
    overflow: Vec<(Cycle, Key, usize, Handle)>,
    overflow_scratch: Vec<(Cycle, Key, usize, Handle)>,
    overflow_min: Cycle,
    slot_scratch: Vec<(Key, usize, Handle)>,
    cycle: Cycle,
    in_flight: usize,
    delivered: u64,
    outbox: Vec<(Cycle, ComponentId, Handle)>,
    armed: Vec<Cycle>,
    wake_heap: BinaryHeap<Reverse<(Cycle, usize)>>,
    active: Vec<usize>,
    every: Vec<bool>,
    every_count: usize,
    woken: Vec<usize>,
    busy_flags: Vec<bool>,
    busy_count: usize,
    /// Per-local-component send sequence counter (third key field).
    send_seq: Vec<u32>,
    /// Structured-event tracer shard (global track table).
    tracer: Tracer,
    /// Delivery-ring logging on (`Engine::enable_trace`)?
    ring_on: bool,
    ring_log: Vec<(Key, TraceEvent)>,
    /// Cross-domain sends staged during the current epoch.
    cross_out: Vec<CrossMsg>,
    lookahead: u64,
    /// This domain's row of the pair-lookahead matrix (destination-domain
    /// indexed minimum send delays); empty = uniform `lookahead`.
    pair_row: Vec<u64>,
    /// Last executed cycle that delivered a message or saw a busy
    /// component — the domain's contribution to the global stop cycle.
    last_driving: Cycle,
    /// Burst dispatch flag, copied from the engine at decomposition.
    burst: bool,
}

impl DomainState {
    fn new(dom: usize, n_global: usize, start: Cycle, lookahead: u64) -> DomainState {
        DomainState {
            dom,
            ids: Vec::new(),
            comps: Vec::new(),
            inboxes: Vec::new(),
            arena: Arena::new(),
            local_of: vec![usize::MAX; n_global],
            domain_of: Vec::new(),
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            overflow_scratch: Vec::new(),
            overflow_min: NEVER,
            slot_scratch: Vec::new(),
            cycle: start,
            in_flight: 0,
            delivered: 0,
            outbox: Vec::new(),
            armed: Vec::new(),
            wake_heap: BinaryHeap::new(),
            active: Vec::new(),
            every: Vec::new(),
            every_count: 0,
            woken: Vec::new(),
            busy_flags: Vec::new(),
            busy_count: 0,
            send_seq: Vec::new(),
            tracer: Tracer::off(),
            ring_on: false,
            ring_log: Vec::new(),
            cross_out: Vec::new(),
            lookahead,
            pair_row: Vec::new(),
            last_driving: start,
            burst: true,
        }
    }

    fn push_component(&mut self, global: usize, comp: Box<dyn Component>, inbox: VecDeque<Handle>) {
        let busy = comp.busy();
        self.local_of[global] = self.ids.len();
        self.ids.push(global);
        self.comps.push(comp);
        self.inboxes.push(inbox);
        self.armed.push(NEVER);
        self.every.push(false);
        self.busy_flags.push(busy);
        self.busy_count += busy as usize;
        self.send_seq.push(0);
    }

    fn locally_quiescent(&self) -> bool {
        self.busy_count == 0 && self.in_flight == 0
    }

    #[inline]
    fn arm(&mut self, l: usize, when: Cycle) {
        if when < self.armed[l] {
            self.armed[l] = when;
            self.wake_heap.push(Reverse((when, l)));
        }
    }

    #[inline]
    fn unevery(&mut self, l: usize) {
        if self.every[l] {
            self.every[l] = false;
            self.every_count -= 1;
        }
    }

    fn schedule_local(&mut self, when: Cycle, key: Key, l: usize, h: Handle) {
        debug_assert!(when > self.cycle);
        self.in_flight += 1;
        if (when - self.cycle) < WHEEL_SLOTS as u64 {
            self.wheel[(when % WHEEL_SLOTS as u64) as usize].push((key, l, h));
        } else {
            self.overflow_min = self.overflow_min.min(when);
            self.overflow.push((when, key, l, h));
        }
    }

    /// Applies a cross-domain message received at an epoch barrier. Its
    /// delivery cycle is strictly beyond the epoch it was sent in, so it
    /// can never target an already-executed cycle.
    fn apply_cross(&mut self, m: CrossMsg) {
        assert!(
            m.when > self.cycle,
            "cross-domain message for executed cycle {} (domain {} at {})",
            m.when,
            self.dom,
            self.cycle
        );
        let l = self.local_of[m.dst.0];
        let h = self.arena.alloc(m.msg);
        self.schedule_local(m.when, m.key, l, h);
    }

    /// Mirror of `Engine::next_event_cycle` over this domain's state.
    fn next_event_cycle(&mut self) -> Cycle {
        if self.every_count > 0 {
            return self.cycle + 1;
        }
        let mut wake = NEVER;
        while let Some(&Reverse((when, l))) = self.wake_heap.peek() {
            if self.armed[l] == when {
                wake = when;
                break;
            }
            self.wake_heap.pop();
        }
        if wake <= self.cycle + 1 {
            return wake;
        }
        let mut next = wake.min(self.overflow_min);
        let in_wheel = self.in_flight - self.overflow.len();
        if in_wheel > 0 {
            for d in 1..=WHEEL_SLOTS as u64 {
                let c = self.cycle + d;
                if c >= next {
                    break;
                }
                if !self.wheel[(c % WHEEL_SLOTS as u64) as usize].is_empty() {
                    next = c;
                    break;
                }
            }
        }
        next
    }

    /// Executes cycle `c` for this domain: delivers due messages in
    /// canonical key order, ticks woken components in ascending id order,
    /// and commits their sends (locally, or to `cross_out`).
    fn step_at(&mut self, c: Cycle) {
        debug_assert!(c > self.cycle);
        self.cycle = c;
        self.tracer.set_now(c);
        let was_busy = self.busy_count > 0;

        // Order-preserving overflow refill into the wheel.
        let horizon = c + WHEEL_SLOTS as u64;
        if self.overflow_min < horizon {
            let mut pending = std::mem::replace(
                &mut self.overflow,
                std::mem::take(&mut self.overflow_scratch),
            );
            let mut min_left = NEVER;
            for (when, key, l, h) in pending.drain(..) {
                if when < horizon {
                    self.wheel[(when % WHEEL_SLOTS as u64) as usize].push((key, l, h));
                } else {
                    min_left = min_left.min(when);
                    self.overflow.push((when, key, l, h));
                }
            }
            self.overflow_min = min_left;
            self.overflow_scratch = pending;
        }

        // Deliver slot `c` in canonical order. Keys are unique, so the
        // unstable sort is deterministic.
        let slot = (c % WHEEL_SLOTS as u64) as usize;
        let mut due = std::mem::replace(
            &mut self.wheel[slot],
            std::mem::take(&mut self.slot_scratch),
        );
        due.sort_unstable_by_key(|&(key, _, _)| key);
        let delivered_now = due.len();
        self.in_flight -= delivered_now;
        self.delivered += delivered_now as u64;
        for (key, l, h) in due.drain(..) {
            if self.ring_on {
                let kind = self.arena.get(h).label();
                self.ring_log.push((
                    key,
                    TraceEvent {
                        cycle: c,
                        dst: ComponentId(self.ids[l]),
                        kind,
                    },
                ));
            }
            self.arm(l, c);
            self.inboxes[l].push_back(h);
        }
        self.slot_scratch = due;

        // Wake collection, mirroring `Engine::step`.
        let mut woken = std::mem::take(&mut self.woken);
        woken.clear();
        while let Some(&Reverse((when, l))) = self.wake_heap.peek() {
            if when > c {
                break;
            }
            self.wake_heap.pop();
            if self.armed[l] <= c {
                self.armed[l] = NEVER;
                woken.push(l);
            }
        }
        let heap_woken = woken.len();
        if !self.active.is_empty() {
            let mut keep = 0;
            for k in 0..self.active.len() {
                let l = self.active[k];
                if self.every[l] {
                    self.active[keep] = l;
                    keep += 1;
                    woken.push(l);
                }
            }
            self.active.truncate(keep);
        }
        if heap_woken > 0 {
            woken.sort_unstable();
            woken.dedup();
        }

        for &l in &woken {
            let global = self.ids[l];
            self.tracer.focus(global as u32);
            let mut ctx = Ctx {
                cycle: c,
                inbox: &mut self.inboxes[l],
                outbox: &mut self.outbox,
                arena: &mut self.arena,
                self_id: ComponentId(global),
                tracer: &mut self.tracer,
            };
            let (busy, wake) = if self.burst {
                let out = self.comps[l].tick_burst(&mut ctx);
                (out.busy, out.wake)
            } else {
                self.comps[l].tick(&mut ctx);
                (self.comps[l].busy(), self.comps[l].next_wake(c))
            };
            if busy != self.busy_flags[l] {
                self.busy_flags[l] = busy;
                if busy {
                    self.busy_count += 1;
                } else {
                    self.busy_count -= 1;
                }
            }
            // Commit this component's sends now (per tick, in tick order:
            // the same final order as the sequential end-of-step commit)
            // so each message gets its canonical key as it is staged.
            if !self.outbox.is_empty() {
                let src = global as u32;
                let mut staged = std::mem::take(&mut self.outbox);
                for (when, dst, h) in staged.drain(..) {
                    let key = (c, src, self.send_seq[l]);
                    self.send_seq[l] += 1;
                    let dd = self.domain_of[dst.0];
                    if dd == self.dom {
                        self.schedule_local(when, key, self.local_of[dst.0], h);
                    } else {
                        let bound = if self.pair_row.is_empty() {
                            self.lookahead
                        } else {
                            self.pair_row[dd]
                        };
                        assert!(
                            when - c >= bound,
                            "cross-domain send comp{src} -> {dst} with delay {} \
                             below the partition lookahead {bound} \
                             (domain {} -> {dd})",
                            when - c,
                            self.dom
                        );
                        // Cross-domain messages travel by value: the
                        // payload leaves this domain's arena here and is
                        // re-interned by the receiving domain.
                        let msg = self.arena.take(h);
                        self.cross_out.push(CrossMsg {
                            when,
                            key,
                            dst,
                            msg,
                        });
                    }
                }
                self.outbox = staged;
            }
            match wake {
                crate::Wake::EveryCycle => {
                    if !self.every[l] {
                        self.every[l] = true;
                        self.every_count += 1;
                        let pos = self.active.partition_point(|&x| x < l);
                        self.active.insert(pos, l);
                    }
                }
                crate::Wake::At(t) => {
                    self.unevery(l);
                    self.arm(l, t.max(c + 1));
                }
                crate::Wake::OnMessage => self.unevery(l),
            }
        }
        self.woken = woken;

        if delivered_now > 0 || was_busy || self.busy_count > 0 {
            self.last_driving = c;
        }
    }

    /// Runs this domain's events up to (and including) `end`, pausing as
    /// soon as it is locally quiescent: any wakes left are pure
    /// observation ticks, deferred to [`DomainState::catch_up`] so the
    /// domain cannot free-run past the (unknown) global stop cycle.
    fn run_epoch(&mut self, end: Cycle) {
        while !self.locally_quiescent() {
            let next = self.next_event_cycle();
            if next > end {
                break;
            }
            self.step_at(next);
        }
    }

    /// Replays the deferred observation ticks through `through` (the
    /// epoch end while globally active, or the global stop cycle on the
    /// final barrier), then advances the local clock to `through`.
    fn catch_up(&mut self, through: Cycle) {
        while self.locally_quiescent() {
            let next = self.next_event_cycle();
            if next > through {
                break;
            }
            self.step_at(next);
            assert!(
                self.locally_quiescent() && self.cross_out.is_empty(),
                "a deferred observation tick changed simulation state \
                 (next_wake contract violation in domain {})",
                self.dom
            );
        }
        self.cycle = self.cycle.max(through);
    }

    /// Names of busy components, as `(global id, name)` pairs.
    fn busy_names(&self) -> Vec<(usize, String)> {
        self.ids
            .iter()
            .zip(&self.comps)
            .filter(|(_, c)| c.busy())
            .map(|(&g, c)| (g, c.name().to_string()))
            .collect()
    }
}

/// Worker commands, one barrier round = `Epoch` then `CatchUp`.
enum Cmd {
    /// Apply the routed cross-domain messages, then run each owned
    /// domain to its own horizon (both vecs in ownership order —
    /// horizons differ per domain under the asymmetric epoch scheme).
    Epoch {
        ends: Vec<Cycle>,
        incoming: Vec<Vec<CrossMsg>>,
    },
    /// Replay each owned domain's deferred observation ticks through its
    /// own bound (ownership order).
    CatchUp { throughs: Vec<Cycle> },
    /// Report busy component names (for the livelock panic message).
    Names,
    /// Return the domain states to the main thread and exit.
    Finish,
}

/// Per-domain epoch report.
struct EpochReport {
    busy_count: usize,
    in_flight: usize,
    last_driving: Cycle,
    cross: Vec<CrossMsg>,
    events: Vec<Event>,
    ring: Vec<(Key, TraceEvent)>,
}

enum Reply {
    Epoch(Vec<EpochReport>),
    CatchUp {
        next_events: Vec<Cycle>,
        events: Vec<Vec<Event>>,
    },
    Names(Vec<(usize, String)>),
    Finished(Vec<DomainState>),
}

/// The parallel body of `Engine::run_to_quiescence`: decomposes the
/// engine into domains, runs the epoch-barrier loop on `cfg.threads`
/// workers, and reassembles the engine bit-identically to what the
/// sequential event-driven scheduler would have produced.
pub(crate) fn run_parallel(engine: &mut Engine, cfg: &ParallelConfig, max_cycles: Cycle) -> Cycle {
    if engine.quiescent() {
        return engine.cycle;
    }
    engine.flush_dirty();
    let part = &cfg.partition;
    let n_domains = part.domains;
    let threads = cfg.threads.min(n_domains);
    let lookahead = part.lookahead;
    let start = engine.cycle;
    let limit = start + max_cycles;

    // ---- decompose ----
    let n = engine.components.len();
    let ring_on = engine.trace.is_some();
    let mut domains: Vec<DomainState> = (0..n_domains)
        .map(|d| DomainState::new(d, n, start, lookahead))
        .collect();
    let components = std::mem::take(&mut engine.components);
    let inboxes = std::mem::take(&mut engine.inboxes);
    let mut msgs = std::mem::take(&mut engine.msgs);
    for (g, (comp, inbox)) in components.into_iter().zip(inboxes).enumerate() {
        let dom = &mut domains[part.domain_of[g]];
        let mut q = VecDeque::with_capacity(inbox.len());
        for h in inbox {
            q.push_back(dom.arena.alloc(msgs.take(h)));
        }
        dom.push_component(g, comp, q);
    }
    for d in &mut domains {
        d.domain_of = part.domain_of.clone();
        if let Some(m) = &part.pair_lookahead {
            d.pair_row = m[d.dom * n_domains..(d.dom + 1) * n_domains].to_vec();
        }
        d.tracer = engine.tracer.shard();
        d.ring_on = ring_on;
        d.burst = engine.burst;
        // Every component gets a fresh tick at start+1 and re-arms itself
        // from there — always bit-exact (ticking an idle component is
        // observable-effect-free by the next_wake contract).
        for l in 0..d.ids.len() {
            d.arm(l, start + 1);
        }
    }
    // Transfer in-flight deliveries. All predate the run, so they keep a
    // shared external key prefix; per-slot vec order is preserved through
    // ascending sequence numbers.
    let mut ext_seq = 0u32;
    for s in 0..WHEEL_SLOTS {
        // Wheel slot s holds deliveries for the unique matching cycle in
        // (start, start + WHEEL_SLOTS].
        let when = start
            + 1
            + ((s as u64 + WHEEL_SLOTS as u64 - ((start + 1) % WHEEL_SLOTS as u64))
                % WHEEL_SLOTS as u64);
        for (dst, h) in engine.wheel[s].drain(..) {
            let key = (start, SRC_EXTERNAL, ext_seq);
            ext_seq += 1;
            let dom = &mut domains[part.domain_of[dst.0]];
            let l = dom.local_of[dst.0];
            let dh = dom.arena.alloc(msgs.take(h));
            dom.schedule_local(when, key, l, dh);
        }
    }
    for (when, dst, h) in engine.overflow.drain(..) {
        let key = (start, SRC_EXTERNAL, ext_seq);
        ext_seq += 1;
        let dom = &mut domains[part.domain_of[dst.0]];
        let l = dom.local_of[dst.0];
        let dh = dom.arena.alloc(msgs.take(h));
        dom.overflow_min = dom.overflow_min.min(when);
        dom.overflow.push((when, key, l, dh));
        dom.in_flight += 1;
    }
    // Every payload has moved to a domain arena; hand the (empty) arena
    // back so its slot capacity is reused after reassembly.
    debug_assert!(msgs.is_empty());
    engine.msgs = msgs;
    engine.overflow_min = NEVER;
    engine.in_flight = 0;

    // ---- worker assignment: worker w owns domains w, w+threads, … ----
    let mut worker_domains: Vec<Vec<DomainState>> = (0..threads).map(|_| Vec::new()).collect();
    let mut owned: Vec<Vec<usize>> = (0..threads).map(|_| Vec::new()).collect();
    for (d, state) in domains.into_iter().enumerate() {
        owned[d % threads].push(d);
        worker_domains[d % threads].push(state);
    }

    let mut final_state: Vec<Option<DomainState>> = (0..n_domains).map(|_| None).collect();
    let mut end_cycle = start;

    std::thread::scope(|scope| {
        let mut cmd_txs = Vec::with_capacity(threads);
        let mut reply_rxs = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for doms in worker_domains {
            let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
            let (reply_tx, reply_rx) = mpsc::channel::<Reply>();
            cmd_txs.push(cmd_tx);
            reply_rxs.push(reply_rx);
            handles.push(scope.spawn(move || {
                let mut doms = doms;
                while let Ok(cmd) = cmd_rx.recv() {
                    let reply = match cmd {
                        Cmd::Epoch { ends, incoming } => {
                            let mut reports = Vec::with_capacity(doms.len());
                            for ((d, inc), end) in doms.iter_mut().zip(incoming).zip(ends) {
                                for m in inc {
                                    d.apply_cross(m);
                                }
                                d.run_epoch(end);
                                reports.push(EpochReport {
                                    busy_count: d.busy_count,
                                    in_flight: d.in_flight,
                                    last_driving: d.last_driving,
                                    cross: std::mem::take(&mut d.cross_out),
                                    events: d.tracer.drain_events(),
                                    ring: std::mem::take(&mut d.ring_log),
                                });
                            }
                            Reply::Epoch(reports)
                        }
                        Cmd::CatchUp { throughs } => {
                            let mut next_events = Vec::with_capacity(doms.len());
                            let mut events = Vec::with_capacity(doms.len());
                            for (d, through) in doms.iter_mut().zip(throughs) {
                                d.catch_up(through);
                                next_events.push(d.next_event_cycle());
                                events.push(d.tracer.drain_events());
                            }
                            Reply::CatchUp {
                                next_events,
                                events,
                            }
                        }
                        Cmd::Names => {
                            let mut names = Vec::new();
                            for d in &doms {
                                names.extend(d.busy_names());
                            }
                            Reply::Names(names)
                        }
                        Cmd::Finish => {
                            let _ = reply_tx.send(Reply::Finished(doms));
                            return;
                        }
                    };
                    if reply_tx.send(reply).is_err() {
                        return;
                    }
                }
            }));
        }

        // ---- barrier loop (main thread) ----
        // On any channel failure a worker has panicked: bail out quietly
        // and let `thread::scope` propagate the worker's own panic.
        let mut routed: Vec<Vec<CrossMsg>> = (0..n_domains).map(|_| Vec::new()).collect();
        // Per-domain *incoming* lookahead: the minimum pair bound over
        // every other domain that can send here. A domain with no
        // incoming link at all (`NEVER`) is bounded only by the run
        // limit. Without a pair matrix every entry equals the global
        // lookahead and the horizons degenerate to the classic symmetric
        // epoch.
        let lin: Vec<u64> = (0..n_domains)
            .map(|d| {
                (0..n_domains)
                    .filter(|&s| s != d)
                    .map(|s| part.pair_lookahead(s, d))
                    .min()
                    .unwrap_or(NEVER)
            })
            .collect();
        let horizon_for = |g: Cycle| -> Vec<Cycle> {
            lin.iter()
                .map(|&l| {
                    if l == NEVER {
                        limit
                    } else {
                        limit.min(g.saturating_add(l - 1))
                    }
                })
                .collect()
        };
        // Everything is armed at start+1, so domain `d`'s first window is
        // exactly `Lin(d)` long.
        let mut ends = horizon_for(start + 1);
        // Cycle through which each domain's event stream is final
        // (executed, including deferred observation ticks). The merge
        // watermark is the minimum over domains: an event at or below it
        // can never be preceded by anything a later round produces.
        let mut completed: Vec<Cycle> = vec![start; n_domains];
        // Events/ring entries held back until the watermark passes them.
        let mut pending_events: Vec<Event> = Vec::new();
        let mut pending_ring: Vec<(Key, TraceEvent)> = Vec::new();
        // Per-domain local-quiescence after the last epoch (observation
        // catch-up cannot change it, so the epoch report stays valid).
        let mut lq: Vec<bool> = vec![false; n_domains];
        // Observation floor: the highest cycle the sequential run is
        // known to execute. Driving ticks raise it via `last_driving`;
        // while the system is active it also advances to `global_next`,
        // because the earliest pending event/delivery is certain to run
        // (a pure observation wake cannot be what ends the simulation).
        // Without the `global_next` leg a busy-but-sleeping domain (all
        // blocked components waiting `OnMessage`/`At` with no local
        // events) would freeze `last_driving` below a quiescent domain's
        // deferred observation wake, and the rounds would spin forever.
        let mut floor = start;
        'run: loop {
            for (w, tx) in cmd_txs.iter().enumerate() {
                let incoming = owned[w]
                    .iter()
                    .map(|&d| std::mem::take(&mut routed[d]))
                    .collect();
                let worker_ends = owned[w].iter().map(|&d| ends[d]).collect();
                if tx
                    .send(Cmd::Epoch {
                        ends: worker_ends,
                        incoming,
                    })
                    .is_err()
                {
                    break 'run;
                }
            }
            let mut any_busy = false;
            let mut any_flight = false;
            let mut last_driving = start;
            let mut round_events: Vec<Event> = Vec::new();
            let mut round_ring: Vec<(Key, TraceEvent)> = Vec::new();
            for (w, rx) in reply_rxs.iter().enumerate() {
                let Ok(Reply::Epoch(reports)) = rx.recv() else {
                    break 'run;
                };
                for (i, rep) in reports.into_iter().enumerate() {
                    let d = owned[w][i];
                    lq[d] = rep.busy_count == 0 && rep.in_flight == 0;
                    any_busy |= rep.busy_count > 0;
                    any_flight |= rep.in_flight > 0;
                    last_driving = last_driving.max(rep.last_driving);
                    for m in rep.cross {
                        routed[part.domain_of[m.dst.0]].push(m);
                    }
                    round_events.extend(rep.events);
                    round_ring.extend(rep.ring);
                }
            }
            let any_routed = routed.iter().any(|v| !v.is_empty());
            let active = any_busy || any_flight || any_routed;
            // Deferred observation ticks: on the final barrier every
            // domain replays through the global stop cycle
            // `X = last_driving`. While still active, a locally quiescent
            // domain replays through its own horizon, clamped to the
            // observation floor `<= X` — with asymmetric horizons a
            // far-ahead domain's `ends[d]` may exceed the (unknown)
            // final stop cycle, and observation ticks past `X` would
            // sample cycles the sequential run never executes.
            // Clamped ticks are not lost: they stay deferred and replay
            // once the floor (or the final barrier) passes them.
            floor = floor.max(last_driving);
            let throughs: Vec<Cycle> = if active {
                (0..n_domains).map(|d| ends[d].min(floor)).collect()
            } else {
                vec![last_driving; n_domains]
            };
            for (w, tx) in cmd_txs.iter().enumerate() {
                let worker_throughs = owned[w].iter().map(|&d| throughs[d]).collect();
                if tx
                    .send(Cmd::CatchUp {
                        throughs: worker_throughs,
                    })
                    .is_err()
                {
                    break 'run;
                }
            }
            let mut global_next = NEVER;
            for rx in &reply_rxs {
                let Ok(Reply::CatchUp {
                    next_events,
                    events,
                }) = rx.recv()
                else {
                    break 'run;
                };
                for ne in next_events {
                    global_next = global_next.min(ne);
                }
                for ev in events {
                    round_events.extend(ev);
                }
            }
            // Merge this round's observability shards in canonical
            // `(cycle, track)` / `(cycle, key)` order behind the
            // watermark. An active (non-locally-quiescent) domain has
            // executed everything through its horizon; a locally
            // quiescent one only through its catch-up bound. Nothing at
            // or below the minimum of those can be emitted later, so the
            // prefix up to the watermark is final; the rest waits.
            for d in 0..n_domains {
                let done = if lq[d] { throughs[d] } else { ends[d] };
                completed[d] = completed[d].max(done);
            }
            let watermark = if active {
                completed.iter().copied().min().unwrap_or(NEVER)
            } else {
                NEVER
            };
            pending_events.extend(round_events);
            pending_events.sort_by_key(|e| (e.cycle, e.track));
            let cut = pending_events.partition_point(|e| e.cycle <= watermark);
            engine.tracer.absorb_events(pending_events.drain(..cut));
            pending_ring.extend(round_ring);
            pending_ring.sort_unstable_by_key(|&(key, ref ev)| (ev.cycle, key));
            let cut = pending_ring.partition_point(|(_, ev)| ev.cycle <= watermark);
            if let Some((buf, cap)) = engine.trace.as_mut() {
                for (_, ev) in pending_ring.drain(..cut) {
                    if buf.len() == *cap {
                        buf.pop_front();
                    }
                    buf.push_back(ev);
                }
            } else {
                pending_ring.clear();
            }
            if !active {
                end_cycle = last_driving;
                break 'run;
            }
            for msgs in &routed {
                for m in msgs {
                    global_next = global_next.min(m.when);
                }
            }
            let min_end = ends.iter().copied().min().unwrap_or(limit);
            if global_next == NEVER || global_next > limit || min_end == limit {
                // The sequential scheduler would hit its cycle limit with
                // work remaining: reproduce its panic, byte for byte.
                let mut busy: Vec<(usize, String)> = Vec::new();
                for tx in &cmd_txs {
                    let _ = tx.send(Cmd::Names);
                }
                for rx in &reply_rxs {
                    if let Ok(Reply::Names(names)) = rx.recv() {
                        busy.extend(names);
                    }
                }
                busy.sort();
                let names: Vec<String> = busy.into_iter().map(|(_, n)| n).collect();
                panic!("simulation did not quiesce within {max_cycles} cycles; busy: {names:?}");
            }
            // `global_next <= limit` here (checked above), and while
            // active the sequential run cannot stop before it: every
            // pending delivery or driving wake is at or after it, and an
            // observation wake cannot be the last thing that runs. So
            // next round's deferred observation ticks may replay up to it.
            floor = floor.max(global_next);
            ends = horizon_for(global_next);
        }

        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Finish);
        }
        for rx in &reply_rxs {
            if let Ok(Reply::Finished(doms)) = rx.recv() {
                for d in doms {
                    let idx = d.dom;
                    final_state[idx] = Some(d);
                }
            }
        }
        drop(cmd_txs);
        // Join explicitly so a worker's own panic payload propagates
        // verbatim (`thread::scope` would replace it with a generic
        // "a scoped thread panicked" message).
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    // ---- reassemble ----
    type Slot = (Box<dyn Component>, VecDeque<Message>);
    let mut slots: Vec<Option<Slot>> = (0..n).map(|_| None).collect();
    let mut delivered = 0u64;
    for state in final_state {
        let Some(state) = state else {
            // A worker died before returning its domains; its panic has
            // already propagated out of `thread::scope` above, so this is
            // unreachable — but avoid masking anything if it ever isn't.
            panic!("parallel run lost a domain's components");
        };
        assert!(
            state.in_flight == 0 && state.cross_out.is_empty(),
            "domain {} finished with undelivered messages",
            state.dom
        );
        delivered += state.delivered;
        // Resolve each mailbox's handles through the domain arena; the
        // payloads are re-interned into the engine arena below. With
        // `in_flight == 0` the wheel/overflow hold nothing, so draining
        // the inboxes must leave the domain arena empty.
        let mut arena = state.arena;
        for ((g, comp), inbox) in state.ids.into_iter().zip(state.comps).zip(state.inboxes) {
            let msgs: VecDeque<Message> = inbox.into_iter().map(|h| arena.take(h)).collect();
            slots[g] = Some((comp, msgs));
        }
        debug_assert!(
            arena.is_empty(),
            "domain arena retained payloads after reassembly"
        );
    }
    for slot in slots {
        let (comp, inbox) = slot.expect("partition covered every component");
        engine.components.push(comp);
        engine
            .inboxes
            .push(inbox.into_iter().map(|m| engine.msgs.alloc(m)).collect());
    }
    engine.delivered += delivered;
    engine.cycle = end_cycle;
    engine.tracer.set_now(end_cycle);
    // Re-arm everything and refresh the busy cache, exactly like a
    // scheduler switch (conservative and bit-exact).
    engine.set_scheduler(crate::SchedulerMode::ParallelEventDriven);
    end_cycle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineBuilder;
    use crate::Wake;

    /// Forwards each message onward after `delay`, up to `hops_left`.
    struct Relay {
        peer: ComponentId,
        delay: u64,
        hops_left: u64,
    }
    impl Component for Relay {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                if self.hops_left > 0 {
                    self.hops_left -= 1;
                    ctx.send(self.peer, msg, self.delay);
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "relay"
        }
        fn next_wake(&self, _now: Cycle) -> Wake {
            Wake::OnMessage
        }
    }

    fn credit(n: u32) -> Message {
        Message::Credit {
            from: netcrafter_proto::NodeId(0),
            count: n,
            link: 0,
        }
    }

    fn ring(n: usize, delay: u64, hops: u64) -> (Engine, Vec<ComponentId>) {
        let mut b = EngineBuilder::new();
        let ids: Vec<ComponentId> = (0..n).map(|_| b.reserve()).collect();
        for (i, &id) in ids.iter().enumerate() {
            b.install(
                id,
                Box::new(Relay {
                    peer: ids[(i + 1) % n],
                    delay,
                    hops_left: hops,
                }),
            );
        }
        (b.build(), ids)
    }

    /// 3-domain relay ring: the parallel scheduler must reproduce the
    /// sequential end cycle, delivery count, and the exact recorded
    /// delivery sequence (cycle, dst, kind) — the unit-level version of
    /// the fig14 byte-equivalence test in `multigpu`.
    #[test]
    fn three_domain_ring_matches_sequential_delivery_order() {
        let run = |threads: usize| {
            let (mut e, ids) = ring(6, 37, 9);
            if threads > 1 {
                // Domains {0,1} {2,3} {4,5}; every cross-domain hop
                // (1→2, 3→4, 5→0) has delay 37 = the lookahead.
                e.set_parallel(Partition::new(vec![0, 0, 1, 1, 2, 2], 37), threads);
            }
            e.enable_trace(1024);
            // Several same-cycle injections across domains exercise the
            // canonical merge order.
            e.inject(ids[0], credit(1), 1);
            e.inject(ids[2], credit(2), 1);
            e.inject(ids[4], credit(3), 1);
            let end = e.run_to_quiescence(100_000);
            let seq: Vec<(Cycle, ComponentId, &str)> =
                e.trace().map(|t| (t.cycle, t.dst, t.kind)).collect();
            (end, e.messages_delivered(), seq)
        };
        let sequential = run(1);
        assert_eq!(sequential, run(3), "parallel must match sequential");
        assert_eq!(sequential.1, 57, "3 injections + 6x9 forwarded hops");
    }

    #[test]
    fn parallel_engine_stays_usable_after_a_run() {
        let (mut e, ids) = ring(4, 5, 3);
        e.set_parallel(Partition::new(vec![0, 0, 1, 1], 5), 2);
        e.inject(ids[0], credit(9), 1);
        let first = e.run_to_quiescence(10_000);
        e.inject(ids[2], credit(9), 2);
        let second = e.run_to_quiescence(10_000);
        assert!(second > first, "second kernel advances from the first");
        assert_eq!(e.messages_delivered(), 14, "13 first run + 1 second");
    }

    #[test]
    #[should_panic(expected = "below the partition lookahead")]
    fn undersized_lookahead_is_caught_at_the_send() {
        let (mut e, ids) = ring(4, 5, 8);
        // Claimed lookahead 50 but the ring's cross-domain hops are 5.
        e.set_parallel(Partition::new(vec![0, 0, 1, 1], 50), 2);
        e.inject(ids[0], credit(1), 1);
        e.run_to_quiescence(10_000);
    }

    /// A correct pair matrix reproduces the sequential run exactly, and
    /// its min over linked pairs drives the epochs.
    #[test]
    fn pair_lookahead_matches_sequential() {
        let run = |parallel: bool| {
            let (mut e, ids) = ring(4, 5, 8);
            if parallel {
                let pairs = vec![NEVER, 5, 5, NEVER];
                let p = Partition::with_pair_lookahead(vec![0, 0, 1, 1], pairs);
                assert_eq!(p.lookahead(), 5);
                assert_eq!(p.pair_lookahead(0, 1), 5);
                e.set_parallel(p, 2);
            }
            e.inject(ids[0], credit(1), 1);
            let end = e.run_to_quiescence(10_000);
            (end, e.messages_delivered())
        };
        assert_eq!(run(false), run(true));
    }

    /// The per-pair bound is stricter than the global minimum: a send
    /// that clears the min but undercuts its own pair's claim is caught.
    #[test]
    #[should_panic(expected = "below the partition lookahead")]
    fn pair_lookahead_catches_per_link_violation() {
        let (mut e, ids) = ring(4, 5, 8);
        // Pair (0,1) claims 7 cycles but the ring hops in 5; pair (1,0)
        // claims 5, so the global minimum (5) alone would not trip.
        let pairs = vec![NEVER, 7, 5, NEVER];
        e.set_parallel(Partition::with_pair_lookahead(vec![0, 0, 1, 1], pairs), 2);
        e.inject(ids[0], credit(1), 1);
        e.run_to_quiescence(10_000);
    }

    #[test]
    #[should_panic(expected = "links no domain pair")]
    fn unlinked_pair_matrix_is_rejected() {
        let _ = Partition::with_pair_lookahead(vec![0, 1], vec![NEVER; 4]);
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn parallel_livelock_is_detected() {
        struct Forever;
        impl Component for Forever {
            fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
            fn busy(&self) -> bool {
                true
            }
            fn name(&self) -> &str {
                "forever"
            }
        }
        let mut b = EngineBuilder::new();
        b.add(Box::new(Forever));
        b.add(Box::new(Forever));
        let mut e = b.build();
        e.set_parallel(Partition::new(vec![0, 1], 1), 2);
        e.run_to_quiescence(10);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_partition_is_rejected() {
        let _ = Partition::new(vec![0, 2], 1);
    }
}
