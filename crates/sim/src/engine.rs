//! The cycle engine: components, mailboxes and delayed message delivery.

use std::collections::VecDeque;

use netcrafter_proto::Message;

use crate::trace::{Trace, TraceConfig, Tracer};
use crate::Cycle;

/// Index of a component and of its (single) mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub usize);

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "comp{}", self.0)
    }
}

/// The interface every simulated hardware block implements.
///
/// A component is ticked once per cycle in a fixed order. During its tick
/// it may drain its mailbox via [`Ctx::recv`] and send messages to peers
/// via [`Ctx::send`]; sends are staged and delivered by the engine, so a
/// component never observes a message sent in the same cycle.
pub trait Component: std::any::Any {
    /// Advances the component by one cycle.
    fn tick(&mut self, ctx: &mut Ctx<'_>);

    /// True while the component still has internal work (pipeline contents,
    /// pending responses, unissued ops). The engine declares the system
    /// quiescent — and stops — only when *no* component is busy and no
    /// message is in flight.
    fn busy(&self) -> bool;

    /// Human-readable instance name for traces and error messages.
    fn name(&self) -> &str;
}

/// Per-tick context handed to a component: its own mailbox, the current
/// cycle, and a staging buffer for outgoing messages.
pub struct Ctx<'a> {
    cycle: Cycle,
    inbox: &'a mut VecDeque<Message>,
    outbox: &'a mut Vec<(Cycle, ComponentId, Message)>,
    self_id: ComponentId,
    tracer: &'a mut Tracer,
}

impl Ctx<'_> {
    /// Current simulation cycle.
    #[inline]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// This component's own id (usable as a send target for self-wakeups).
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Pops the oldest message from this component's mailbox.
    #[inline]
    pub fn recv(&mut self) -> Option<Message> {
        self.inbox.pop_front()
    }

    /// Peeks at the oldest message without removing it.
    #[inline]
    pub fn peek(&self) -> Option<&Message> {
        self.inbox.front()
    }

    /// Number of messages waiting in the mailbox.
    #[inline]
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Sends `msg` to `dst`, arriving after `delay` cycles (minimum 1: a
    /// message can never be observed in the cycle it was sent).
    #[inline]
    pub fn send(&mut self, dst: ComponentId, msg: Message, delay: u64) {
        let when = self.cycle + delay.max(1);
        self.outbox.push((when, dst, msg));
    }

    /// The structured-event tracer, focused on this component. A single
    /// branch and a no-op when tracing is disabled (the default).
    #[inline]
    pub fn tracer(&mut self) -> &mut Tracer {
        self.tracer
    }
}

/// Incrementally wires up an [`Engine`].
///
/// Construction is two-phase so components can know their peers' ids
/// before those peers exist: [`EngineBuilder::reserve`] allocates an id,
/// and [`EngineBuilder::install`] later provides the component.
///
/// # Examples
///
/// ```
/// use netcrafter_sim::{EngineBuilder, Component, Ctx};
///
/// struct Nop;
/// impl Component for Nop {
///     fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
///     fn busy(&self) -> bool { false }
///     fn name(&self) -> &str { "nop" }
/// }
///
/// let mut b = EngineBuilder::new();
/// let id = b.reserve();
/// b.install(id, Box::new(Nop));
/// let mut engine = b.build();
/// assert!(engine.quiescent());
/// ```
#[derive(Default)]
pub struct EngineBuilder {
    slots: Vec<Option<Box<dyn Component>>>,
}

impl EngineBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves a component id to be filled in later with
    /// [`EngineBuilder::install`].
    pub fn reserve(&mut self) -> ComponentId {
        self.slots.push(None);
        ComponentId(self.slots.len() - 1)
    }

    /// Installs a component into a reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already filled or the id was never reserved.
    pub fn install(&mut self, id: ComponentId, component: Box<dyn Component>) {
        let slot = self
            .slots
            .get_mut(id.0)
            .unwrap_or_else(|| panic!("component id {id} was never reserved"));
        assert!(slot.is_none(), "component id {id} installed twice");
        *slot = Some(component);
    }

    /// Reserves and installs in one step.
    pub fn add(&mut self, component: Box<dyn Component>) -> ComponentId {
        let id = self.reserve();
        self.install(id, component);
        id
    }

    /// Finalizes the engine.
    ///
    /// # Panics
    ///
    /// Panics if any reserved slot was never installed.
    pub fn build(self) -> Engine {
        let components: Vec<Box<dyn Component>> = self
            .slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("component slot {i} never installed")))
            .collect();
        let n = components.len();
        Engine {
            components,
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            cycle: 0,
            in_flight: 0,
            delivered: 0,
            outbox: Vec::new(),
            trace: None,
            tracer: Tracer::off(),
        }
    }
}

/// Delay-wheel size: delays below this are O(1); longer delays take the
/// (rare) overflow path.
const WHEEL_SLOTS: usize = 512;

/// One recorded message delivery (see [`Engine::enable_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Delivery cycle.
    pub cycle: Cycle,
    /// Receiving component.
    pub dst: ComponentId,
    /// Message kind label (`"flit"`, `"mem-req"`, …).
    pub kind: &'static str,
}

/// The simulation engine: owns all components and mailboxes and advances
/// simulated time.
pub struct Engine {
    components: Vec<Box<dyn Component>>,
    inboxes: Vec<VecDeque<Message>>,
    /// Ring buffer of future deliveries indexed by `cycle % WHEEL_SLOTS`.
    wheel: Vec<Vec<(ComponentId, Message)>>,
    /// Deliveries further than `WHEEL_SLOTS` cycles out (rare).
    overflow: Vec<(Cycle, ComponentId, Message)>,
    cycle: Cycle,
    in_flight: usize,
    delivered: u64,
    outbox: Vec<(Cycle, ComponentId, Message)>,
    trace: Option<(VecDeque<TraceEvent>, usize)>,
    tracer: Tracer,
}

impl Engine {
    /// Current simulation cycle.
    #[inline]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Total messages delivered so far.
    #[inline]
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the engine contains no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Starts recording the last `capacity` message deliveries — the
    /// standard first tool for debugging a stuck or misrouted
    /// transaction. Costs one ring-buffer push per delivery.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some((VecDeque::with_capacity(capacity), capacity.max(1)));
    }

    /// The recorded deliveries, oldest first (empty unless
    /// [`Engine::enable_trace`] was called).
    pub fn trace(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.trace.iter().flat_map(|(buf, _)| buf.iter())
    }

    /// Renders the recorded trace with component names, oldest first.
    pub fn dump_trace(&self) -> Vec<String> {
        self.trace()
            .map(|e| {
                format!(
                    "cycle {:>8}: {:<10} -> {}",
                    e.cycle,
                    e.kind,
                    self.components[e.dst.0].name()
                )
            })
            .collect()
    }

    /// Turns on structured-event tracing with the given filter. One track
    /// is registered per component (in id order), so [`crate::Event::track`]
    /// equals the component id. Call before running; events from earlier
    /// cycles are simply absent.
    pub fn enable_tracing(&mut self, config: TraceConfig) {
        let mut tracer = Tracer::new(config);
        for comp in &self.components {
            tracer.register_track(comp.name());
        }
        tracer.set_now(self.cycle);
        self.tracer = tracer;
    }

    /// The structured-event tracer (disabled unless
    /// [`Engine::enable_tracing`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Extracts everything recorded since [`Engine::enable_tracing`] (or
    /// the last call to this method), leaving tracing active.
    pub fn take_trace(&mut self) -> Trace {
        self.tracer.take()
    }

    #[inline]
    fn record(&mut self, dst: ComponentId, kind: &'static str) {
        if let Some((buf, cap)) = self.trace.as_mut() {
            if buf.len() == *cap {
                buf.pop_front();
            }
            buf.push_back(TraceEvent {
                cycle: self.cycle,
                dst,
                kind,
            });
        }
    }

    /// Injects a message from outside the simulation (e.g. a kernel-launch
    /// trigger), delivered at `cycle + delay`.
    pub fn inject(&mut self, dst: ComponentId, msg: Message, delay: u64) {
        let when = self.cycle + delay.max(1);
        self.schedule(when, dst, msg);
    }

    fn schedule(&mut self, when: Cycle, dst: ComponentId, msg: Message) {
        debug_assert!(when > self.cycle);
        self.in_flight += 1;
        if (when - self.cycle) < WHEEL_SLOTS as u64 {
            self.wheel[(when % WHEEL_SLOTS as u64) as usize].push((dst, msg));
        } else {
            self.overflow.push((when, dst, msg));
        }
    }

    /// True when nothing remains to simulate: every mailbox is empty, no
    /// message is in flight, and no component reports internal work.
    pub fn quiescent(&self) -> bool {
        self.in_flight == 0 && self.components.iter().all(|c| !c.busy())
    }

    /// Advances one cycle: delivers due messages, then ticks every
    /// component in id order.
    pub fn step(&mut self) {
        self.cycle += 1;

        // Deliver messages due this cycle.
        let slot = (self.cycle % WHEEL_SLOTS as u64) as usize;
        let due = std::mem::take(&mut self.wheel[slot]);
        self.in_flight -= due.len();
        self.delivered += due.len() as u64;
        for (dst, msg) in due {
            self.record(dst, msg.label());
            self.inboxes[dst.0].push_back(msg);
        }
        // Refill the wheel from the overflow list when anything comes into
        // range (checked lazily: overflow is rare).
        if !self.overflow.is_empty() {
            let horizon = self.cycle + WHEEL_SLOTS as u64;
            let mut i = 0;
            while i < self.overflow.len() {
                if self.overflow[i].0 < horizon {
                    let (when, dst, msg) = self.overflow.swap_remove(i);
                    if when == self.cycle {
                        self.in_flight -= 1;
                        self.delivered += 1;
                        self.record(dst, msg.label());
                        self.inboxes[dst.0].push_back(msg);
                    } else {
                        self.wheel[(when % WHEEL_SLOTS as u64) as usize].push((dst, msg));
                    }
                } else {
                    i += 1;
                }
            }
        }

        // Tick all components.
        self.tracer.set_now(self.cycle);
        for (i, comp) in self.components.iter_mut().enumerate() {
            self.tracer.focus(i as u32);
            let mut ctx = Ctx {
                cycle: self.cycle,
                inbox: &mut self.inboxes[i],
                outbox: &mut self.outbox,
                self_id: ComponentId(i),
                tracer: &mut self.tracer,
            };
            comp.tick(&mut ctx);
        }

        // Commit staged sends.
        let staged = std::mem::take(&mut self.outbox);
        for (when, dst, msg) in staged {
            assert!(
                dst.0 < self.inboxes.len(),
                "send to unknown component {dst}"
            );
            self.schedule(when, dst, msg);
        }
    }

    /// Runs until [`Engine::quiescent`] or until `max_cycles` elapse.
    /// Returns the final cycle.
    ///
    /// # Panics
    ///
    /// Panics if the cycle limit is hit while work remains — a livelocked
    /// simulation is always a modelling bug and must not pass silently.
    pub fn run_to_quiescence(&mut self, max_cycles: Cycle) -> Cycle {
        let limit = self.cycle + max_cycles;
        while !self.quiescent() {
            assert!(
                self.cycle < limit,
                "simulation did not quiesce within {max_cycles} cycles; busy: {:?}",
                self.busy_components()
            );
            self.step();
        }
        self.cycle
    }

    /// Runs while `cond` holds and work remains, up to `max_cycles`.
    pub fn run_while(&mut self, max_cycles: Cycle, mut cond: impl FnMut(&Engine) -> bool) -> Cycle {
        let limit = self.cycle + max_cycles;
        while self.cycle < limit && cond(self) && !self.quiescent() {
            self.step();
        }
        self.cycle
    }

    /// Names of components currently reporting work, for diagnostics.
    pub fn busy_components(&self) -> Vec<&str> {
        self.components
            .iter()
            .filter(|c| c.busy())
            .map(|c| c.name())
            .collect()
    }

    /// Immutable access to a component (for stats harvesting). The caller
    /// downcasts via its own bookkeeping of what lives at which id.
    pub fn component(&self, id: ComponentId) -> &dyn Component {
        self.components[id.0].as_ref()
    }

    /// Mutable access to a component.
    pub fn component_mut(&mut self, id: ComponentId) -> &mut dyn Component {
        self.components[id.0].as_mut()
    }

    /// Typed access to a component: the stats-harvesting path used by the
    /// measurement harness, which knows what it installed at each id.
    pub fn get<T: Component>(&self, id: ComponentId) -> Option<&T> {
        (self.components[id.0].as_ref() as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Typed mutable access to a component.
    pub fn get_mut<T: Component>(&mut self, id: ComponentId) -> Option<&mut T> {
        (self.components[id.0].as_mut() as &mut dyn std::any::Any).downcast_mut::<T>()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cycle", &self.cycle)
            .field("components", &self.components.len())
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received message back to a peer after a delay.
    struct Echo {
        peer: ComponentId,
        delay: u64,
        received: Vec<(Cycle, Message)>,
        bounces_left: u32,
    }

    impl Component for Echo {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                self.received.push((ctx.cycle(), msg.clone()));
                if self.bounces_left > 0 {
                    self.bounces_left -= 1;
                    ctx.send(self.peer, msg, self.delay);
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    fn credit(n: u32) -> Message {
        Message::Credit {
            from: netcrafter_proto::NodeId(0),
            count: n,
        }
    }

    #[test]
    fn messages_arrive_after_exact_delay() {
        let mut b = EngineBuilder::new();
        let a = b.reserve();
        let c = b.reserve();
        b.install(
            a,
            Box::new(Echo {
                peer: c,
                delay: 5,
                received: vec![],
                bounces_left: 0,
            }),
        );
        b.install(
            c,
            Box::new(Echo {
                peer: a,
                delay: 5,
                received: vec![],
                bounces_left: 0,
            }),
        );
        let mut e = b.build();
        e.inject(a, credit(1), 3);
        assert!(!e.quiescent());
        let end = e.run_to_quiescence(100);
        assert_eq!(end, 3, "message delivered at cycle 3 and system quiesces");
        assert_eq!(e.messages_delivered(), 1);
    }

    #[test]
    fn ping_pong_alternates() {
        let mut b = EngineBuilder::new();
        let a = b.reserve();
        let c = b.reserve();
        b.install(
            a,
            Box::new(Echo {
                peer: c,
                delay: 10,
                received: vec![],
                bounces_left: 2,
            }),
        );
        b.install(
            c,
            Box::new(Echo {
                peer: a,
                delay: 10,
                received: vec![],
                bounces_left: 2,
            }),
        );
        let mut e = b.build();
        e.inject(a, credit(7), 1);
        e.run_to_quiescence(1000);
        // a receives at 1, sends -> c receives at 11, sends -> a at 21,
        // sends -> c at 31, sends -> a at 41 (a has no bounces left).
        assert_eq!(e.messages_delivered(), 5);
    }

    #[test]
    fn long_delays_take_overflow_path() {
        let mut b = EngineBuilder::new();
        let a = b.add(Box::new(Echo {
            peer: ComponentId(0),
            delay: 1,
            received: vec![],
            bounces_left: 0,
        }));
        let mut e = b.build();
        e.inject(a, credit(1), 2000); // > WHEEL_SLOTS
        let end = e.run_to_quiescence(5000);
        assert_eq!(end, 2000);
        assert_eq!(e.messages_delivered(), 1);
    }

    #[test]
    fn delivery_preserves_send_order_within_cycle() {
        struct Recorder {
            got: Vec<u32>,
        }
        impl Component for Recorder {
            fn tick(&mut self, ctx: &mut Ctx<'_>) {
                while let Some(Message::Credit { count, .. }) = ctx.recv() {
                    self.got.push(count);
                }
            }
            fn busy(&self) -> bool {
                false
            }
            fn name(&self) -> &str {
                "recorder"
            }
        }
        let mut b = EngineBuilder::new();
        let r = b.add(Box::new(Recorder { got: vec![] }));
        let mut e = b.build();
        for i in 0..10 {
            e.inject(r, credit(i), 4);
        }
        e.run_to_quiescence(100);
        // Pull the recorder back out to check ordering.
        let name = e.component(r).name();
        assert_eq!(name, "recorder");
        // The Recorder type is private; verify via delivered count and a
        // second identical run for determinism instead.
        assert_eq!(e.messages_delivered(), 10);
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn livelock_is_detected() {
        struct Forever;
        impl Component for Forever {
            fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
            fn busy(&self) -> bool {
                true
            }
            fn name(&self) -> &str {
                "forever"
            }
        }
        let mut b = EngineBuilder::new();
        b.add(Box::new(Forever));
        let mut e = b.build();
        e.run_to_quiescence(10);
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn double_install_panics() {
        let mut b = EngineBuilder::new();
        let id = b.reserve();
        b.install(
            id,
            Box::new(Echo {
                peer: id,
                delay: 1,
                received: vec![],
                bounces_left: 0,
            }),
        );
        b.install(
            id,
            Box::new(Echo {
                peer: id,
                delay: 1,
                received: vec![],
                bounces_left: 0,
            }),
        );
    }

    #[test]
    #[should_panic(expected = "never installed")]
    fn missing_install_panics() {
        let mut b = EngineBuilder::new();
        let _ = b.reserve();
        let _ = b.build();
    }

    #[test]
    fn run_while_stops_on_condition() {
        struct Heartbeat;
        impl Component for Heartbeat {
            fn tick(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.self_id();
                if ctx.recv().is_some() {
                    ctx.send(
                        me,
                        Message::Credit {
                            from: netcrafter_proto::NodeId(0),
                            count: 1,
                        },
                        1,
                    );
                }
            }
            fn busy(&self) -> bool {
                false
            }
            fn name(&self) -> &str {
                "heartbeat"
            }
        }
        let mut b = EngineBuilder::new();
        let h = b.add(Box::new(Heartbeat));
        let mut e = b.build();
        e.inject(h, credit(1), 1);
        let end = e.run_while(10_000, |e| e.cycle() < 50);
        assert_eq!(end, 50);
        assert!(!e.quiescent(), "heartbeat keeps a message in flight");
    }

    #[test]
    fn trace_records_recent_deliveries() {
        let mut b = EngineBuilder::new();
        let a = b.add(Box::new(Echo {
            peer: ComponentId(0),
            delay: 1,
            received: vec![],
            bounces_left: 0,
        }));
        let mut e = b.build();
        e.enable_trace(2);
        for _ in 0..5 {
            e.inject(a, credit(1), 1);
            e.step();
        }
        let events: Vec<_> = e.trace().collect();
        assert_eq!(events.len(), 2, "ring buffer keeps only the last 2");
        assert!(events.iter().all(|ev| ev.kind == "credit"));
        assert!(events[0].cycle < events[1].cycle);
        let dump = e.dump_trace();
        assert!(
            dump[0].contains("credit") && dump[0].contains("echo"),
            "{dump:?}"
        );
    }

    #[test]
    fn typed_component_access() {
        let mut b = EngineBuilder::new();
        let id = b.add(Box::new(Echo {
            peer: ComponentId(0),
            delay: 1,
            received: vec![],
            bounces_left: 0,
        }));
        let mut e = b.build();
        assert!(e.get::<Echo>(id).is_some(), "downcast to the real type");
        struct Other;
        impl Component for Other {
            fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
            fn busy(&self) -> bool {
                false
            }
            fn name(&self) -> &str {
                "other"
            }
        }
        assert!(e.get::<Other>(id).is_none(), "wrong type yields None");
        assert!(e.get_mut::<Echo>(id).is_some());
    }

    #[test]
    fn zero_delay_is_clamped_to_one() {
        struct Sender {
            dst: ComponentId,
            sent: bool,
        }
        impl Component for Sender {
            fn tick(&mut self, ctx: &mut Ctx<'_>) {
                if !self.sent {
                    self.sent = true;
                    ctx.send(
                        self.dst,
                        Message::Credit {
                            from: netcrafter_proto::NodeId(0),
                            count: 1,
                        },
                        0,
                    );
                }
            }
            fn busy(&self) -> bool {
                false
            }
            fn name(&self) -> &str {
                "sender"
            }
        }
        let mut b = EngineBuilder::new();
        let s = b.reserve();
        let r = b.reserve();
        b.install(
            s,
            Box::new(Sender {
                dst: r,
                sent: false,
            }),
        );
        b.install(
            r,
            Box::new(Echo {
                peer: s,
                delay: 1,
                received: vec![],
                bounces_left: 0,
            }),
        );
        let mut e = b.build();
        e.step(); // sender sends at cycle 1 with delay 0 -> arrives cycle 2
        assert_eq!(e.messages_delivered(), 0);
        e.step();
        assert_eq!(e.messages_delivered(), 1);
    }
}
