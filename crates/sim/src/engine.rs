//! The cycle engine: components, mailboxes and delayed message delivery.
//!
//! Two interchangeable schedulers drive the same cycle-level semantics:
//!
//! * **Legacy**: every component ticks every cycle, in id order — the
//!   reference model, selectable via [`SchedulerMode::Legacy`].
//! * **Event-driven** (default): only components with a scheduled wake
//!   tick, idle stretches are fast-forwarded to the next scheduled event,
//!   and quiescence is tracked incrementally instead of rescanning every
//!   component's [`Component::busy`] flag each cycle.
//!
//! The two produce bit-identical results because a component may only be
//! skipped on cycles where its legacy tick would have been a no-op: its
//! [`Component::next_wake`] contract promises exactly that (see
//! DESIGN.md, "Event-driven scheduling").

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use netcrafter_proto::Message;

use crate::arena::{Arena, Handle};
use crate::snapshot::{
    read_header, write_header, ForkSnapshot, Snap, SnapshotError, SnapshotReader, SnapshotWriter,
};
use crate::trace::{Trace, TraceConfig, Tracer};
use crate::Cycle;

/// Index of a component and of its (single) mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub usize);

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "comp{}", self.0)
    }
}

/// When a component next needs to be ticked (see
/// [`Component::next_wake`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Tick again next cycle. Always safe; required whenever the
    /// component does per-cycle work (counts stall/idle cycles, samples a
    /// time series, drains a queue, accrues observable rate-limiter
    /// tokens it will spend).
    EveryCycle,
    /// Tick at the given cycle (clamped to the next cycle if already
    /// due). For precisely-known timers: pipeline readiness, pooling
    /// window expiry.
    At(Cycle),
    /// No tick needed until a message arrives. The engine always ticks a
    /// component on the cycle it receives a message, whatever it last
    /// returned.
    OnMessage,
}

impl Wake {
    /// The earlier of two wakes, for components composed of several
    /// independently scheduled parts: `EveryCycle` dominates, `OnMessage`
    /// is latest, and two timers take the smaller cycle.
    pub fn earliest(self, other: Wake) -> Wake {
        match (self, other) {
            (Wake::EveryCycle, _) | (_, Wake::EveryCycle) => Wake::EveryCycle,
            (Wake::At(a), Wake::At(b)) => Wake::At(a.min(b)),
            (Wake::At(a), Wake::OnMessage) | (Wake::OnMessage, Wake::At(a)) => Wake::At(a),
            (Wake::OnMessage, Wake::OnMessage) => Wake::OnMessage,
        }
    }
}

/// Which scheduler drives [`Engine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerMode {
    /// Tick every component every cycle (the reference model).
    Legacy,
    /// Tick only woken components; fast-forward idle cycles.
    EventDriven,
    /// Event-driven semantics, but [`Engine::run_to_quiescence`] executes
    /// the partition's domains on worker threads under a conservative
    /// epoch barrier (see [`Engine::set_parallel`] and DESIGN.md §3.3).
    /// Identical to [`SchedulerMode::EventDriven`] for single stepping.
    ParallelEventDriven,
}

/// Process-wide default scheduler for newly built engines (set by the
/// `--legacy-scheduler` CLI escape hatch before any simulation starts).
// lint:allow(no-ambient-state) process-wide CLI default, read once per engine build; never mutated mid-run
static LEGACY_DEFAULT: AtomicBool = AtomicBool::new(false);

/// Sets the scheduler used by engines built after this call.
/// [`Engine::set_scheduler`] overrides it per engine.
pub fn set_default_scheduler(mode: SchedulerMode) {
    LEGACY_DEFAULT.store(mode == SchedulerMode::Legacy, Ordering::Relaxed);
}

/// The scheduler newly built engines start with.
pub fn default_scheduler() -> SchedulerMode {
    if LEGACY_DEFAULT.load(Ordering::Relaxed) {
        SchedulerMode::Legacy
    } else {
        SchedulerMode::EventDriven
    }
}

/// Sentinel for "no scheduled wake" in the armed-cycle table.
pub(crate) const NEVER: Cycle = Cycle::MAX;

/// What one [`Component::tick_burst`] reports back to the scheduler: the
/// component's busy flag and its next wake, computed in the same virtual
/// call that did the work (instead of three separate calls per woken
/// component: `tick`, `busy`, `next_wake`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstOutcome {
    /// The value [`Component::busy`] would return right now.
    pub busy: bool,
    /// The value [`Component::next_wake`] would return right now.
    pub wake: Wake,
}

/// The interface every simulated hardware block implements.
///
/// A component is ticked in a fixed id order within a cycle. During its
/// tick it may drain its mailbox via [`Ctx::recv`] and send messages to
/// peers via [`Ctx::send`]; sends are staged and delivered by the engine,
/// so a component never observes a message sent in the same cycle.
///
/// Under the event-driven scheduler a component is only ticked when a
/// message arrives or its [`Component::next_wake`] comes due; the default
/// (`EveryCycle`) preserves the tick-always behaviour.
///
/// Components are `Send` so domains of them can execute on worker threads
/// under [`SchedulerMode::ParallelEventDriven`]; they are never shared
/// (each domain owns its components), so `Sync` is not required.
pub trait Component: std::any::Any + Send {
    /// Advances the component by one cycle.
    fn tick(&mut self, ctx: &mut Ctx<'_>);

    /// True while the component still has internal work (pipeline contents,
    /// pending responses, unissued ops). The engine declares the system
    /// quiescent — and stops — only when *no* component is busy and no
    /// message is in flight.
    fn busy(&self) -> bool;

    /// Human-readable instance name for traces and error messages.
    fn name(&self) -> &str;

    /// When this component next needs a tick, queried right after each
    /// tick (and used only by the event-driven scheduler).
    ///
    /// Contract: every cycle between now and the returned wake on which
    /// the component is *not* ticked must be one where its tick would
    /// have had no observable effect — no state change, no statistics or
    /// trace events, no sends. Message arrival always forces a tick
    /// regardless of the returned value.
    fn next_wake(&self, _now: Cycle) -> Wake {
        Wake::EveryCycle
    }

    /// Burst entry point: performs this cycle's work (draining the whole
    /// mailbox burst) *and* reports the post-tick busy flag and next wake
    /// in one virtual call. The scheduler dispatches this instead of the
    /// `tick`/`busy`/`next_wake` triple whenever burst dispatch is on
    /// (the default — see [`Engine::set_burst_dispatch`]).
    ///
    /// The default wraps [`Component::tick`], so existing components work
    /// unchanged. An override must be observably identical to the scalar
    /// triple — same state changes, sends, trace events, and the exact
    /// values `busy()` / `next_wake()` would return — which the
    /// burst-vs-scalar equivalence suite checks byte for byte.
    fn tick_burst(&mut self, ctx: &mut Ctx<'_>) -> BurstOutcome {
        self.tick(ctx);
        BurstOutcome {
            busy: self.busy(),
            wake: self.next_wake(ctx.cycle),
        }
    }

    /// Appends this component's full dynamic state to `w` (see
    /// `netcrafter_sim::snapshot`). Together with
    /// [`Component::load_state`] the pair must be a fixed point: saving,
    /// loading into a freshly built instance and saving again yields the
    /// same bytes. Static configuration derived from the builder need not
    /// be written — only state that changes as the simulation runs.
    ///
    /// The default panics: a component that can appear in a
    /// checkpointed engine must implement the pair (enforced by the
    /// `snapshot-coverage` lint rule).
    fn save_state(&self, _w: &mut SnapshotWriter) {
        panic!("component `{}` does not support snapshotting", self.name());
    }

    /// Restores the dynamic state written by [`Component::save_state`]
    /// into this (identically configured) instance.
    fn load_state(&mut self, _r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        panic!("component `{}` does not support snapshotting", self.name());
    }
}

/// Per-tick context handed to a component: its own mailbox, the current
/// cycle, and a staging buffer for outgoing messages.
///
/// Mailbox and staging buffer hold 8-byte [`Handle`]s into the engine's
/// message arena; payloads are written once on send and read once on
/// receive, so a delivery never copies the full [`Message`] through the
/// wheel.
pub struct Ctx<'a> {
    pub(crate) cycle: Cycle,
    pub(crate) inbox: &'a mut VecDeque<Handle>,
    pub(crate) outbox: &'a mut Vec<(Cycle, ComponentId, Handle)>,
    pub(crate) arena: &'a mut Arena<Message>,
    pub(crate) self_id: ComponentId,
    pub(crate) tracer: &'a mut Tracer,
}

impl Ctx<'_> {
    /// Current simulation cycle.
    #[inline]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// This component's own id (usable as a send target for self-wakeups).
    #[inline]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Pops the oldest message from this component's mailbox.
    #[inline]
    pub fn recv(&mut self) -> Option<Message> {
        self.inbox.pop_front().map(|h| self.arena.take(h))
    }

    /// Peeks at the oldest message without removing it.
    #[inline]
    pub fn peek(&self) -> Option<&Message> {
        self.inbox.front().map(|&h| self.arena.get(h))
    }

    /// Number of messages waiting in the mailbox.
    #[inline]
    pub fn inbox_len(&self) -> usize {
        self.inbox.len()
    }

    /// Sends `msg` to `dst`, arriving after `delay` cycles (minimum 1: a
    /// message can never be observed in the cycle it was sent).
    #[inline]
    pub fn send(&mut self, dst: ComponentId, msg: Message, delay: u64) {
        let when = self.cycle + delay.max(1);
        let h = self.arena.alloc(msg);
        self.outbox.push((when, dst, h));
    }

    /// The structured-event tracer, focused on this component. A single
    /// branch and a no-op when tracing is disabled (the default).
    #[inline]
    pub fn tracer(&mut self) -> &mut Tracer {
        self.tracer
    }
}

/// Incrementally wires up an [`Engine`].
///
/// Construction is two-phase so components can know their peers' ids
/// before those peers exist: [`EngineBuilder::reserve`] allocates an id,
/// and [`EngineBuilder::install`] later provides the component.
///
/// # Examples
///
/// ```
/// use netcrafter_sim::{EngineBuilder, Component, Ctx};
///
/// struct Nop;
/// impl Component for Nop {
///     fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
///     fn busy(&self) -> bool { false }
///     fn name(&self) -> &str { "nop" }
/// }
///
/// let mut b = EngineBuilder::new();
/// let id = b.reserve();
/// b.install(id, Box::new(Nop));
/// let mut engine = b.build();
/// assert!(engine.quiescent());
/// ```
#[derive(Default)]
pub struct EngineBuilder {
    slots: Vec<Option<Box<dyn Component>>>,
}

impl EngineBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves a component id to be filled in later with
    /// [`EngineBuilder::install`].
    pub fn reserve(&mut self) -> ComponentId {
        self.slots.push(None);
        ComponentId(self.slots.len() - 1)
    }

    /// Installs a component into a reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already filled or the id was never reserved.
    pub fn install(&mut self, id: ComponentId, component: Box<dyn Component>) {
        let slot = self
            .slots
            .get_mut(id.0)
            .unwrap_or_else(|| panic!("component id {id} was never reserved"));
        assert!(slot.is_none(), "component id {id} installed twice");
        *slot = Some(component);
    }

    /// Reserves and installs in one step.
    pub fn add(&mut self, component: Box<dyn Component>) -> ComponentId {
        let id = self.reserve();
        self.install(id, component);
        id
    }

    /// Finalizes the engine.
    ///
    /// # Panics
    ///
    /// Panics if any reserved slot was never installed.
    pub fn build(self) -> Engine {
        let components: Vec<Box<dyn Component>> = self
            .slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("component slot {i} never installed")))
            .collect();
        let n = components.len();
        let busy_flags: Vec<bool> = components.iter().map(|c| c.busy()).collect();
        let busy_count = busy_flags.iter().filter(|&&b| b).count();
        Engine {
            components,
            inboxes: (0..n).map(|_| VecDeque::new()).collect(),
            msgs: Arena::new(),
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            overflow_min: NEVER,
            cycle: 0,
            in_flight: 0,
            delivered: 0,
            outbox: Vec::new(),
            trace: None,
            tracer: Tracer::off(),
            mode: default_scheduler(),
            // Every component gets a first tick on cycle 1 and re-arms
            // itself from there via `next_wake`.
            armed: vec![1; n],
            wake_heap: (0..n).map(|i| Reverse((1, i))).collect(),
            active: Vec::new(),
            every: vec![false; n],
            every_count: 0,
            woken: Vec::new(),
            busy_flags,
            busy_count,
            dirty: Vec::new(),
            dirty_flags: vec![false; n],
            slot_scratch: Vec::new(),
            overflow_scratch: Vec::new(),
            burst: true,
            parallel: None,
        }
    }
}

/// Delay-wheel size: delays below this are O(1); longer delays take the
/// (rare) overflow path.
pub(crate) const WHEEL_SLOTS: usize = 512;

/// One recorded message delivery (see [`Engine::enable_trace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Delivery cycle.
    pub cycle: Cycle,
    /// Receiving component.
    pub dst: ComponentId,
    /// Message kind label (`"flit"`, `"mem-req"`, …).
    pub kind: &'static str,
}

/// The simulation engine: owns all components and mailboxes and advances
/// simulated time.
pub struct Engine {
    pub(crate) components: Vec<Box<dyn Component>>,
    pub(crate) inboxes: Vec<VecDeque<Handle>>,
    /// Backing store for every in-flight and mailboxed message payload;
    /// the wheel, inboxes and outbox move 8-byte handles instead.
    pub(crate) msgs: Arena<Message>,
    /// Ring buffer of future deliveries indexed by `cycle % WHEEL_SLOTS`.
    pub(crate) wheel: Vec<Vec<(ComponentId, Handle)>>,
    /// Deliveries further than `WHEEL_SLOTS` cycles out (rare).
    pub(crate) overflow: Vec<(Cycle, ComponentId, Handle)>,
    /// Earliest delivery cycle in `overflow` (`NEVER` when empty).
    pub(crate) overflow_min: Cycle,
    pub(crate) cycle: Cycle,
    pub(crate) in_flight: usize,
    pub(crate) delivered: u64,
    outbox: Vec<(Cycle, ComponentId, Handle)>,
    pub(crate) trace: Option<(VecDeque<TraceEvent>, usize)>,
    pub(crate) tracer: Tracer,
    mode: SchedulerMode,
    /// Next cycle each component must tick (`NEVER` = waiting on a
    /// message). Only meaningful under the event-driven scheduler.
    armed: Vec<Cycle>,
    /// Lazy min-heap over `(wake cycle, id)`; entries that no longer
    /// match `armed` are stale and skipped on pop.
    wake_heap: BinaryHeap<Reverse<(Cycle, usize)>>,
    /// Components whose last `next_wake` was [`Wake::EveryCycle`]: ticked
    /// every cycle from this flat list with zero heap traffic. `every`
    /// mirrors membership; entries whose flag has been cleared are
    /// compacted out lazily during the per-cycle sweep.
    active: Vec<usize>,
    every: Vec<bool>,
    /// Number of `true` entries in `every` (live `active` members).
    every_count: usize,
    /// Scratch buffer for the ids woken this cycle.
    woken: Vec<usize>,
    /// Cached `busy()` per component, maintained incrementally after each
    /// tick so quiescence needs no O(n) rescan.
    pub(crate) busy_flags: Vec<bool>,
    /// Number of `true` entries in `busy_flags`.
    pub(crate) busy_count: usize,
    /// Components handed out via `get_mut`/`component_mut` since the last
    /// step: external code may have changed their state behind the
    /// scheduler's back, so their cached busy flag is suspect and they
    /// are re-ticked on the next cycle.
    dirty: Vec<usize>,
    dirty_flags: Vec<bool>,
    /// Persistent buffer swapped with the due wheel slot during delivery,
    /// so `step` allocates nothing in the steady state (the slot and the
    /// scratch trade capacities back and forth).
    slot_scratch: Vec<(ComponentId, Handle)>,
    /// Persistent buffer for the (stable, order-preserving) overflow
    /// refill — `swap_remove` would scramble same-cycle delivery order.
    overflow_scratch: Vec<(Cycle, ComponentId, Handle)>,
    /// Dispatch [`Component::tick_burst`] (one virtual call per woken
    /// component) instead of the scalar `tick`/`busy`/`next_wake` triple.
    /// On by default; the equivalence suite flips it off to pin the two
    /// paths against each other.
    pub(crate) burst: bool,
    /// Domain partition + worker count for
    /// [`SchedulerMode::ParallelEventDriven`] (see [`Engine::set_parallel`]).
    pub(crate) parallel: Option<crate::parallel::ParallelConfig>,
}

impl Engine {
    /// Current simulation cycle.
    #[inline]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Total messages delivered so far.
    #[inline]
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the engine contains no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// The active scheduler.
    pub fn scheduler(&self) -> SchedulerMode {
        self.mode
    }

    /// Switches scheduler mid-flight: re-arms every component for the
    /// next cycle and refreshes the busy cache, so no wake derived under
    /// the previous mode is trusted.
    pub fn set_scheduler(&mut self, mode: SchedulerMode) {
        self.mode = mode;
        self.rearm_all_at(self.cycle + 1);
        self.busy_count = 0;
        for (i, c) in self.components.iter().enumerate() {
            let b = c.busy();
            self.busy_flags[i] = b;
            self.busy_count += b as usize;
        }
        for &i in &self.dirty {
            self.dirty_flags[i] = false;
        }
        self.dirty.clear();
    }

    /// Discards every derived wake and schedules a fresh tick for every
    /// component at `next`. Always bit-exact: ticking an idle component
    /// is observable-effect-free by the [`Component::next_wake`] contract
    /// (the Legacy scheduler ticks everything every cycle and must agree).
    pub(crate) fn rearm_all_at(&mut self, next: Cycle) {
        self.wake_heap.clear();
        self.active.clear();
        self.every_count = 0;
        for f in &mut self.every {
            *f = false;
        }
        for a in &mut self.armed {
            *a = NEVER;
        }
        for i in 0..self.components.len() {
            self.arm(i, next);
        }
    }

    /// Installs the domain partition and worker-thread count used by
    /// [`SchedulerMode::ParallelEventDriven`], and switches to that mode.
    /// With `threads <= 1` (or a single domain) execution stays on the
    /// calling thread and is plain event-driven.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover exactly this engine's
    /// components (see [`crate::parallel::Partition::new`] for the
    /// domain-density and lookahead requirements).
    pub fn set_parallel(&mut self, partition: crate::parallel::Partition, threads: usize) {
        assert_eq!(
            partition.domain_of.len(),
            self.components.len(),
            "partition must assign a domain to every component"
        );
        self.parallel = Some(crate::parallel::ParallelConfig { partition, threads });
        self.set_scheduler(SchedulerMode::ParallelEventDriven);
    }

    /// Starts recording the last `capacity` message deliveries — the
    /// standard first tool for debugging a stuck or misrouted
    /// transaction. Costs one ring-buffer push per delivery.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some((VecDeque::with_capacity(capacity), capacity.max(1)));
    }

    /// The recorded deliveries, oldest first (empty unless
    /// [`Engine::enable_trace`] was called).
    pub fn trace(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.trace.iter().flat_map(|(buf, _)| buf.iter())
    }

    /// Renders the recorded trace with component names, oldest first.
    pub fn dump_trace(&self) -> Vec<String> {
        self.trace()
            .map(|e| {
                format!(
                    "cycle {:>8}: {:<10} -> {}",
                    e.cycle,
                    e.kind,
                    self.components[e.dst.0].name()
                )
            })
            .collect()
    }

    /// Turns on structured-event tracing with the given filter. One track
    /// is registered per component (in id order), so [`crate::Event::track`]
    /// equals the component id. Call before running; events from earlier
    /// cycles are simply absent.
    pub fn enable_tracing(&mut self, config: TraceConfig) {
        let mut tracer = Tracer::new(config);
        for comp in &self.components {
            tracer.register_track(comp.name());
        }
        tracer.set_now(self.cycle);
        self.tracer = tracer;
    }

    /// The structured-event tracer (disabled unless
    /// [`Engine::enable_tracing`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Extracts everything recorded since [`Engine::enable_tracing`] (or
    /// the last call to this method), leaving tracing active.
    pub fn take_trace(&mut self) -> Trace {
        self.tracer.take()
    }

    #[inline]
    fn record(&mut self, dst: ComponentId, kind: &'static str) {
        if let Some((buf, cap)) = self.trace.as_mut() {
            if buf.len() == *cap {
                buf.pop_front();
            }
            buf.push_back(TraceEvent {
                cycle: self.cycle,
                dst,
                kind,
            });
        }
    }

    /// Injects a message from outside the simulation (e.g. a kernel-launch
    /// trigger), delivered at `cycle + delay`.
    pub fn inject(&mut self, dst: ComponentId, msg: Message, delay: u64) {
        let when = self.cycle + delay.max(1);
        let h = self.msgs.alloc(msg);
        self.schedule(when, dst, h);
    }

    fn schedule(&mut self, when: Cycle, dst: ComponentId, h: Handle) {
        debug_assert!(when > self.cycle);
        self.in_flight += 1;
        if (when - self.cycle) < WHEEL_SLOTS as u64 {
            self.wheel[(when % WHEEL_SLOTS as u64) as usize].push((dst, h));
        } else {
            self.overflow_min = self.overflow_min.min(when);
            self.overflow.push((when, dst, h));
        }
    }

    /// Chooses between burst dispatch (one [`Component::tick_burst`] call
    /// per woken component — the default) and the scalar
    /// `tick`/`busy`/`next_wake` triple. Both are bit-identical by
    /// contract; the toggle exists so the equivalence suite can pin every
    /// native `tick_burst` against its scalar reference.
    pub fn set_burst_dispatch(&mut self, on: bool) {
        self.burst = on;
    }

    /// Schedules component `id` to tick at `when` (keeping any earlier
    /// wake it already has).
    #[inline]
    fn arm(&mut self, id: usize, when: Cycle) {
        if when < self.armed[id] {
            self.armed[id] = when;
            self.wake_heap.push(Reverse((when, id)));
        }
    }

    /// Drops `id` from the always-on set (its stale `active` entry is
    /// compacted on the next per-cycle sweep).
    #[inline]
    fn unevery(&mut self, id: usize) {
        if self.every[id] {
            self.every[id] = false;
            self.every_count -= 1;
        }
    }

    /// Marks a component as externally mutated: its cached busy flag is
    /// recomputed on the next quiescence check / step, and it gets a tick.
    /// Arming here (not in `flush_dirty`) keeps the wake visible to
    /// `fast_forward`, which runs before the step that flushes.
    #[inline]
    fn mark_dirty(&mut self, id: usize) {
        if !self.dirty_flags[id] {
            self.dirty_flags[id] = true;
            self.dirty.push(id);
            self.arm(id, self.cycle + 1);
        }
    }

    /// Re-syncs the busy cache for externally mutated components (they
    /// were armed for a tick by `mark_dirty`).
    pub(crate) fn flush_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let mut dirty = std::mem::take(&mut self.dirty);
        for &i in &dirty {
            self.dirty_flags[i] = false;
            let live = self.components[i].busy();
            if live != self.busy_flags[i] {
                self.busy_flags[i] = live;
                if live {
                    self.busy_count += 1;
                } else {
                    self.busy_count -= 1;
                }
            }
        }
        dirty.clear();
        self.dirty = dirty;
    }

    /// True when nothing remains to simulate: every mailbox is empty, no
    /// message is in flight, and no component reports internal work.
    ///
    /// O(1) via the incrementally maintained busy count, plus a live
    /// check of any component mutated through `get_mut` since the last
    /// step.
    pub fn quiescent(&self) -> bool {
        if self.in_flight != 0 {
            return false;
        }
        if self.dirty.is_empty() {
            return self.busy_count == 0;
        }
        let mut count = self.busy_count;
        for &i in &self.dirty {
            let live = self.components[i].busy();
            if live != self.busy_flags[i] {
                if live {
                    count += 1;
                } else {
                    count -= 1;
                }
            }
        }
        count == 0
    }

    /// Advances one cycle: delivers due messages, then ticks components —
    /// all of them under [`SchedulerMode::Legacy`], only woken ones under
    /// [`SchedulerMode::EventDriven`].
    pub fn step(&mut self) {
        self.cycle += 1;
        self.flush_dirty();
        let event_mode = self.mode != SchedulerMode::Legacy;
        // Hoisted so the per-delivery cost is a plain push when the
        // delivery ring is off (the common case).
        let tracing = self.trace.is_some();

        // Deliver messages due this cycle. The slot vector and the
        // persistent scratch buffer trade places (and capacities), so the
        // steady-state delivery loop allocates nothing.
        let slot = (self.cycle % WHEEL_SLOTS as u64) as usize;
        let mut due = std::mem::replace(
            &mut self.wheel[slot],
            std::mem::take(&mut self.slot_scratch),
        );
        self.in_flight -= due.len();
        self.delivered += due.len() as u64;
        for (dst, h) in due.drain(..) {
            if tracing {
                let kind = self.msgs.get(h).label();
                self.record(dst, kind);
            }
            if event_mode {
                self.arm(dst.0, self.cycle);
            }
            self.inboxes[dst.0].push_back(h);
        }
        self.slot_scratch = due;
        // Refill the wheel from the overflow list when anything has come
        // into range (checked against the cached minimum: overflow is
        // rare, and the scan must not run on every step). The drain is
        // order-preserving — a `swap_remove` here would scramble the
        // same-cycle delivery order of the survivors on a later refill.
        let horizon = self.cycle + WHEEL_SLOTS as u64;
        if self.overflow_min < horizon {
            let mut pending = std::mem::replace(
                &mut self.overflow,
                std::mem::take(&mut self.overflow_scratch),
            );
            let mut min_left = NEVER;
            for (when, dst, h) in pending.drain(..) {
                if when < horizon {
                    if when == self.cycle {
                        self.in_flight -= 1;
                        self.delivered += 1;
                        if tracing {
                            let kind = self.msgs.get(h).label();
                            self.record(dst, kind);
                        }
                        if event_mode {
                            self.arm(dst.0, self.cycle);
                        }
                        self.inboxes[dst.0].push_back(h);
                    } else {
                        self.wheel[(when % WHEEL_SLOTS as u64) as usize].push((dst, h));
                    }
                } else {
                    min_left = min_left.min(when);
                    self.overflow.push((when, dst, h));
                }
            }
            self.overflow_min = min_left;
            self.overflow_scratch = pending;
        }

        // Tick components.
        self.tracer.set_now(self.cycle);
        if event_mode {
            let mut woken = std::mem::take(&mut self.woken);
            woken.clear();
            while let Some(&Reverse((when, id))) = self.wake_heap.peek() {
                if when > self.cycle {
                    break;
                }
                self.wake_heap.pop();
                if self.armed[id] <= self.cycle {
                    self.armed[id] = NEVER;
                    woken.push(id);
                }
            }
            // Sweep the always-on set: every live member ticks this
            // cycle; members that re-armed away since last cycle are
            // compacted out in place (order-preserving, so `active`
            // stays sorted).
            let heap_woken = woken.len();
            if !self.active.is_empty() {
                let mut keep = 0;
                for k in 0..self.active.len() {
                    let id = self.active[k];
                    if self.every[id] {
                        self.active[keep] = id;
                        keep += 1;
                        woken.push(id);
                    }
                }
                self.active.truncate(keep);
            }
            // Ascending id order — the legacy tick order restricted to
            // the woken set (skipped components' ticks are no-ops by the
            // `next_wake` contract, so the interleaving is equivalent).
            // When only the (sorted, duplicate-free) always-on sweep
            // contributed, the order is already right.
            if heap_woken > 0 {
                woken.sort_unstable();
                woken.dedup();
            }
            let burst = self.burst;
            for &i in &woken {
                let wake = if burst {
                    self.tick_one_burst(i)
                } else {
                    self.tick_one(i);
                    self.components[i].next_wake(self.cycle)
                };
                match wake {
                    Wake::EveryCycle => {
                        if !self.every[i] {
                            self.every[i] = true;
                            self.every_count += 1;
                            let pos = self.active.partition_point(|&x| x < i);
                            self.active.insert(pos, i);
                        }
                    }
                    Wake::At(t) => {
                        self.unevery(i);
                        self.arm(i, t.max(self.cycle + 1));
                    }
                    Wake::OnMessage => self.unevery(i),
                }
            }
            self.woken = woken;
        } else {
            for i in 0..self.components.len() {
                self.tick_one(i);
            }
        }

        // Commit staged sends, keeping the staging allocation across steps.
        let mut staged = std::mem::take(&mut self.outbox);
        for (when, dst, h) in staged.drain(..) {
            assert!(
                dst.0 < self.inboxes.len(),
                "send to unknown component {dst}"
            );
            self.schedule(when, dst, h);
        }
        self.outbox = staged;
    }

    /// Ticks component `i` and folds its new busy state into the cache.
    #[inline]
    fn tick_one(&mut self, i: usize) {
        self.tracer.focus(i as u32);
        let mut ctx = Ctx {
            cycle: self.cycle,
            inbox: &mut self.inboxes[i],
            outbox: &mut self.outbox,
            arena: &mut self.msgs,
            self_id: ComponentId(i),
            tracer: &mut self.tracer,
        };
        self.components[i].tick(&mut ctx);
        let busy = self.components[i].busy();
        self.fold_busy(i, busy);
    }

    /// Burst-ticks component `i` (one virtual call does the work and
    /// reports busy + wake), folds the busy flag, and returns the wake.
    #[inline]
    fn tick_one_burst(&mut self, i: usize) -> Wake {
        self.tracer.focus(i as u32);
        let mut ctx = Ctx {
            cycle: self.cycle,
            inbox: &mut self.inboxes[i],
            outbox: &mut self.outbox,
            arena: &mut self.msgs,
            self_id: ComponentId(i),
            tracer: &mut self.tracer,
        };
        let out = self.components[i].tick_burst(&mut ctx);
        self.fold_busy(i, out.busy);
        out.wake
    }

    #[inline]
    fn fold_busy(&mut self, i: usize, busy: bool) {
        if busy != self.busy_flags[i] {
            self.busy_flags[i] = busy;
            if busy {
                self.busy_count += 1;
            } else {
                self.busy_count -= 1;
            }
        }
    }

    /// Earliest future cycle with scheduled work — a component wake or a
    /// message delivery — or `NEVER` when nothing is pending.
    fn next_event_cycle(&mut self) -> Cycle {
        // An always-on component ticks next cycle, full stop.
        if self.every_count > 0 {
            return self.cycle + 1;
        }
        // Pop stale heap entries until the top is live.
        let mut wake = NEVER;
        while let Some(&Reverse((when, id))) = self.wake_heap.peek() {
            if self.armed[id] == when {
                wake = when;
                break;
            }
            self.wake_heap.pop();
        }
        if wake <= self.cycle + 1 {
            return wake;
        }
        let mut next = wake.min(self.overflow_min);
        let in_wheel = self.in_flight - self.overflow.len();
        if in_wheel > 0 {
            for d in 1..=WHEEL_SLOTS as u64 {
                let c = self.cycle + d;
                if c >= next {
                    break;
                }
                if !self.wheel[(c % WHEEL_SLOTS as u64) as usize].is_empty() {
                    next = c;
                    break;
                }
            }
        }
        next
    }

    /// Advances the clock to just before the next scheduled event (or the
    /// run limit), so the following [`Engine::step`] lands exactly on it.
    /// Skipped cycles are ones in which no component would tick and no
    /// message would be delivered.
    fn fast_forward(&mut self, limit: Cycle) {
        let next = self.next_event_cycle();
        if next <= self.cycle + 1 {
            return;
        }
        let land = next.min(limit);
        if land > self.cycle + 1 {
            self.cycle = land - 1;
        }
    }

    /// Runs until [`Engine::quiescent`] or until `max_cycles` elapse.
    /// Returns the final cycle.
    ///
    /// # Panics
    ///
    /// Panics if the cycle limit is hit while work remains — a livelocked
    /// simulation is always a modelling bug and must not pass silently.
    pub fn run_to_quiescence(&mut self, max_cycles: Cycle) -> Cycle {
        if self.mode == SchedulerMode::ParallelEventDriven {
            if let Some(cfg) = self.parallel.take() {
                let worth_it = cfg.threads > 1 && cfg.partition.domains > 1;
                let end = if worth_it {
                    crate::parallel::run_parallel(self, &cfg, max_cycles)
                } else {
                    self.run_sequential(max_cycles)
                };
                self.parallel = Some(cfg);
                return end;
            }
        }
        self.run_sequential(max_cycles)
    }

    /// The sequential body of [`Engine::run_to_quiescence`] (also used by
    /// the parallel path when the partition or thread count degenerates).
    fn run_sequential(&mut self, max_cycles: Cycle) -> Cycle {
        let limit = self.cycle + max_cycles;
        while !self.quiescent() {
            assert!(
                self.cycle < limit,
                "simulation did not quiesce within {max_cycles} cycles; busy: {:?}",
                self.busy_components()
            );
            if self.mode != SchedulerMode::Legacy {
                self.fast_forward(limit);
            }
            self.step();
        }
        self.cycle
    }

    /// Runs while `cond` holds and work remains, up to `max_cycles`.
    ///
    /// Under the event-driven scheduler, `cond` is evaluated before each
    /// *executed* cycle; idle stretches are fast-forwarded (never past
    /// `max_cycles`), so a condition that flips on a cycle in which
    /// nothing is scheduled is observed at the next event or at the limit.
    pub fn run_while(&mut self, max_cycles: Cycle, mut cond: impl FnMut(&Engine) -> bool) -> Cycle {
        let limit = self.cycle + max_cycles;
        while self.cycle < limit && cond(self) && !self.quiescent() {
            if self.mode != SchedulerMode::Legacy {
                self.fast_forward(limit);
            }
            self.step();
        }
        self.cycle
    }

    /// Names of components currently reporting work, for diagnostics.
    pub fn busy_components(&self) -> Vec<&str> {
        self.components
            .iter()
            .filter(|c| c.busy())
            .map(|c| c.name())
            .collect()
    }

    /// Immutable access to a component (for stats harvesting). The caller
    /// downcasts via its own bookkeeping of what lives at which id.
    pub fn component(&self, id: ComponentId) -> &dyn Component {
        self.components[id.0].as_ref()
    }

    /// Mutable access to a component. Marks it externally mutated: it is
    /// re-ticked and its busy flag re-read on the next cycle.
    pub fn component_mut(&mut self, id: ComponentId) -> &mut dyn Component {
        self.mark_dirty(id.0);
        self.components[id.0].as_mut()
    }

    /// Typed access to a component: the stats-harvesting path used by the
    /// measurement harness, which knows what it installed at each id.
    pub fn get<T: Component>(&self, id: ComponentId) -> Option<&T> {
        (self.components[id.0].as_ref() as &dyn std::any::Any).downcast_ref::<T>()
    }

    /// Typed mutable access to a component. Marks it externally mutated:
    /// it is re-ticked and its busy flag re-read on the next cycle.
    pub fn get_mut<T: Component>(&mut self, id: ComponentId) -> Option<&mut T> {
        self.mark_dirty(id.0);
        (self.components[id.0].as_mut() as &mut dyn std::any::Any).downcast_mut::<T>()
    }

    // ---- checkpoint / restore ----

    /// Runs (event-driven, sequentially) until the clock reaches `target`
    /// or the system quiesces, whichever comes first. Every cycle boundary
    /// reached this way is a global epoch barrier, so the paused state is
    /// a valid checkpoint under all scheduler modes (DESIGN.md §3.4).
    pub fn run_until(&mut self, target: Cycle) -> Cycle {
        if target <= self.cycle {
            return self.cycle;
        }
        let budget = target - self.cycle;
        self.run_while(budget, |_| true)
    }

    /// Appends the engine's full dynamic state — clock, every component's
    /// saved state, mailboxes, in-flight messages and the structured
    /// tracer — to `w`, in the canonical order described in DESIGN.md
    /// §3.4. Scheduler-derived state (wake heap, armed table, busy cache)
    /// is intentionally excluded: it is reconstructed bit-exactly on load,
    /// which also makes snapshots portable across scheduler modes.
    pub fn save_state_into(&mut self, w: &mut SnapshotWriter) {
        self.flush_dirty();
        assert!(
            self.outbox.is_empty(),
            "snapshot taken mid-tick: staged sends present"
        );
        w.put_len(self.components.len());
        w.put_u64(self.cycle);
        w.put_u64(self.delivered);
        for comp in &self.components {
            w.put_str(comp.name());
            let mut body = SnapshotWriter::new();
            comp.save_state(&mut body);
            w.put_bytes(&body.into_bytes());
        }
        // Mailboxes: same bytes as a `VecDeque<Message>` save — handles
        // are resolved through the arena in queue order.
        for inbox in &self.inboxes {
            w.put_len(inbox.len());
            for &h in inbox {
                self.msgs.get(h).save(w);
            }
        }
        // In-flight messages in canonical order: ascending delivery cycle,
        // send order within a cycle (each wheel slot holds exactly one
        // future cycle's deliveries in push order), then the overflow list.
        w.put_len(self.in_flight);
        for d in 1..WHEEL_SLOTS as u64 {
            let when = self.cycle + d;
            for &(dst, h) in &self.wheel[(when % WHEEL_SLOTS as u64) as usize] {
                w.put_u64(when);
                w.put_len(dst.0);
                self.msgs.get(h).save(w);
            }
        }
        for &(when, dst, h) in &self.overflow {
            w.put_u64(when);
            w.put_len(dst.0);
            self.msgs.get(h).save(w);
        }
        self.tracer.save(w);
    }

    /// Restores the state written by [`Engine::save_state_into`] into
    /// this engine, which must contain the same components (same count,
    /// names and order — i.e. be built from the same configuration).
    /// The active scheduler mode is kept and all of its derived state is
    /// rebuilt from scratch, exactly as [`Engine::set_scheduler`] does.
    pub fn load_state_from(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.get_len()?;
        if n != self.components.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {n} components, engine has {}",
                self.components.len()
            )));
        }
        let cycle = r.get_u64()?;
        let delivered = r.get_u64()?;
        // Borrow every component blob from the snapshot buffer (restore
        // is a sweep hot path — no per-component copies or name allocs).
        let mut bodies: Vec<&[u8]> = Vec::with_capacity(n);
        for comp in &self.components {
            let name = r.get_bytes()?;
            if name != comp.name().as_bytes() {
                return Err(SnapshotError::Corrupt(format!(
                    "component mismatch: snapshot has `{}`, engine has `{}`",
                    String::from_utf8_lossy(name),
                    comp.name()
                )));
            }
            bodies.push(r.get_bytes()?);
        }
        let mut inboxes: Vec<VecDeque<Message>> = Vec::with_capacity(n);
        for _ in 0..n {
            inboxes.push(Snap::load(r)?);
        }
        let in_flight = r.get_len()?;
        let mut deliveries = Vec::with_capacity(in_flight);
        for _ in 0..in_flight {
            let when = r.get_u64()?;
            let dst = r.get_len()?;
            let msg = Message::load(r)?;
            if when <= cycle {
                return Err(SnapshotError::Corrupt(format!(
                    "in-flight message due at {when}, not after cycle {cycle}"
                )));
            }
            if dst >= n {
                return Err(SnapshotError::Corrupt(format!(
                    "in-flight message for unknown component {dst}"
                )));
            }
            deliveries.push((when, ComponentId(dst), msg));
        }
        let tracer = Tracer::load(r)?;

        // Everything decoded — only now mutate the engine.
        self.cycle = cycle;
        self.delivered = delivered;
        for (comp, body) in self.components.iter_mut().zip(&bodies) {
            let mut br = SnapshotReader::new(body);
            comp.load_state(&mut br)?;
            if br.remaining() != 0 {
                return Err(SnapshotError::Corrupt(format!(
                    "component `{}` left {} unread byte(s) in its state blob",
                    comp.name(),
                    br.remaining()
                )));
            }
        }
        self.msgs = Arena::new();
        self.inboxes.clear();
        for inbox in inboxes {
            let mut q = VecDeque::with_capacity(inbox.len());
            for msg in inbox {
                q.push_back(self.msgs.alloc(msg));
            }
            self.inboxes.push(q);
        }
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.overflow.clear();
        self.overflow_min = NEVER;
        self.in_flight = 0;
        for (when, dst, msg) in deliveries {
            let h = self.msgs.alloc(msg);
            self.schedule(when, dst, h);
        }
        self.tracer = tracer;
        self.tracer.set_now(self.cycle);
        // Rebuild every piece of scheduler-derived state (armed table,
        // wake heap, always-on set, busy cache, dirty list) for the
        // current mode — bit-exact by the `next_wake` contract.
        self.set_scheduler(self.mode);
        Ok(())
    }

    /// Serializes the engine into a standalone versioned snapshot
    /// (header + [`Engine::save_state_into`] body).
    pub fn save_snapshot(&mut self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        write_header(&mut w);
        self.save_state_into(&mut w);
        w.into_bytes()
    }

    /// Restores a snapshot produced by [`Engine::save_snapshot`],
    /// validating the header (magic, version) and that every byte is
    /// consumed.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        read_header(&mut r)?;
        self.load_state_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing byte(s) after engine state",
                r.remaining()
            )));
        }
        Ok(())
    }

    /// FNV-1a hash over the canonical state encoding — a cheap
    /// fingerprint for "are these two paused simulations identical?".
    pub fn state_hash(&mut self) -> u64 {
        let mut w = SnapshotWriter::new();
        self.save_state_into(&mut w);
        netcrafter_proto::fnv1a64(&w.into_bytes())
    }

    /// Runs until `cycle` (see [`Engine::run_until`]) and returns the
    /// snapshot of the paused state.
    pub fn checkpoint_at(&mut self, cycle: Cycle) -> Vec<u8> {
        self.run_until(cycle);
        self.save_snapshot()
    }

    /// Serializes the paused engine into an in-memory [`ForkSnapshot`]:
    /// the versioned snapshot bytes behind an `Arc`, tagged with the pause
    /// cycle and the body's state hash. One serialization pass produces
    /// both the bytes and the fingerprint (the body is hashed before the
    /// header is prepended), so forking costs exactly one encode no matter
    /// how many children later restore from it.
    pub fn fork_snapshot(&mut self) -> ForkSnapshot {
        let mut body = SnapshotWriter::new();
        self.save_state_into(&mut body);
        let body = body.into_bytes();
        let hash = netcrafter_proto::fnv1a64(&body);
        let mut w = SnapshotWriter::new();
        write_header(&mut w);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&body);
        ForkSnapshot::new(self.cycle, bytes, hash)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("cycle", &self.cycle)
            .field("components", &self.components.len())
            .field("in_flight", &self.in_flight)
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every received message back to a peer after a delay.
    struct Echo {
        peer: ComponentId,
        delay: u64,
        received: Vec<(Cycle, Message)>,
        bounces_left: u32,
    }

    impl Component for Echo {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                self.received.push((ctx.cycle(), msg.clone()));
                if self.bounces_left > 0 {
                    self.bounces_left -= 1;
                    ctx.send(self.peer, msg, self.delay);
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    fn credit(n: u32) -> Message {
        Message::Credit {
            from: netcrafter_proto::NodeId(0),
            count: n,
            link: 0,
        }
    }

    #[test]
    fn messages_arrive_after_exact_delay() {
        let mut b = EngineBuilder::new();
        let a = b.reserve();
        let c = b.reserve();
        b.install(
            a,
            Box::new(Echo {
                peer: c,
                delay: 5,
                received: vec![],
                bounces_left: 0,
            }),
        );
        b.install(
            c,
            Box::new(Echo {
                peer: a,
                delay: 5,
                received: vec![],
                bounces_left: 0,
            }),
        );
        let mut e = b.build();
        e.inject(a, credit(1), 3);
        assert!(!e.quiescent());
        let end = e.run_to_quiescence(100);
        assert_eq!(end, 3, "message delivered at cycle 3 and system quiesces");
        assert_eq!(e.messages_delivered(), 1);
    }

    #[test]
    fn ping_pong_alternates() {
        let mut b = EngineBuilder::new();
        let a = b.reserve();
        let c = b.reserve();
        b.install(
            a,
            Box::new(Echo {
                peer: c,
                delay: 10,
                received: vec![],
                bounces_left: 2,
            }),
        );
        b.install(
            c,
            Box::new(Echo {
                peer: a,
                delay: 10,
                received: vec![],
                bounces_left: 2,
            }),
        );
        let mut e = b.build();
        e.inject(a, credit(7), 1);
        e.run_to_quiescence(1000);
        // a receives at 1, sends -> c receives at 11, sends -> a at 21,
        // sends -> c at 31, sends -> a at 41 (a has no bounces left).
        assert_eq!(e.messages_delivered(), 5);
    }

    #[test]
    fn long_delays_take_overflow_path() {
        let mut b = EngineBuilder::new();
        let a = b.add(Box::new(Echo {
            peer: ComponentId(0),
            delay: 1,
            received: vec![],
            bounces_left: 0,
        }));
        let mut e = b.build();
        e.inject(a, credit(1), 2000); // > WHEEL_SLOTS
        let end = e.run_to_quiescence(5000);
        assert_eq!(end, 2000);
        assert_eq!(e.messages_delivered(), 1);
    }

    struct Recorder {
        got: Vec<u32>,
    }
    impl Component for Recorder {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(Message::Credit { count, .. }) = ctx.recv() {
                self.got.push(count);
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "recorder"
        }
    }

    #[test]
    fn delivery_preserves_send_order_within_cycle() {
        let mut b = EngineBuilder::new();
        let r = b.add(Box::new(Recorder { got: vec![] }));
        let mut e = b.build();
        for i in 0..10 {
            e.inject(r, credit(i), 4);
        }
        e.run_to_quiescence(100);
        assert_eq!(e.messages_delivered(), 10);
        let rec = e.get::<Recorder>(r).expect("recorder installed");
        assert_eq!(
            rec.got,
            (0..10).collect::<Vec<u32>>(),
            "same-cycle deliveries arrive in send order"
        );
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn livelock_is_detected() {
        struct Forever;
        impl Component for Forever {
            fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
            fn busy(&self) -> bool {
                true
            }
            fn name(&self) -> &str {
                "forever"
            }
        }
        let mut b = EngineBuilder::new();
        b.add(Box::new(Forever));
        let mut e = b.build();
        e.run_to_quiescence(10);
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn double_install_panics() {
        let mut b = EngineBuilder::new();
        let id = b.reserve();
        b.install(
            id,
            Box::new(Echo {
                peer: id,
                delay: 1,
                received: vec![],
                bounces_left: 0,
            }),
        );
        b.install(
            id,
            Box::new(Echo {
                peer: id,
                delay: 1,
                received: vec![],
                bounces_left: 0,
            }),
        );
    }

    #[test]
    #[should_panic(expected = "never installed")]
    fn missing_install_panics() {
        let mut b = EngineBuilder::new();
        let _ = b.reserve();
        let _ = b.build();
    }

    #[test]
    fn run_while_stops_on_condition() {
        struct Heartbeat;
        impl Component for Heartbeat {
            fn tick(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.self_id();
                if ctx.recv().is_some() {
                    ctx.send(
                        me,
                        Message::Credit {
                            from: netcrafter_proto::NodeId(0),
                            count: 1,
                            link: 0,
                        },
                        1,
                    );
                }
            }
            fn busy(&self) -> bool {
                false
            }
            fn name(&self) -> &str {
                "heartbeat"
            }
        }
        let mut b = EngineBuilder::new();
        let h = b.add(Box::new(Heartbeat));
        let mut e = b.build();
        e.inject(h, credit(1), 1);
        let end = e.run_while(10_000, |e| e.cycle() < 50);
        assert_eq!(end, 50);
        assert!(!e.quiescent(), "heartbeat keeps a message in flight");
    }

    #[test]
    fn trace_records_recent_deliveries() {
        let mut b = EngineBuilder::new();
        let a = b.add(Box::new(Echo {
            peer: ComponentId(0),
            delay: 1,
            received: vec![],
            bounces_left: 0,
        }));
        let mut e = b.build();
        e.enable_trace(2);
        for _ in 0..5 {
            e.inject(a, credit(1), 1);
            e.step();
        }
        let events: Vec<_> = e.trace().collect();
        assert_eq!(events.len(), 2, "ring buffer keeps only the last 2");
        assert!(events.iter().all(|ev| ev.kind == "credit"));
        assert!(events[0].cycle < events[1].cycle);
        let dump = e.dump_trace();
        assert!(
            dump[0].contains("credit") && dump[0].contains("echo"),
            "{dump:?}"
        );
    }

    #[test]
    fn typed_component_access() {
        let mut b = EngineBuilder::new();
        let id = b.add(Box::new(Echo {
            peer: ComponentId(0),
            delay: 1,
            received: vec![],
            bounces_left: 0,
        }));
        let mut e = b.build();
        assert!(e.get::<Echo>(id).is_some(), "downcast to the real type");
        struct Other;
        impl Component for Other {
            fn tick(&mut self, _ctx: &mut Ctx<'_>) {}
            fn busy(&self) -> bool {
                false
            }
            fn name(&self) -> &str {
                "other"
            }
        }
        assert!(e.get::<Other>(id).is_none(), "wrong type yields None");
        assert!(e.get_mut::<Echo>(id).is_some());
    }

    #[test]
    fn zero_delay_is_clamped_to_one() {
        struct Sender {
            dst: ComponentId,
            sent: bool,
        }
        impl Component for Sender {
            fn tick(&mut self, ctx: &mut Ctx<'_>) {
                if !self.sent {
                    self.sent = true;
                    ctx.send(
                        self.dst,
                        Message::Credit {
                            from: netcrafter_proto::NodeId(0),
                            count: 1,
                            link: 0,
                        },
                        0,
                    );
                }
            }
            fn busy(&self) -> bool {
                false
            }
            fn name(&self) -> &str {
                "sender"
            }
        }
        let mut b = EngineBuilder::new();
        let s = b.reserve();
        let r = b.reserve();
        b.install(
            s,
            Box::new(Sender {
                dst: r,
                sent: false,
            }),
        );
        b.install(
            r,
            Box::new(Echo {
                peer: s,
                delay: 1,
                received: vec![],
                bounces_left: 0,
            }),
        );
        let mut e = b.build();
        e.step(); // sender sends at cycle 1 with delay 0 -> arrives cycle 2
        assert_eq!(e.messages_delivered(), 0);
        e.step();
        assert_eq!(e.messages_delivered(), 1);
    }

    // ---- event-driven scheduler ----

    /// Counts its own ticks; forwards each message onward after `delay`.
    /// Wake class `OnMessage`: a pure message reactor.
    struct Relay {
        peer: ComponentId,
        delay: u64,
        ticks: u64,
        forwarded: u64,
        hops_left: u64,
    }
    impl Component for Relay {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            self.ticks += 1;
            while let Some(msg) = ctx.recv() {
                if self.hops_left > 0 {
                    self.hops_left -= 1;
                    self.forwarded += 1;
                    ctx.send(self.peer, msg, self.delay);
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "relay"
        }
        fn next_wake(&self, _now: Cycle) -> Wake {
            Wake::OnMessage
        }
    }

    /// Emits one credit every `period` cycles via a precise `At` wake,
    /// until `left` runs out.
    struct Pulse {
        dst: ComponentId,
        period: Cycle,
        next: Cycle,
        left: u32,
    }
    impl Component for Pulse {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while ctx.recv().is_some() {}
            if self.left > 0 && ctx.cycle() >= self.next {
                self.left -= 1;
                self.next = ctx.cycle() + self.period;
                ctx.send(self.dst, credit(self.left), 1);
            }
        }
        fn busy(&self) -> bool {
            self.left > 0
        }
        fn name(&self) -> &str {
            "pulse"
        }
        fn next_wake(&self, _now: Cycle) -> Wake {
            if self.left > 0 {
                Wake::At(self.next)
            } else {
                Wake::OnMessage
            }
        }
    }

    fn relay_ring(mode: SchedulerMode) -> (Engine, Vec<ComponentId>) {
        let mut b = EngineBuilder::new();
        let ids: Vec<ComponentId> = (0..8).map(|_| b.reserve()).collect();
        for (i, &id) in ids.iter().enumerate() {
            b.install(
                id,
                Box::new(Relay {
                    peer: ids[(i + 1) % ids.len()],
                    delay: 37,
                    ticks: 0,
                    forwarded: 0,
                    hops_left: 5,
                }),
            );
        }
        let mut e = b.build();
        e.set_scheduler(mode);
        (e, ids)
    }

    #[test]
    fn event_driven_matches_legacy_on_relay_ring() {
        let run = |mode| {
            let (mut e, ids) = relay_ring(mode);
            e.inject(ids[0], credit(1), 1);
            let end = e.run_to_quiescence(100_000);
            (end, e.messages_delivered())
        };
        assert_eq!(
            run(SchedulerMode::Legacy),
            run(SchedulerMode::EventDriven),
            "schedulers must agree on end cycle and delivery count"
        );
    }

    #[test]
    fn event_driven_skips_idle_cycles() {
        let (mut e, ids) = relay_ring(SchedulerMode::EventDriven);
        e.inject(ids[0], credit(1), 1);
        let end = e.run_to_quiescence(100_000);
        let total_ticks: u64 = ids
            .iter()
            .map(|&id| e.get::<Relay>(id).unwrap().ticks)
            .sum();
        // Legacy would tick 8 components x `end` cycles; event-driven
        // ticks only the initial arming plus one tick per delivery.
        assert!(
            total_ticks < 8 + 2 * e.messages_delivered(),
            "ticks {total_ticks} deliveries {} end {end}",
            e.messages_delivered()
        );
    }

    #[test]
    fn at_wakes_fire_on_schedule_in_both_modes() {
        let run = |mode| {
            let mut b = EngineBuilder::new();
            let sink = b.reserve();
            b.add(Box::new(Pulse {
                dst: sink,
                period: 50,
                next: 1,
                left: 6,
            }));
            b.install(sink, Box::new(Recorder { got: vec![] }));
            let mut e = b.build();
            e.set_scheduler(mode);
            let end = e.run_to_quiescence(10_000);
            let got = e.get::<Recorder>(sink).unwrap().got.clone();
            (end, e.messages_delivered(), got)
        };
        let legacy = run(SchedulerMode::Legacy);
        let event = run(SchedulerMode::EventDriven);
        assert_eq!(legacy, event);
        assert_eq!(legacy.1, 6, "six pulses delivered");
    }

    #[test]
    fn external_mutation_is_observed() {
        struct Latch {
            armed: bool,
            fired: bool,
        }
        impl Component for Latch {
            fn tick(&mut self, ctx: &mut Ctx<'_>) {
                while ctx.recv().is_some() {}
                if self.armed {
                    self.armed = false;
                    self.fired = true;
                }
            }
            fn busy(&self) -> bool {
                self.armed
            }
            fn name(&self) -> &str {
                "latch"
            }
            fn next_wake(&self, _now: Cycle) -> Wake {
                if self.armed {
                    Wake::EveryCycle
                } else {
                    Wake::OnMessage
                }
            }
        }
        let mut b = EngineBuilder::new();
        let id = b.add(Box::new(Latch {
            armed: false,
            fired: false,
        }));
        let mut e = b.build();
        e.run_to_quiescence(10);
        assert!(e.quiescent());
        // Mutate behind the scheduler's back: the engine must notice the
        // busy flip and tick the component again.
        e.get_mut::<Latch>(id).unwrap().armed = true;
        assert!(!e.quiescent(), "dirty component re-checked live");
        e.run_to_quiescence(10);
        assert!(e.get::<Latch>(id).unwrap().fired, "latch got its tick");
    }

    #[test]
    fn fast_forward_takes_overflow_and_wheel_paths() {
        // Chain: delivery at 2000 (overflow), relayed with delay 37
        // (wheel). Event-driven must land on both exactly.
        let run = |mode| {
            let mut b = EngineBuilder::new();
            let tail = b.reserve();
            let head = b.add(Box::new(Relay {
                peer: tail,
                delay: 37,
                ticks: 0,
                forwarded: 0,
                hops_left: 1,
            }));
            b.install(
                tail,
                Box::new(Relay {
                    peer: head,
                    delay: 1,
                    ticks: 0,
                    forwarded: 0,
                    hops_left: 0,
                }),
            );
            let mut e = b.build();
            e.set_scheduler(mode);
            e.inject(head, credit(3), 2000);
            let end = e.run_to_quiescence(5000);
            (end, e.messages_delivered())
        };
        let legacy = run(SchedulerMode::Legacy);
        assert_eq!(legacy, run(SchedulerMode::EventDriven));
        assert_eq!(legacy, (2037, 2));
    }

    /// Snapshot-capable bouncer: returns each credit to its peer with a
    /// delay drawn from a fixed rotation mixing same-slot, wheel-range
    /// and overflow-range hops, so a long run recycles arena slots
    /// continuously.
    struct Churner {
        peer: ComponentId,
        delays: &'static [u64],
        next_delay: usize,
        bounces_left: u32,
        received: u64,
    }

    impl Component for Churner {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            while let Some(msg) = ctx.recv() {
                self.received += 1;
                if self.bounces_left > 0 {
                    self.bounces_left -= 1;
                    let d = self.delays[self.next_delay % self.delays.len()];
                    self.next_delay += 1;
                    ctx.send(self.peer, msg, d);
                }
            }
        }
        fn busy(&self) -> bool {
            false
        }
        fn name(&self) -> &str {
            "churner"
        }
        fn save_state(&self, w: &mut SnapshotWriter) {
            w.put_u64(self.next_delay as u64);
            w.put_u64(u64::from(self.bounces_left));
            w.put_u64(self.received);
        }
        fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
            self.next_delay = r.get_u64()? as usize;
            self.bounces_left = r.get_u64()? as u32;
            self.received = r.get_u64()?;
            Ok(())
        }
    }

    /// Drains at most one message per tick, so a same-cycle burst sits
    /// in its engine-side inbox across several cycles — exactly the
    /// state a snapshot must carry through the arena.
    struct Sloth {
        backlog: u32,
        got: u64,
    }

    impl Component for Sloth {
        fn tick(&mut self, ctx: &mut Ctx<'_>) {
            if ctx.recv().is_some() {
                self.got += 1;
                self.backlog -= 1;
            }
        }
        fn busy(&self) -> bool {
            self.backlog > 0
        }
        fn name(&self) -> &str {
            "sloth"
        }
        fn save_state(&self, w: &mut SnapshotWriter) {
            w.put_u64(u64::from(self.backlog));
            w.put_u64(self.got);
        }
        fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
            self.backlog = r.get_u64()? as u32;
            self.got = r.get_u64()?;
            Ok(())
        }
    }

    const CHURN_DELAYS: &[u64] = &[1, 3, 700, 2, 517, 5];

    fn churn_engine() -> Engine {
        let mut b = EngineBuilder::new();
        let a = b.reserve();
        let c = b.reserve();
        b.install(
            a,
            Box::new(Churner {
                peer: c,
                delays: CHURN_DELAYS,
                next_delay: 0,
                bounces_left: 40,
                received: 0,
            }),
        );
        b.install(
            c,
            Box::new(Churner {
                peer: a,
                delays: CHURN_DELAYS,
                next_delay: 0,
                bounces_left: 40,
                received: 0,
            }),
        );
        b.add(Box::new(Sloth { backlog: 4, got: 0 }));
        b.build()
    }

    #[test]
    fn snapshot_round_trip_survives_arena_churn() {
        let mut live = churn_engine();
        let a = ComponentId(0);
        let sloth = ComponentId(2);
        // Several concurrent bounce chains spanning wheel and overflow
        // ranges, plus a same-cycle burst the sloth drains one per tick.
        for i in 0..6u32 {
            live.inject(a, credit(i), 1 + u64::from(i) * 400);
        }
        for i in 0..4u32 {
            live.inject(sloth, credit(100 + i), 450);
        }
        // Pause mid-flight: the sloth's backlog keeps an inbox occupied,
        // short hops sit in the wheel and a 400/700-cycle hop scheduled
        // near the pause sits in the overflow map.
        live.run_until(451);
        assert!(live.in_flight > 0, "pause must catch messages in flight");
        assert!(
            !live.overflow.is_empty(),
            "pause must catch a long-range delivery in overflow"
        );
        assert!(
            live.inboxes.iter().any(|q| !q.is_empty()),
            "pause must catch an undrained inbox"
        );

        // Fixed point: restore into a freshly built twin; its re-encoded
        // snapshot and state hash are byte-identical.
        let snap = live.save_snapshot();
        let mut twin = churn_engine();
        twin.restore(&snap).expect("snapshot restores");
        assert_eq!(
            twin.save_snapshot(),
            snap,
            "save/load/save is a fixed point"
        );
        assert_eq!(twin.state_hash(), live.state_hash());

        // Continuation: both runs land on the same end state.
        let end_live = live.run_to_quiescence(100_000);
        let end_twin = twin.run_to_quiescence(100_000);
        assert_eq!(
            end_live, end_twin,
            "restored run quiesces at the same cycle"
        );
        assert_eq!(live.messages_delivered(), twin.messages_delivered());
        assert_eq!(live.state_hash(), twin.state_hash());

        // Arena recycling: ~90 deliveries flowed through, but the slab
        // only ever grew to the peak concurrent in-flight count.
        assert!(
            live.messages_delivered() >= 80,
            "expected a long churn run, got {} deliveries",
            live.messages_delivered()
        );
        assert!(live.msgs.is_empty(), "quiescent engine holds no payloads");
        assert!(
            live.msgs.capacity() <= 16,
            "arena failed to recycle: {} slots for {} deliveries",
            live.msgs.capacity(),
            live.messages_delivered()
        );
    }
}
