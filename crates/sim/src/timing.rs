//! Timing utilities shared by all hardware models: fixed-latency
//! pipelines, fractional-rate bandwidth limiters, and periodic tickers.

use std::collections::VecDeque;

use crate::snapshot::{Snap, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::Cycle;

/// A fixed- or variable-latency pipeline: items pushed at cycle `t` with
/// latency `d` become available at cycle `t + d`, in push order.
///
/// This models lookup pipelines (the 20-cycle L1, the 100-cycle L2, the
/// 30-cycle switch pipeline) without per-cycle shifting: entries store
/// their ready cycle and are popped lazily.
///
/// # Examples
///
/// ```
/// use netcrafter_sim::DelayQueue;
///
/// let mut q = DelayQueue::new();
/// q.push(10, "a"); // ready at cycle 10
/// q.push(12, "b");
/// assert_eq!(q.pop_ready(9), None);
/// assert_eq!(q.pop_ready(10), Some("a"));
/// assert_eq!(q.pop_ready(10), None);
/// assert_eq!(q.pop_ready(15), Some("b"));
/// ```
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    items: VecDeque<(Cycle, T)>,
}

impl<T> DelayQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            items: VecDeque::new(),
        }
    }

    /// Enqueues `item`, ready at cycle `ready_at`.
    ///
    /// Ready cycles must be non-decreasing in push order (true for any
    /// fixed-latency pipeline); this is asserted in debug builds.
    pub fn push(&mut self, ready_at: Cycle, item: T) {
        debug_assert!(
            self.items.back().is_none_or(|(r, _)| *r <= ready_at),
            "DelayQueue requires non-decreasing ready cycles"
        );
        self.items.push_back((ready_at, item));
    }

    /// Pops the front item if it is ready at `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.items.front().is_some_and(|(r, _)| *r <= now) {
            self.items.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// Peeks at the front item if it is ready at `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        self.items
            .front()
            .filter(|(r, _)| *r <= now)
            .map(|(_, item)| item)
    }

    /// Number of queued items (ready or not).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over all queued items.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter().map(|(_, item)| item)
    }

    /// The cycle at which the front item becomes ready, if any. Because
    /// ready cycles are non-decreasing, this is the earliest readiness in
    /// the whole queue — the precise wake for an event-driven component.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.items.front().map(|&(r, _)| r)
    }
}

impl<T> Default for DelayQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Snap> Snap for DelayQueue<T> {
    fn save(&self, w: &mut SnapshotWriter) {
        self.items.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let items: VecDeque<(Cycle, T)> = Snap::load(r)?;
        if items
            .iter()
            .zip(items.iter().skip(1))
            .any(|((a, _), (b, _))| a > b)
        {
            return Err(SnapshotError::Corrupt(
                "DelayQueue ready cycles not non-decreasing".to_string(),
            ));
        }
        Ok(Self { items })
    }
}

/// A token-bucket rate limiter supporting fractional rates, used to model
/// link and DRAM bandwidth.
///
/// Each cycle [`RateLimiter::accrue`] adds `rate` tokens (bytes); an
/// operation consuming `n` bytes proceeds only when `n` tokens are
/// available. Accumulation is capped at one burst window so an idle link
/// cannot bank unlimited credit.
///
/// # Examples
///
/// ```
/// use netcrafter_sim::RateLimiter;
///
/// // A 16 GB/s link at 1 GHz moves 16 B/cycle: exactly one 16 B flit.
/// let mut link = RateLimiter::new(16.0, 16.0);
/// link.accrue();
/// assert!(link.try_consume(16.0));
/// assert!(!link.try_consume(16.0)); // budget spent this cycle
/// ```
#[derive(Debug, Clone)]
pub struct RateLimiter {
    rate: f64,
    burst: f64,
    tokens: f64,
}

impl RateLimiter {
    /// Creates a limiter adding `rate` tokens per cycle, capped at `burst`.
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        assert!(burst >= rate, "burst must cover at least one cycle of rate");
        Self {
            rate,
            burst,
            tokens: 0.0,
        }
    }

    /// Adds one cycle's worth of tokens.
    pub fn accrue(&mut self) {
        self.tokens = (self.tokens + self.rate).min(self.burst);
    }

    /// Consumes `n` tokens if available.
    pub fn try_consume(&mut self, n: f64) -> bool {
        if self.tokens + 1e-9 >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.tokens
    }

    /// The configured rate in tokens per cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// True once the bucket is full: further [`RateLimiter::accrue`] calls
    /// are no-ops, so an idle-cycle replay can stop early.
    pub fn is_saturated(&self) -> bool {
        self.tokens == self.burst
    }

    /// The exact bit pattern of the token count, for detecting periodic
    /// orbits when replaying long idle stretches bit-identically.
    pub fn tokens_bits(&self) -> u64 {
        self.tokens.to_bits()
    }
}

/// Rate and burst are builder-time configuration, but they are saved
/// anyway and validated on load: restoring a snapshot into a limiter
/// built from a different config is a config mismatch, not a silent
/// behavior change. The token count restores by exact bit pattern.
impl Snap for RateLimiter {
    fn save(&self, w: &mut SnapshotWriter) {
        self.rate.save(w);
        self.burst.save(w);
        self.tokens.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let rate: f64 = Snap::load(r)?;
        let burst: f64 = Snap::load(r)?;
        let tokens: f64 = Snap::load(r)?;
        // Positive comparisons so NaNs in any field also fail validation.
        let valid = rate > 0.0 && burst >= rate && (0.0..=burst).contains(&tokens);
        if !valid {
            return Err(SnapshotError::Corrupt(format!(
                "RateLimiter state rate={rate} burst={burst} tokens={tokens}"
            )));
        }
        Ok(Self {
            rate,
            burst,
            tokens,
        })
    }
}

/// Fires every `period` cycles, for round-robin scheduling epochs and
/// periodic statistics sampling.
#[derive(Debug, Clone)]
pub struct Ticker {
    period: Cycle,
    next: Cycle,
}

impl Ticker {
    /// Creates a ticker firing first at cycle `period`.
    pub fn new(period: Cycle) -> Self {
        assert!(period > 0, "period must be positive");
        Self {
            period,
            next: period,
        }
    }

    /// Returns true (once) when `now` reaches the next firing point, then
    /// re-arms.
    pub fn fired(&mut self, now: Cycle) -> bool {
        if now >= self.next {
            self.next += self.period * ((now - self.next) / self.period + 1);
            true
        } else {
            false
        }
    }
}

impl Snap for Ticker {
    fn save(&self, w: &mut SnapshotWriter) {
        self.period.save(w);
        self.next.save(w);
    }
    fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let period: Cycle = Snap::load(r)?;
        let next: Cycle = Snap::load(r)?;
        if period == 0 {
            return Err(SnapshotError::Corrupt("Ticker period 0".to_string()));
        }
        Ok(Self { period, next })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_queue_orders_by_readiness() {
        let mut q = DelayQueue::new();
        assert!(q.is_empty());
        q.push(5, 'x');
        q.push(5, 'y');
        q.push(9, 'z');
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_ready(4), None);
        assert_eq!(q.peek_ready(5), Some(&'x'));
        assert_eq!(q.pop_ready(5), Some('x'));
        assert_eq!(q.pop_ready(5), Some('y'));
        assert_eq!(q.pop_ready(5), None);
        assert_eq!(q.pop_ready(100), Some('z'));
        assert!(q.is_empty());
    }

    #[test]
    fn delay_queue_iterates_contents() {
        let mut q = DelayQueue::new();
        q.push(1, 10);
        q.push(2, 20);
        let all: Vec<_> = q.iter().copied().collect();
        assert_eq!(all, vec![10, 20]);
    }

    #[test]
    fn rate_limiter_integer_rate() {
        let mut r = RateLimiter::new(2.0, 4.0);
        assert!(!r.try_consume(1.0), "no tokens before first accrue");
        r.accrue();
        assert!(r.try_consume(2.0));
        assert!(!r.try_consume(1.0));
    }

    #[test]
    fn rate_limiter_fractional_rate_accumulates() {
        // 0.5 flits/cycle: one flit every two cycles.
        let mut r = RateLimiter::new(0.5, 1.0);
        r.accrue();
        assert!(!r.try_consume(1.0));
        r.accrue();
        assert!(r.try_consume(1.0));
    }

    #[test]
    fn rate_limiter_caps_at_burst() {
        let mut r = RateLimiter::new(10.0, 15.0);
        for _ in 0..100 {
            r.accrue();
        }
        assert!(r.available() <= 15.0);
        assert!(r.try_consume(15.0));
        assert!(!r.try_consume(0.1));
    }

    #[test]
    fn rate_limiter_reports_saturation() {
        let mut r = RateLimiter::new(10.0, 15.0);
        assert!(!r.is_saturated());
        r.accrue();
        assert!(!r.is_saturated());
        r.accrue();
        assert!(r.is_saturated(), "capped at burst");
        let bits = r.tokens_bits();
        r.accrue();
        assert_eq!(r.tokens_bits(), bits, "accrue at saturation is a no-op");
    }

    #[test]
    fn delay_queue_exposes_next_ready() {
        let mut q: DelayQueue<char> = DelayQueue::new();
        assert_eq!(q.next_ready(), None);
        q.push(5, 'x');
        q.push(9, 'y');
        assert_eq!(q.next_ready(), Some(5));
        q.pop_ready(5);
        assert_eq!(q.next_ready(), Some(9));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = RateLimiter::new(0.0, 1.0);
    }

    #[test]
    fn ticker_fires_periodically() {
        let mut t = Ticker::new(10);
        assert!(!t.fired(5));
        assert!(t.fired(10));
        assert!(!t.fired(11));
        assert!(t.fired(20));
        // Skipping ahead re-arms relative to the period grid.
        assert!(t.fired(55));
        assert!(!t.fired(59));
        assert!(t.fired(60));
    }
}
