//! Generation-checked slab arena for message payloads.
//!
//! The engine's hot path moves a message three times: staged send →
//! delay-wheel slot → destination mailbox. Storing [`Message`]s inline
//! makes each move a memcpy of the full enum; storing them once in an
//! [`Arena`] and moving an 8-byte [`Handle`] instead keeps the wheel
//! slots and inboxes SoA-friendly and recycles payload slots without
//! per-flit allocator traffic.
//!
//! Ownership rules (see DESIGN.md §3.6):
//!
//! * A handle is created by [`Arena::alloc`] and owns its slot until
//!   [`Arena::take`] consumes it. Exactly one live handle refers to a
//!   slot at any time — the engine threads handles linearly through
//!   outbox → wheel → inbox → `Ctx::recv`.
//! * Every slot carries a generation counter, bumped on free. Resolving
//!   a stale handle (use-after-take, or a handle smuggled across arenas
//!   with a recycled slot) panics instead of silently aliasing another
//!   message.
//!
//! [`Message`]: netcrafter_proto::Message

/// A generation-checked reference to a value in an [`Arena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handle {
    idx: u32,
    gen: u32,
}

impl Handle {
    /// The slot index (for diagnostics only — never dereference manually).
    pub fn index(self) -> u32 {
        self.idx
    }
}

/// A slab of `T` slots with a free list and per-slot generations.
#[derive(Debug)]
pub struct Arena<T> {
    /// `(generation, payload)`; `None` payload = free slot.
    slots: Vec<(u32, Option<T>)>,
    free: Vec<u32>,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Stores `val`, recycling a freed slot when one is available.
    #[inline]
    pub fn alloc(&mut self, val: T) -> Handle {
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.1.is_none(), "free list pointed at a live slot");
            slot.1 = Some(val);
            Handle { idx, gen: slot.0 }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("arena exceeded u32::MAX slots");
            self.slots.push((0, Some(val)));
            Handle { idx, gen: 0 }
        }
    }

    /// Borrows the value behind `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is stale (its slot was already taken and possibly
    /// recycled) or belongs to a different arena.
    #[inline]
    pub fn get(&self, h: Handle) -> &T {
        let slot = self
            .slots
            .get(h.idx as usize)
            .unwrap_or_else(|| panic!("arena handle {} out of bounds", h.idx));
        assert_eq!(
            slot.0, h.gen,
            "stale arena handle: slot {} is at generation {}, handle carries {}",
            h.idx, slot.0, h.gen
        );
        slot.1
            .as_ref()
            .unwrap_or_else(|| panic!("arena handle {} points at a freed slot", h.idx))
    }

    /// Removes and returns the value behind `h`, freeing its slot for
    /// reuse (the slot's generation is bumped, so `h` becomes stale).
    ///
    /// # Panics
    ///
    /// Panics if `h` is stale or belongs to a different arena.
    #[inline]
    pub fn take(&mut self, h: Handle) -> T {
        let slot = self
            .slots
            .get_mut(h.idx as usize)
            .unwrap_or_else(|| panic!("arena handle {} out of bounds", h.idx));
        assert_eq!(
            slot.0, h.gen,
            "stale arena handle: slot {} is at generation {}, handle carries {}",
            h.idx, slot.0, h.gen
        );
        let val = slot
            .1
            .take()
            .unwrap_or_else(|| panic!("arena handle {} points at a freed slot", h.idx));
        slot.0 = slot.0.wrapping_add(1);
        self.free.push(h.idx);
        val
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no value is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot capacity ever allocated (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_take_roundtrip() {
        let mut a = Arena::new();
        let h1 = a.alloc("one");
        let h2 = a.alloc("two");
        assert_eq!(a.len(), 2);
        assert_eq!(*a.get(h1), "one");
        assert_eq!(a.take(h2), "two");
        assert_eq!(a.take(h1), "one");
        assert!(a.is_empty());
    }

    #[test]
    fn slots_are_recycled_lifo_without_growth() {
        let mut a = Arena::new();
        for round in 0..100u32 {
            let h = a.alloc(round);
            assert_eq!(a.take(h), round);
        }
        assert_eq!(a.capacity(), 1, "one slot recycled across all rounds");
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn stale_handle_panics_after_recycle() {
        let mut a = Arena::new();
        let h = a.alloc(1u64);
        a.take(h);
        let _h2 = a.alloc(2u64); // recycles the slot at a new generation
        let _ = a.get(h);
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn double_take_panics() {
        let mut a = Arena::new();
        let h = a.alloc(7u8);
        a.take(h);
        let _ = a.take(h); // generation was bumped on the first take
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn foreign_handle_is_out_of_bounds() {
        let mut a = Arena::new();
        let h = a.alloc(1u8);
        let b: Arena<u8> = Arena::new();
        let _ = b.get(h);
    }
}
